#!/bin/sh
# Minimal CI: build, run the test suite, then the bench smoke pass
# (micro-benchmarks with -quick plus the table1/example5 paper traces)
# and the fault-plan soak (lossy channels + crashes under the acked
# reliability layer must keep their consistency guarantees).
set -eux

dune build
dune runtest
dune build @bench-smoke
dune build @soak-smoke
dune build @serve-smoke
dune build @par-smoke
dune build @shared-smoke
# Columnar kernels must be observably invisible: identical traces with
# the columnar path forced on and off, both runtimes, 1 and 4 domains.
dune build @col-smoke
# Process-crash durability: merge/integrator/warehouse crashes (columnar
# on/off x domains 1/4) must recover — WAL + checkpoint replay plus the
# resync protocol — to a state byte-identical to a crash-free run.
dune build @crash-smoke
# Distributed warehouse: shards 1/2/4 over the same tenant workload
# (lossy links under ARQ) must serve byte-identical union contents,
# stay certified, and keep per-shard merge load flat as tenants scale.
dune build @dist-smoke
# Self-maintenance: Selfmaint_vm must be trace-identical to Complete_vm
# on every paper scenario (1 and 4 domains) with zero source queries.
dune build @selfmaint-smoke
# Merge fast path: the coalesced default must be trace-identical to
# per-message merging on every paper scenario (1 and 4 domains); every
# fused run must pass certify_fused and stay strongly consistent.
dune build @merge-smoke
# Fold every BENCH_*.json headline into BENCH_summary.json, append this
# run to BENCH_history.jsonl, and fail if the kernel headline regressed
# more than 1.5x against the last recorded run of the same kernel.
dune exec bench/main.exe -- -quick --check-regression summary
# The whole suite once more through the multicore runtime: MVC_DOMAINS
# flips the default parallel config, and every trace must be identical.
MVC_DOMAINS=4 dune runtest --force
