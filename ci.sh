#!/bin/sh
# Minimal CI: build, run the test suite, then the bench smoke pass
# (micro-benchmarks with -quick plus the table1/example5 paper traces)
# and the fault-plan soak (lossy channels + crashes under the acked
# reliability layer must keep their consistency guarantees).
set -eux

dune build
dune runtest
dune build @bench-smoke
dune build @soak-smoke
dune build @serve-smoke
