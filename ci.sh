#!/bin/sh
# Minimal CI: build, run the test suite, then the bench smoke pass
# (micro-benchmarks with -quick plus the table1/example5 paper traces).
set -eux

dune build
dune runtest
dune build @bench-smoke
