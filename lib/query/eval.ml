open Relational

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

(* Reference kernel: the textbook O(|left| * |right|) nested loop, with
   Tuple.join re-resolving the shared attributes by name on every pair.
   Kept (behind ~naive:true) as the equivalence oracle for the compiled
   hash kernel and as the baseline series of the micro-bench ablation. *)
let join_counted_naive sa sb left right =
  List.fold_left
    (fun acc (ltup, ln) ->
      List.fold_left
        (fun acc (rtup, rn) ->
          match Tuple.join sa sb ltup rtup with
          | Some joined -> (joined, ln * rn) :: acc
          | None -> acc)
        acc right)
    [] left

let join_counted sa sb left right =
  let shared = Schema.common sa sb in
  Compiled.join_counted_pos
    ~key_left:(Schema.positions sa shared)
    ~key_right:(Schema.positions sb shared)
    ~right_extra:
      (Schema.positions sb
         (List.filter (fun n -> not (Schema.mem sa n)) (Schema.names sb)))
    left right

let aggregate_group = Compiled.aggregate_group

(* Interpreted reference evaluator: attribute names are resolved through
   the schema on every tuple. *)
let rec eval_naive db expr =
  let lookup name = Database.schema db name in
  match (expr : Algebra.t) with
  | Base name -> Relation.contents (Database.find db name)
  | Select (pred, e) ->
    let schema = Algebra.schema_of lookup e in
    Bag.filter (Pred.eval schema pred) (eval_naive db e)
  | Project (names, e) ->
    let schema = Algebra.schema_of lookup e in
    Bag.map (Tuple.project schema names) (eval_naive db e)
  | Join (a, b) ->
    let sa = Algebra.schema_of lookup a and sb = Algebra.schema_of lookup b in
    Bag.of_counted_list
      (join_counted_naive sa sb
         (Bag.to_counted_list (eval_naive db a))
         (Bag.to_counted_list (eval_naive db b)))
  | Union (a, b) -> Bag.union (eval_naive db a) (eval_naive db b)
  | Rename (_, e) -> eval_naive db e
  | Group_by group ->
    let input_schema = Algebra.schema_of lookup group.input in
    let contents = eval_naive db group.input in
    let by_key = Tuple_tbl.create 32 in
    Bag.iter
      (fun tup n ->
        let key = Tuple.project input_schema group.keys tup in
        let existing =
          match Tuple_tbl.find_opt by_key key with
          | Some bag -> bag
          | None -> Bag.empty
        in
        Tuple_tbl.replace by_key key (Bag.add ~count:n tup existing))
      contents;
    Tuple_tbl.fold
      (fun key members acc ->
        Bag.add (aggregate_group ~input_schema ~group ~key members) acc)
      by_key Bag.empty

let eval_bag ?(naive = false) db expr =
  if naive then eval_naive db expr
  else
    Compiled.eval_bag db
      (Compiled.compile_memo ~lookup:(Database.schema db) expr)

let eval ?(naive = false) db expr =
  let lookup name = Database.schema db name in
  if naive then
    let schema = Algebra.schema_of lookup expr in
    Relation.with_contents (Relation.create schema) (eval_naive db expr)
  else Compiled.eval db (Compiled.compile_memo ~lookup expr)
