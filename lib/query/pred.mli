(** Selection predicates over tuples.

    Predicates compare attributes and constants and close under boolean
    connectives. They drive [Select] nodes in {!Algebra} and the
    integrator's irrelevant-update test (the "selection conditions" rule-out
    of Section 3.2 / reference [7] of the paper). *)

open Relational

type operand = Attr of string | Const of Value.t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * operand * operand
  | And of t * t
  | Or of t * t
  | Not of t

val cmp_holds : cmp -> Value.t -> Value.t -> bool
(** The comparison semantics shared by the interpreted and compiled
    evaluators: [Null] on either side is false (except [Ne], true). *)

val eval : Schema.t -> t -> Tuple.t -> bool
(** Three-valued logic is not modelled: comparisons involving [Null] are
    false (except [Ne], true), matching the simple semantics the paper's
    examples need.
    @raise Schema.Unknown_attribute if the predicate names an attribute
    missing from the schema. *)

val attrs : t -> string list
(** Distinct attribute names mentioned, in first-mention order. *)

val conj : t list -> t

val disj : t list -> t

(** Shorthand constructors. *)

val eq : string -> Value.t -> t

val lt : string -> Value.t -> t

val gt : string -> Value.t -> t

val le : string -> Value.t -> t

val ge : string -> Value.t -> t

val attr_eq : string -> string -> t

val pp : Format.formatter -> t -> unit
