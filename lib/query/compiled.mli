(** Compiled query plans: the positional, hash-based evaluation kernel.

    An {!Algebra.t} names attributes by string; evaluating it directly pays
    a schema name search per attribute {e per tuple}. Compilation resolves
    every name to an integer position once — select predicates become
    position comparisons, projections become position arrays, joins carry
    precomputed key/extra-column positions — and evaluation then runs
    positionally, with joins executed as build-on-smaller hash joins
    ({!Relational.Bag_index}). [Rename] nodes compile away entirely.

    {!Eval} and {!Delta} use this layer by default; their [~naive:true]
    paths keep the original interpreted kernels as the reference
    implementation for equivalence tests and the micro-bench ablation. *)

open Relational

type t
(** A compiled plan; carries its output schema at every node. *)

val compile : lookup:(string -> Schema.t) -> Algebra.t -> t
(** Resolve every attribute of the expression against the base-relation
    schemas supplied by [lookup]. Raises the same exceptions as
    {!Algebra.schema_of} on ill-typed expressions (unknown attributes,
    incompatible unions, conflicting join types). *)

val compile_memo : lookup:(string -> Schema.t) -> Algebra.t -> t
(** Like {!compile} but memoized on the physical identity of the
    expression, so a view manager evaluating the same definition per
    transaction compiles it once. Hits are revalidated against the current
    base-relation schemas and recompiled on mismatch. The memo is sharded
    by structural hash with one lock per shard, so concurrent domains
    compiling different expressions rarely serialize; {!Canon.intern}ed
    expressions share one physical key and therefore one plan. *)

val memo_contention : unit -> int
(** Process-wide count of contended memo-shard lock acquisitions (a
    [try_lock] that failed before blocking). {!Whips.Metrics} snapshots
    it around a run. *)

val kernel_rows : unit -> int
(** Process-wide count of rows scanned by the hash-join kernel: build +
    probe side of every full join, probe side only for the prebuilt-index
    delta paths. The shared-plan bench diffs it around a run as its
    delta-evaluation work metric. *)

val schema : t -> Schema.t

val eval : ?exec:Parallel.Exec.t -> Database.t -> t -> Relation.t

val eval_bag : ?exec:Parallel.Exec.t -> Database.t -> t -> Bag.t
(** @raise Database.Unknown_relation if a base relation is missing.
    With a pooled [exec], large joins run sharded (see
    {!join_counted_pos}); results are identical. *)

val delta :
  ?exec:Parallel.Exec.t ->
  ?pre_index:(string -> key_pos:int array -> Bag_index.t option) ->
  ?pre_relation:(string -> Relation.t option) ->
  changes:(string -> Signed_bag.t) ->
  eval_pre:(t -> Bag.t) ->
  t ->
  Signed_bag.t
(** Signed delta of a compiled plan: [changes] supplies the per-base signed
    deltas and [eval_pre] evaluates sub-plans over the pre-state (the
    caller decides how — {!Delta} passes [eval_bag pre]). Join rules run as
    hash joins on the plan's precomputed key positions, and a rule's
    pre-state side is only evaluated when the matching delta side is
    non-empty.

    [pre_index name ~key_pos], when it returns a hash index over [name]'s
    pre-state keyed at [key_pos], turns the join rules whose pre-state
    side is that base relation into pure probes of the existing index —
    O(|delta|) instead of evaluating and indexing the pre-state. The
    index must be consistent with what [eval_pre] would return for
    [Base name]. The shared-plan engine supplies it for materialized
    intermediates; by default no index is offered.

    [pre_relation name], when it returns [name]'s pre-state relation,
    lets the join rules fall back to the relation's own memoized
    int-keyed index ({!Relation.index}) for sides that are base
    relations — or selections pushed down onto base relations, whose
    predicate is then applied as a filter on the probe matches. Since
    the index is cached on the relation record itself, a 10k-row
    pre-state costs one index build per version rather than one scan per
    transaction. Only consulted when columnar kernels are enabled
    ({!Columnar.enabled}). *)

val join_counted_pos :
  ?exec:Parallel.Exec.t ->
  key_left:int array ->
  key_right:int array ->
  right_extra:int array ->
  (Tuple.t * int) list ->
  (Tuple.t * int) list ->
  (Tuple.t * int) list
(** Hash join of counted tuple collections on precomputed positions: a hash
    index is built on the smaller side and probed with the larger, so cost
    is O(|smaller| + |larger| + |output|) with no per-pair name resolution.
    Multiplicities multiply and may be negative (signed-delta joins).
    Output tuples are the left tuple followed by the right side's
    [right_extra] columns.

    With a pooled [exec] and at least {!Parallel.shard_threshold} total
    input rows, both sides are hash-partitioned by join key into the
    policy's shard count and the per-shard joins run across domains;
    per-shard results are concatenated in shard order. Since equal keys
    land in the same shard, the output is the same {e bag} of counted
    tuples as the sequential join (list order differs; all callers
    normalize through [Bag]/[Signed_bag]). *)

(** {2 Aggregate kernels} *)

val aggregate_group :
  input_schema:Schema.t ->
  group:Algebra.group_by ->
  key:Tuple.t ->
  Bag.t ->
  Tuple.t
(** [aggregate_group ~input_schema ~group ~key contents] computes the
    output row of one group: the key values followed by each aggregate
    evaluated over [contents] (multiplicities respected). [Null]s are
    skipped by Sum/Avg/Min/Max and counted by Count; an all-null group
    yields [Null] for that aggregate. Shared by full evaluation and
    incremental maintenance, which recomputes exactly the affected
    groups. *)
