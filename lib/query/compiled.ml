open Relational

(* Compiled query plans: every attribute name in an algebra expression is
   resolved to an integer position exactly once, at compile time. Evaluation
   and delta computation then run purely positionally — array indexing, hash
   probes — instead of searching schema name lists per tuple. Joins carry
   precomputed key positions for both sides plus the positions of the right
   side's non-shared columns, so a joined output tuple is one [Array.append]
   and key extraction is one [Tuple.project_pos]. *)

type operand = O_pos of int | O_const of Value.t

type pred =
  | P_true
  | P_false
  | P_cmp of Pred.cmp * operand * operand
  | P_and of pred * pred
  | P_or of pred * pred
  | P_not of pred

type agg =
  | A_count
  | A_sum of int
  | A_avg of int
  | A_min of int
  | A_max of int

type t = { node : node; schema : Schema.t }

and node =
  | Base of string
  | Select of pred * t
  | Project of int array * t
  | Join of join
  | Union of t * t
  | Group_by of group

and join = {
  left : t;
  right : t;
  key_left : int array;  (* shared-attribute positions in the left schema *)
  key_right : int array; (* same attributes, positions in the right schema *)
  right_extra : int array; (* right-side positions of non-shared columns *)
}

and group = {
  input : t;
  key_pos : int array;
  aggs : agg array;
  group_by : Algebra.group_by; (* original, for affected-group recompute *)
}

let schema t = t.schema

(* Predicate compilation: attribute operands become positions. *)

let compile_operand schema = function
  | Pred.Attr name -> O_pos (Schema.index_of schema name)
  | Pred.Const v -> O_const v

let rec compile_pred schema (p : Pred.t) =
  match p with
  | Pred.True -> P_true
  | Pred.False -> P_false
  | Pred.Cmp (cmp, x, y) ->
    P_cmp (cmp, compile_operand schema x, compile_operand schema y)
  | Pred.And (a, b) -> P_and (compile_pred schema a, compile_pred schema b)
  | Pred.Or (a, b) -> P_or (compile_pred schema a, compile_pred schema b)
  | Pred.Not a -> P_not (compile_pred schema a)

let operand_value tup = function O_pos i -> Tuple.get tup i | O_const v -> v

let rec eval_pred p tup =
  match p with
  | P_true -> true
  | P_false -> false
  | P_cmp (cmp, x, y) ->
    Pred.cmp_holds cmp (operand_value tup x) (operand_value tup y)
  | P_and (a, b) -> eval_pred a tup && eval_pred b tup
  | P_or (a, b) -> eval_pred a tup || eval_pred b tup
  | P_not a -> not (eval_pred a tup)

(* Plan compilation. [Rename] changes only the schema, never the tuples, so
   it compiles away entirely: the renamed schema propagates upward and the
   child plan is used directly. *)

let rec compile ~lookup (expr : Algebra.t) =
  match expr with
  | Algebra.Base name -> { node = Base name; schema = lookup name }
  | Algebra.Select (pred, e) ->
    let child = compile ~lookup e in
    (* Resolve every predicate attribute now: ill-typed view definitions
       fail at compile time, matching Algebra.schema_of. *)
    { node = Select (compile_pred child.schema pred, child);
      schema = child.schema }
  | Algebra.Project (names, e) ->
    let child = compile ~lookup e in
    { node = Project (Schema.positions child.schema names, child);
      schema = Schema.project child.schema names }
  | Algebra.Join (a, b) ->
    let left = compile ~lookup a and right = compile ~lookup b in
    let shared = Schema.common left.schema right.schema in
    let schema = Schema.join left.schema right.schema in
    let right_extra =
      Schema.positions right.schema
        (List.filter
           (fun n -> not (Schema.mem left.schema n))
           (Schema.names right.schema))
    in
    { node =
        Join
          { left; right;
            key_left = Schema.positions left.schema shared;
            key_right = Schema.positions right.schema shared;
            right_extra };
      schema }
  | Algebra.Union (a, b) ->
    let left = compile ~lookup a and right = compile ~lookup b in
    if not (Schema.equal left.schema right.schema) then
      invalid_arg "Algebra.schema_of: union of incompatible schemas";
    { node = Union (left, right); schema = left.schema }
  | Algebra.Rename (mapping, e) ->
    let child = compile ~lookup e in
    { child with schema = Schema.rename child.schema mapping }
  | Algebra.Group_by ({ keys; aggregates; input } as group_by) ->
    let child = compile ~lookup input in
    let key_attrs =
      List.map (fun k -> (k, Schema.type_of child.schema k)) keys
    in
    let agg_attr (name, agg) =
      let ty =
        match (agg : Algebra.aggregate) with
        | Algebra.Count -> Value.Int_ty
        | Algebra.Sum a | Algebra.Min a | Algebra.Max a ->
          Schema.type_of child.schema a
        | Algebra.Avg _ -> Value.Float_ty
      in
      (name, ty)
    in
    let out_schema = Schema.make (key_attrs @ List.map agg_attr aggregates) in
    let agg_of (_, a) =
      match (a : Algebra.aggregate) with
      | Algebra.Count -> A_count
      | Algebra.Sum n -> A_sum (Schema.index_of child.schema n)
      | Algebra.Avg n -> A_avg (Schema.index_of child.schema n)
      | Algebra.Min n -> A_min (Schema.index_of child.schema n)
      | Algebra.Max n -> A_max (Schema.index_of child.schema n)
    in
    { node =
        Group_by
          { input = child;
            key_pos = Schema.positions child.schema keys;
            aggs = Array.of_list (List.map agg_of aggregates);
            group_by };
      schema = out_schema }

(* ------------------------------------------------------------------ *)
(* Aggregate kernels (shared with the interpreted reference path).    *)

let add_values a b =
  match (a, b) with
  | Value.Null, v | v, Value.Null -> v
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | Value.Float x, Value.Float y -> Value.Float (x +. y)
  | Value.Int x, Value.Float y | Value.Float y, Value.Int x ->
    Value.Float (float_of_int x +. y)
  | (Value.Bool _ | Value.String _), _ | _, (Value.Bool _ | Value.String _) ->
    raise (Relation.Type_error "sum over non-numeric attribute")

let scale_value n = function
  | Value.Null -> Value.Null
  | Value.Int x -> Value.Int (n * x)
  | Value.Float x -> Value.Float (float_of_int n *. x)
  | Value.Bool _ | Value.String _ ->
    raise (Relation.Type_error "sum over non-numeric attribute")

let to_float = function
  | Value.Int x -> float_of_int x
  | Value.Float x -> x
  | Value.Null | Value.Bool _ | Value.String _ ->
    raise (Relation.Type_error "avg over non-numeric attribute")

let aggregate_group ~input_schema ~group ~key contents =
  let { Algebra.keys; aggregates; input = _ } = group in
  let non_null attr f init =
    Bag.fold
      (fun tup n acc ->
        match Tuple.field input_schema tup attr with
        | Value.Null -> acc
        | v -> f v n acc)
      contents init
  in
  let compute = function
    | Algebra.Count -> Value.Int (Bag.cardinal contents)
    | Algebra.Sum attr ->
      non_null attr (fun v n acc -> add_values acc (scale_value n v)) Value.Null
    | Algebra.Avg attr ->
      let total, count =
        non_null attr
          (fun v n (total, count) ->
            (total +. (float_of_int n *. to_float v), count + n))
          (0.0, 0)
      in
      if count = 0 then Value.Null else Value.Float (total /. float_of_int count)
    | Algebra.Min attr ->
      non_null attr
        (fun v _ acc ->
          match acc with
          | Value.Null -> v
          | best -> if Value.compare v best < 0 then v else best)
        Value.Null
    | Algebra.Max attr ->
      non_null attr
        (fun v _ acc ->
          match acc with
          | Value.Null -> v
          | best -> if Value.compare v best > 0 then v else best)
        Value.Null
  in
  ignore keys;
  Tuple.concat key
    (Tuple.of_list (List.map (fun (_, agg) -> compute agg) aggregates))

(* Positional variant used by the compiled plan: no name lookups. *)
let aggregate_group_pos ~aggs ~key contents =
  let non_null pos f init =
    Bag.fold
      (fun tup n acc ->
        match Tuple.get tup pos with Value.Null -> acc | v -> f v n acc)
      contents init
  in
  let compute = function
    | A_count -> Value.Int (Bag.cardinal contents)
    | A_sum pos ->
      non_null pos (fun v n acc -> add_values acc (scale_value n v)) Value.Null
    | A_avg pos ->
      let total, count =
        non_null pos
          (fun v n (total, count) ->
            (total +. (float_of_int n *. to_float v), count + n))
          (0.0, 0)
      in
      if count = 0 then Value.Null else Value.Float (total /. float_of_int count)
    | A_min pos ->
      non_null pos
        (fun v _ acc ->
          match acc with
          | Value.Null -> v
          | best -> if Value.compare v best < 0 then v else best)
        Value.Null
    | A_max pos ->
      non_null pos
        (fun v _ acc ->
          match acc with
          | Value.Null -> v
          | best -> if Value.compare v best > 0 then v else best)
        Value.Null
  in
  Tuple.concat key
    (Tuple.of_list (Array.to_list (Array.map compute aggs)))

(* ------------------------------------------------------------------ *)
(* Hash join on counted tuple lists.                                  *)

(* Rows scanned by the join kernel, process-wide: build + probe side of
   every full hash join, probe side only when a prebuilt index is used.
   The shared-plan bench diffs this around a run as its work metric. *)
let rows_counter = Atomic.make 0

let kernel_rows () = Atomic.get rows_counter

let count_rows n = ignore (Atomic.fetch_and_add rows_counter n)

(* Join two counted collections on precomputed key positions: build a hash
   index on the smaller side, probe with the larger. Output tuples are
   always [left ++ right_extra] regardless of build direction, and
   multiplicities multiply (either may be negative — signed deltas).
   Zero-count entries are dropped from both sides up front: the index
   treats count-zero rows as dead, so keeping them on the probe side
   only would make the output depend on the build-side choice (which
   differs per shard). *)
let join_counted_seq ~key_left ~key_right ~right_extra left right =
  let live = List.filter (fun ((_ : Tuple.t), n) -> n <> 0) in
  let left = live left and right = live right in
  let nl = List.length left and nr = List.length right in
  if nl = 0 || nr = 0 then []
  else begin
    count_rows (nl + nr);
    let combine acc (ltup, ln) (rtup, rn) =
      (Tuple.concat ltup (Tuple.project_pos right_extra rtup), ln * rn) :: acc
    in
    if nr <= nl then begin
      let index = Bag_index.of_counted ~key_pos:key_right right in
      List.fold_left
        (fun acc (ltup, ln) ->
          List.fold_left
            (fun acc entry -> combine acc (ltup, ln) entry)
            acc
            (Bag_index.find index (Tuple.project_pos key_left ltup)))
        [] left
    end
    else begin
      let index = Bag_index.of_counted ~key_pos:key_left left in
      List.fold_left
        (fun acc (rtup, rn) ->
          List.fold_left
            (fun acc (ltup, ln) -> combine acc (ltup, ln) (rtup, rn))
            acc
            (Bag_index.find index (Tuple.project_pos key_right rtup)))
        [] right
    end
  end

(* Sharded variant: both sides are partitioned by the hash of their join
   key, so matching tuples always land in the same shard and the shards
   join independently (each building its own [Bag_index], on its own
   domain). Per-shard results are concatenated in shard order — the
   output is the same *bag* as the sequential kernel's (callers normalize
   through [Bag]/[Signed_bag], so list order is immaterial), and it is
   deterministic for a fixed shard count. *)
let shard_of ~shards key = Tuple.hash key land max_int mod shards

let partition_by ~shards ~key_pos entries =
  let parts = Array.make shards [] in
  List.iter
    (fun ((tup, _) as entry) ->
      let s = shard_of ~shards (Tuple.project_pos key_pos tup) in
      parts.(s) <- entry :: parts.(s))
    entries;
  parts

let join_counted_pos ?(exec = Parallel.Exec.sequential) ~key_left ~key_right
    ~right_extra left right =
  let shards = Parallel.Exec.shards exec in
  if
    shards <= 1
    || List.compare_lengths left [] = 0
    || List.compare_lengths right [] = 0
    || List.length left + List.length right < Parallel.shard_threshold
  then join_counted_seq ~key_left ~key_right ~right_extra left right
  else begin
    let lparts = partition_by ~shards ~key_pos:key_left left in
    let rparts = partition_by ~shards ~key_pos:key_right right in
    let pairs = List.init shards (fun s -> (lparts.(s), rparts.(s))) in
    List.concat
      (Parallel.Exec.map exec
         (fun (l, r) -> join_counted_seq ~key_left ~key_right ~right_extra l r)
         pairs)
  end

(* ------------------------------------------------------------------ *)
(* Columnar kernels: predicate compilation over value ids and the     *)
(* sharded columnar hash join.                                        *)

(* A compiled predicate specialized to a chunk: a closure from row
   index to bool, reading value ids straight out of the column arrays.
   Equality tests are id comparisons (interning is injective); ordered
   comparisons compare int-tagged ids directly and decode otherwise.
   Null keeps the {!Pred.cmp_holds} semantics: false on either side,
   except [Ne]. *)
let col_operand chunk = function
  | O_pos p -> fun row -> Columnar.get chunk p row
  | O_const v ->
    let id = Value.intern v in
    fun _ -> id

let rec col_pred chunk p : int -> bool =
  match p with
  | P_true -> fun _ -> true
  | P_false -> fun _ -> false
  | P_cmp (cmp, x, y) ->
    let fx = col_operand chunk x and fy = col_operand chunk y in
    let null = Value.null_id in
    (match cmp with
    | Pred.Eq ->
      fun row ->
        let a = fx row and b = fy row in
        a <> null && b <> null && a = b
    | Pred.Ne ->
      fun row ->
        let a = fx row and b = fy row in
        a = null || b = null || a <> b
    | Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge ->
      let holds =
        match cmp with
        | Pred.Lt -> fun c -> c < 0
        | Pred.Le -> fun c -> c <= 0
        | Pred.Gt -> fun c -> c > 0
        | _ -> fun c -> c >= 0
      in
      fun row ->
        let a = fx row and b = fy row in
        a <> null && b <> null && holds (Value.compare_ids a b))
  | P_and (a, b) ->
    let fa = col_pred chunk a and fb = col_pred chunk b in
    fun row -> fa row && fb row
  | P_or (a, b) ->
    let fa = col_pred chunk a and fb = col_pred chunk b in
    fun row -> fa row || fb row
  | P_not a ->
    let fa = col_pred chunk a in
    fun row -> not (fa row)

(* Columnar join with the same sharding policy (and row accounting) as
   the boxed kernel: above the threshold, both sides partition by
   join-key hash and the shards join independently on the pool. *)
let join_col ~exec ~key_left ~key_right ~right_extra l r =
  let nl = Columnar.length l and nr = Columnar.length r in
  let out_arity = Columnar.arity l + Array.length right_extra in
  if nl = 0 || nr = 0 then Columnar.empty ~arity:out_arity
  else begin
    count_rows (nl + nr);
    let shards = Parallel.Exec.shards exec in
    if shards <= 1 || nl + nr < Parallel.shard_threshold then
      Columnar.join ~key_left ~key_right ~right_extra l r
    else begin
      let lparts = Columnar.hash_partition ~shards ~key_pos:key_left l in
      let rparts = Columnar.hash_partition ~shards ~key_pos:key_right r in
      let pairs = List.init shards (fun s -> (lparts.(s), rparts.(s))) in
      List.fold_left Columnar.append
        (Columnar.empty ~arity:out_arity)
        (Parallel.Exec.map exec
           (fun (a, b) -> Columnar.join ~key_left ~key_right ~right_extra a b)
           pairs)
    end
  end

(* ------------------------------------------------------------------ *)
(* Full evaluation.                                                   *)

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

(* Join-bearing plans route through the columnar kernels (conversion
   overhead amortizes over the join work); join-free plans stay on the
   boxed bags, whose Base case is a free pointer read. *)
let rec plan_joins t =
  match t.node with
  | Base _ -> false
  | Select (_, e) | Project (_, e) -> plan_joins e
  | Join _ -> true
  | Union (a, b) -> plan_joins a || plan_joins b
  | Group_by g -> plan_joins g.input

let rec eval_bag ?(exec = Parallel.Exec.sequential) db t =
  match t.node with
  | (Select _ | Project _ | Join _ | Union _)
    when !Columnar.enabled && plan_joins t ->
    Columnar.to_bag (eval_col ~exec db t)
  | Base name -> Relation.contents (Database.find db name)
  | Select (pred, e) -> Bag.filter (eval_pred pred) (eval_bag ~exec db e)
  | Project (positions, e) ->
    Bag.map (Tuple.project_pos positions) (eval_bag ~exec db e)
  | Join { left; right; key_left; key_right; right_extra } ->
    Bag.of_counted_list
      (join_counted_pos ~exec ~key_left ~key_right ~right_extra
         (Bag.to_counted_list (eval_bag ~exec db left))
         (Bag.to_counted_list (eval_bag ~exec db right)))
  | Union (a, b) -> Bag.union (eval_bag ~exec db a) (eval_bag ~exec db b)
  | Group_by { input; key_pos; aggs; group_by = _ } ->
    let contents = eval_bag ~exec db input in
    let by_key = Tuple_tbl.create 32 in
    Bag.iter
      (fun tup n ->
        let key = Tuple.project_pos key_pos tup in
        let existing =
          match Tuple_tbl.find_opt by_key key with
          | Some bag -> bag
          | None -> Bag.empty
        in
        Tuple_tbl.replace by_key key (Bag.add ~count:n tup existing))
      contents;
    Tuple_tbl.fold
      (fun key members acc ->
        Bag.add (aggregate_group_pos ~aggs ~key members) acc)
      by_key Bag.empty

(* Columnar evaluation: selection/projection as int-array scans, joins
   through the columnar hash kernel. Base relations hand out their
   memoized chunk; grouping (a boxed-bag algorithm) converts at the
   boundary. *)
and eval_col ~exec db t =
  match t.node with
  | Base name -> Relation.columnar (Database.find db name)
  | Select (pred, e) ->
    let chunk = eval_col ~exec db e in
    Columnar.filter ~keep:(col_pred chunk pred) chunk
  | Project (positions, e) ->
    Columnar.project positions (eval_col ~exec db e)
  | Join { left; right; key_left; key_right; right_extra } ->
    join_col ~exec ~key_left ~key_right ~right_extra
      (eval_col ~exec db left) (eval_col ~exec db right)
  | Union (a, b) -> Columnar.append (eval_col ~exec db a) (eval_col ~exec db b)
  | Group_by _ ->
    Columnar.of_bag ~arity:(Schema.arity t.schema) (eval_bag ~exec db t)

let eval ?exec db t =
  Relation.with_contents (Relation.create t.schema) (eval_bag ?exec db t)

(* ------------------------------------------------------------------ *)
(* Incremental delta rules over compiled plans.                       *)

(* [delta ~changes ~eval_pre t] is the signed delta of plan [t] given the
   per-base-relation signed deltas [changes]; [eval_pre] evaluates a
   sub-plan over the pre-state (supplied by Delta to keep the dependency
   direction Compiled <- Delta). Join deltas are hash joins on the plan's
   precomputed key positions; the pre-state side of a rule is only
   evaluated when the matching delta side is non-empty.

   [pre_index], when it returns an index for a [Base] join operand
   (keyed on that operand's join-key positions over its pre-state),
   short-circuits the dA |><| B_pre and A_pre |><| dB rules into pure
   probes: the pre-state side is neither evaluated nor re-indexed, so
   the cost is O(|delta|) instead of O(|pre|). The shared-plan engine
   supplies it for materialized intermediates. *)
let no_pre_index : string -> key_pos:int array -> Bag_index.t option =
 fun _ ~key_pos:_ -> None

let no_pre_relation : string -> Relation.t option = fun _ -> None

(* The key of [tup] at [key_pos] as interned ids — the probe currency of
   the int-keyed index; the boxed key tuple is never materialized. *)
let probe_ids key_pos tup =
  Array.map (fun p -> Value.intern (Tuple.get tup p)) key_pos

(* Probe a prebuilt index over B_pre (keyed at B's join key) with the
   left-side delta: output rows are left ++ right_extra, counts
   multiply. [filter], when present, restricts matches to pre-state
   rows satisfying a selection that sits between the join and the base
   relation. Only the probe side is charged to the kernel counter. *)
let probe_right_index ?filter ~index ~key_left ~right_extra da_l =
  count_rows (List.length da_l);
  let keep = match filter with None -> fun _ -> true | Some p -> eval_pred p in
  List.fold_left
    (fun acc (ltup, ln) ->
      Bag_index.fold_ids index (probe_ids key_left ltup)
        (fun rtup rn acc ->
          if keep rtup then
            (Tuple.concat ltup (Tuple.project_pos right_extra rtup), ln * rn)
            :: acc
          else acc)
        acc)
    [] da_l

(* Symmetric: probe an index over A_pre with the right-side delta. *)
let probe_left_index ?filter ~index ~key_right ~right_extra db_l =
  count_rows (List.length db_l);
  let keep = match filter with None -> fun _ -> true | Some p -> eval_pred p in
  List.fold_left
    (fun acc (rtup, rn) ->
      let extra = Tuple.project_pos right_extra rtup in
      Bag_index.fold_ids index (probe_ids key_right rtup)
        (fun ltup ln acc ->
          if keep ltup then (Tuple.concat ltup extra, ln * rn) :: acc else acc)
        acc)
    [] db_l

let rec delta ?(exec = Parallel.Exec.sequential) ?(pre_index = no_pre_index)
    ?(pre_relation = no_pre_relation) ~changes ~eval_pre t =
  match t.node with
  | Base name -> changes name
  | Select (pred, e) ->
    Signed_bag.filter (eval_pred pred)
      (delta ~exec ~pre_index ~pre_relation ~changes ~eval_pre e)
  | Project (positions, e) ->
    Signed_bag.map (Tuple.project_pos positions)
      (delta ~exec ~pre_index ~pre_relation ~changes ~eval_pre e)
  | Join { left; right; key_left; key_right; right_extra } ->
    let da = delta ~exec ~pre_index ~pre_relation ~changes ~eval_pre left
    and db_ = delta ~exec ~pre_index ~pre_relation ~changes ~eval_pre right in
    if Signed_bag.is_zero da && Signed_bag.is_zero db_ then Signed_bag.zero
    else begin
      let join = join_counted_pos ~exec ~key_left ~key_right ~right_extra in
      let da_l = Signed_bag.to_list da and db_l = Signed_bag.to_list db_ in
      (* An index over a pre-state side, avoiding its evaluation: the
         caller-supplied [pre_index] (materialized intermediates), else
         the relation's own memoized int-keyed index when the side is a
         base relation — possibly under a pushed-down selection, which
         becomes a filter on the probe matches. *)
      let indexed side key =
        match side.node with
        | Base name -> (
          match pre_index name ~key_pos:key with
          | Some index -> Some (index, None)
          | None ->
            if !Columnar.enabled then
              Option.map
                (fun rel -> (Relation.index rel ~key_pos:key, None))
                (pre_relation name)
            else None)
        | Select (p, { node = Base name; _ }) when !Columnar.enabled ->
          Option.map
            (fun rel -> (Relation.index rel ~key_pos:key, Some p))
            (pre_relation name)
        | _ -> None
      in
      (* d(A |><| B) = dA |><| B_pre + A_pre |><| dB + dA |><| dB *)
      let part1 =
        if da_l = [] then []
        else
          match indexed right key_right with
          | Some (index, filter) ->
            probe_right_index ?filter ~index ~key_left ~right_extra da_l
          | None -> join da_l (Bag.to_counted_list (eval_pre right))
      in
      let part2 =
        if db_l = [] then []
        else
          match indexed left key_left with
          | Some (index, filter) ->
            probe_left_index ?filter ~index ~key_right ~right_extra db_l
          | None -> join (Bag.to_counted_list (eval_pre left)) db_l
      in
      let part3 = if da_l = [] || db_l = [] then [] else join da_l db_l in
      Signed_bag.of_list (List.concat [ part1; part2; part3 ])
    end
  | Union (a, b) ->
    Signed_bag.sum
      (delta ~exec ~pre_index ~pre_relation ~changes ~eval_pre a)
      (delta ~exec ~pre_index ~pre_relation ~changes ~eval_pre b)
  | Group_by { input; key_pos; aggs; group_by = _ } ->
    let d_in = delta ~exec ~pre_index ~pre_relation ~changes ~eval_pre input in
    if Signed_bag.is_zero d_in then Signed_bag.zero
    else begin
      let key_of tup = Tuple.project_pos key_pos tup in
      (* Recompute exactly the affected groups: retract the old output row
         of each touched key, emit the new one. Exact for every aggregate
         kind, including Min/Max under deletions. *)
      let affected = Tuple_tbl.create 16 in
      Signed_bag.fold
        (fun tup _ () -> Tuple_tbl.replace affected (key_of tup) ())
        d_in ();
      let pre_in = eval_pre input in
      let groups_of bag =
        let table = Tuple_tbl.create 16 in
        Bag.iter
          (fun tup n ->
            let key = key_of tup in
            if Tuple_tbl.mem affected key then begin
              let existing =
                match Tuple_tbl.find_opt table key with
                | Some b -> b
                | None -> Bag.empty
              in
              Tuple_tbl.replace table key (Bag.add ~count:n tup existing)
            end)
          bag;
        table
      in
      let old_groups = groups_of pre_in in
      let post_in = Signed_bag.apply d_in pre_in in
      let new_groups = groups_of post_in in
      Tuple_tbl.fold
        (fun key () acc ->
          let members_in table =
            match Tuple_tbl.find_opt table key with
            | Some b -> b
            | None -> Bag.empty
          in
          let old_members = members_in old_groups
          and new_members = members_in new_groups in
          let acc =
            if Bag.is_empty old_members then acc
            else
              Signed_bag.add
                (aggregate_group_pos ~aggs ~key old_members)
                (-1) acc
          in
          if Bag.is_empty new_members then acc
          else Signed_bag.add (aggregate_group_pos ~aggs ~key new_members) 1 acc)
        affected Signed_bag.zero
    end

(* ------------------------------------------------------------------ *)
(* Compile-once memoization.                                          *)

(* View managers hold one Algebra.t per view and compute a delta per
   transaction; the memo makes every call after the first reuse the plan.
   Keys compare physically (the same AST value), so structurally equal but
   distinct expressions each get their own entry — correct, just not shared.
   A hit is revalidated against the current base-relation schemas (compiling
   is per-name-resolution, so a same-named relation with a different schema
   must recompile). *)

module Expr_tbl = Hashtbl.Make (struct
  type t = Algebra.t

  let equal = ( == )

  let hash = Hashtbl.hash
end)

type memo_entry = { plan : t; bases : (string * Schema.t) list }

(* The memo is process-global and reachable from pool domains (a view
   manager's delta future compiles through it). A single table behind a
   single mutex serialized every compilation across domains; the table
   is sharded by the expression's structural hash instead — physical
   equality implies structural equality, so an expression always lands
   in the same shard — with one lock per shard. Contended acquisitions
   (try_lock failing before the blocking lock) are counted so the
   runtime can report residual serialization. *)
let memo_shards = 8

let memos : memo_entry Expr_tbl.t array =
  Array.init memo_shards (fun _ -> Expr_tbl.create 64)

let memo_locks = Array.init memo_shards (fun _ -> Mutex.create ())

let memo_shard_limit = 128

let contention_counter = Atomic.make 0

let memo_contention () = Atomic.get contention_counter

let memo_shard expr = Hashtbl.hash expr land max_int mod memo_shards

let compile_memo ~lookup expr =
  let shard = memo_shard expr in
  let lock = memo_locks.(shard) in
  if not (Mutex.try_lock lock) then begin
    ignore (Atomic.fetch_and_add contention_counter 1);
    Mutex.lock lock
  end;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let memo = memos.(shard) in
      let validate entry =
        List.for_all
          (fun (name, schema) ->
            match lookup name with
            | s -> Schema.equal s schema
            | exception _ -> false)
          entry.bases
      in
      match Expr_tbl.find_opt memo expr with
      | Some entry when validate entry -> entry.plan
      | _ ->
        let plan = compile ~lookup expr in
        let bases =
          List.map
            (fun name -> (name, lookup name))
            (Algebra.base_relations expr)
        in
        if Expr_tbl.length memo >= memo_shard_limit then Expr_tbl.reset memo;
        Expr_tbl.replace memo expr { plan; bases };
        plan)
