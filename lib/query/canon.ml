(* Canonical normal form + hash-consing for cross-view sub-plan sharing.

   Two views written as [Select (p, Join (a, b))] and
   [Select (p', Join (b, a))] denote the same computation whenever p and
   p' are the same conjuncts in a different order: the natural join is
   name-based, so commuting it only permutes output columns, and a
   column permutation is an invertible, multiplicity-preserving
   [Project]. The normal form exploits exactly that: operands of
   commutative operators are ordered structurally, predicates are
   flattened and sorted, selections are pulled up through joins, and
   the column permutations this introduces are bridged by explicit
   permutation [Project]s that are hoisted as high as possible (through
   [Select], out of [Join] operands, absorbed by real [Project]s and
   [Group_by]s) so they never sit between an operator and the
   subexpression another view wants to share.

   Everything here is schema-preserving: [normalize] returns an
   expression with the same output schema — names, order and types —
   and the same bag semantics as its input, so it can be substituted
   for a view definition without touching any consumer. *)

open Relational

(* ---- predicate normal form ---- *)

let rec normalize_pred (p : Pred.t) : Pred.t =
  match p with
  | Pred.True | Pred.False | Pred.Cmp _ -> p
  | Pred.Not q -> Pred.Not (normalize_pred q)
  | Pred.And _ ->
    let rec flat acc = function
      | Pred.And (a, b) -> flat (flat acc a) b
      | q -> normalize_pred q :: acc
    in
    (* Sorting the conjuncts makes [And] order-insensitive; [sort_uniq]
       also drops duplicate conjuncts (p && p = p for our two-valued
       evaluation). *)
    Pred.conj (List.sort_uniq Stdlib.compare (flat [] p))
  | Pred.Or _ ->
    let rec flat acc = function
      | Pred.Or (a, b) -> flat (flat acc a) b
      | q -> normalize_pred q :: acc
    in
    Pred.disj (List.sort_uniq Stdlib.compare (flat [] p))

(* ---- expression normal form ---- *)

let names_of ~schemas e = Schema.names (Algebra.schema_of schemas e)

(* Split a permutation [Project] off the top of [e]: a Project whose
   name list has the same length and the same name set as its child's
   schema reorders columns without dropping or duplicating any. *)
let split_perm ~schemas (e : Algebra.t) =
  match e with
  | Algebra.Project (names, inner) ->
    let inner_names = names_of ~schemas inner in
    if
      List.length names = List.length inner_names
      && List.for_all (fun n -> List.mem n inner_names) names
    then (Some names, inner)
    else (None, e)
  | _ -> (None, e)

(* Wrap [e] in a permutation Project yielding column order [names],
   unless it already has that order. *)
let restore ~schemas ~names e =
  if names_of ~schemas e = names then e else Algebra.Project (names, e)

let rec normalize ~schemas (e : Algebra.t) : Algebra.t =
  match e with
  | Algebra.Base _ -> e
  | Algebra.Select (p, e0) ->
    let e0' = normalize ~schemas e0 in
    (* Hoist a permutation out of the operand — predicates resolve
       attributes by name, so Select commutes with any permutation —
       and merge with an inner Select so that stacked selections with
       reordered conjuncts still unify. *)
    let perm, core = split_perm ~schemas e0' in
    let sel =
      match core with
      | Algebra.Select (q, inner) ->
        Algebra.Select (normalize_pred (Pred.And (p, q)), inner)
      | _ -> Algebra.Select (normalize_pred p, core)
    in
    (match perm with
    | None -> sel
    | Some names -> restore ~schemas ~names sel)
  | Algebra.Project (names, e0) ->
    let e0' = normalize ~schemas e0 in
    (* A real Project resolves by name, so it absorbs any inner Project
       (permutation or narrowing) outright. *)
    let core =
      match e0' with Algebra.Project (_, inner) -> inner | _ -> e0'
    in
    Algebra.Project (names, core)
  | Algebra.Join (a, b) ->
    let out = names_of ~schemas e in
    let a' = normalize ~schemas a and b' = normalize ~schemas b in
    let _, ca = split_perm ~schemas a' and _, cb = split_perm ~schemas b' in
    (* Selections hoist through the join: sel_p(A) |><| B and
       sel_p(A |><| B) are the same bag, because the natural join's
       output keeps every operand column p mentions and a surviving
       output tuple restricted to A's columns is exactly the A-tuple
       that produced it. Pulling selections up undoes the optimizer's
       pushdown locally, leaving the bare join as the shareable core —
       views written (or optimized) as sel over join and as the raw
       join then meet on one subexpression. *)
    let split_sel = function
      | Algebra.Select (p, inner) -> (Some p, inner)
      | x -> (None, x)
    in
    let pa, ca = split_sel ca and pb, cb = split_sel cb in
    (* Natural join matches on shared names, so operand column order is
       irrelevant to which tuples pair up; dropping the permutations and
       ordering the operands structurally changes output column order
       only, which [restore] repairs. *)
    let x, y = if Stdlib.compare ca cb <= 0 then (ca, cb) else (cb, ca) in
    let joined = Algebra.Join (x, y) in
    let sel =
      match (pa, pb) with
      | None, None -> joined
      | Some p, None | None, Some p ->
        Algebra.Select (normalize_pred p, joined)
      | Some p, Some q ->
        Algebra.Select (normalize_pred (Pred.And (p, q)), joined)
    in
    restore ~schemas ~names:out sel
  | Algebra.Union (a, b) ->
    let out = names_of ~schemas e in
    let a' = normalize ~schemas a and b' = normalize ~schemas b in
    let _, ca = split_perm ~schemas a' and _, cb = split_perm ~schemas b' in
    let x, y = if Stdlib.compare ca cb <= 0 then (ca, cb) else (cb, ca) in
    (* Union is order-sensitive about schemas: re-align the second
       operand to the first's column order. *)
    let y' = restore ~schemas ~names:(names_of ~schemas x) y in
    restore ~schemas ~names:out (Algebra.Union (x, y'))
  | Algebra.Rename (mapping, e0) ->
    (* Renames translate names positionally against their input schema,
       so permutations below them cannot be hoisted; sharing stops at a
       Rename boundary. *)
    Algebra.Rename (mapping, normalize ~schemas e0)
  | Algebra.Group_by { keys; aggregates; input } ->
    let input' = normalize ~schemas input in
    (* Keys and aggregate arguments resolve by name and the output
       schema is keys ++ aggregate names, so an input permutation is
       invisible — drop it entirely. *)
    let _, core = split_perm ~schemas input' in
    Algebra.Group_by { keys; aggregates; input = core }

(* ---- hash-consing ---- *)

(* Structurally equal (sub)expressions map to one physical
   representative. [Compiled.compile_memo] keys its plan cache on
   physical equality, so interning the canonical definitions of all
   registered views makes their common subexpressions hit one shared
   compiled plan as well. *)

let intern_tbl : (Algebra.t, Algebra.t) Hashtbl.t = Hashtbl.create 256

let intern_mutex = Mutex.create ()

let intern_limit = 4096

let intern e =
  Mutex.lock intern_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock intern_mutex)
    (fun () ->
      let rec go e =
        let rebuilt =
          match (e : Algebra.t) with
          | Algebra.Base _ -> e
          | Algebra.Select (p, x) -> Algebra.Select (p, go x)
          | Algebra.Project (ns, x) -> Algebra.Project (ns, go x)
          | Algebra.Join (a, b) -> Algebra.Join (go a, go b)
          | Algebra.Union (a, b) -> Algebra.Union (go a, go b)
          | Algebra.Rename (m, x) -> Algebra.Rename (m, go x)
          | Algebra.Group_by { keys; aggregates; input } ->
            Algebra.Group_by { keys; aggregates; input = go input }
        in
        match Hashtbl.find_opt intern_tbl rebuilt with
        | Some repr -> repr
        | None ->
          if Hashtbl.length intern_tbl >= intern_limit then
            Hashtbl.reset intern_tbl;
          Hashtbl.add intern_tbl rebuilt rebuilt;
          rebuilt
      in
      go e)

let canonical ~schemas e = intern (normalize ~schemas e)
