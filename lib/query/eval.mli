(** Full evaluation of algebra expressions against a database state.

    Used to materialize initial views, by the periodic-refresh view manager,
    and — crucially — by the consistency oracle, which recomputes [V(ss_i)]
    for every source state to decide whether a warehouse state sequence is
    complete / strongly consistent (Section 2 definitions).

    By default expressions run through the compiled positional kernel
    ({!Compiled}): names resolved once, joins hash-partitioned. Passing
    [~naive:true] selects the original interpreted evaluator with
    nested-loop joins — the reference implementation the compiled kernel is
    property-tested against, and the baseline series of the micro-bench
    ablation. *)

open Relational

val eval : ?naive:bool -> Database.t -> Algebra.t -> Relation.t
(** Evaluate the expression over the database.
    @raise Database.Unknown_relation if a base relation is missing. *)

val eval_bag : ?naive:bool -> Database.t -> Algebra.t -> Bag.t

val aggregate_group :
  input_schema:Schema.t ->
  group:Algebra.group_by ->
  key:Tuple.t ->
  Bag.t ->
  Tuple.t
(** Alias of {!Compiled.aggregate_group}, kept here because incremental
    maintenance ({!Delta}) recomputes affected groups through it. *)

val join_counted :
  Schema.t ->
  Schema.t ->
  (Tuple.t * int) list ->
  (Tuple.t * int) list ->
  (Tuple.t * int) list
(** Natural join of counted tuple collections; multiplicities multiply.
    Counts may be negative, which is how {!Delta} joins signed deltas with
    pre-state bags. Resolves the shared attributes once, then runs the
    build-on-smaller hash join {!Compiled.join_counted_pos}, so cost is
    O(|smaller| + |larger| + |output|). *)

val join_counted_naive :
  Schema.t ->
  Schema.t ->
  (Tuple.t * int) list ->
  (Tuple.t * int) list ->
  (Tuple.t * int) list
(** The O(|left| * |right|) nested-loop reference join, re-resolving shared
    attributes by name per pair ({!Tuple.join}). Equivalent to
    {!join_counted} up to reordering; kept for equivalence tests and the
    naive-vs-hash bench series. *)
