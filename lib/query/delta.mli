(** Incremental view maintenance: exact signed-bag delta rules.

    Given the database state *before* a batch of base-data changes and the
    signed delta of each changed base relation, [eval] computes the signed
    delta of an algebra expression, satisfying

    {[ apply (delta pre changes e) (eval_bag pre e) = eval_bag post e ]}

    where [post] is [pre] with the changes applied. This is the standard
    counting algorithm for bag SPJ-U views (Griffin-Libkin style, reference
    [3] of the paper); view managers use it for their delta computation. *)

open Relational

type changes
(** Signed deltas per base relation. *)

val no_changes : changes

val changes_of_list : (string * Signed_bag.t) list -> changes
(** Later entries for the same relation are summed. *)

val of_update : Update.t -> changes

val of_transaction : Update.Transaction.t -> changes

val of_transactions : Update.Transaction.t list -> changes
(** Combined delta of a batch of transactions applied in order. The batch
    delta is the sum of per-transaction deltas, which is exact for
    signed bags. *)

val change_for : changes -> string -> Signed_bag.t

val changed_relations : changes -> string list

val eval :
  ?naive:bool ->
  ?exec:Parallel.Exec.t ->
  pre:Database.t ->
  changes ->
  Algebra.t ->
  Signed_bag.t
(** The signed delta of the expression. By default the expression is
    compiled (memoized) and the join delta-rules run as hash joins on
    precomputed key positions; [~naive:true] selects the interpreted
    reference rules with nested-loop joins. A pooled [exec] shards large
    joins across domains; the result is identical.
    @raise Database.Unknown_relation if the expression mentions a base
    relation absent from [pre]. *)

val eval_plan :
  ?exec:Parallel.Exec.t ->
  ?pre_index:(string -> key_pos:int array -> Bag_index.t option) ->
  pre:Database.t ->
  changes ->
  Compiled.t ->
  Signed_bag.t
(** Delta of an already-compiled plan — what view managers use, compiling
    their definition once at creation instead of per transaction.
    [pre_index] is forwarded to {!Compiled.delta}: a returned index over a
    base relation's pre-state turns that relation's join rules into pure
    probes. *)

val relevant : changes -> Algebra.t -> bool
(** True when some changed relation appears in the expression. A cheap
    syntactic test; see {!Irrelevance} for the semantic refinement. *)
