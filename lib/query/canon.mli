(** Canonical normal form + hash-consing of algebra expressions.

    Makes syntactically different but semantically identical view
    subexpressions — commuted natural joins, reordered selection
    conjuncts, stacked selections/projections, selections pushed into
    join operands (the {!Optimize} rewrite, undone locally so the bare
    join is the shareable core) — structurally equal, so the
    shared-plan engine can hash-cons them into one DAG node and the
    physically-keyed {!Compiled.compile_memo} shares their compiled
    plans. Column permutations introduced by operand reordering are
    bridged with explicit permutation [Project]s hoisted above the
    reordered operator, keeping the whole rewrite schema-preserving. *)

open Relational

val normalize_pred : Pred.t -> Pred.t
(** Flatten [And]/[Or] chains, sort and deduplicate their operands
    structurally. Semantics-preserving for our two-valued evaluation. *)

val normalize : schemas:(string -> Schema.t) -> Algebra.t -> Algebra.t
(** [normalize ~schemas e] returns an expression with the same bag
    semantics and the same output schema (names, order, types) as [e],
    in which commutative operands are structurally ordered, predicates
    are in {!normalize_pred} form, and bridging permutation [Project]s
    sit as high as possible. Idempotent. [schemas] must resolve every
    base relation [e] mentions. *)

val intern : Algebra.t -> Algebra.t
(** Hash-cons: returns the physical representative of a structurally
    equal expression, interning every subexpression (bounded global
    table, thread-safe). Interned expressions share compiled plans via
    {!Compiled.compile_memo}'s physical keying. *)

val canonical : schemas:(string -> Schema.t) -> Algebra.t -> Algebra.t
(** [intern] of [normalize]. *)
