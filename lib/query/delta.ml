open Relational

module String_map = Map.Make (String)

type changes = Signed_bag.t String_map.t

let no_changes = String_map.empty

let add_change name delta acc =
  String_map.update name
    (function
      | None -> Some delta
      | Some existing -> Some (Signed_bag.sum existing delta))
    acc

let changes_of_list entries =
  List.fold_left
    (fun acc (name, delta) -> add_change name delta acc)
    no_changes entries

let of_update (u : Update.t) =
  changes_of_list [ (u.relation, Update.to_delta u) ]

let of_transaction (txn : Update.Transaction.t) =
  List.fold_left
    (fun acc (u : Update.t) -> add_change u.relation (Update.to_delta u) acc)
    no_changes txn.updates

let of_transactions txns =
  List.fold_left
    (fun acc txn ->
      String_map.fold add_change (of_transaction txn) acc)
    no_changes txns

let change_for t name =
  match String_map.find_opt name t with
  | Some delta -> delta
  | None -> Signed_bag.zero

let changed_relations t =
  List.filter_map
    (fun (name, delta) ->
      if Signed_bag.is_zero delta then None else Some name)
    (String_map.bindings t)

let signed_of_counted entries =
  List.fold_left (fun acc (tup, n) -> Signed_bag.add tup n acc) Signed_bag.zero
    entries

(* Interpreted reference: the delta rules over the raw algebra, with
   nested-loop joins and per-tuple name resolution. The compiled path is
   property-tested against this. *)
let rec eval_naive ~pre changes expr =
  let lookup name = Database.schema pre name in
  match (expr : Algebra.t) with
  | Base name ->
    (* Force the relation to exist even when unchanged. *)
    let _ = Database.find pre name in
    change_for changes name
  | Select (pred, e) ->
    let schema = Algebra.schema_of lookup e in
    Signed_bag.filter (Pred.eval schema pred) (eval_naive ~pre changes e)
  | Project (names, e) ->
    let schema = Algebra.schema_of lookup e in
    Signed_bag.map (Tuple.project schema names) (eval_naive ~pre changes e)
  | Join (a, b) ->
    let sa = Algebra.schema_of lookup a and sb = Algebra.schema_of lookup b in
    let da = eval_naive ~pre changes a and db_ = eval_naive ~pre changes b in
    if Signed_bag.is_zero da && Signed_bag.is_zero db_ then Signed_bag.zero
    else begin
      let pre_a = Bag.to_counted_list (Eval.eval_bag ~naive:true pre a) in
      let pre_b = Bag.to_counted_list (Eval.eval_bag ~naive:true pre b) in
      let da_l = Signed_bag.to_list da and db_l = Signed_bag.to_list db_ in
      (* d(A |><| B) = dA |><| B_pre + A_pre |><| dB + dA |><| dB *)
      let part1 = Eval.join_counted_naive sa sb da_l pre_b in
      let part2 = Eval.join_counted_naive sa sb pre_a db_l in
      let part3 = Eval.join_counted_naive sa sb da_l db_l in
      signed_of_counted (List.concat [ part1; part2; part3 ])
    end
  | Union (a, b) ->
    Signed_bag.sum (eval_naive ~pre changes a) (eval_naive ~pre changes b)
  | Rename (_, e) -> eval_naive ~pre changes e
  | Group_by group ->
    let d_in = eval_naive ~pre changes group.input in
    if Signed_bag.is_zero d_in then Signed_bag.zero
    else begin
      let input_schema = Algebra.schema_of lookup group.input in
      let key_of tup = Tuple.project input_schema group.keys tup in
      (* Recompute exactly the affected groups: retract the old output row
         of each touched key, emit the new one. Exact for every aggregate
         kind, including Min/Max under deletions. *)
      let affected = Hashtbl.create 16 in
      Signed_bag.fold
        (fun tup _ () -> Hashtbl.replace affected (key_of tup) ())
        d_in ();
      let pre_in = Eval.eval_bag ~naive:true pre group.input in
      let groups_of bag =
        let table = Hashtbl.create 16 in
        Bag.iter
          (fun tup n ->
            let key = key_of tup in
            if Hashtbl.mem affected key then begin
              let existing =
                match Hashtbl.find_opt table key with
                | Some b -> b
                | None -> Bag.empty
              in
              Hashtbl.replace table key (Bag.add ~count:n tup existing)
            end)
          bag;
        table
      in
      let old_groups = groups_of pre_in in
      let post_in = Signed_bag.apply d_in pre_in in
      let new_groups = groups_of post_in in
      Hashtbl.fold
        (fun key () acc ->
          let old_members =
            match Hashtbl.find_opt old_groups key with
            | Some b -> b
            | None -> Bag.empty
          in
          let new_members =
            match Hashtbl.find_opt new_groups key with
            | Some b -> b
            | None -> Bag.empty
          in
          let acc =
            if Bag.is_empty old_members then acc
            else
              Signed_bag.add
                (Eval.aggregate_group ~input_schema ~group ~key old_members)
                (-1) acc
          in
          if Bag.is_empty new_members then acc
          else
            Signed_bag.add
              (Eval.aggregate_group ~input_schema ~group ~key new_members)
              1 acc)
        affected Signed_bag.zero
    end

let eval_plan ?(exec = Parallel.Exec.sequential) ?pre_index ~pre changes plan =
  Compiled.delta ~exec ?pre_index
    ~pre_relation:(fun name -> Database.find_opt pre name)
    ~changes:(fun name ->
      let _ = Database.find pre name in
      change_for changes name)
    ~eval_pre:(Compiled.eval_bag ~exec pre)
    plan

let eval ?(naive = false) ?exec ~pre changes expr =
  if naive then eval_naive ~pre changes expr
  else
    eval_plan ?exec ~pre changes
      (Compiled.compile_memo ~lookup:(Database.schema pre) expr)

let relevant changes expr =
  let changed = changed_relations changes in
  List.exists (fun name -> List.mem name changed) (Algebra.base_relations expr)
