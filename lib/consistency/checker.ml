open Relational

type verdict = {
  convergent : bool;
  strongly_consistent : bool;
  complete : bool;
  conclusive : bool;
  detail : string;
}

let pp_verdict ppf v =
  Fmt.pf ppf "convergent=%b strong=%b complete=%b%s%s" v.convergent
    v.strongly_consistent v.complete
    (if v.conclusive then "" else " (inconclusive)")
    (if String.equal v.detail "ok" then "" else " [" ^ v.detail ^ "]")

type level = Inconsistent | Convergent | Strong | Complete

let level v =
  if v.complete then Complete
  else if v.strongly_consistent then Strong
  else if v.convergent then Convergent
  else Inconsistent

let level_name = function
  | Complete -> "complete"
  | Strong -> "strong"
  | Convergent -> "convergent"
  | Inconsistent -> "INCONSISTENT"

let rank = function
  | Inconsistent -> 0
  | Convergent -> 1
  | Strong -> 2
  | Complete -> 3

let at_least want v = rank (level v) >= rank want

(* Exploration budget for the cut search (DFS nodes per warehouse state)
   and per-view candidate cap. Exceeding either can only cause false
   negatives, which are reported as inconclusive. *)
let search_budget = 100_000

let candidate_cap = 60

module Int_set = Set.Make (Int)

(* ---------- grouping: views coupled by common transactions ---------- *)

(* Two views are constrained against each other exactly when some
   transaction is relevant to both: that transaction must fall on the same
   side of both views' cuts (for single-update transactions this is the
   shared-base-relation condition; a multi-relation transaction couples
   even views with disjoint relations, because its effects must appear
   atomically — Section 6.2). Monotonicity is per view, so the cut search
   decomposes exactly into the connected components of this relevance
   graph. *)
let relevant_to view (txn : Update.Transaction.t) =
  List.exists
    (fun r -> Query.View.uses view r)
    (Update.Transaction.relations txn)

let group_indices views txn_arr =
  let arr = Array.of_list views in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  Array.iter
    (fun txn ->
      let members = ref [] in
      Array.iteri
        (fun i v -> if relevant_to v txn then members := i :: !members)
        arr;
      match !members with
      | [] -> ()
      | first :: rest -> List.iter (fun j -> union first j) rest)
    txn_arr;
  let buckets = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i _ ->
      let root = find i in
      match Hashtbl.find_opt buckets root with
      | Some members -> Hashtbl.replace buckets root (i :: members)
      | None ->
        Hashtbl.add buckets root [ i ];
        order := root :: !order)
    arr;
  List.rev_map (fun root -> List.rev (Hashtbl.find buckets root)) !order
  |> List.rev

(* ---------- per-group context ---------- *)

type ctx = {
  nviews : int;
  f : int;
  expected : Bag.t array array; (* expected.(i).(x) = V_x(ss_i) *)
  touches : Int_set.t array array;
      (* ids of transactions touching a relation shared by views x,y *)
  obs : Int_set.t array; (* per view: observable transaction ids *)
  mutable budget_hit : bool;
  mutable pruned : bool;
}

let build_ctx ~views ~txn_arr ~states =
  let nviews = List.length views in
  let f = Array.length states - 1 in
  let view_arr = Array.of_list views in
  let expected =
    Array.init (f + 1) (fun i ->
        Array.map
          (fun v -> Relation.contents (Query.View.materialize states.(i) v))
          view_arr)
  in
  let rels_of = Array.map Query.View.base_relations view_arr in
  (* touches.(x).(y): transactions relevant to both views — these must be
     on the same side of both cuts. *)
  let touches =
    Array.init nviews (fun x ->
        Array.init nviews (fun y ->
            if x = y then Int_set.empty
            else
              Array.fold_left
                (fun acc (txn : Update.Transaction.t) ->
                  if relevant_to view_arr.(x) txn && relevant_to view_arr.(y) txn
                  then Int_set.add txn.id acc
                  else acc)
                Int_set.empty txn_arr))
  in
  let obs =
    Array.init nviews (fun x ->
        let rec loop i acc =
          if i > f then acc
          else begin
            let relevant =
              List.exists
                (fun r -> List.mem r rels_of.(x))
                (Update.Transaction.relations txn_arr.(i - 1))
            in
            let changed =
              not (Bag.equal expected.(i).(x) expected.(i - 1).(x))
            in
            loop (i + 1)
              (if relevant && changed then Int_set.add i acc else acc)
          end
        in
        loop 1 Int_set.empty)
  in
  { nviews; f; expected; touches; obs; budget_hit = false; pruned = false }

let candidates ctx x content =
  let rec collect i acc =
    if i > ctx.f then List.rev acc
    else
      collect (i + 1)
        (if Bag.equal ctx.expected.(i).(x) content then i :: acc else acc)
  in
  collect 0 []

let compatible ctx x cx y cy =
  let lo = min cx cy and hi = max cx cy in
  lo = hi
  || not (Int_set.exists (fun i -> i > lo && i <= hi) ctx.touches.(x).(y))

let applied_obs ctx cut =
  let union = ref Int_set.empty in
  Array.iteri
    (fun x cx ->
      Int_set.iter
        (fun i -> if i <= cx then union := Int_set.add i !union)
        ctx.obs.(x))
    cut;
  !union

type frontier_entry = {
  cut : int array;
  singles : bool;
  obs_count : int;
  parent : frontier_entry option; (* chain predecessor, for witnesses *)
}

let cut_le a b =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

let realizable_cuts ctx per_view_candidates =
  let results = ref [] in
  let nodes = ref 0 in
  let cut = Array.make ctx.nviews 0 in
  let rec assign x =
    if !nodes > search_budget then ctx.budget_hit <- true
    else if x = ctx.nviews then results := Array.copy cut :: !results
    else
      List.iter
        (fun c ->
          incr nodes;
          if not ctx.budget_hit then begin
            cut.(x) <- c;
            let ok =
              let rec check y =
                y >= x || (compatible ctx x c y cut.(y) && check (y + 1))
              in
              check 0
            in
            if ok then assign (x + 1)
          end)
        per_view_candidates.(x)
  in
  assign 0;
  !results

(* Cap a candidate list, always keeping the largest value so the final
   source state stays reachable; record that pruning happened. *)
let cap_candidates ctx cands =
  let n = List.length cands in
  if n <= candidate_cap then cands
  else begin
    ctx.pruned <- true;
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | c :: rest -> c :: take (k - 1) rest
    in
    let head = take (candidate_cap - 1) cands in
    head @ [ List.nth cands (n - 1) ]
  end

let pareto entries =
  let at_least_as_good e' e =
    cut_le e'.cut e.cut && (e'.singles || not e.singles)
  in
  List.fold_left
    (fun kept e ->
      if List.exists (fun e' -> at_least_as_good e' e) kept then kept
      else e :: List.filter (fun e' -> not (at_least_as_good e e')) kept)
    [] entries

let advance_frontier ctx frontier per_view_candidates =
  let floor_of x =
    List.fold_left (fun acc e -> min acc e.cut.(x)) max_int frontier
  in
  let filtered =
    Array.init ctx.nviews (fun x ->
        let fl = floor_of x in
        cap_candidates ctx
          (List.filter (fun c -> c >= fl) per_view_candidates.(x)))
  in
  if Array.exists (fun l -> l = []) filtered then []
  else begin
    let cuts = realizable_cuts ctx filtered in
    let entries =
      List.filter_map
        (fun cut ->
          let preds = List.filter (fun e -> cut_le e.cut cut) frontier in
          if preds = [] then None
          else begin
            let obs_count = Int_set.cardinal (applied_obs ctx cut) in
            let single_pred =
              List.find_opt
                (fun e -> e.singles && obs_count - e.obs_count <= 1)
                preds
            in
            let singles = Option.is_some single_pred in
            let parent =
              match single_pred with Some p -> Some p | None -> Some (List.hd preds)
            in
            Some { cut; singles; obs_count; parent }
          end)
        cuts
    in
    pareto entries
  end

type group_outcome = {
  g_convergent : bool;
  g_strong : bool;
  g_complete : bool;
  g_detail : string option;
  g_changed_steps : Int_set.t;
      (* indices (into the undeduplicated warehouse sequence) of steps at
         which this group's contents changed *)
  g_witness : int array array option;
      (* per ORIGINAL warehouse state, this group's chosen cut *)
}

(* Run the chain search for one group of views over the warehouse content
   history (one Bag.t array per warehouse state, one slot per view of the
   group). *)
let check_group ctx ws_contents =
  let n_ws = Array.length ws_contents in
  let last = ws_contents.(n_ws - 1) in
  let convergent = Array.for_all2 Bag.equal last ctx.expected.(ctx.f) in
  let changed_steps = ref Int_set.empty in
  for j = 1 to n_ws - 1 do
    if not (Array.for_all2 Bag.equal ws_contents.(j) ws_contents.(j - 1))
    then changed_steps := Int_set.add j !changed_steps
  done;
  (* Deduplicate consecutive identical states: a held cut costs nothing and
     applies zero observable transactions. [rep.(j)] maps each original
     state to its deduplicated position. *)
  let rep = Array.make n_ws 0 in
  let dedup =
    let rec loop j pos acc =
      if j >= n_ws then List.rev acc
      else if
        j > 0 && Array.for_all2 Bag.equal ws_contents.(j) ws_contents.(j - 1)
      then begin
        rep.(j) <- pos - 1;
        loop (j + 1) pos acc
      end
      else begin
        rep.(j) <- pos;
        loop (j + 1) (pos + 1) (ws_contents.(j) :: acc)
      end
    in
    loop 0 0 []
  in
  let total_obs =
    Int_set.cardinal (Array.fold_left Int_set.union Int_set.empty ctx.obs)
  in
  let rec walk j frontier = function
    | [] -> Ok frontier
    | state :: rest ->
      let per_view =
        Array.mapi (fun x _ -> candidates ctx x state.(x)) state
      in
      if Array.exists (fun l -> l = []) per_view then
        Error
          (Printf.sprintf
             "a view's contents at warehouse state %d match no source state" j)
      else begin
        let frontier' =
          if j = 0 then
            pareto
              (List.map
                 (fun cut ->
                   let obs_count = Int_set.cardinal (applied_obs ctx cut) in
                   { cut; singles = obs_count = 0; obs_count; parent = None })
                 (realizable_cuts ctx
                    (Array.map (cap_candidates ctx) per_view)))
          else advance_frontier ctx frontier per_view
        in
        if frontier' = [] then
          Error
            (Printf.sprintf
               "warehouse state %d: no realizable cut extends the chain" j)
        else walk (j + 1) frontier' rest
      end
  in
  match walk 0 [] dedup with
  | Error detail ->
    { g_convergent = convergent; g_strong = false; g_complete = false;
      g_detail = Some detail; g_changed_steps = !changed_steps;
      g_witness = None }
  | Ok frontier ->
    let strong = convergent in
    let complete =
      strong
      && List.exists (fun e -> e.singles && e.obs_count = total_obs) frontier
    in
    let witness =
      (* Reconstruct one chain, preferring a completeness witness. *)
      let final =
        match
          List.find_opt
            (fun e -> e.singles && e.obs_count = total_obs)
            frontier
        with
        | Some e -> Some e
        | None -> ( match frontier with e :: _ -> Some e | [] -> None)
      in
      match final with
      | None -> None
      | Some e ->
        let rec collect e acc =
          match e.parent with
          | None -> e.cut :: acc
          | Some p -> collect p (e.cut :: acc)
        in
        let dedup_cuts = Array.of_list (collect e []) in
        Some (Array.map (fun j -> dedup_cuts.(rep.(j))) (Array.init n_ws Fun.id))
    in
    { g_convergent = convergent; g_strong = strong; g_complete = complete;
      g_detail =
        (if not convergent then
           Some "final warehouse state differs from V(ss_f)"
         else None);
      g_changed_steps = !changed_steps; g_witness = witness }

type witness = (string * int) list list

let check_with_witness ~views ~transactions ~source_states ~warehouse_states =
  if views = [] then invalid_arg "Checker: no views";
  let states = Array.of_list source_states in
  let f = Array.length states - 1 in
  if f < 0 then invalid_arg "Checker: empty source state sequence";
  if List.length transactions <> f then
    invalid_arg "Checker: |transactions| must be |source_states| - 1";
  let txn_arr = Array.of_list transactions in
  Array.iteri
    (fun k (txn : Update.Transaction.t) ->
      if txn.id <> k + 1 then
        invalid_arg "Checker: transaction ids must be 1..f in order")
    txn_arr;
  if warehouse_states = [] then
    invalid_arg "Checker: empty warehouse sequence";
  let view_arr = Array.of_list views in
  let ws =
    Array.of_list
      (List.map
         (fun db ->
           Array.map
             (fun v ->
               Relation.contents (Database.find db (Query.View.name v)))
             view_arr)
         warehouse_states)
  in
  let groups = group_indices views txn_arr in
  let outcomes_and_ctx =
    List.map
      (fun indices ->
        let group_views = List.map (fun i -> view_arr.(i)) indices in
        let ctx = build_ctx ~views:group_views ~txn_arr ~states in
        let contents =
          Array.map
            (fun state ->
              Array.of_list (List.map (fun i -> state.(i)) indices))
            ws
        in
        (indices, ctx, check_group ctx contents))
      groups
  in
  let outcomes = List.map (fun (_, _, o) -> o) outcomes_and_ctx in
  let convergent = List.for_all (fun o -> o.g_convergent) outcomes in
  let strong = List.for_all (fun o -> o.g_strong) outcomes in
  let per_group_complete = List.for_all (fun o -> o.g_complete) outcomes in
  (* Joint completeness: groups are fully decoupled (no transaction is
     relevant to two groups), so one warehouse step advancing two groups
     necessarily applies at least two observable transactions. *)
  let steps_ok =
    let n_ws = Array.length ws in
    let rec step j ok =
      if (not ok) || j >= n_ws then ok
      else begin
        let changed =
          List.length
            (List.filter
               (fun (_, _, o) -> Int_set.mem j o.g_changed_steps)
               outcomes_and_ctx)
        in
        step (j + 1) (changed <= 1)
      end
    in
    step 1 true
  in
  let complete = strong && per_group_complete && steps_ok in
  let conclusive =
    List.for_all
      (fun (_, ctx, o) ->
        (* Pruning and budget exhaustion can only produce false negatives:
           a successful chain is always trustworthy. *)
        (o.g_strong && (o.g_complete || not ctx.budget_hit))
        || ((not ctx.budget_hit) && not ctx.pruned))
      outcomes_and_ctx
  in
  let detail =
    match List.find_map (fun o -> o.g_detail) outcomes with
    | Some d -> d
    | None ->
      if not convergent then "final warehouse state differs from V(ss_f)"
      else if not complete then
        if not steps_ok then
          "a warehouse step advances several independent view groups"
        else "chain exists but some step applies several observable updates"
      else "ok"
  in
  let witness =
    if not strong then None
    else begin
      let n_ws = Array.length ws in
      let per_state j =
        List.concat_map
          (fun (indices, _, o) ->
            match o.g_witness with
            | None -> []
            | Some cuts ->
              List.mapi
                (fun pos i ->
                  (Query.View.name view_arr.(i), cuts.(j).(pos)))
                indices)
          outcomes_and_ctx
      in
      let all = List.init n_ws per_state in
      if List.exists (fun l -> l = []) all && views <> [] then None
      else Some all
    end
  in
  ( { convergent; strongly_consistent = strong; complete; conclusive; detail },
    witness )

let check ~views ~transactions ~source_states ~warehouse_states =
  fst (check_with_witness ~views ~transactions ~source_states ~warehouse_states)

(* ---------- crash-recovery certificate ---------- *)

type recovery_certificate = {
  no_loss : bool;
  no_double_apply : bool;
  monotonic_serving : bool;
  rc_detail : string;
}

let certified c = c.no_loss && c.no_double_apply && c.monotonic_serving

let pp_certificate ppf c =
  Fmt.pf ppf "no_loss=%b no_double_apply=%b monotonic_serving=%b%s" c.no_loss
    c.no_double_apply c.monotonic_serving
    (if String.equal c.rc_detail "ok" then "" else " [" ^ c.rc_detail ^ "]")

(* Pure set arithmetic over (view, txn id) application pairs plus a
   per-session order check — deliberately independent of the cut-chain
   machinery above, so a recovery bug cannot hide behind search budgets
   or commuting reorderings: every relevant pair must be applied exactly
   once, full stop. *)
let certify_recovery ~expected ~applied ~served =
  let count = Hashtbl.create 256 in
  List.iter
    (fun commit ->
      List.iter
        (fun pair ->
          Hashtbl.replace count pair
            (1 + Option.value ~default:0 (Hashtbl.find_opt count pair)))
        commit)
    applied;
  let missing =
    List.filter (fun pair -> not (Hashtbl.mem count pair)) expected
  in
  let doubled =
    Hashtbl.fold (fun pair n acc -> if n > 1 then pair :: acc else acc) count []
  in
  let non_monotonic =
    List.filter_map
      (fun (session, versions) ->
        let rec ok = function
          | a :: (b :: _ as rest) -> if a > b then false else ok rest
          | _ -> true
        in
        if ok versions then None else Some session)
      served
  in
  let pp_pair (v, i) = Printf.sprintf "%s<-U%d" v i in
  let detail =
    match (missing, doubled, non_monotonic) with
    | [], [], [] -> "ok"
    | (p :: _ as m), _, _ ->
      Printf.sprintf "lost %d committed application(s), e.g. %s"
        (List.length m) (pp_pair p)
    | [], (p :: _ as d), _ ->
      Printf.sprintf "%d application(s) applied twice, e.g. %s"
        (List.length d) (pp_pair p)
    | [], [], s :: _ ->
      Printf.sprintf "session %d served a version out of order" s
  in
  { no_loss = missing = []; no_double_apply = doubled = [];
    monotonic_serving = non_monotonic = []; rc_detail = detail }

(* ---- fused-merge certificate ----

   The [Fused] merge policy releases a ready run of warehouse
   transactions as one fused transaction — the paper's batching
   consistency level: the warehouse may skip the run's intermediate
   states but must land exactly on its endpoint. Like [certify_recovery]
   this is pure re-checking of recorded data, independent of the cut
   search: the fused transaction must carry exactly its parts (coverage),
   no emitted row may be fused twice (no_dup), the parts must be
   consecutive in emission order (contiguous), and replaying the parts
   one by one from the recorded pre-state must reproduce the recorded
   post-state (exact) — a tampered coalesced sum fails that clause. *)

type fused_batch = {
  fb_parts : (int list * Query.Action_list.t list) list;
      (* constituent transactions in emission order: (rows, action lists) *)
  fb_rows : int list; (* the fused transaction's covered rows *)
  fb_actions : Query.Action_list.t list; (* its action lists, in order *)
  fb_pre : Database.t;
  fb_post : Database.t;
}

type fused_certificate = {
  fused_coverage : bool;
  fused_no_dup : bool;
  fused_contiguous : bool;
  fused_exact : bool;
  fc_detail : string;
}

let certify_fused ~emitted ~batches =
  let fail = ref [] in
  let note fmt = Printf.ksprintf (fun m -> fail := m :: !fail) fmt in
  let coverage = ref true and no_dup = ref true in
  let contiguous = ref true and exact = ref true in
  let seen_rows = Hashtbl.create 64 in
  let al_key (al : Query.Action_list.t) = (al.view, al.state) in
  List.iteri
    (fun b batch ->
      let part_rows = List.concat_map fst batch.fb_parts in
      let part_actions = List.concat_map snd batch.fb_parts in
      (* Coverage: the fused transaction is exactly its parts. *)
      if
        List.sort_uniq Int.compare part_rows
        <> List.sort_uniq Int.compare batch.fb_rows
      then begin
        coverage := false;
        note "batch %d covers different rows than its parts" b
      end;
      if
        List.length part_actions <> List.length batch.fb_actions
        || not
             (List.for_all2
                (fun a a' -> al_key a = al_key a')
                part_actions batch.fb_actions)
      then begin
        coverage := false;
        note "batch %d carries different action lists than its parts" b
      end;
      (* No row fused twice across batches. *)
      List.iter
        (fun r ->
          if Hashtbl.mem seen_rows r then begin
            no_dup := false;
            note "row %d appears in two fused batches" r
          end
          else Hashtbl.add seen_rows r ())
        part_rows;
      (* Exact: sequential replay of the parts from the pre-state lands
         on the recorded post-state. *)
      let replayed =
        List.fold_left
          (fun db (_, als) ->
            List.fold_left
              (fun db (al : Query.Action_list.t) ->
                match Database.find_opt db al.view with
                | None ->
                  exact := false;
                  note "batch %d targets unknown view %s" b al.view;
                  db
                | Some rel ->
                  let contents =
                    Query.Action_list.apply al (Relation.contents rel)
                  in
                  Database.add al.view
                    (Relation.with_contents rel contents)
                    db)
              db als)
          batch.fb_pre batch.fb_parts
      in
      List.iter
        (fun name ->
          let same =
            match
              ( Database.find_opt replayed name,
                Database.find_opt batch.fb_post name )
            with
            | Some a, Some p -> Relation.equal_contents a p
            | None, None -> true
            | _ -> false
          in
          if not same then begin
            exact := false;
            note
              "batch %d: view %s diverges from sequential application of \
               its parts"
              b name
          end)
        (Database.names batch.fb_post))
    batches;
  (* Contiguous: the batches, in commit order, partition the emission
     sequence — every emitted transaction fused exactly once, in order. *)
  let fused_seq = List.concat_map (fun b -> List.map fst b.fb_parts) batches in
  if fused_seq <> emitted then begin
    contiguous := false;
    note "fused batches do not partition the emission sequence in order"
  end;
  { fused_coverage = !coverage; fused_no_dup = !no_dup;
    fused_contiguous = !contiguous; fused_exact = !exact;
    fc_detail =
      (match List.rev !fail with [] -> "ok" | first :: _ -> first) }

let certified_fused c =
  c.fused_coverage && c.fused_no_dup && c.fused_contiguous && c.fused_exact

let pp_fused ppf c =
  Format.fprintf ppf "{coverage=%b no_dup=%b contiguous=%b exact=%b; %s}"
    c.fused_coverage c.fused_no_dup c.fused_contiguous c.fused_exact
    c.fc_detail

let check_single_view ~view ~transactions ~source_states ~contents =
  let schema =
    match source_states with
    | db :: _ -> Relation.schema (Query.View.materialize db view)
    | [] -> invalid_arg "Checker: empty source state sequence"
  in
  let warehouse_states =
    List.map
      (fun bag ->
        Database.of_list
          [ ( Query.View.name view,
              Relation.with_contents (Relation.create schema) bag ) ])
      contents
  in
  check ~views:[ view ] ~transactions ~source_states ~warehouse_states

(* ---- distributed (cross-shard) certificate ----

   A union view served from N warehouse shards never materializes
   globally: a read stitches per-shard legs at a version vector — one
   commit index per shard. The certificate proves each served read was a
   prefix-consistent cut of the per-shard commit sequences: the vector
   names each leg's shard exactly once (no shard observed at two
   versions inside one read), every component points into the recorded
   sequence, the served bag is exactly the union of the legs at those
   versions, and each session's vectors only ever advance. Like
   [certify_recovery] this is pure re-checking of recorded data — no
   search, no budgets: a violated clause is a real violation. *)

type cut_read = {
  cr_session : int;
  cr_legs : (int * string) list;
  cr_vector : (int * int) list;
  cr_result : Bag.t;
}

type distributed_certificate = {
  cut_complete : bool;
  cut_bounded : bool;
  cut_exact : bool;
  cut_monotonic : bool;
  dc_detail : string;
}

let certify_distributed ~shard_states ~reads =
  let states = Array.of_list shard_states in
  let n_shards = Array.length states in
  let fail = ref [] in
  let note fmt = Printf.ksprintf (fun m -> fail := m :: !fail) fmt in
  let complete = ref true and bounded = ref true and exact = ref true in
  let monotonic = ref true in
  let last_vector : (int, (int * int) list) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i r ->
      (* One vector entry per shard, and every leg's shard covered. *)
      let shards_in_vector = List.map fst r.cr_vector in
      let dup =
        List.exists
          (fun s -> List.length (List.filter (Int.equal s) shards_in_vector) > 1)
          shards_in_vector
      in
      if dup then begin
        complete := false;
        note "read %d observed a shard at two versions in one cut" i
      end;
      List.iter
        (fun (s, _) ->
          if not (List.mem_assoc s r.cr_vector) then begin
            complete := false;
            note "read %d has a leg on shard %d outside its cut vector" i s
          end)
        r.cr_legs;
      (* Every component is a prefix index of its shard's sequence. *)
      List.iter
        (fun (s, v) ->
          if s < 0 || s >= n_shards then begin
            bounded := false;
            note "read %d names unknown shard %d" i s
          end
          else if v < 0 || v >= List.length states.(s) then begin
            bounded := false;
            note "read %d pins shard %d at version %d (only %d recorded)" i s
              v
              (List.length states.(s))
          end)
        r.cr_vector;
      (* The served bag is exactly the stitch of the legs at the cut. *)
      if !complete && !bounded then begin
        let stitched =
          List.fold_left
            (fun acc (s, leg) ->
              let v = List.assoc s r.cr_vector in
              let db = List.nth states.(s) v in
              match Database.find_opt db leg with
              | Some rel -> Bag.union acc (Relation.contents rel)
              | None ->
                exact := false;
                note "read %d: leg %s missing from shard %d state" i leg s;
                acc)
            Bag.empty r.cr_legs
        in
        if not (Bag.equal stitched r.cr_result) then begin
          exact := false;
          note
            "read %d served contents differ from the union of its legs at \
             the cut"
            i
        end
      end;
      (* Sessions only ever advance: componentwise monotone vectors. *)
      (match Hashtbl.find_opt last_vector r.cr_session with
      | Some prev ->
        List.iter
          (fun (s, v) ->
            match List.assoc_opt s prev with
            | Some pv when v < pv ->
              monotonic := false;
              note "session %d saw shard %d go back from %d to %d"
                r.cr_session s pv v
            | _ -> ())
          r.cr_vector
      | None -> ());
      (* Remember the newest position per shard this session observed. *)
      let merged =
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt last_vector r.cr_session)
        in
        r.cr_vector
        @ List.filter (fun (s, _) -> not (List.mem_assoc s r.cr_vector)) prev
      in
      Hashtbl.replace last_vector r.cr_session merged)
    reads;
  { cut_complete = !complete; cut_bounded = !bounded; cut_exact = !exact;
    cut_monotonic = !monotonic;
    dc_detail =
      (match List.rev !fail with [] -> "ok" | first :: _ -> first) }

let certified_distributed c =
  c.cut_complete && c.cut_bounded && c.cut_exact && c.cut_monotonic

let pp_distributed ppf c =
  Format.fprintf ppf
    "{complete=%b bounded=%b exact=%b monotonic=%b; %s}" c.cut_complete
    c.cut_bounded c.cut_exact c.cut_monotonic c.dc_detail
