(** Consistency oracle: decides which of the paper's Section-2 consistency
    levels a recorded run achieved.

    Given the source ground truth (the serializable transaction schedule
    [U_1..U_f] and its state sequence [ss_0..ss_f]) and the recorded
    warehouse state sequence [ws_0..ws_q], the oracle classifies the run
    as {e convergent}, {e strongly consistent} and/or {e complete} under
    MVC.

    {2 Why this is more than per-state comparison}

    The definitions quantify over {e some} consistent source state
    sequence — any serial schedule equivalent to the one that executed.
    The painting algorithms exploit this: SPA may apply an update touching
    only view [V_3] before an earlier update touching only [V_1, V_2]
    (Example 3), which corresponds to reordering two commuting source
    transactions. The oracle therefore searches for a monotone chain of
    {e cuts}: a cut assigns each view [x] a source state [c_x] with
    [content(x) = V_x(ss_{c_x})], subject to the realizability constraint
    that for any two views sharing a base relation [R], no transaction
    touching [R] lies between their cut points — exactly the condition
    under which a single equivalent serial schedule produces that mixed
    warehouse state. Strong consistency holds when a componentwise
    monotone chain of realizable cuts covers the whole warehouse history
    and ends at [ss_f]; completeness additionally requires each step of
    the chain to apply at most one {e observable} transaction (one that
    changes some view's contents), so that every source state is reflected
    in order. Convergence only requires the final states to agree.

    The search is exact but bounded; pathological ambiguity (astronomically
    many content-equal cuts) is reported as [conclusive = false] rather
    than mis-classified. *)

open Relational

type verdict = {
  convergent : bool;
  strongly_consistent : bool;
  complete : bool;
  conclusive : bool;
      (** False when the cut search hit its exploration budget; the three
          booleans are then lower bounds (a [true] is still trustworthy,
          a [false] may be a search artifact). *)
  detail : string;
      (** Human-readable explanation of the first violation (or "ok"). *)
}

(** The Section-2 consistency ladder, as a total order for assertions:
    completeness implies strong consistency implies convergence. Faulty
    runs are asserted against this in the soak tests. *)
type level = Inconsistent | Convergent | Strong | Complete

val level : verdict -> level
(** The strongest level the verdict supports. *)

val level_name : level -> string
(** ["complete"], ["strong"], ["convergent"], ["INCONSISTENT"] — the
    spelling used in benchmark tables and JSON. *)

val at_least : level -> verdict -> bool
(** [at_least want v]: does [v] reach at least [want] on the ladder? *)

type witness = (string * int) list list
(** One entry per warehouse state: the source state each view was mapped
    to — a concrete instance of the paper's mapping [m(ws_j) = ss_i],
    generalized to per-view cuts for the commuting reorderings the
    algorithms produce. Views in different sharing groups may sit at
    different source states within one warehouse state. *)

val check_with_witness :
  views:Query.View.t list ->
  transactions:Update.Transaction.t list ->
  source_states:Database.t list ->
  warehouse_states:Database.t list ->
  verdict * witness option
(** Like {!check}, also returning a witness chain when the run is strongly
    consistent (the chain actually found by the search; completeness
    witnesses are preferred when they exist). *)

val check :
  views:Query.View.t list ->
  transactions:Update.Transaction.t list ->
  source_states:Database.t list ->
  warehouse_states:Database.t list ->
  verdict
(** [source_states] is [ss_0 .. ss_f] (so [length = f + 1] with
    [transactions] being [U_1 .. U_f] in order); [warehouse_states] is
    [ws_0 .. ws_q] as recorded by {!Warehouse.Store.states}. Warehouse
    databases bind view names; source databases bind base relations.
    @raise Invalid_argument on length mismatches or empty inputs. *)

val check_single_view :
  view:Query.View.t ->
  transactions:Update.Transaction.t list ->
  source_states:Database.t list ->
  contents:Bag.t list ->
  verdict
(** The single-view specialisation (Section 2.2 levels) for one view's
    content history. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {2 Crash-recovery certificate}

    The consistency ladder above judges the warehouse {e state} history;
    after process crashes the certificate additionally judges the
    {e application} history: durability (nothing committed was lost),
    idempotence (nothing was applied twice), and serving order (no
    session observed versions going backwards across a restart). *)

type recovery_certificate = {
  no_loss : bool;
      (** Every expected (view, transaction) application appears in some
          committed WT. *)
  no_double_apply : bool;
      (** No (view, transaction) application appears in more than one
          committed WT — recovery resubmission did not duplicate work. *)
  monotonic_serving : bool;
      (** Every session's served version sequence is nondecreasing. *)
  rc_detail : string;  (** First violation, or ["ok"]. *)
}

val certify_recovery :
  expected:(string * int) list ->
  applied:(string * int) list list ->
  served:(int * int list) list ->
  recovery_certificate
(** [expected] is every (view name, transaction id) pair that must be
    applied (the relevant-view set of each source transaction); [applied]
    is, per committed WT in commit order, the (view, id) pairs its action
    lists carry; [served] is, per session, the warehouse version indices
    its reads observed, in completion order (restrict to sessions whose
    read policy promises monotonicity). Pure — no search, no budgets: a
    violated clause is a real violation. *)

val certified : recovery_certificate -> bool
(** All three clauses hold. *)

val pp_certificate : Format.formatter -> recovery_certificate -> unit

(** {2 Distributed (cross-shard) certificate}

    A cross-shard union view is stitched at read time from per-shard
    materialized legs behind a version vector — one commit index per
    shard. The certificate proves each served read was a
    prefix-consistent cut of the per-shard commit sequences; the
    per-shard SPA ladder ({!check} applied shard by shard) separately
    certifies each leg's own history. *)

type cut_read = {
  cr_session : int;  (** Reader session (monotonicity is per session). *)
  cr_legs : (int * string) list;
      (** The union view's legs as (shard id, leg view name). *)
  cr_vector : (int * int) list;
      (** The global cut: (shard id, warehouse version index) — an index
          into that shard's recorded state sequence ws_0..ws_q. *)
  cr_result : Bag.t;  (** The contents actually served to the reader. *)
}

type distributed_certificate = {
  cut_complete : bool;
      (** Every leg's shard appears in the cut vector, and no shard
          appears twice (a read never observes one shard at two
          versions). *)
  cut_bounded : bool;
      (** Every vector component indexes into its shard's recorded
          commit sequence. *)
  cut_exact : bool;
      (** The served bag equals the union of the legs' contents in the
          shard states the vector pins — the stitch really came from
          that cut, independent of message timing. *)
  cut_monotonic : bool;
      (** Per session, cut vectors are componentwise nondecreasing:
          no reader ever saw a shard move backwards. *)
  dc_detail : string;  (** First violation, or ["ok"]. *)
}

val certify_distributed :
  shard_states:Database.t list list ->
  reads:cut_read list ->
  distributed_certificate
(** [shard_states] lists, per shard, that shard's warehouse state
    sequence ws_0..ws_q in commit order; [reads] lists every served
    union-view read in completion order. Pure — no search, no budgets: a
    violated clause is a real violation. *)

val certified_distributed : distributed_certificate -> bool
(** All four clauses hold. *)

val pp_distributed : Format.formatter -> distributed_certificate -> unit

(** {2 Fused-merge certificate}

    The merge fast path's opt-in [Fused] policy releases a ready run of
    warehouse transactions as one fused transaction — the paper's
    batching consistency level: the warehouse may skip the run's
    intermediate states but must land exactly on its endpoint. The
    certificate re-checks the recorded fusions, independent of the cut
    search. *)

type fused_batch = {
  fb_parts : (int list * Query.Action_list.t list) list;
      (** The constituent transactions in emission order, each as its
          covered source-transaction rows and its action lists. *)
  fb_rows : int list;  (** Rows the fused transaction claims to cover. *)
  fb_actions : Query.Action_list.t list;
      (** The fused transaction's action lists, in application order. *)
  fb_pre : Database.t;  (** Warehouse state before the fused commit. *)
  fb_post : Database.t;  (** Recorded state after it. *)
}

type fused_certificate = {
  fused_coverage : bool;
      (** Each fused transaction covers exactly its parts' rows and
          carries exactly their action lists, in order. *)
  fused_no_dup : bool;
      (** No source transaction row was fused into two batches. *)
  fused_contiguous : bool;
      (** The batches, in commit order, partition the merge's emission
          sequence — runs are consecutive, nothing skipped. *)
  fused_exact : bool;
      (** Replaying each batch's parts one by one from its recorded
          pre-state reproduces its recorded post-state: fusing (and any
          coalesced summing inside it) changed no view contents. A
          tampered coalesced sum fails here. *)
  fc_detail : string;  (** First violation, or ["ok"]. *)
}

val certify_fused :
  emitted:int list list ->
  batches:fused_batch list ->
  fused_certificate
(** [emitted] is the merge's emission sequence — per emitted warehouse
    transaction, in order, its covered rows; [batches] is every fused
    commit in commit order. Pure — no search, no budgets: a violated
    clause is a real violation. *)

val certified_fused : fused_certificate -> bool
(** All four clauses hold. *)

val pp_fused : Format.formatter -> fused_certificate -> unit
