open Relational

type version = {
  index : int;
  time : float;
  state : Database.t;
  changed : string list;
}

type retention = Keep_all | Keep_last of int

exception Pruned of int

(* Retained versions are contiguous: buf.(start + i) holds the version
   with index watermark + i. Pins block the watermark — pruning stops at
   the first pinned version so the retained window stays contiguous and
   binary-searchable (leases are read-length, so the blockage is brief). *)
type t = {
  mutable buf : version option array;
  mutable start : int;
  mutable len : int;
  mutable watermark : int;
  retention : retention;
  pins : (int, int) Hashtbl.t;  (* version index -> lease count *)
}

let create ?(retention = Keep_all) initial =
  (match retention with
  | Keep_last n when n < 1 ->
    invalid_arg "Version_manager.create: Keep_last needs a positive window"
  | Keep_last _ | Keep_all -> ());
  let t =
    { buf = Array.make 16 None; start = 0; len = 0; watermark = 0; retention;
      pins = Hashtbl.create 16 }
  in
  t.buf.(0) <- Some { index = 0; time = 0.0; state = initial; changed = [] };
  t.len <- 1;
  t

let nth t i =
  match t.buf.(t.start + i) with Some v -> v | None -> assert false

let latest t = nth t (t.len - 1)

let version_count t = t.watermark + t.len

let watermark t = t.watermark

let retained t = t.len

let pinned t = Hashtbl.length t.pins

let oldest_live t = nth t 0

let prune t =
  match t.retention with
  | Keep_all -> ()
  | Keep_last n ->
    let continue = ref true in
    while !continue && t.len > n do
      if Hashtbl.mem t.pins t.watermark then continue := false
      else begin
        t.buf.(t.start) <- None;
        t.start <- t.start + 1;
        t.len <- t.len - 1;
        t.watermark <- t.watermark + 1
      end
    done

let ensure_room t =
  if t.start + t.len = Array.length t.buf then begin
    let cap = max 16 (2 * t.len) in
    let buf = Array.make cap None in
    Array.blit t.buf t.start buf 0 t.len;
    t.buf <- buf;
    t.start <- 0
  end

(* Pre-warm the columnar chunks of the named relations. The chunk memo
   lives on the [Relation.t] record itself and [Database.t] is
   persistent, so every retained version holding the same (unchanged)
   record shares the chunk by pointer — warming at publish time moves
   the one-time encode off the reader's first snapshot scan, and later
   versions that leave the relation untouched inherit the warm chunk
   for free. *)
let warm_chunks state names =
  if !Columnar.enabled then
    List.iter
      (fun name ->
        match Database.find_opt state name with
        | Some rel -> ignore (Relation.columnar rel)
        | None -> ())
      names

let publish t ~time ~changed state =
  if time < (latest t).time then
    invalid_arg "Version_manager.publish: time ran backwards";
  let v = { index = version_count t; time; state; changed } in
  warm_chunks state changed;
  ensure_room t;
  t.buf.(t.start + t.len) <- Some v;
  t.len <- t.len + 1;
  prune t;
  v

(* Warehouse crash: forget the published history and restart at version 0.
   Recovery then republishes the restored commit sequence, reproducing
   each version at its original index. The pins table survives — versions
   are persistent snapshots, so leases taken by in-flight readers remain
   valid, and republished versions land back at the indices those leases
   name. *)
let restart t ~initial =
  t.buf <- Array.make 16 None;
  t.start <- 0;
  t.watermark <- 0;
  t.buf.(0) <- Some { index = 0; time = 0.0; state = initial; changed = [] };
  t.len <- 1

let find t index =
  if index < t.watermark then raise (Pruned index)
  else if index >= version_count t then
    invalid_arg "Version_manager.find: version not yet published"
  else nth t (index - t.watermark)

(* Rightmost retained version with time <= instant; equal times resolve
   to the highest index. *)
let as_of t instant =
  if (oldest_live t).time > instant then
    (* Version 0 carries time 0; an instant before the oldest retained
       version either predates the whole history (serve version 0) or
       falls into pruned territory. *)
    if t.watermark = 0 then oldest_live t else raise (Pruned (t.watermark - 1))
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if (nth t mid).time <= instant then lo := mid else hi := mid - 1
    done;
    nth t !lo
  end

(* Leftmost retained version with time >= instant, else the latest. *)
let oldest_at_least t instant =
  if (latest t).time < instant then latest t
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if (nth t mid).time >= instant then hi := mid else lo := mid + 1
    done;
    nth t !lo
  end

type chunk_stats = { slots : int; distinct : int }

(* Walk every (retained version, relation) slot and count how many
   physically distinct chunks back them. Forces any not-yet-encoded
   chunk, but only once per distinct relation record — the whole point
   being that [slots / distinct] measures how much storage MVCC
   retention shares. *)
let chunk_stats t =
  let seen = ref [] and slots = ref 0 in
  for i = 0 to t.len - 1 do
    let v = nth t i in
    List.iter
      (fun name ->
        let c = Relation.columnar (Database.find v.state name) in
        incr slots;
        if not (List.memq c !seen) then seen := c :: !seen)
      (Database.names v.state)
  done;
  { slots = !slots; distinct = List.length !seen }

let pin t index =
  let v = find t index in
  Hashtbl.replace t.pins index
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins index));
  v

let unpin t index =
  match Hashtbl.find_opt t.pins index with
  | None -> invalid_arg "Version_manager.unpin: version not pinned"
  | Some 1 ->
    Hashtbl.remove t.pins index;
    prune t
  | Some n -> Hashtbl.replace t.pins index (n - 1)

let pin_latest t = pin t (latest t).index
