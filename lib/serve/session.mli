(** Reader sessions: each read evaluated against exactly one warehouse
    version, under a selectable guarantee.

    A session is one client connection to the warehouse. Every read —
    current or historical ([as_of]) — selects a single version from the
    {!Version_manager}, takes a lease on it, evaluates the query against
    that one immutable state vector, and releases the lease. Because
    SPA/PA make every *version* a mutually consistent snapshot, whatever
    consistency the maintenance pipeline promised is exactly what the
    client observes; the guarantee only governs *which* version a read
    may see:

    - [Latest]: always the newest published version.
    - [Monotonic_reads]: the session carries a token — the highest
      version index it has observed — and never serves a version below
      it. Current reads serve the latest version; historical reads whose
      [as_of] instant falls below the token are clamped up to it (the
      session never travels backwards within itself).
    - [Bounded_staleness s]: any version no older than [s] simulated
      seconds is admissible; reads serve the *oldest* admissible version,
      which maximizes result-cache reuse across the session population
      while keeping served staleness under the bound. Historical reads
      older than the bound are likewise clamped up to it.

    Reads that ask for pruned history (below the version manager's
    watermark) are clamped up to the oldest retained version rather than
    failing — the serving answer to "as old as you have".

    A read is split into {!start} (version selection + lease) and
    {!complete} (evaluation + lease release) so a caller modelling
    service latency can hold the lease across simulated time — the
    version manager's pruning pass then cannot yank the snapshot out
    from under the in-flight read. {!read} composes the two for
    immediate evaluation. *)

open Relational

type guarantee = Latest | Monotonic_reads | Bounded_staleness of float

val guarantee_name : guarantee -> string
(** ["latest"], ["monotonic"], ["bounded-0.050"] — the spelling used in
    benchmark tables and JSON. *)

type outcome = {
  result : Bag.t;
  version : int;  (** Version index served. *)
  version_time : float;
  staleness : float;
      (** Completion time minus served version time (clamped at 0). *)
  cache_hit : bool;
  clamped : bool;
      (** The guarantee (or pruning) forced a newer version than the
          read asked for. *)
}

type pending
(** An in-flight read holding a lease on its selected version. *)

type t

val create : ?cache:Result_cache.t -> guarantee:guarantee -> Version_manager.t -> t
(** Sessions sharing a {!Result_cache} share results — the cache is
    version-exact, so sharing is always sound. *)

val guarantee : t -> guarantee

val token : t -> int
(** Highest version index this session has observed (0 initially). *)

val start : t -> now:float -> ?as_of:float -> unit -> pending
(** Select a version per the guarantee ([as_of] asks for the version
    visible at that instant; omitting it asks for a current read) and
    pin it. *)

val pending_version : pending -> Version_manager.version

val complete : t -> pending -> now:float -> Query.Algebra.t -> outcome
(** Evaluate against the pinned version — through the shared cache when
    one was given, compiling via {!Query.Compiled.compile_memo} on a
    miss — then release the lease and advance the session token.
    Completing the same pending read twice raises [Invalid_argument]. *)

val read : t -> now:float -> ?as_of:float -> Query.Algebra.t -> outcome
(** [start] and [complete] back to back (no service latency). *)
