(** Warehouse states as numbered immutable versions.

    Every warehouse commit publishes a new version: the post-commit state
    vector, the commit time, and the set of views the committing
    transaction changed (its [VS(WT)], which drives result-cache
    invalidation). Version 0 is the initial materialization. Because
    {!Relational.Database.t} is persistent, a version is a pointer — no
    state is copied, and a pinned version stays valid no matter what the
    store does afterwards.

    Retention is bounded: under [Keep_last n] a publish prunes versions
    beyond the window, advancing the {!watermark} — except that the
    watermark never passes a *pinned* version, so a pruning pass can
    never yank a snapshot out from under an in-flight reader holding a
    lease. Retained versions are contiguous, [watermark .. latest], which
    keeps {!as_of} an O(log retained) binary search. *)

open Relational

type version = {
  index : int;  (** Commit index; 0 is the initial state. *)
  time : float;  (** Commit time (0 for the initial version). *)
  state : Database.t;  (** The warehouse state vector. *)
  changed : string list;
      (** Views the committing WT changed ([[]] for the initial
          version). *)
}

type retention = Keep_all | Keep_last of int

exception Pruned of int
(** The requested version index has been pruned (it is below the
    watermark). *)

type t

val create : ?retention:retention -> Database.t -> t
(** [create initial] starts the history at version 0 = [initial].
    [retention] defaults to [Keep_all]; [Keep_last n] keeps the [n] most
    recent versions (plus any pinned ones).
    @raise Invalid_argument on [Keep_last n] with [n < 1]. *)

val publish : t -> time:float -> changed:string list -> Database.t -> version
(** Append the next version and run the pruning pass. Publish times must
    be nondecreasing (they come from the simulation clock).

    When columnar kernels are enabled, publishing also pre-warms the
    columnar chunks of the [changed] relations ({!Relation.columnar}),
    so a version is effectively a vector of column-chunk pointers:
    readers never pay the encode on their first snapshot scan, and
    every other retained version sharing an unchanged relation record
    shares its chunk by pointer.
    @raise Invalid_argument if [time] decreases. *)

val restart : t -> initial:Database.t -> unit
(** Warehouse crash recovery: discard the published history and restart
    at version 0 = [initial]. The caller republishes the restored commit
    sequence, landing each version back at its original index.
    Outstanding pin leases are {e kept}: pinned versions are persistent
    snapshots, so in-flight readers stay valid across the restart, and
    their later {!unpin} calls match the republished indices. *)

val latest : t -> version

val version_count : t -> int
(** Versions ever published, including version 0 and pruned ones
    ([latest.index + 1]). *)

val watermark : t -> int
(** Index of the oldest retained version. *)

val retained : t -> int

val find : t -> int -> version
(** @raise Pruned if below the watermark.
    @raise Invalid_argument if beyond the latest version. *)

val as_of : t -> float -> version
(** The version visible at an instant: the latest version with
    [time <= instant] (ties: highest index wins, versions being ordered
    by index with nondecreasing times).
    @raise Pruned if that version has been pruned. *)

val oldest_live : t -> version
(** The version at the watermark. *)

val oldest_at_least : t -> float -> version
(** The oldest retained version with [time >= instant] — the most
    cache-friendly snapshot satisfying a staleness bound — or {!latest}
    when even the newest version is older than [instant]. *)

val pin : t -> int -> version
(** Take a lease on a version: it survives pruning until the matching
    {!unpin}. Leases nest (a count is kept per version).
    @raise Pruned / [Invalid_argument] like {!find}. *)

val unpin : t -> int -> unit
(** Release one lease and re-run the pruning pass the pin may have been
    blocking. Unbalanced unpins raise [Invalid_argument]. *)

val pinned : t -> int
(** Number of distinct versions currently holding at least one lease. *)

type chunk_stats = {
  slots : int;  (** (retained version, relation) pairs — logical chunks. *)
  distinct : int;  (** Physically distinct chunks backing them. *)
}

val chunk_stats : t -> chunk_stats
(** How much columnar storage MVCC retention shares: each retained
    version's relations counted once per version ([slots]), versus the
    number of physically distinct chunks backing them ([distinct]).
    Relations a commit left untouched keep their record — and thus
    their chunk — so [distinct] grows only with actual change. Forces
    any not-yet-encoded chunk (once per distinct relation record). *)

val pin_latest : t -> version
(** Pin the newest version in one step — the leg-acquisition primitive of
    a cross-shard global cut, where find-then-pin would race with a
    concurrent publish advancing [latest] between the two calls. *)
