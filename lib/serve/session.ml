open Relational

type guarantee = Latest | Monotonic_reads | Bounded_staleness of float

let guarantee_name = function
  | Latest -> "latest"
  | Monotonic_reads -> "monotonic"
  | Bounded_staleness s -> Printf.sprintf "bounded-%.3f" s

type outcome = {
  result : Bag.t;
  version : int;
  version_time : float;
  staleness : float;
  cache_hit : bool;
  clamped : bool;
}

type pending = {
  selected : Version_manager.version;
  p_clamped : bool;
  mutable live : bool;  (* lease not yet released *)
}

type t = {
  vm : Version_manager.t;
  cache : Result_cache.t option;
  guarantee : guarantee;
  mutable token : int;
}

let create ?cache ~guarantee vm = { vm; cache; guarantee; token = 0 }

let guarantee t = t.guarantee

let token t = t.token

(* The version a read may be served from, per the guarantee. [requested]
   is the version the read asked for (as_of, or latest for a current
   read); clamping only ever moves *forward* in version order. *)
let select t ~now ~as_of =
  let vm = t.vm in
  let requested, pruned_clamp =
    match as_of with
    | None -> (Version_manager.latest vm, false)
    | Some instant -> (
      (* Pruned history is served as "the oldest we still have". *)
      match Version_manager.as_of vm instant with
      | v -> (v, false)
      | exception Version_manager.Pruned _ ->
        (Version_manager.oldest_live vm, true))
  in
  let chosen =
    match t.guarantee with
    | Latest -> (
      match as_of with
      | Some _ -> requested
      | None -> Version_manager.latest vm)
    | Monotonic_reads ->
      if requested.Version_manager.index < t.token then
        (* The token's version may itself have been pruned (this session
           has not pinned it between reads); clamp to the oldest retained
           one past it. *)
        (match Version_manager.find vm t.token with
        | v -> v
        | exception Version_manager.Pruned _ ->
          Version_manager.oldest_live vm)
      else requested
    | Bounded_staleness bound -> (
      let cutoff = now -. bound in
      match as_of with
      | None ->
        (* Oldest version inside the staleness bound: maximal cache
           reuse, staleness still <= bound. *)
        Version_manager.oldest_at_least vm cutoff
      | Some _ ->
        if requested.Version_manager.time < cutoff then
          Version_manager.oldest_at_least vm cutoff
        else requested)
  in
  ( chosen,
    pruned_clamp
    || chosen.Version_manager.index <> requested.Version_manager.index )

let start t ~now ?as_of () =
  let selected, clamped = select t ~now ~as_of in
  let selected = Version_manager.pin t.vm selected.Version_manager.index in
  { selected; p_clamped = clamped; live = true }

let pending_version p = p.selected

let evaluate t (v : Version_manager.version) expr =
  let compute () =
    Query.Compiled.eval_bag v.state
      (Query.Compiled.compile_memo ~lookup:(Database.schema v.state) expr)
  in
  match t.cache with
  | None -> (compute (), false)
  | Some cache -> (
    match Result_cache.find cache ~version:v.index expr with
    | Some result -> (result, true)
    | None ->
      let result = compute () in
      Result_cache.store cache ~version:v.index
        ~support:(Query.Algebra.base_relations expr) expr result;
      (result, false))

let complete t p ~now expr =
  if not p.live then invalid_arg "Session.complete: read already completed";
  p.live <- false;
  let v = p.selected in
  let result, cache_hit = evaluate t v expr in
  Version_manager.unpin t.vm v.Version_manager.index;
  t.token <- max t.token v.Version_manager.index;
  { result; version = v.Version_manager.index;
    version_time = v.Version_manager.time;
    staleness = Float.max 0.0 (now -. v.Version_manager.time); cache_hit;
    clamped = p.p_clamped }

let read t ~now ?as_of expr = complete t (start t ~now ?as_of ()) ~now expr
