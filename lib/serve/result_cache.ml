open Relational

(* Algebra.t is pure first-order data (no closures), so structural
   equality and the generic hash are sound cache keys. *)
module Expr_tbl = Hashtbl.Make (struct
  type t = Query.Algebra.t

  let equal = ( = )

  let hash = Hashtbl.hash
end)

type entry = {
  mutable result : Bag.t;
  mutable computed_at : int;
  support : string list;
}

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  entries : int;
  refreshed : int;
  refresh_fallbacks : int;
}

type t = {
  capacity : int;
  entries : entry Expr_tbl.t;
  insertion_order : Query.Algebra.t Queue.t;
  changes : (string, int list ref) Hashtbl.t;
      (* per view, change versions newest first (appended nondecreasing) *)
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
  mutable refreshed : int;
  mutable refresh_fallbacks : int;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Result_cache.create: capacity < 1";
  { capacity; entries = Expr_tbl.create 64; insertion_order = Queue.create ();
    changes = Hashtbl.create 16; hits = 0; misses = 0; stale = 0;
    evictions = 0; refreshed = 0; refresh_fallbacks = 0 }

let note_change t ~view ~version =
  match Hashtbl.find_opt t.changes view with
  | Some l -> l := version :: !l
  | None -> Hashtbl.add t.changes view (ref [ version ])

(* Did [view] change at a version in (lo, hi]? The newest-first list is
   scanned from its head; versions at the head are the most recent, so
   the scan stops as soon as it falls to or below [lo]. Reads cluster
   near the head (sessions read at or near the latest version), keeping
   this effectively O(1) per support view. *)
let changed_between t ~view ~lo ~hi =
  match Hashtbl.find_opt t.changes view with
  | None -> false
  | Some l ->
    let rec scan = function
      | [] -> false
      | v :: rest -> if v <= lo then false else v <= hi || scan rest
    in
    scan !l

let valid_at t entry version =
  let lo = min entry.computed_at version
  and hi = max entry.computed_at version in
  not
    (List.exists
       (fun view -> changed_between t ~view ~lo ~hi)
       entry.support)

let peek t ~version expr =
  match Expr_tbl.find_opt t.entries expr with
  | None -> false
  | Some entry -> valid_at t entry version

let find t ~version expr =
  match Expr_tbl.find_opt t.entries expr with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some entry ->
    if valid_at t entry version then begin
      t.hits <- t.hits + 1;
      Some entry.result
    end
    else begin
      t.misses <- t.misses + 1;
      t.stale <- t.stale + 1;
      None
    end

let store t ~version ~support expr result =
  match Expr_tbl.find_opt t.entries expr with
  | Some entry ->
    entry.result <- result;
    entry.computed_at <- version
  | None ->
    if Expr_tbl.length t.entries >= t.capacity then begin
      (* Evict the oldest-inserted surviving entry. *)
      let rec evict () =
        let key = Queue.pop t.insertion_order in
        if Expr_tbl.mem t.entries key then begin
          Expr_tbl.remove t.entries key;
          t.evictions <- t.evictions + 1
        end
        else evict ()
      in
      evict ()
    end;
    Expr_tbl.replace t.entries expr { result; computed_at = version; support };
    Queue.push expr t.insertion_order

(* Incremental refresh on commit. An entry valid at the pre-commit
   version [version - 1] whose support intersects [changed] would be
   invalidated by the change notes; instead, when the commit's view
   deltas are estimated no wider than the cached result, push them
   through the compiled delta plan of the cached query and advance the
   entry to [version] in place. [Signed_bag.apply] is exact here — the
   entry is bit-for-bit the pre-state result and the delta is exact —
   so a refreshed entry stays indistinguishable from a recompute.
   Entries wider deltas would churn more than recomputation saves fall
   back to plain invalidation (they simply keep their old computed_at
   and fail validity checks spanning this commit). *)
let commit t ~version ~changed ~pre ~post =
  let delta_cache = Hashtbl.create 8 in
  let view_delta view =
    match Hashtbl.find_opt delta_cache view with
    | Some d -> d
    | None ->
      let d =
        Signed_bag.diff_of_bags
          ~before:(Relation.contents (Database.find pre view))
          ~after:(Relation.contents (Database.find post view))
      in
      Hashtbl.add delta_cache view d;
      d
  in
  let prev = version - 1 in
  Expr_tbl.iter
    (fun expr entry ->
      let touched = List.filter (fun v -> List.mem v entry.support) changed in
      if touched <> [] && entry.computed_at <= prev && valid_at t entry prev
      then begin
        let width =
          List.fold_left
            (fun acc v -> acc + Signed_bag.size (view_delta v))
            0 touched
        in
        if width <= Bag.cardinal entry.result then begin
          let changes =
            Query.Delta.changes_of_list
              (List.map (fun v -> (v, view_delta v)) touched)
          in
          let d = Query.Delta.eval ~pre changes expr in
          entry.result <- Signed_bag.apply d entry.result;
          entry.computed_at <- version;
          t.refreshed <- t.refreshed + 1
        end
        else t.refresh_fallbacks <- t.refresh_fallbacks + 1
      end)
    t.entries;
  List.iter (fun view -> note_change t ~view ~version) changed

(* Warehouse crash: cached results and the change history both describe a
   version sequence about to be republished from scratch, so both must
   go. Keeping either would let a stale entry validate against a
   half-rebuilt history. Statistics survive (they describe the run). *)
let clear t =
  Expr_tbl.reset t.entries;
  Queue.clear t.insertion_order;
  Hashtbl.reset t.changes

let stats t =
  { hits = t.hits; misses = t.misses; stale = t.stale;
    evictions = t.evictions; entries = Expr_tbl.length t.entries;
    refreshed = t.refreshed; refresh_fallbacks = t.refresh_fallbacks }
