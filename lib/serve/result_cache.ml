open Relational

(* Algebra.t is pure first-order data (no closures), so structural
   equality and the generic hash are sound cache keys. *)
module Expr_tbl = Hashtbl.Make (struct
  type t = Query.Algebra.t

  let equal = ( = )

  let hash = Hashtbl.hash
end)

type entry = {
  mutable result : Bag.t;
  mutable computed_at : int;
  support : string list;
}

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  entries : int;
}

type t = {
  capacity : int;
  entries : entry Expr_tbl.t;
  insertion_order : Query.Algebra.t Queue.t;
  changes : (string, int list ref) Hashtbl.t;
      (* per view, change versions newest first (appended nondecreasing) *)
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Result_cache.create: capacity < 1";
  { capacity; entries = Expr_tbl.create 64; insertion_order = Queue.create ();
    changes = Hashtbl.create 16; hits = 0; misses = 0; stale = 0;
    evictions = 0 }

let note_change t ~view ~version =
  match Hashtbl.find_opt t.changes view with
  | Some l -> l := version :: !l
  | None -> Hashtbl.add t.changes view (ref [ version ])

(* Did [view] change at a version in (lo, hi]? The newest-first list is
   scanned from its head; versions at the head are the most recent, so
   the scan stops as soon as it falls to or below [lo]. Reads cluster
   near the head (sessions read at or near the latest version), keeping
   this effectively O(1) per support view. *)
let changed_between t ~view ~lo ~hi =
  match Hashtbl.find_opt t.changes view with
  | None -> false
  | Some l ->
    let rec scan = function
      | [] -> false
      | v :: rest -> if v <= lo then false else v <= hi || scan rest
    in
    scan !l

let valid_at t entry version =
  let lo = min entry.computed_at version
  and hi = max entry.computed_at version in
  not
    (List.exists
       (fun view -> changed_between t ~view ~lo ~hi)
       entry.support)

let peek t ~version expr =
  match Expr_tbl.find_opt t.entries expr with
  | None -> false
  | Some entry -> valid_at t entry version

let find t ~version expr =
  match Expr_tbl.find_opt t.entries expr with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some entry ->
    if valid_at t entry version then begin
      t.hits <- t.hits + 1;
      Some entry.result
    end
    else begin
      t.misses <- t.misses + 1;
      t.stale <- t.stale + 1;
      None
    end

let store t ~version ~support expr result =
  match Expr_tbl.find_opt t.entries expr with
  | Some entry ->
    entry.result <- result;
    entry.computed_at <- version
  | None ->
    if Expr_tbl.length t.entries >= t.capacity then begin
      (* Evict the oldest-inserted surviving entry. *)
      let rec evict () =
        let key = Queue.pop t.insertion_order in
        if Expr_tbl.mem t.entries key then begin
          Expr_tbl.remove t.entries key;
          t.evictions <- t.evictions + 1
        end
        else evict ()
      in
      evict ()
    end;
    Expr_tbl.replace t.entries expr { result; computed_at = version; support };
    Queue.push expr t.insertion_order

let stats t =
  { hits = t.hits; misses = t.misses; stale = t.stale;
    evictions = t.evictions; entries = Expr_tbl.length t.entries }
