(** Versioned result cache for the compiled-plan read path.

    Conceptually keyed by (query, version): a cached bag is the result of
    one algebra expression evaluated against one immutable warehouse
    version. Physically one entry is kept per query — the result and the
    version it was computed at — and validity at another version is
    decided by *per-view change history*: the entry is valid at version
    [v] iff no view in the query's support (its base relations, which at
    the warehouse are view names) changed in the index interval between
    the computed-at version and [v]. Change history is fed by
    {!note_change} from the views named in each committed WT's action
    lists, so invalidation is exact: a hit is bit-for-bit the result the
    kernel would recompute.

    Validity works in both directions — a session reading an older
    version can reuse a result computed at a newer one when nothing in
    between touched the query's views. *)

open Relational

type t

type stats = {
  hits : int;
  misses : int;  (** Lookups that found no valid entry. *)
  stale : int;
      (** Misses where an entry existed but a support view had changed. *)
  evictions : int;
  entries : int;  (** Current occupancy. *)
  refreshed : int;
      (** Entries advanced in place by {!commit}'s incremental refresh. *)
  refresh_fallbacks : int;
      (** Touched entries {!commit} left to invalidation because the
          commit's deltas were wider than the cached result. *)
}

val create : ?capacity:int -> unit -> t
(** [capacity] (default 512) bounds the number of distinct queries
    cached; insertion beyond it evicts the oldest-inserted entry. *)

val note_change : t -> view:string -> version:int -> unit
(** Record that [view] changed at [version]. Versions must be reported in
    nondecreasing order per view (they come from the commit sequence). *)

val commit :
  t ->
  version:int ->
  changed:string list ->
  pre:Database.t ->
  post:Database.t ->
  unit
(** Process one commit: refresh-or-invalidate, then record the change
    notes for every view in [changed] (subsuming per-view
    {!note_change} calls). [pre]/[post] are the warehouse states
    before/after the commit that produced [version]; [changed] is the
    committed WT's view set. Cached entries valid at [version - 1]
    whose support intersects [changed] are advanced to [version] in
    place by pushing the commit's per-view deltas through the query's
    compiled delta plan — exact, so a refreshed hit is bit-for-bit a
    recompute — unless the summed delta width exceeds the cached
    result's cardinality, in which case the entry is simply left to
    invalidation (counted in [refresh_fallbacks]). *)

val find : t -> version:int -> Query.Algebra.t -> Bag.t option
(** A valid cached result for the query at the version, if any. *)

val peek : t -> version:int -> Query.Algebra.t -> bool
(** Would {!find} hit? Touches no statistics — the serving layer uses
    this to pick a service-time distribution (hit vs miss) before the
    actual lookup happens at service completion. *)

val store : t -> version:int -> support:string list -> Query.Algebra.t -> Bag.t -> unit
(** Cache the query's result as computed at [version]. [support] is the
    set of view names the result depends on
    ({!Query.Algebra.base_relations} of the expression). *)

val clear : t -> unit
(** Drop every entry {e and} the per-view change history — warehouse
    crash recovery, where the version sequence is republished from
    scratch and change notes will be re-reported as it rebuilds.
    Cumulative statistics are kept. *)

val stats : t -> stats
