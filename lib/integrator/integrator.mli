(** The integrator process (Section 3.2).

    The integrator receives committed source transactions in order, numbers
    them by arrival ([U_i] is the i-th received), computes the relevant view
    set [REL_i] — the views that must be modified because of [U_i] — and
    routes: [REL_i] goes to the merge process, a copy of [U_i] goes to each
    view manager responsible for a view in [REL_i].

    This module is the integrator's pure core: numbering and REL
    computation. The WHIPS system assembly wires its outputs onto simulator
    channels. [REL] defaults to the syntactic test (views whose definition
    mentions an updated base relation); with [semantic_filter] the
    integrator additionally rules out updates that selection conditions
    prove irrelevant (the refinement of reference [7] the paper mentions). *)

open Relational

type t

val create :
  ?semantic_filter:bool ->
  ?retain_log:bool ->
  schemas:(string -> Schema.t) ->
  Query.View.t list ->
  t
(** [semantic_filter] defaults to false. [retain_log] (default false)
    keeps every stamped transaction with its REL set, so a crashed view
    manager can re-derive its state by replay (the paper's assumption that
    the integrator "logs updates for recovery", Section 3.2). *)

val views : t -> Query.View.t list

val view_names : t -> string list

val ingest : t -> Update.Transaction.t -> Update.Transaction.t * string list
(** Number the transaction by arrival order (ids start at 1, overriding any
    id the caller stamped) and compute [REL_i]. Returns the stamped
    transaction and the relevant view names (possibly empty: the update
    affects no view and needs no warehouse work). *)

val rel_set : t -> Update.Transaction.t -> string list
(** The relevant view set, without numbering side effects. *)

val ingested : t -> int
(** How many transactions have been numbered. *)

val log_head : t -> int
(** Id of the newest logged transaction (0 before any ingest). Recovery
    replays up to this point and then resumes from live deliveries. *)

val next_id : t -> int
(** The id the next ingested transaction will be stamped with. *)

val retained_log : t -> (Update.Transaction.t * string list) list
(** The retained update log, ascending by id — what a durable layer
    checkpoints. Empty unless created with [retain_log]. *)

val retained_from : t -> skip:int -> (Update.Transaction.t * string list) list
(** The retained log minus its oldest [skip] entries, ascending — the
    delta an incremental checkpoint covers. One pass over the new
    suffix, not a rebuild of the whole log. *)

val restore : t -> next_id:int -> log:(Update.Transaction.t * string list) list -> unit
(** Integrator crash recovery: adopt the recovered numbering position and
    retained log ([log] ascending by id, as {!retained_log} returns it).
    Re-ingesting a source transaction after [restore] stamps it [next_id],
    exactly as the dead incarnation would have. *)

val replay_for :
  t ->
  view:string ->
  after:int ->
  (Update.Transaction.t * string list) list
(** Retained transactions relevant to [view] with id > [after], ascending.
    Empty unless the integrator was created with [retain_log]. *)

val route_shards :
  assignment:(string -> int) ->
  string list ->
  (int * string list) list
(** [route_shards ~assignment rel] partitions a relevant-view set by the
    warehouse shard each view is assigned to: the per-shard [REL]
    subsets a distributed integrator fans out, ascending by shard id,
    views keeping their [rel] order within a shard. Shards with no
    relevant view are absent — the router never wakes an unaffected
    shard's merge. *)
