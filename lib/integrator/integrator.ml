open Relational

type t = {
  semantic_filter : bool;
  schemas : string -> Schema.t;
  views : Query.View.t list;
  mutable next_id : int;
  retain_log : bool;
  mutable log : (Update.Transaction.t * string list) list;
      (* descending id; the retained update log for crash recovery *)
}

let create ?(semantic_filter = false) ?(retain_log = false) ~schemas views =
  { semantic_filter; schemas; views; next_id = 1; retain_log; log = [] }

let views t = t.views

let view_names t = List.map Query.View.name t.views

let rel_set t txn =
  let touched = Update.Transaction.relations txn in
  let syntactic (v : Query.View.t) =
    List.exists (fun r -> Query.View.uses v r) touched
  in
  let relevant v =
    syntactic v
    && (not t.semantic_filter
       ||
       let changes = Query.Delta.of_transaction txn in
       not
         (Query.Irrelevance.provably_irrelevant ~schemas:t.schemas ~changes
            v.Query.View.def))
  in
  List.filter_map
    (fun v -> if relevant v then Some (Query.View.name v) else None)
    t.views

let ingest t txn =
  let stamped = { txn with Update.Transaction.id = t.next_id } in
  t.next_id <- t.next_id + 1;
  let rel = rel_set t stamped in
  if t.retain_log then t.log <- (stamped, rel) :: t.log;
  (stamped, rel)

let ingested t = t.next_id - 1

let log_head t = t.next_id - 1

let next_id t = t.next_id

let retained_log t = List.rev t.log

(* The newest [length log - skip] entries, ascending — what an
   incremental checkpoint wants. The log is descending, so the suffix
   (by ascending position) is a prefix here; one pass, no full rev. *)
let retained_from t ~skip =
  let take = List.length t.log - skip in
  let rec go n acc = function
    | e :: rest when n > 0 -> go (n - 1) (e :: acc) rest
    | _ -> acc
  in
  go take [] t.log

(* Crash recovery: adopt a recovered numbering position and log. [log] is
   ascending (the order a WAL yields it); the internal list is descending. *)
let restore t ~next_id ~log =
  t.next_id <- next_id;
  t.log <- List.rev log

let replay_for t ~view ~after =
  List.fold_left
    (fun acc (txn, rel) ->
      if txn.Update.Transaction.id > after && List.mem view rel then
        (txn, rel) :: acc
      else acc)
    [] t.log
(* log is descending, so the fold yields ascending id order *)

(* Shard router primitive: partition one update's relevant view set by
   the shard each view is assigned to. The fan-out is exact — a shard
   whose views are untouched never appears, so per-shard merge load
   tracks only the updates its own views care about. *)
let route_shards ~assignment rel =
  let order = ref [] in
  let buckets : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun view ->
      let s = assignment view in
      match Hashtbl.find_opt buckets s with
      | Some l -> l := view :: !l
      | None ->
        Hashtbl.add buckets s (ref [ view ]);
        order := s :: !order)
    rel;
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (List.rev_map (fun s -> (s, List.rev !(Hashtbl.find buckets s))) !order)
