(** Reliable delivery over lossy {!Channel}s: an ARQ wrapper.

    A [Reliable.t] pairs one data channel with a reverse control channel
    and implements sequence numbers, receiver-side dedup and reordering,
    cumulative acks, NACK-on-gap for fast selective retransmit, and a
    timeout/exponential-backoff retransmission loop (capped and jittered
    from the run's {!Rng}). Payloads are delivered to the application
    exactly once and in send order even when the underlying channels drop,
    duplicate, or delay messages.

    Epochs support crash-restart: a restarting *sender* calls
    {!bump_epoch}, which voids the old stream at the receiver; a restarting
    *receiver* calls {!reset_receiver} and adopts the live stream at the
    next frame, recovering anything missed out of band. *)

type params = {
  ack_timeout : float;  (** initial retransmit timeout (seconds) *)
  backoff : float;  (** timeout multiplier per retry *)
  max_timeout : float;  (** backoff cap *)
  jitter : float;  (** fractional uniform jitter added to each timeout *)
  max_retries : int;  (** give up (stop retransmitting) after this many *)
}

val default_params : params

type stats = {
  mutable msgs_sent : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable nacks_sent : int;
  mutable dups_dropped : int;
  mutable gave_up : int;
}

type 'a frame = { f_epoch : int; f_seq : int; payload : 'a }
(** Wire format on the data channel. Exposed so tests and fault plans can
    target the underlying channels directly. *)

type ctrl =
  | Ack of { a_epoch : int; upto : int }
  | Nack of { n_epoch : int; from_ : int }
      (** Wire format on the control channel. Acks are cumulative; a Nack
          requests retransmission of every unacked frame from [from_]. *)

type 'a t

val create :
  Engine.t ->
  ?name:string ->
  ?params:params ->
  ?on_give_up:(unit -> unit) ->
  rng:Rng.t ->
  latency:(unit -> float) ->
  ('a -> unit) ->
  'a t
(** [create engine ~rng ~latency deliver] builds the link. The data channel
    is named [name]; the control (ack/nack) channel [name ^ "/ack"]. Both
    sample [latency] per message and accept fault hooks. [on_give_up] fires
    at the moment the sender exhausts [max_retries] and stops
    retransmitting — link death is an event the embedding system can
    surface immediately, not just an end-of-run statistic. *)

val send : 'a t -> 'a -> unit

val data_channel : 'a t -> 'a frame Channel.t
(** The underlying data channel (attach fault hooks, read stats). *)

val ctrl_channel : 'a t -> ctrl Channel.t
(** The underlying control channel. *)

val bump_epoch : 'a t -> int
(** Restarting sender: discard unacked state, start a fresh epoch and
    sequence. Returns the new epoch. *)

val sender_epoch : 'a t -> int

val set_receiver_down : 'a t -> bool -> unit
(** While down, incoming frames are ignored entirely (no acks). *)

val reset_receiver : 'a t -> unit
(** Restarting receiver: resume the live stream at the next frame to
    arrive; missed payloads must be recovered out of band. *)

val quiescent : 'a t -> bool
(** No unacked frames, no buffered out-of-order frames, sender has not
    given up. A drained system requires every link quiescent. *)

val gave_up : 'a t -> bool

val stats : 'a t -> stats
