type decision = Deliver | Drop | Duplicate | Delay of float

type 'a t = {
  engine : Engine.t;
  name : string;
  latency : unit -> float;
  deliver : 'a -> unit;
  mutable last_delivery : float;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable fault : (int -> decision) option;
}

let create engine ?(name = "chan") ~latency deliver =
  { engine; name; latency; deliver; last_delivery = 0.0; sent = 0;
    delivered = 0; dropped = 0; duplicated = 0; fault = None }

let set_fault t hook = t.fault <- hook

let enqueue t ~extra msg =
  let lat = Float.max 0.0 (t.latency ()) +. Float.max 0.0 extra in
  let arrival = Engine.now t.engine +. lat in
  (* FIFO: never deliver before a previously sent message. *)
  let arrival = Float.max arrival t.last_delivery in
  t.last_delivery <- arrival;
  Engine.schedule_at t.engine arrival (fun () ->
      t.delivered <- t.delivered + 1;
      t.deliver msg)

let send t msg =
  t.sent <- t.sent + 1;
  match t.fault with
  | None -> enqueue t ~extra:0.0 msg
  | Some hook ->
    (match hook t.sent with
    | Deliver -> enqueue t ~extra:0.0 msg
    | Drop -> t.dropped <- t.dropped + 1
    | Duplicate ->
      t.duplicated <- t.duplicated + 1;
      enqueue t ~extra:0.0 msg;
      enqueue t ~extra:0.0 msg
    | Delay extra -> enqueue t ~extra msg)

let name t = t.name

let sent t = t.sent

let delivered t = t.delivered

let dropped t = t.dropped

let duplicated t = t.duplicated

let in_flight t = t.sent + t.duplicated - t.delivered - t.dropped
