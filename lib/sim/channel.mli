(** FIFO message channels between simulated processes.

    The MVC algorithms' only delivery assumption (Section 4: "messages from
    the same process must arrive in the order sent") is per-channel FIFO:
    latency is sampled per message, but a message never overtakes an
    earlier one on the same channel. Messages on *different* channels
    interleave arbitrarily — exactly the nondeterminism the painting
    algorithms must tolerate.

    Fault injection lives here so that the channel's own statistics stay
    truthful: a dropped message counts as [sent] and [dropped], never as
    in-flight forever. *)

type decision = Deliver | Drop | Duplicate | Delay of float
(** What the fault hook may do to one message. [Delay d] adds [d] seconds
    on top of the sampled latency (FIFO still holds, so a delayed message
    also delays everything sent after it on the same channel). *)

type 'a t

val create :
  Engine.t ->
  ?name:string ->
  latency:(unit -> float) ->
  ('a -> unit) ->
  'a t
(** [create engine ~latency deliver] builds a channel whose messages are
    handed to [deliver] after a sampled latency, preserving send order.
    Negative sampled latencies are clamped to zero. *)

val send : 'a t -> 'a -> unit

val set_fault : 'a t -> (int -> decision) option -> unit
(** Install (or clear) a fault hook. The hook is consulted on every send
    with the 1-based index of the message on this channel. *)

val name : 'a t -> string

val sent : 'a t -> int

val delivered : 'a t -> int

val dropped : 'a t -> int

val duplicated : 'a t -> int

val in_flight : 'a t -> int
(** [sent + duplicated - delivered - dropped]: copies still in the air. *)
