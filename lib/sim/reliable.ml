type params = {
  ack_timeout : float;
  backoff : float;
  max_timeout : float;
  jitter : float;
  max_retries : int;
}

let default_params =
  { ack_timeout = 0.05; backoff = 2.0; max_timeout = 0.8; jitter = 0.1;
    max_retries = 25 }

type stats = {
  mutable msgs_sent : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable nacks_sent : int;
  mutable dups_dropped : int;
  mutable gave_up : int;
}

type 'a frame = { f_epoch : int; f_seq : int; payload : 'a }

type ctrl = Ack of { a_epoch : int; upto : int } | Nack of { n_epoch : int; from_ : int }

type 'a t = {
  engine : Engine.t;
  params : params;
  rng : Rng.t;
  stats : stats;
  on_give_up : unit -> unit;
  deliver : 'a -> unit;
  mutable data : 'a frame Channel.t option;
  mutable ctrl : ctrl Channel.t option;
  (* sender state *)
  mutable s_epoch : int;
  mutable next_seq : int;
  mutable unacked : 'a frame list; (* ascending seq *)
  mutable timer_gen : int;
  mutable retries : int;
  mutable sender_gave_up : bool;
  (* receiver state *)
  mutable r_epoch : int;
  mutable expected : int;
  mutable buffer : 'a frame list; (* ascending seq *)
  mutable last_nack : int; (* seq already nacked for; suppress repeats *)
  mutable r_down : bool;
  mutable adopt_next : bool; (* restarted receiver: resync on next frame *)
}

let stats t = t.stats

let timeout_for t =
  let base =
    Float.min t.params.max_timeout
      (t.params.ack_timeout *. (t.params.backoff ** float_of_int t.retries))
  in
  base *. (1.0 +. Rng.float t.rng t.params.jitter)

let send_ctrl t c =
  match t.ctrl with None -> () | Some ch -> Channel.send ch c

let rec arm_timer t =
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  Engine.schedule_after t.engine (timeout_for t) (fun () ->
      if gen = t.timer_gen && t.unacked <> [] then begin
        t.retries <- t.retries + 1;
        if t.retries > t.params.max_retries then begin
          (* Give up: stop retransmitting. The link is no longer quiescent,
             so the system reports stuck rather than a wrong answer. *)
          t.sender_gave_up <- true;
          t.stats.gave_up <- t.stats.gave_up + 1;
          t.on_give_up ()
        end
        else begin
          List.iter
            (fun f ->
              t.stats.retransmits <- t.stats.retransmits + 1;
              match t.data with
              | None -> ()
              | Some ch -> Channel.send ch f)
            t.unacked;
          arm_timer t
        end
      end)

let disarm_timer t = t.timer_gen <- t.timer_gen + 1

let send t payload =
  let f = { f_epoch = t.s_epoch; f_seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  t.unacked <- t.unacked @ [ f ];
  t.stats.msgs_sent <- t.stats.msgs_sent + 1;
  (match t.data with None -> () | Some ch -> Channel.send ch f);
  if not t.sender_gave_up then arm_timer t

let retransmit_from t from_ =
  let to_send = List.filter (fun f -> f.f_seq >= from_) t.unacked in
  if to_send <> [] then begin
    List.iter
      (fun f ->
        t.stats.retransmits <- t.stats.retransmits + 1;
        match t.data with None -> () | Some ch -> Channel.send ch f)
      to_send;
    if not t.sender_gave_up then arm_timer t
  end

let on_ctrl t c =
  match c with
  | Ack { a_epoch; upto } ->
    if a_epoch = t.s_epoch then begin
      let before = List.length t.unacked in
      t.unacked <- List.filter (fun f -> f.f_seq > upto) t.unacked;
      if List.length t.unacked < before then begin
        t.retries <- 0;
        if t.unacked = [] then disarm_timer t
        else if not t.sender_gave_up then arm_timer t
      end
    end
  | Nack { n_epoch; from_ } ->
    if n_epoch = t.s_epoch && not t.sender_gave_up then retransmit_from t from_

(* Receiver: deliver in-order frames, buffer out-of-order, dedup the rest. *)
let rec drain_buffer t =
  match t.buffer with
  | f :: rest when f.f_seq = t.expected ->
    t.buffer <- rest;
    t.expected <- t.expected + 1;
    t.deliver f.payload;
    drain_buffer t
  | _ -> ()

let on_data t f =
  if t.r_down then ()
  else begin
    if t.adopt_next then begin
      (* Restarted receiver: resume the live stream at whatever arrives
         first. Anything missed while down is recovered out of band (the
         view manager replays the integrator's log), and later duplicates
         are dropped by the application-level id dedup. *)
      t.adopt_next <- false;
      t.r_epoch <- f.f_epoch;
      t.expected <- f.f_seq;
      t.buffer <- [];
      t.last_nack <- 0
    end;
    if f.f_epoch > t.r_epoch then begin
      (* Peer restarted with a new epoch: old expectations are void. *)
      t.r_epoch <- f.f_epoch;
      t.expected <- 1;
      t.buffer <- [];
      t.last_nack <- 0
    end;
    if f.f_epoch < t.r_epoch then ()
    else if f.f_seq < t.expected then begin
      (* Duplicate of something already delivered: re-ack so the sender can
         release it (the original ack may have been lost). *)
      t.stats.dups_dropped <- t.stats.dups_dropped + 1;
      t.stats.acks_sent <- t.stats.acks_sent + 1;
      send_ctrl t (Ack { a_epoch = t.r_epoch; upto = t.expected - 1 })
    end
    else if f.f_seq = t.expected then begin
      t.expected <- t.expected + 1;
      t.deliver f.payload;
      drain_buffer t;
      t.last_nack <- 0;
      t.stats.acks_sent <- t.stats.acks_sent + 1;
      send_ctrl t (Ack { a_epoch = t.r_epoch; upto = t.expected - 1 })
    end
    else begin
      (* Gap: buffer, and nack the missing prefix once per gap. *)
      if not (List.exists (fun g -> g.f_seq = f.f_seq) t.buffer) then
        t.buffer <-
          List.sort (fun a b -> compare a.f_seq b.f_seq) (f :: t.buffer)
      else t.stats.dups_dropped <- t.stats.dups_dropped + 1;
      if t.last_nack < t.expected then begin
        t.last_nack <- t.expected;
        t.stats.nacks_sent <- t.stats.nacks_sent + 1;
        send_ctrl t (Nack { n_epoch = t.r_epoch; from_ = t.expected })
      end
    end
  end

let create engine ?(name = "rel") ?(params = default_params)
    ?(on_give_up = fun () -> ()) ~rng ~latency deliver =
  let t =
    { engine; params; rng;
      stats =
        { msgs_sent = 0; retransmits = 0; acks_sent = 0; nacks_sent = 0;
          dups_dropped = 0; gave_up = 0 };
      on_give_up; deliver; data = None; ctrl = None; s_epoch = 0; next_seq = 1;
      unacked = []; timer_gen = 0; retries = 0; sender_gave_up = false;
      r_epoch = 0; expected = 1; buffer = []; last_nack = 0; r_down = false;
      adopt_next = false }
  in
  let data = Channel.create engine ~name ~latency (fun f -> on_data t f) in
  let ctrl =
    Channel.create engine ~name:(name ^ "/ack") ~latency (fun c -> on_ctrl t c)
  in
  t.data <- Some data;
  t.ctrl <- Some ctrl;
  t

let data_channel t = Option.get t.data

let ctrl_channel t = Option.get t.ctrl

let bump_epoch t =
  t.s_epoch <- t.s_epoch + 1;
  t.next_seq <- 1;
  t.unacked <- [];
  t.retries <- 0;
  t.sender_gave_up <- false;
  disarm_timer t;
  t.s_epoch

let sender_epoch t = t.s_epoch

let set_receiver_down t down =
  t.r_down <- down;
  if down then begin
    t.buffer <- [];
    t.last_nack <- 0
  end

let reset_receiver t =
  (* Adopt whatever the peer sends next: used when the *receiver* restarts
     and must not reject the live epoch's in-progress sequence. *)
  t.adopt_next <- true;
  t.buffer <- [];
  t.last_nack <- 0;
  t.r_down <- false

let quiescent t = t.unacked = [] && t.buffer = [] && not t.sender_gave_up

let gave_up t = t.sender_gave_up
