(** Simulated crash-consistent stable storage: one append-only log plus
    one atomically-replaced checkpoint slot.

    The log is a byte image of framed records — [length, checksum,
    payload] — with an unsynced tail buffer. {!append} only buffers;
    {!sync} makes the buffered frames durable (group commit: callers
    batch several appends per sync). {!crash} models a process crash
    mid-batch: synced bytes survive, the unsynced tail is lost except
    for a torn prefix of its first frame, which survives as garbage.
    {!recover} scans the image frame by frame, validating lengths and
    checksums, and truncates at the first bad frame — the torn tail is
    detected and discarded, never replayed.

    {!write_checkpoint} atomically replaces the checkpoint state and
    truncates the log, bounding replay work to the records appended
    since the last checkpoint. {!add_checkpoint} appends an incremental
    checkpoint segment instead — cost proportional to the delta, not to
    total history — and {!recover} returns every segment oldest
    first. *)

type stats = {
  mutable appends : int;  (** Records appended (buffered). *)
  mutable syncs : int;  (** Group-commit flushes. *)
  mutable synced_bytes : int;  (** Total bytes made durable. *)
  mutable checkpoints : int;  (** Checkpoint writes, full or incremental. *)
  mutable truncated_records : int;
      (** Durable records discarded by checkpoint truncation. *)
  mutable torn_discarded : int;
      (** Torn/corrupt tails discarded by {!recover}. *)
}

type segment =
  | Snapshot of bytes  (** a caller-marshaled checkpoint payload *)
  | Sealed of bytes list
      (** a log image adopted as a checkpoint: its framed records,
          oldest first, already validated *)

type t

val create : unit -> t

val append : t -> bytes -> unit
(** Buffer one record. Not durable until the next {!sync}. Takes
    ownership of the bytes: the caller must not mutate them after. *)

val sync : t -> unit
(** Make every buffered record durable (no-op when none are). *)

val pending : t -> int
(** Buffered records not yet synced. *)

val durable_records : t -> int
(** Records currently durable in the log (excludes the checkpoint). *)

val crash : t -> unit
(** Lose the unsynced tail. When records were buffered, the first half
    of the oldest buffered frame survives as a torn write — garbage
    bytes {!recover} must detect and cut. *)

val write_checkpoint : t -> bytes -> unit
(** Atomically replace every checkpoint segment with this one full
    image, then truncate the log (both its durable image and any
    unsynced tail). *)

val add_checkpoint : t -> bytes -> unit
(** Append one incremental checkpoint segment (a delta since the last
    segment), then truncate the log. Recovery replays all segments in
    order. *)

val seal_checkpoint : t -> unit
(** Zero-marshal incremental checkpoint: {!sync}, then adopt the
    durable image itself as the next segment — the synced frames are
    exactly the delta since the previous checkpoint. No-op on an empty
    image beyond the truncation bookkeeping. *)

val recover : t -> segment list * bytes list
(** [(segments, records)]: the checkpoint segments (oldest first) and
    every durable log record after them, oldest first. Scans the image
    validating each frame's length and checksum; the image is truncated
    in place at the first bad frame, so a recovered log continues
    appending cleanly. *)

val stats : t -> stats
