type ('ck, 'r) t = { disk : Disk.t; group_commit : int }

let create ?(group_commit = 1) () =
  if group_commit < 1 then invalid_arg "Wal.create: group_commit must be >= 1";
  { disk = Disk.create (); group_commit }

let sync t = Disk.sync t.disk

(* Records and checkpoints are immutable trees (no cycles), so skipping
   Marshal's sharing detection is safe and markedly faster. *)
let encode r = Marshal.to_bytes r [ Marshal.No_sharing ]

let append t r =
  Disk.append t.disk (encode r);
  if Disk.pending t.disk >= t.group_commit then sync t

(* One durable frame for a whole ready run: every record lands, then a
   single sync — regardless of [group_commit]. The caller must be at a
   commit boundary for all of them (they become durable together). *)
let append_group t rs =
  if rs <> [] then begin
    List.iter (fun r -> Disk.append t.disk (encode r)) rs;
    sync t
  end

let checkpoint t ck = Disk.write_checkpoint t.disk (encode ck)

let checkpoint_add t ck = Disk.add_checkpoint t.disk (encode ck)

let seal t = Disk.seal_checkpoint t.disk

let crash t = Disk.crash t.disk

let decode b : 'a = Marshal.from_bytes b 0

let recover_segments t =
  let segs, records = Disk.recover t.disk in
  ( List.filter_map
      (function Disk.Snapshot b -> Some (decode b) | Disk.Sealed _ -> None)
      segs,
    List.map decode records )

let recover_sealed t =
  let segs, records = Disk.recover t.disk in
  ( List.concat_map
      (function Disk.Sealed rs -> List.map decode rs | Disk.Snapshot _ -> [])
      segs,
    List.map decode records )

let recover t =
  let cks, records = recover_segments t in
  (* Replace-semantics view: only the newest full checkpoint matters.
     Callers mixing in [checkpoint_add] want [recover_segments]. *)
  let last = List.fold_left (fun _ ck -> Some ck) None cks in
  (last, records)

let stats t = Disk.stats t.disk

let pending t = Disk.pending t.disk
