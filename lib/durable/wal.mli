(** Typed write-ahead log over {!Disk}: Marshal-framed records of type
    ['r] with group-commit batching, plus a checkpoint slot of type
    ['ck].

    The write-ahead discipline is the caller's: append (and sync) the
    record describing a state change {e before} applying the change, and
    every applied change is reproducible from checkpoint + log replay
    after a crash. [group_commit] batches that sync — [append] flushes
    automatically once [group_commit] records are buffered, so a crash
    can lose up to a batch of appends (recovered out of band) and leaves
    a torn tail {!recover} detects and discards. *)

type ('ck, 'r) t

val create : ?group_commit:int -> unit -> ('ck, 'r) t
(** [group_commit] (default 1) is the number of buffered records that
    triggers an automatic {!sync}; 1 syncs every append. *)

val append : ('ck, 'r) t -> 'r -> unit

val append_group : ('ck, 'r) t -> 'r list -> unit
(** Append every record and sync exactly once: one durable group frame
    for a ready run released as a unit (the merge fast path's [Fused]
    policy commits a run this way). All records become durable together,
    so the caller must be at a commit boundary for the whole group; an
    empty list is a no-op and does not sync. *)

val sync : ('ck, 'r) t -> unit
(** Force the buffered records durable now (commit boundaries). *)

val checkpoint : ('ck, 'r) t -> 'ck -> unit
(** Atomically replace the checkpoint (every prior segment) and
    truncate the log. *)

val checkpoint_add : ('ck, 'r) t -> 'ck -> unit
(** Append one incremental checkpoint segment and truncate the log.
    Marshal cost is proportional to the delta being checkpointed, not
    to total history; recover with {!recover_segments}. *)

val seal : ('ck, 'r) t -> unit
(** Zero-marshal incremental checkpoint for logs whose records {e are}
    the checkpoint state: {!sync}, then adopt the durable image as the
    next segment. Recover with {!recover_sealed}. *)

val crash : ('ck, 'r) t -> unit
(** Lose the unsynced tail, leaving a torn write (see {!Disk.crash}). *)

val recover : ('ck, 'r) t -> 'ck option * 'r list
(** The newest full checkpoint and the durable records appended after
    it, oldest first, with any torn tail cut. Drops all but the last
    segment — use {!recover_segments} when {!checkpoint_add} is in
    play. *)

val recover_segments : ('ck, 'r) t -> 'ck list * 'r list
(** Every snapshot checkpoint segment oldest first, then the durable
    records appended after the last one, with any torn tail cut.
    Sealed segments are not ['ck]-typed and are skipped — a log using
    {!seal} recovers with {!recover_sealed}. *)

val recover_sealed : ('ck, 'r) t -> 'r list * 'r list
(** [(checkpointed, tail)] for a {!seal}-checkpointed log: every sealed
    segment's records in order, then the durable records appended after
    the last seal (the replay tail), with any torn tail cut. Snapshot
    segments are skipped. *)

val stats : ('ck, 'r) t -> Disk.stats

val pending : ('ck, 'r) t -> int
