type stats = {
  mutable appends : int;
  mutable syncs : int;
  mutable synced_bytes : int;
  mutable checkpoints : int;
  mutable truncated_records : int;
  mutable torn_discarded : int;
}

(* The durable image is a flat byte buffer of frames; the unsynced tail
   is a queue of payloads framed as they are flushed into it. A frame
   is [len:4][crc:4][payload], both header ints big-endian. [synced]
   shadows the image's payloads so sealing never rescans. *)
(* A checkpoint segment is either a snapshot payload the caller
   marshaled, or a sealed log image adopted wholesale — the framed
   records themselves become the checkpoint, no re-marshal. *)
type segment = Snapshot of bytes | Sealed of bytes list

type t = {
  mutable image : Buffer.t;
  mutable tail : bytes list; (* payloads, newest first; framed at sync *)
  mutable synced : bytes list; (* synced payloads, newest first *)
  mutable ck_segments : segment list; (* checkpoint segments, oldest first *)
  mutable image_records : int; (* complete frames synced into [image] *)
  stats : stats;
}

let create () =
  { image = Buffer.create 256; tail = []; synced = []; ck_segments = [];
    image_records = 0;
    stats =
      { appends = 0; syncs = 0; synced_bytes = 0; checkpoints = 0;
        truncated_records = 0; torn_discarded = 0 } }

(* The runtime's MurmurHash3 (caml_hash mixes every byte of a string,
   in C): a 30-bit detection code computed at memory bandwidth, an
   order of magnitude cheaper than a byte-at-a-time OCaml loop. Frames
   never outlive the process, so cross-version stability is moot. *)
let checksum payload = Hashtbl.hash (Bytes.unsafe_to_string payload)

let frame payload =
  let n = Bytes.length payload in
  let f = Bytes.create (8 + n) in
  Bytes.set_int32_be f 0 (Int32.of_int n);
  Bytes.set_int32_be f 4 (Int32.of_int (checksum payload));
  Bytes.blit payload 0 f 8 n;
  f

(* Takes ownership of [payload]: appended bytes must not be mutated
   afterwards (the caller marshals a fresh buffer per record). *)
let append t payload =
  t.stats.appends <- t.stats.appends + 1;
  t.tail <- payload :: t.tail

let pending t = List.length t.tail

let sync t =
  if t.tail <> [] then begin
    List.iter
      (fun payload ->
        (* Frame straight into the image: header ints, then the payload,
           with no intermediate frame allocation. *)
        let n = Bytes.length payload in
        Buffer.add_int32_be t.image (Int32.of_int n);
        Buffer.add_int32_be t.image (Int32.of_int (checksum payload));
        Buffer.add_bytes t.image payload;
        t.synced <- payload :: t.synced;
        t.image_records <- t.image_records + 1;
        t.stats.synced_bytes <- t.stats.synced_bytes + 8 + n)
      (List.rev t.tail);
    t.tail <- [];
    t.stats.syncs <- t.stats.syncs + 1
  end

let crash t =
  (match List.rev t.tail with
  | [] -> ()
  | oldest :: _ ->
    (* Torn write: half of the first in-flight frame reaches the platter
       before the power goes; the rest of the batch never does. *)
    let f = frame oldest in
    Buffer.add_subbytes t.image f 0 (Bytes.length f / 2));
  t.tail <- []

(* Walk the image, yielding valid frames; [bad] is the offset of the
   first frame that fails validation (= length of the valid prefix). *)
let scan image =
  let len = Bytes.length image in
  let rec go off acc =
    if off + 8 > len then (off, List.rev acc)
    else begin
      let n = Int32.to_int (Bytes.get_int32_be image off) in
      if n < 0 || off + 8 + n > len then (off, List.rev acc)
      else begin
        let crc = Int32.to_int (Bytes.get_int32_be image (off + 4)) in
        let payload = Bytes.sub image (off + 8) n in
        if checksum payload <> crc then (off, List.rev acc)
        else go (off + 8 + n) (payload :: acc)
      end
    end
  in
  go 0 []

(* Tracked incrementally ([sync] counts frames in, truncation and
   recovery reset it) so checkpoints never rescan the image. A torn
   crash prefix never counts: it is not a complete frame. *)
let durable_records t = t.image_records

(* Both checkpoint flavors swallow the log: records covered by the
   checkpoint image no longer need replaying, so the WAL restarts empty. *)
let truncate_log t =
  t.stats.checkpoints <- t.stats.checkpoints + 1;
  t.stats.truncated_records <- t.stats.truncated_records + t.image_records;
  t.image <- Buffer.create 256;
  t.image_records <- 0;
  t.synced <- [];
  t.tail <- []

let write_checkpoint t payload =
  t.ck_segments <- [ Snapshot (Bytes.copy payload) ];
  truncate_log t

(* Incremental checkpoint: append a delta segment instead of rewriting
   the whole image. Cost is proportional to what changed since the last
   checkpoint, not to total history — the difference between O(n) and
   O(n^2) marshaling over the life of the process. *)
let add_checkpoint t payload =
  t.ck_segments <- t.ck_segments @ [ Snapshot (Bytes.copy payload) ];
  truncate_log t

(* Zero-copy incremental checkpoint: sync, then adopt the synced
   payloads wholesale as the next segment. They ARE the delta since the
   previous checkpoint, so nothing is re-marshaled, re-framed, or even
   rescanned — sealing is a pointer swap. *)
let seal_checkpoint t =
  sync t;
  if t.synced <> [] then
    t.ck_segments <- t.ck_segments @ [ Sealed (List.rev t.synced) ];
  truncate_log t

let recover t =
  let image = Buffer.to_bytes t.image in
  let valid, records = scan image in
  if valid < Bytes.length image then begin
    (* Torn or corrupt tail: cut the image back to the valid prefix so
       post-recovery appends extend a clean log. *)
    t.stats.torn_discarded <- t.stats.torn_discarded + 1;
    let trimmed = Buffer.create (max 256 valid) in
    Buffer.add_subbytes trimmed image 0 valid;
    t.image <- trimmed
  end;
  t.image_records <- List.length records;
  t.synced <- List.rev records;
  t.tail <- [];
  (t.ck_segments, records)

let stats t = t.stats
