type color = White | Red | Gray | Black

type entry = { color : color; state : int }

exception Protocol_error of string

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type cell = { mutable color : color; mutable state : int }

(* Each live row also carries completion counters — how many of its cells
   are currently white / red — so the per-row guards the merge algorithms
   ask on every message ("does this row still wait for a list", "is this
   row fully received") are O(1) instead of a scan across the columns. *)
type row = { cells : cell array; mutable n_white : int; mutable n_red : int }

(* Besides the row-major table the VUT keeps, per column (view), the sorted
   sets of row numbers currently white and currently red. Every merge guard
   — "is an earlier list from this manager still unapplied", "which rows
   does a batched list cover", nextRed — is a query against one of these
   sets, so SPA/PA event handling costs O(log live-rows) per guard instead
   of a scan of the whole table. The sets are maintained by add_row /
   set_color / purge_row; [earlier_with] keeps the linear scan as the
   reference the indexes are property-tested against. *)
type t = {
  view_order : string array;
  view_index : (string, int) Hashtbl.t;
  mutable table : row Int_map.t;
  whites : Int_set.t array; (* per column: rows whose entry is white *)
  reds : Int_set.t array; (* per column: rows whose entry is red *)
}

let protocol_error fmt = Fmt.kstr (fun s -> raise (Protocol_error s)) fmt

let create ~views =
  let view_index = Hashtbl.create 16 in
  List.iteri
    (fun i v ->
      if Hashtbl.mem view_index v then
        invalid_arg (Printf.sprintf "Vut.create: duplicate view %s" v);
      Hashtbl.add view_index v i)
    views;
  let n = List.length views in
  { view_order = Array.of_list views; view_index; table = Int_map.empty;
    whites = Array.make n Int_set.empty; reds = Array.make n Int_set.empty }

let views t = Array.to_list t.view_order

let index t view =
  match Hashtbl.find_opt t.view_index view with
  | Some i -> i
  | None -> protocol_error "unknown view %s" view

let track_color t ~row ~col old_color new_color =
  (match old_color with
  | White -> t.whites.(col) <- Int_set.remove row t.whites.(col)
  | Red -> t.reds.(col) <- Int_set.remove row t.reds.(col)
  | Gray | Black -> ());
  match new_color with
  | White -> t.whites.(col) <- Int_set.add row t.whites.(col)
  | Red -> t.reds.(col) <- Int_set.add row t.reds.(col)
  | Gray | Black -> ()

let bump r old_color new_color =
  (match old_color with
  | White -> r.n_white <- r.n_white - 1
  | Red -> r.n_red <- r.n_red - 1
  | Gray | Black -> ());
  match new_color with
  | White -> r.n_white <- r.n_white + 1
  | Red -> r.n_red <- r.n_red + 1
  | Gray | Black -> ()

let add_row t ~row ~rel =
  if Int_map.mem row t.table then protocol_error "row %d already exists" row;
  let cells =
    Array.map (fun _ -> { color = Black; state = 0 }) t.view_order
  in
  List.iter
    (fun v ->
      let col = index t v in
      cells.(col) <- { color = White; state = 0 };
      track_color t ~row ~col Black White)
    rel;
  let n_white =
    Array.fold_left
      (fun acc c -> if c.color = White then acc + 1 else acc)
      0 cells
  in
  t.table <- Int_map.add row { cells; n_white; n_red = 0 } t.table

let has_row t row = Int_map.mem row t.table

let rows t = List.map fst (Int_map.bindings t.table)

let row_count t = Int_map.cardinal t.table

let find_row t row =
  match Int_map.find_opt row t.table with
  | None -> protocol_error "row %d is not in the VUT" row
  | Some r -> r

let cell t ~row ~view = (find_row t row).cells.(index t view)

let entry t ~row ~view =
  let c = cell t ~row ~view in
  ({ color = c.color; state = c.state } : entry)

let set_color t ~row ~view color =
  let col = index t view in
  let r = find_row t row in
  let c = r.cells.(col) in
  if c.color <> color then begin
    track_color t ~row ~col c.color color;
    bump r c.color color;
    c.color <- color
  end

let set_state t ~row ~view state = (cell t ~row ~view).state <- state

let white_count t ~row = (find_row t row).n_white

let red_count t ~row = (find_row t row).n_red

let exists_in_row t ~row f =
  let cells = (find_row t row).cells in
  let n = Array.length cells in
  let rec loop i =
    i < n
    && (f t.view_order.(i)
          ({ color = cells.(i).color; state = cells.(i).state } : entry)
       || loop (i + 1))
  in
  loop 0

let fold_row t ~row f init =
  let cells = (find_row t row).cells in
  let acc = ref init in
  Array.iteri
    (fun i c ->
      acc := f t.view_order.(i) ({ color = c.color; state = c.state } : entry) !acc)
    cells;
  !acc

let earlier_with t ~row ~view pred =
  let col = index t view in
  Int_map.fold
    (fun i r acc ->
      if i < row
         && pred ({ color = r.cells.(col).color; state = r.cells.(col).state } : entry)
      then i :: acc
      else acc)
    t.table []
  |> List.rev

let earlier_reds t ~row ~view =
  let col = index t view in
  let below, _, _ = Int_set.split row t.reds.(col) in
  Int_set.elements below

let has_earlier_red t ~row ~view =
  let col = index t view in
  match Int_set.min_elt_opt t.reds.(col) with
  | Some i -> i < row
  | None -> false

let first_earlier_white t ~row ~view =
  let col = index t view in
  match Int_set.min_elt_opt t.whites.(col) with
  | Some i when i < row -> Some i
  | _ -> None

let next_red t ~row ~view =
  let col = index t view in
  match Int_set.find_first_opt (fun i -> i > row) t.reds.(col) with
  | Some i -> i
  | None -> 0

let purge_row t row =
  (match Int_map.find_opt row t.table with
  | None -> ()
  | Some r ->
    Array.iteri (fun col c -> track_color t ~row ~col c.color Black) r.cells);
  t.table <- Int_map.remove row t.table

let purgeable t ~row =
  let r = find_row t row in
  r.n_white = 0 && r.n_red = 0

let white_rows_up_to t ~view i =
  let col = index t view in
  let below, _, _ = Int_set.split (i + 1) t.whites.(col) in
  Int_set.elements below

let color_letter = function
  | White -> "w"
  | Red -> "r"
  | Gray -> "g"
  | Black -> "b"

let render_row t ?(show_state = false) row =
  let cells = (find_row t row).cells in
  let render_cell i c =
    if show_state then
      Printf.sprintf "%s=(%s,%d)" t.view_order.(i) (color_letter c.color)
        c.state
    else Printf.sprintf "%s=%s" t.view_order.(i) (color_letter c.color)
  in
  Printf.sprintf "U%d: %s" row
    (String.concat " " (Array.to_list (Array.mapi render_cell cells)))

let render ?show_state t =
  String.concat "\n" (List.map (render_row t ?show_state) (rows t))
