type algorithm = Spa | Pa | Passthrough | Holdall

type impl =
  | Spa_impl of Spa.t
  | Pa_impl of Pa.t
  | Passthrough_impl of {
      emit : Warehouse.Wt.t -> unit;
      mutable emitted : int;
    }
  | Holdall_impl of Holdall.t

type t = { algorithm : algorithm; impl : impl }

let create algorithm ~views ~emit =
  let impl =
    match algorithm with
    | Spa -> Spa_impl (Spa.create ~views ~emit ())
    | Pa -> Pa_impl (Pa.create ~views ~emit ())
    | Passthrough -> Passthrough_impl { emit; emitted = 0 }
    | Holdall -> Holdall_impl (Holdall.create ~views ~emit ())
  in
  { algorithm; impl }

let algorithm t = t.algorithm

let receive_rel t ~row ~rel =
  match t.impl with
  | Spa_impl spa -> Spa.receive_rel spa ~row ~rel
  | Pa_impl pa -> Pa.receive_rel pa ~row ~rel
  | Passthrough_impl _ -> ()
  | Holdall_impl h -> Holdall.receive_rel h ~row ~rel

let receive_action_list t al =
  match t.impl with
  | Spa_impl spa -> Spa.receive_action_list spa al
  | Pa_impl pa -> Pa.receive_action_list pa al
  | Passthrough_impl p ->
    p.emitted <- p.emitted + 1;
    p.emit (Warehouse.Wt.make ~rows:[ al.Query.Action_list.state ] [ al ])
  | Holdall_impl h -> Holdall.receive_action_list h al

let live_rows t =
  match t.impl with
  | Spa_impl spa -> Vut.row_count (Spa.vut spa)
  | Pa_impl pa -> Vut.row_count (Pa.vut pa)
  | Passthrough_impl _ -> 0
  | Holdall_impl h -> Holdall.pending_rows h

let held_action_lists t =
  match t.impl with
  | Spa_impl spa -> Spa.held_action_lists spa
  | Pa_impl pa -> Pa.held_action_lists pa
  | Passthrough_impl _ -> 0
  | Holdall_impl h -> Holdall.held_action_lists h

let quiescent t =
  match t.impl with
  | Spa_impl spa -> Spa.quiescent spa
  | Pa_impl pa -> Pa.quiescent pa
  | Passthrough_impl _ -> true
  | Holdall_impl h -> Holdall.quiescent h

let flush t =
  match t.impl with
  | Holdall_impl h -> Holdall.flush h
  | Spa_impl _ | Pa_impl _ | Passthrough_impl _ -> ()

let wts_emitted t =
  match t.impl with
  | Spa_impl spa -> (Spa.stats spa).wts_emitted
  | Pa_impl pa -> (Pa.stats pa).wts_emitted
  | Passthrough_impl p -> p.emitted
  | Holdall_impl _ -> 0

let runs_emitted t =
  match t.impl with
  | Spa_impl spa -> (Spa.stats spa).runs_emitted
  | Pa_impl pa -> (Pa.stats pa).wts_emitted
  | Passthrough_impl p -> p.emitted
  | Holdall_impl _ -> 0

let max_run_rows t =
  match t.impl with
  | Spa_impl spa -> (Spa.stats spa).max_run_rows
  | Pa_impl pa -> (Pa.stats pa).max_rows_per_wt
  | Passthrough_impl p -> if p.emitted > 0 then 1 else 0
  | Holdall_impl _ -> 0

let algorithm_name = function
  | Spa -> "SPA"
  | Pa -> "PA"
  | Passthrough -> "passthrough"
  | Holdall -> "hold-all"
