(** The ViewUpdateTable (VUT) of Section 4.1.

    A two-dimensional table: [VUT[i,x]] corresponds to update [U_i] (row)
    and view [V_x] (column). Each entry carries a {e color}:

    - [White]: waiting for the action list for this entry;
    - [Red]: the action list has been received but not yet applied;
    - [Gray]: the action list has just been applied;
    - [Black]: the entry need not be examined (update irrelevant to view).

    The Painting Algorithm additionally uses a per-entry [state] field: when
    a strongly consistent view manager batches updates [U_i .. U_j] into one
    action list [AL^x_j], every covered entry in column [x] records
    [state = j], meaning "this row can only be applied together with row
    [j]" (Section 5.1).

    Rows are created when [REL_i] arrives and purged once fully applied, so
    the live table stays small (the paper's observation at the end of
    Example 3). *)

type color = White | Red | Gray | Black

type entry = { color : color; state : int }

type t

exception Protocol_error of string

val create : views:string list -> t
(** Fixed column set: one per view manager in the system ([VM] in the
    paper). @raise Invalid_argument on duplicate view names. *)

val views : t -> string list

val add_row : t -> row:int -> rel:string list -> unit
(** Allocate row [i] upon receipt of [REL_i]: entries for views in [rel]
    are [White] (state 0), all others [Black].
    @raise Protocol_error if the row exists or [rel] mentions an unknown
    view. *)

val has_row : t -> int -> bool

val rows : t -> int list
(** Live (unpurged) row ids, ascending. *)

val row_count : t -> int

val entry : t -> row:int -> view:string -> entry
(** @raise Protocol_error if the row is absent or the view unknown. *)

val set_color : t -> row:int -> view:string -> color -> unit

val set_state : t -> row:int -> view:string -> int -> unit

val white_count : t -> row:int -> int
(** Number of white cells in the row — O(1), maintained incrementally by
    [add_row]/[set_color]. [white_count = 0] is SPA/PA's "no list still
    outstanding for this update" guard without a column scan.
    @raise Protocol_error if the row is absent. *)

val red_count : t -> row:int -> int
(** Number of red cells in the row — O(1). A row with [white_count = 0]
    and [red_count = 0] is fully applied (purgeable).
    @raise Protocol_error if the row is absent. *)

val exists_in_row : t -> row:int -> (string -> entry -> bool) -> bool

val fold_row : t -> row:int -> (string -> entry -> 'a -> 'a) -> 'a -> 'a

val earlier_with : t -> row:int -> view:string -> (entry -> bool) -> int list
(** Live rows strictly before [row] whose entry in [view] satisfies the
    predicate, ascending. Linear scan of the live table — the generic
    reference the indexed queries below are property-tested against. *)

val earlier_reds : t -> row:int -> view:string -> int list
(** Indexed equivalent of [earlier_with] with a "red" predicate: live rows
    [< row] whose entry in the column is red, ascending. O(log live + k). *)

val has_earlier_red : t -> row:int -> view:string -> bool
(** Whether some live row [< row] is red in the column. O(log live). *)

val first_earlier_white : t -> row:int -> view:string -> int option
(** Smallest live row [< row] whose entry in the column is white.
    O(log live). *)

val next_red : t -> row:int -> view:string -> int
(** [nextRed(i,x)]: the smallest live row number greater than [row] whose
    entry in column [view] is red; 0 when none (paper convention). Answered
    from the per-column red index in O(log live). *)

val purge_row : t -> int -> unit
(** Remove a row. Absent rows are ignored. *)

val purgeable : t -> row:int -> bool
(** All entries black or gray. *)

val white_rows_up_to : t -> view:string -> int -> int list
(** Live rows [i' <= i] whose entry in the column is white, ascending —
    the rows a batched action list [AL^x_i] covers (PA's ProcessAction).
    Answered from the per-column white index. *)

val render_row : t -> ?show_state:bool -> int -> string
(** Compact rendering, e.g. ["U1: V1=w V2=r V3=b"] or with states
    ["U1: V1=(w,0) ..."] — the format the golden tests compare against the
    paper's tables. *)

val render : ?show_state:bool -> t -> string
(** All live rows, one per line. *)
