type stats = {
  rels_received : int;
  als_received : int;
  wts_emitted : int;
  empty_rels : int;
  max_live_rows : int;
  runs_emitted : int;
  max_run_rows : int;
}

type t = {
  vut : Vut.t;
  emit : Warehouse.Wt.t -> unit;
  pending : (int, Query.Action_list.t list) Hashtbl.t;
      (* WT_i: buffered action lists per row, in arrival order. *)
  watermark : (string, int) Hashtbl.t;
      (* Last action-list state received per view; states from one view
         manager must strictly increase (FIFO generation order). *)
  mutable held : int;
  mutable rels_received : int;
  mutable als_received : int;
  mutable wts_emitted : int;
  mutable empty_rels : int;
  mutable max_live_rows : int;
  mutable run_rows : int;
      (* Rows emitted by the cascade currently in flight (the ready run a
         single incoming message unlocked via nextRed chains). *)
  mutable runs_emitted : int;
  mutable max_run_rows : int;
}

let create ~views ~emit () =
  { vut = Vut.create ~views; emit; pending = Hashtbl.create 64;
    watermark = Hashtbl.create 16; held = 0;
    rels_received = 0; als_received = 0; wts_emitted = 0; empty_rels = 0;
    max_live_rows = 0; run_rows = 0; runs_emitted = 0; max_run_rows = 0 }

let vut t = t.vut

let held_action_lists t = t.held

let quiescent t = Vut.row_count t.vut = 0 && t.held = 0

let stats t =
  { rels_received = t.rels_received; als_received = t.als_received;
    wts_emitted = t.wts_emitted; empty_rels = t.empty_rels;
    max_live_rows = t.max_live_rows; runs_emitted = t.runs_emitted;
    max_run_rows = t.max_run_rows }

let buffered t row =
  match Hashtbl.find_opt t.pending row with Some als -> als | None -> []

let is_red (e : Vut.entry) = e.color = Vut.Red

(* Procedure ProcessRow(i), Algorithm 1. *)
let rec process_row t i =
  if Vut.has_row t.vut i then begin
    (* Line 1: some action list of the row has not arrived. The per-row
       completion counter answers this in O(1) — no column scan. *)
    let some_white = Vut.white_count t.vut ~row:i > 0 in
    (* Line 2: an earlier action list from the same view manager is still
       unapplied; lists must reach the warehouse in generation order. A row
       with no red cells cannot be blocked, so the counter short-circuits
       the per-column index probes. *)
    let blocked_by_earlier =
      Vut.red_count t.vut ~row:i > 0
      && Vut.exists_in_row t.vut ~row:i (fun view e ->
             is_red e && Vut.has_earlier_red t.vut ~row:i ~view)
    in
    if not (some_white || blocked_by_earlier) then begin
      (* Line 3: red -> gray. *)
      List.iter
        (fun view ->
          if is_red (Vut.entry t.vut ~row:i ~view) then
            Vut.set_color t.vut ~row:i ~view Vut.Gray)
        (Vut.views t.vut);
      (* Line 4: apply WT_i as a single warehouse transaction. *)
      let actions = buffered t i in
      Hashtbl.remove t.pending i;
      t.held <- t.held - List.length actions;
      t.wts_emitted <- t.wts_emitted + 1;
      t.run_rows <- t.run_rows + 1;
      t.emit (Warehouse.Wt.make ~rows:[ i ] actions);
      (* Line 5: applying this row may enable later rows. *)
      List.iter
        (fun view ->
          if (Vut.entry t.vut ~row:i ~view).color = Vut.Gray then begin
            let next = Vut.next_red t.vut ~row:i ~view in
            if next <> 0 then process_row t next
          end)
        (Vut.views t.vut);
      (* Line 6: purge. *)
      Vut.purge_row t.vut i
    end
  end

(* Procedure ProcessAction(AL^x_i), Algorithm 1. *)
let process_action t (al : Query.Action_list.t) =
  let entry = Vut.entry t.vut ~row:al.state ~view:al.view in
  (match entry.color with
  | Vut.White -> ()
  | Vut.Red | Vut.Gray | Vut.Black ->
    raise
      (Vut.Protocol_error
         (Printf.sprintf
            "SPA: unexpected action list for row %d view %s (entry not white)"
            al.state al.view)));
  (* Gap detection: with complete managers and FIFO channels, every
     relevant earlier row's list arrives before this one; an earlier white
     entry in this column can only mean a lost message. Applying this list
     anyway would put the view's operations out of generation order —
     detect the loss instead of corrupting the warehouse. *)
  (match Vut.first_earlier_white t.vut ~row:al.state ~view:al.view with
  | None -> ()
  | Some missing ->
    raise
      (Vut.Protocol_error
         (Printf.sprintf
            "SPA: action list for row %d view %s arrived while row %d is \
             still waiting for the same manager (lost message?)"
            al.state al.view missing)));
  Vut.set_color t.vut ~row:al.state ~view:al.view Vut.Red;
  process_row t al.state

(* One incoming message unlocks at most one cascade of emissions (a ready
   run); close it out so run lengths feed the merge batch histogram. *)
let finish_run t =
  if t.run_rows > 0 then begin
    t.runs_emitted <- t.runs_emitted + 1;
    t.max_run_rows <- max t.max_run_rows t.run_rows;
    t.run_rows <- 0
  end

let receive_rel t ~row ~rel:views =
  t.rels_received <- t.rels_received + 1;
  if views = [] then
    (* A transaction relevant to no view: nothing will ever arrive for it,
       and no warehouse work is needed. *)
    t.empty_rels <- t.empty_rels + 1
  else begin
    Vut.add_row t.vut ~row ~rel:views;
    t.max_live_rows <- max t.max_live_rows (Vut.row_count t.vut);
    List.iter (process_action t) (buffered t row);
    finish_run t
  end

let check_watermark t (al : Query.Action_list.t) =
  let last =
    match Hashtbl.find_opt t.watermark al.view with Some s -> s | None -> 0
  in
  if al.state <= last then
    raise
      (Vut.Protocol_error
         (Printf.sprintf
            "SPA: action list for view %s at state %d arrived at or below \
             the previous state %d"
            al.view al.state last));
  Hashtbl.replace t.watermark al.view al.state

let receive_action_list t (al : Query.Action_list.t) =
  check_watermark t al;
  t.als_received <- t.als_received + 1;
  t.held <- t.held + 1;
  let existing = buffered t al.state in
  Hashtbl.replace t.pending al.state (existing @ [ al ]);
  if Vut.has_row t.vut al.state then begin
    process_action t al;
    finish_run t
  end
