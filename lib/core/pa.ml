module Int_set = Set.Make (Int)

type stats = {
  rels_received : int;
  als_received : int;
  wts_emitted : int;
  empty_rels : int;
  max_live_rows : int;
  max_rows_per_wt : int;
}

type t = {
  vut : Vut.t;
  emit : Warehouse.Wt.t -> unit;
  pending : (int, Query.Action_list.t list) Hashtbl.t;
  watermark : (string, int) Hashtbl.t;
      (* Last action-list state received per view; states from one view
         manager must strictly increase. *)
  mutable apply_rows : Int_set.t;
  mutable held : int;
  mutable rels_received : int;
  mutable als_received : int;
  mutable wts_emitted : int;
  mutable empty_rels : int;
  mutable max_live_rows : int;
  mutable max_rows_per_wt : int;
}

let create ~views ~emit () =
  { vut = Vut.create ~views; emit; pending = Hashtbl.create 64;
    watermark = Hashtbl.create 16; apply_rows = Int_set.empty; held = 0; rels_received = 0;
    als_received = 0; wts_emitted = 0; empty_rels = 0; max_live_rows = 0;
    max_rows_per_wt = 0 }

let vut t = t.vut

let held_action_lists t = t.held

let quiescent t = Vut.row_count t.vut = 0 && t.held = 0

let stats t =
  { rels_received = t.rels_received; als_received = t.als_received;
    wts_emitted = t.wts_emitted; empty_rels = t.empty_rels;
    max_live_rows = t.max_live_rows; max_rows_per_wt = t.max_rows_per_wt }

let buffered t row =
  match Hashtbl.find_opt t.pending row with Some als -> als | None -> []

let is_red (e : Vut.entry) = e.color = Vut.Red

(* Collection phase of ProcessRow (Lines 1-5 of Algorithm 2): accumulate
   into [apply_rows] the closure of rows that must be applied together with
   [i], returning false as soon as some required row cannot be applied
   (action list missing, or REL not yet arrived).

   The closure rules are the paper's: (Line 4) for every red entry of the
   row, every earlier red entry in the same column joins — lists from one
   view manager reach the warehouse in generation order; (Line 5) every
   forward state pointer joins — a batched list is applied atomically with
   all the rows it covers.

   Deviation from the paper's pseudocode, which places the application
   (Lines 6-7) inside the recursive procedure: a recursive invocation that
   completes would apply the accumulated set before its *callers* have run
   their own Line-5 checks, tearing a batch whose pointer had not been
   chased yet. We therefore only collect here and apply once, at the top
   level, after the whole closure is validated. On the paper's own
   Example 5 both readings coincide; see test/test_pa.ml for a regression
   case where they differ. *)
let rec collect t i =
  if Int_set.mem i t.apply_rows then true
  else if not (Vut.has_row t.vut i) then false
  else if Vut.white_count t.vut ~row:i > 0 then false
  else begin
    t.apply_rows <- Int_set.add i t.apply_rows;
    let views = Vut.views t.vut in
    List.for_all
      (fun view ->
        if is_red (Vut.entry t.vut ~row:i ~view) then
          List.for_all (collect t) (Vut.earlier_reds t.vut ~row:i ~view)
        else true)
      views
    && List.for_all
         (fun view ->
           let e = Vut.entry t.vut ~row:i ~view in
           if is_red e && e.state > i then collect t e.state else true)
         views
  end

(* Lines 6-10 of Algorithm 2: gray the closure, emit it as one warehouse
   transaction, rescan for newly enabled rows, purge. *)
let rec apply_closure t =
  let views = Vut.views t.vut in
  let rows = Int_set.elements t.apply_rows in
  t.apply_rows <- Int_set.empty;
  List.iter
    (fun j ->
      List.iter
        (fun view ->
          if is_red (Vut.entry t.vut ~row:j ~view) then
            Vut.set_color t.vut ~row:j ~view Vut.Gray)
        views)
    rows;
  let actions = List.concat_map (fun j -> buffered t j) rows in
  List.iter
    (fun j ->
      t.held <- t.held - List.length (buffered t j);
      Hashtbl.remove t.pending j)
    rows;
  t.wts_emitted <- t.wts_emitted + 1;
  t.max_rows_per_wt <- max t.max_rows_per_wt (List.length rows);
  t.emit (Warehouse.Wt.make ~rows actions);
  (* Line 9: applying may enable later rows; each rescan is a fresh
     top-level attempt. A row can only have become appliable because a
     cell of this closure went red -> gray in one of its columns, so the
     rescan probes nextRed from the closure's own gray cells instead of
     scanning the whole table: any extra target the full scan would have
     produced is either already purged or still blocked, and no-ops. *)
  let targets =
    List.concat_map
      (fun row ->
        List.filter_map
          (fun view ->
            let e = Vut.entry t.vut ~row ~view in
            if e.color = Vut.Gray then
              let next = Vut.next_red t.vut ~row ~view in
              if next <> 0 then Some next else None
            else None)
          views)
      rows
  in
  List.iter (top_process_row t) (List.sort_uniq Int.compare targets);
  (* Line 10: only the closure's rows can have newly become purgeable
     (every cell gray or black after Line 6), so purge exactly those —
     descendant rescans purge their own closures. *)
  List.iter
    (fun row ->
      if Vut.has_row t.vut row && Vut.purgeable t.vut ~row then
        Vut.purge_row t.vut row)
    rows

and top_process_row t i =
  t.apply_rows <- Int_set.empty;
  if Vut.has_row t.vut i then
    if collect t i then apply_closure t else t.apply_rows <- Int_set.empty

(* Procedure ProcessAction(AL^x_j), Algorithm 2. *)
let process_action t (al : Query.Action_list.t) =
  let entry = Vut.entry t.vut ~row:al.state ~view:al.view in
  (match entry.color with
  | Vut.White -> ()
  | Vut.Red | Vut.Gray | Vut.Black ->
    raise
      (Vut.Protocol_error
         (Printf.sprintf
            "PA: unexpected action list for row %d view %s (entry not white)"
            al.state al.view)));
  List.iter
    (fun i' ->
      Vut.set_color t.vut ~row:i' ~view:al.view Vut.Red;
      Vut.set_state t.vut ~row:i' ~view:al.view al.state)
    (Vut.white_rows_up_to t.vut ~view:al.view al.state);
  top_process_row t al.state

let receive_rel t ~row ~rel:views =
  t.rels_received <- t.rels_received + 1;
  if views = [] then t.empty_rels <- t.empty_rels + 1
  else begin
    Vut.add_row t.vut ~row ~rel:views;
    t.max_live_rows <- max t.max_live_rows (Vut.row_count t.vut);
    List.iter (process_action t) (buffered t row)
  end

let check_watermark t (al : Query.Action_list.t) =
  let last =
    match Hashtbl.find_opt t.watermark al.view with Some s -> s | None -> 0
  in
  if al.state <= last then
    raise
      (Vut.Protocol_error
         (Printf.sprintf
            "PA: action list for view %s at state %d arrived at or below \
             the previous state %d"
            al.view al.state last));
  Hashtbl.replace t.watermark al.view al.state

let receive_action_list t (al : Query.Action_list.t) =
  check_watermark t al;
  t.als_received <- t.als_received + 1;
  t.held <- t.held + 1;
  let existing = buffered t al.state in
  Hashtbl.replace t.pending al.state (existing @ [ al ]);
  if Vut.has_row t.vut al.state then process_action t al
