(* Union-find over view indices. *)
let groups views =
  let n = List.length views in
  let view_arr = Array.of_list views in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  (* Link views through the base relations they use. *)
  let by_relation = Hashtbl.create 16 in
  Array.iteri
    (fun i v ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt by_relation r with
          | Some j -> union i j
          | None -> Hashtbl.add by_relation r i)
        (Query.View.base_relations v))
    view_arr;
  let buckets = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i v ->
      let root = find i in
      match Hashtbl.find_opt buckets root with
      | Some members ->
        Hashtbl.replace buckets root (v :: members)
      | None ->
        Hashtbl.add buckets root [ v ];
        order := root :: !order)
    view_arr;
  List.rev_map (fun root -> List.rev (Hashtbl.find buckets root)) !order

let coarsen_unconstrained ?(weight = fun _ -> 1) ~max_groups fine =
  if max_groups < 1 then invalid_arg "Partition.coarsen: max_groups < 1";
  if List.length fine <= max_groups then fine
  else begin
    (* Heaviest-first greedy bin packing into max_groups bins, by total
       view weight (evaluation-cost estimate; default 1 per view keeps the
       historical view-count balancing). *)
    let weight_of group =
      List.fold_left (fun acc v -> acc + max 0 (weight v)) 0 group
    in
    let weighted = List.map (fun g -> (weight_of g, g)) fine in
    let sorted =
      (* Stable: equal-weight groups keep their input order, so results
         are deterministic for any weight function. *)
      List.stable_sort (fun (wa, _) (wb, _) -> Int.compare wb wa) weighted
    in
    let bins = Array.make max_groups [] in
    let bin_size = Array.make max_groups 0 in
    let smallest_bin () =
      let best = ref 0 in
      Array.iteri (fun i s -> if s < bin_size.(!best) then best := i) bin_size;
      !best
    in
    List.iter
      (fun (w, group) ->
        let b = smallest_bin () in
        bins.(b) <- bins.(b) @ group;
        bin_size.(b) <- bin_size.(b) + w)
      sorted;
    List.filter (fun g -> g <> []) (Array.to_list bins)
  end

(* With a shard-affinity constraint, bin-packing happens inside each
   affinity class separately, so no output group ever mixes views pinned
   to different shards — a parallel merge group must never straddle a
   shard boundary (its two halves would live in different processes).
   The [max_groups] budget is shared across classes: every class keeps at
   least one group, and spare bins go greedily to the densest class
   (highest weight per bin already granted), which is the same
   makespan-greedy instinct as the unconstrained packing. *)
let coarsen ?(weight = fun _ -> 1) ?affinity ~max_groups fine =
  match affinity with
  | None -> coarsen_unconstrained ~weight ~max_groups fine
  | Some key_of ->
    if max_groups < 1 then invalid_arg "Partition.coarsen: max_groups < 1";
    (* Every fine group must be affinity-pure: its views share one base
       relation closure, so splitting it across shards is impossible. *)
    let class_of group =
      match group with
      | [] -> invalid_arg "Partition.coarsen: empty fine group"
      | v :: rest ->
        let k = key_of v in
        List.iter
          (fun v' ->
            if key_of v' <> k then
              (* Name the whole offending group, with each member's
                 shard: "V3" alone tells you nothing when debugging a
                 tenant assignment — the conflict is between members. *)
              let members =
                String.concat ", "
                  (List.map
                     (fun m ->
                       Printf.sprintf "%s->shard %d" (Query.View.name m)
                         (key_of m))
                     group)
              in
              invalid_arg
                (Printf.sprintf
                   "Partition.coarsen: fine group {%s} straddles shards %d \
                    and %d (views %s and %s share a base-relation closure \
                    but are pinned to different shards; views sharing base \
                    relations must share a shard)"
                   members k (key_of v') (Query.View.name v)
                   (Query.View.name v')))
          rest;
        k
    in
    (* Classes in first-occurrence order, each a list of fine groups. *)
    let order = ref [] in
    let classes : (int, Query.View.t list list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun group ->
        let k = class_of group in
        match Hashtbl.find_opt classes k with
        | Some l -> l := group :: !l
        | None ->
          Hashtbl.add classes k (ref [ group ]);
          order := k :: !order)
      fine;
    let order = List.rev !order in
    let n_classes = List.length order in
    if n_classes = 0 then []
    else begin
      let budget = max max_groups n_classes in
      let class_weight k =
        List.fold_left
          (fun acc g ->
            acc + List.fold_left (fun a v -> a + max 0 (weight v)) 0 g)
          0
          !(Hashtbl.find classes k)
      in
      let weights = List.map (fun k -> (k, max 1 (class_weight k))) order in
      let quotas = Hashtbl.create 8 in
      List.iter (fun k -> Hashtbl.replace quotas k 1) order;
      for _ = 1 to budget - n_classes do
        (* Grant the spare bin to the densest class (ties: first class). *)
        let density k =
          float_of_int (List.assoc k weights)
          /. float_of_int (Hashtbl.find quotas k)
        in
        let best =
          List.fold_left
            (fun best k ->
              match best with
              | None -> Some k
              | Some b -> if density k > density b then Some k else best)
            None order
        in
        match best with
        | Some k -> Hashtbl.replace quotas k (Hashtbl.find quotas k + 1)
        | None -> ()
      done;
      List.concat_map
        (fun k ->
          let fine_k = List.rev !(Hashtbl.find classes k) in
          coarsen_unconstrained ~weight ~max_groups:(Hashtbl.find quotas k)
            fine_k)
        order
    end

let route groups rel =
  List.concat
    (List.mapi
       (fun i group ->
         if List.exists (fun v -> List.mem (Query.View.name v) rel) group
         then [ i ]
         else [])
       groups)
