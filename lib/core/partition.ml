(* Union-find over view indices. *)
let groups views =
  let n = List.length views in
  let view_arr = Array.of_list views in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  (* Link views through the base relations they use. *)
  let by_relation = Hashtbl.create 16 in
  Array.iteri
    (fun i v ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt by_relation r with
          | Some j -> union i j
          | None -> Hashtbl.add by_relation r i)
        (Query.View.base_relations v))
    view_arr;
  let buckets = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i v ->
      let root = find i in
      match Hashtbl.find_opt buckets root with
      | Some members ->
        Hashtbl.replace buckets root (v :: members)
      | None ->
        Hashtbl.add buckets root [ v ];
        order := root :: !order)
    view_arr;
  List.rev_map (fun root -> List.rev (Hashtbl.find buckets root)) !order

let coarsen ?(weight = fun _ -> 1) ~max_groups fine =
  if max_groups < 1 then invalid_arg "Partition.coarsen: max_groups < 1";
  if List.length fine <= max_groups then fine
  else begin
    (* Heaviest-first greedy bin packing into max_groups bins, by total
       view weight (evaluation-cost estimate; default 1 per view keeps the
       historical view-count balancing). *)
    let weight_of group =
      List.fold_left (fun acc v -> acc + max 0 (weight v)) 0 group
    in
    let weighted = List.map (fun g -> (weight_of g, g)) fine in
    let sorted =
      (* Stable: equal-weight groups keep their input order, so results
         are deterministic for any weight function. *)
      List.stable_sort (fun (wa, _) (wb, _) -> Int.compare wb wa) weighted
    in
    let bins = Array.make max_groups [] in
    let bin_size = Array.make max_groups 0 in
    let smallest_bin () =
      let best = ref 0 in
      Array.iteri (fun i s -> if s < bin_size.(!best) then best := i) bin_size;
      !best
    in
    List.iter
      (fun (w, group) ->
        let b = smallest_bin () in
        bins.(b) <- bins.(b) @ group;
        bin_size.(b) <- bin_size.(b) + w)
      sorted;
    List.filter (fun g -> g <> []) (Array.to_list bins)
  end

let route groups rel =
  List.concat
    (List.mapi
       (fun i group ->
         if List.exists (fun v -> List.mem (Query.View.name v) rel) group
         then [ i ]
         else [])
       groups)
