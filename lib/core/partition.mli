(** Distributing the merge process (Section 6.1).

    When the merge process becomes a bottleneck it can be split: partition
    the view managers into groups such that the base relations used by one
    group's views are disjoint from those of every other group, and give
    each group its own merge process (Figure 3). Updates then never span
    groups, so the merges never need to coordinate.

    The finest such partition is the set of connected components of the
    "shares a base relation" graph over views, computed here by union-find.
    [coarsen] rebalances components into at most [max_groups] groups (the
    deployment knob benchmark P4 sweeps). *)

val groups : Query.View.t list -> Query.View.t list list
(** Finest disjoint-base-relation partition; singleton input gives a
    singleton group. Group order follows first view occurrence; views keep
    their input order within a group. *)

val coarsen :
  ?weight:(Query.View.t -> int) ->
  ?affinity:(Query.View.t -> int) ->
  max_groups:int ->
  Query.View.t list list ->
  Query.View.t list list
(** Merge the finest groups into at most [max_groups] groups, balancing by
    total view weight (heaviest-first greedy bin packing). [weight] is an
    estimated per-view evaluation cost — the system passes the summed
    cardinality of the view's base relations so parallel merge groups get
    even work; the default weight of 1 balances by raw view count.
    Negative weights are clamped to 0. The disjointness property is
    preserved (unions of disjoint groups stay mutually disjoint).

    [affinity], when given, is a hard shard-assignment constraint: views
    mapping to different affinity keys are never packed into the same
    group (a parallel merge group must not straddle a warehouse shard).
    Packing then runs inside each affinity class with a shared bin
    budget — every class keeps at least one group, spare bins go to the
    densest class — so the result may have up to
    [max max_groups n_classes] groups (each class needs one).
    @raise Invalid_argument if [max_groups < 1], or if a fine group mixes
    affinity keys (views sharing base relations must share a shard). *)

val route : Query.View.t list list -> string list -> int list
(** [route groups rel] lists the indices of groups containing at least one
    of the view names in [rel] — the merges an update's REL must reach. *)
