(** The Simple Painting Algorithm (Algorithm 1, Section 4).

    SPA is the merge-process algorithm for systems whose view managers are
    all {e complete}: each relevant update [U_i] yields exactly one action
    list [AL^x_i] per relevant view [V_x]. SPA holds arriving action lists
    in the VUT and releases the full set for row [i] as a single warehouse
    transaction as soon as (Line 1) every action list of the row has
    arrived and (Line 2) no earlier unapplied action list exists in any of
    the row's columns — so action lists from one view manager are applied
    in generation order. Rows over disjoint views may be applied out of
    update order (Example 3), which is consistent because the corresponding
    source transactions commute.

    Theorem 4.1: SPA is complete under MVC. SPA is also {e prompt}: a row
    is applied at the earliest event after which applying it cannot violate
    consistency (the tests check this by construction: emission happens
    synchronously inside the enabling [receive_*] call). *)

type stats = {
  rels_received : int;
  als_received : int;
  wts_emitted : int;
  empty_rels : int;  (** Transactions relevant to no view. *)
  max_live_rows : int;  (** High-water mark of the VUT. *)
  runs_emitted : int;
      (** Cascades: maximal groups of rows released by one incoming
          message via nextRed chains (the merge fast path's ready runs). *)
  max_run_rows : int;  (** Longest such cascade, in rows. *)
}

type t

val create : views:string list -> emit:(Warehouse.Wt.t -> unit) -> unit -> t
(** [emit] is invoked synchronously with each warehouse transaction, in
    the order SPA releases them; the caller owns commit sequencing (see
    {!Warehouse.Submitter}). *)

val receive_rel : t -> row:int -> rel:string list -> unit
(** Deliver [REL_i] from the integrator.
    @raise Vut.Protocol_error on duplicate rows or unknown views. *)

val receive_action_list : t -> Query.Action_list.t -> unit
(** Deliver [AL^x_i] from view manager [x]. Arrival before [REL_i] is
    legal; the list is buffered (Section 4: "no restrictions on message
    arrival order, except that messages from the same process must arrive
    in the order sent").
    @raise Vut.Protocol_error on duplicate or misdirected action lists. *)

val vut : t -> Vut.t

val held_action_lists : t -> int
(** Action lists received but not yet released to the warehouse. *)

val quiescent : t -> bool
(** No live rows and no buffered action lists. *)

val stats : t -> stats
