(** The merge process: a uniform facade over the painting algorithms.

    The merge process "collects changes to the views, holds them until all
    affected views can be modified together, and then forwards all of the
    views' changes to the warehouse in a single warehouse transaction"
    (Section 1.2). Which algorithm it runs depends on the consistency level
    of the underlying view managers (Section 6.3): SPA when all managers
    are complete, PA when some are merely strongly consistent, and a
    pass-through when managers guarantee only convergence — the merge then
    simply forwards action lists, and the warehouse converges without
    consistent intermediate states. The pass-through also doubles as the
    failure-injection device in the test suite: running it where SPA/PA is
    required makes the consistency oracle light up. *)

type algorithm =
  | Spa  (** Simple Painting Algorithm — complete MVC. *)
  | Pa  (** Painting Algorithm — strongly consistent MVC. *)
  | Passthrough  (** Forward every action list immediately — convergent
                     only. *)
  | Holdall
      (** Buffer everything until flushed, then release row by row —
          complete but non-prompt (Section 4.4's strawman); the
          promptness baseline for the freshness benchmarks. *)

type t

val create : algorithm -> views:string list -> emit:(Warehouse.Wt.t -> unit) -> t

val algorithm : t -> algorithm

val receive_rel : t -> row:int -> rel:string list -> unit

val receive_action_list : t -> Query.Action_list.t -> unit

val live_rows : t -> int
(** Current VUT size (0 for pass-through). *)

val held_action_lists : t -> int

val quiescent : t -> bool

val flush : t -> unit
(** Release any deliberately held work (only meaningful for [Holdall];
    a no-op for the painting algorithms, which are prompt). *)

val wts_emitted : t -> int

val runs_emitted : t -> int
(** Ready runs released so far: for SPA, maximal cascades of rows unlocked
    by one incoming message; for PA, applied closures; for pass-through,
    emitted lists. 0 for hold-all. *)

val max_run_rows : t -> int
(** Longest ready run, in VUT rows. *)

val algorithm_name : algorithm -> string
