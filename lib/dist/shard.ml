open Relational

type t = {
  sh_id : int;
  views : Query.View.t list;
  merge : Mvc.Merge.t;
  store : Warehouse.Store.t;
  versions : Serve.Version_manager.t;
  managers : (string * Viewmgr.Vm.t) list;
  enqueue : (unit -> unit) -> unit;
  server_pending : unit -> int;
  submitter : Warehouse.Submitter.t;
  emitted : Warehouse.Wt.t Queue.t;
  events : int ref;
  wal_records : int ref;
}

(* Single-server FIFO queue on the simulation engine: one message in
   service at a time, each costing a sampled latency — the shard merge
   is a sequential process exactly like the whips merge server. *)
let make_server engine ~latency =
  let q = Queue.create () in
  let busy = ref false in
  let rec pump () =
    if not !busy then
      match Queue.take_opt q with
      | None -> ()
      | Some job ->
        busy := true;
        Sim.Engine.schedule_after engine (latency ()) (fun () ->
            job ();
            busy := false;
            pump ())
  in
  let enqueue job =
    Queue.add job q;
    pump ()
  in
  let pending () = Queue.length q + if !busy then 1 else 0 in
  (enqueue, pending)

let create ~engine ~id ~views ~initial ~compute_latency ~merge_latency
    ~commit_latency ~durable ?(selfmaint = false) ~al_link
    ?(on_merge_event = fun ~held:_ ~live:_ -> ())
    ?(on_commit = fun _ -> ()) () =
  let names = List.map Query.View.name views in
  let store =
    Warehouse.Store.create
      (List.map (fun v -> (Query.View.name v, Query.View.materialize initial v)) views)
  in
  let versions = Serve.Version_manager.create (Warehouse.Store.snapshot store) in
  let emitted = Queue.create () in
  let merge =
    Mvc.Merge.create Mvc.Merge.Spa ~views:names
      ~emit:(fun wt -> Queue.push wt emitted)
  in
  let wal : (unit, float * Warehouse.Wt.t) Durable.Wal.t option =
    if durable then Some (Durable.Wal.create ~group_commit:1 ()) else None
  in
  let wal_records = ref 0 in
  let submitter =
    Warehouse.Submitter.create engine ~policy:Warehouse.Submitter.Serial
      ~commit_latency ~store
      ~pre_commit:(fun ~time wt ->
        match wal with
        | None -> ()
        | Some w ->
          (* Write-ahead: the WT is durable before the store applies it. *)
          Durable.Wal.append w (time, wt);
          Durable.Wal.sync w;
          incr wal_records)
      ~on_commit:(fun wt ->
        ignore
          (Serve.Version_manager.publish versions
             ~time:(Sim.Engine.now engine)
             ~changed:(Warehouse.Wt.views wt)
             (Warehouse.Store.snapshot store));
        on_commit wt)
      ()
  in
  let drain_emitted () =
    while not (Queue.is_empty emitted) do
      Warehouse.Submitter.submit submitter (Queue.pop emitted)
    done
  in
  let enqueue, server_pending = make_server engine ~latency:merge_latency in
  let events = ref 0 in
  let merge_job body =
    enqueue (fun () ->
        incr events;
        body ();
        drain_emitted ();
        on_merge_event
          ~held:(Mvc.Merge.held_action_lists merge)
          ~live:(Mvc.Merge.live_rows merge))
  in
  let receive_al al = merge_job (fun () -> Mvc.Merge.receive_action_list merge al) in
  let managers =
    List.map
      (fun view ->
        let name = Query.View.name view in
        let send =
          al_link ~view:name ~deliver:receive_al
        in
        let vm =
          (* Self-maintaining shards keep keyed projections instead of
             full replicas; both managers emit identical action lists,
             so the shard merge, store, serving and certificate are
             untouched. *)
          if selfmaint then
            Selfmaint.Vm.create ~engine
              ~compute_latency:(fun ~batch:_ -> compute_latency ())
              ~initial ~view ~emit:send ()
          else
            Viewmgr.Complete_vm.create ~engine
              ~compute_latency:(fun ~batch:_ -> compute_latency ())
              ~initial ~view ~emit:send ()
        in
        (name, vm))
      views
  in
  { sh_id = id; views; merge; store; versions; managers; enqueue;
    server_pending; submitter; emitted; events; wal_records }

let id t = t.sh_id

let view_names t = List.map Query.View.name t.views

let store t = t.store

let versions t = t.versions

let receive t ((txn : Update.Transaction.t), rel) =
  (* The REL subset enters the merge server first: managers only start
     computing afterwards, so the merge always knows a row's paint set
     before any of its action lists arrive. *)
  t.enqueue (fun () ->
      incr t.events;
      Mvc.Merge.receive_rel t.merge ~row:txn.Update.Transaction.id ~rel);
  List.iter
    (fun name ->
      match List.assoc_opt name t.managers with
      | Some vm -> vm.Viewmgr.Vm.receive txn
      | None -> ())
    rel

let flush t =
  List.iter (fun (_, vm) -> vm.Viewmgr.Vm.flush ()) t.managers;
  Mvc.Merge.flush t.merge;
  while not (Queue.is_empty t.emitted) do
    Warehouse.Submitter.submit t.submitter (Queue.pop t.emitted)
  done

let quiescent t =
  t.server_pending () = 0
  && List.for_all (fun (_, vm) -> vm.Viewmgr.Vm.pending () = 0) t.managers
  && Queue.is_empty t.emitted
  && Warehouse.Submitter.outstanding t.submitter = 0
  && Mvc.Merge.quiescent t.merge

let merge_events t = !(t.events)

let wts_emitted t = Mvc.Merge.wts_emitted t.merge

let wal_appends t = !(t.wal_records)
