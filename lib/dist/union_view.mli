(** Cross-shard union views.

    A union view is never materialized globally: each leg is an ordinary
    materialized view living on some shard, and a read {e stitches} the
    legs' contents together at a version-vector cut (see {!Global_cut}).
    Legs must be union-compatible (identical schemas) — the multi-tenant
    workload guarantees this by giving same-kind per-tenant views the
    same attribute names. *)

type t = {
  name : string;
  legs : (int * string) list;
      (** (shard id, leg view name), ascending by shard then input
          order. *)
}

val make : name:string -> assignment:(string -> int) -> string list -> t
(** [make ~name ~assignment legs] places each leg view on its assigned
    shard. @raise Invalid_argument on an empty leg list. *)

val shards : t -> int list
(** Distinct shards holding at least one leg, ascending. *)

val stitch : t -> state_of:(int -> Relational.Database.t) -> Relational.Bag.t
(** Bag-union of every leg's contents, reading each leg from
    [state_of shard] — the warehouse state vector the cut pinned for
    that shard. *)
