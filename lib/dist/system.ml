open Relational

type config = {
  workload : Workload.Tenants.t;
  shards : int;
  arrival : Whips.System.arrival;
  latencies : Whips.System.latencies;
  reliability : Whips.System.reliability;
  fault_plan : Workload.Fault_plan.t;
  durable : bool;
  selfmaint : bool;
  union_reads : int;
  read_sessions : int;
  seed : int;
}

let default ?(shards = 2) workload =
  { workload; shards; arrival = Whips.System.Uniform 0.05;
    latencies = Whips.System.default_latencies;
    reliability = Whips.System.Off; fault_plan = Workload.Fault_plan.empty;
    durable = false; selfmaint = false; union_reads = 8; read_sessions = 2;
    seed = 42 }

type shard_result = {
  sh_id : int;
  sh_views : string list;
  sh_store : Warehouse.Store.t;
  sh_merge_events : int;
  sh_wts : int;
  sh_commits : int;
  sh_wal_appends : int;
}

type result = {
  config : config;
  sources : Source.Sources.t;
  transactions : Update.Transaction.t list;
  shards : shard_result list;
  unions : Union_view.t list;
  reads : Consistency.Checker.cut_read list;
  metrics : Whips.Metrics.t;
  stuck : bool;
}

type 'a link = { send : 'a -> unit }

let run (cfg : config) =
  if cfg.shards < 1 then invalid_arg "Dist.System: shards < 1";
  if cfg.read_sessions < 1 then invalid_arg "Dist.System: read_sessions < 1";
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create cfg.seed in
  let fault_rng = Sim.Rng.split rng in
  let link_rng = Sim.Rng.split rng in
  let arrival_rng = Sim.Rng.split rng in
  let latency_rng = Sim.Rng.split rng in
  let sample mean =
    if mean <= 0.0 then 0.0 else Sim.Rng.exponential latency_rng ~mean
  in
  let metrics = Whips.Metrics.create () in
  let scenario = cfg.workload.Workload.Tenants.scenario in
  let sources = Workload.Scenarios.sources scenario in
  let schemas = Source.Sources.schema_lookup sources in
  let views = scenario.Workload.Scenarios.views in
  let initial_db = Source.Sources.initial sources in
  let router =
    Router.create ~shards:cfg.shards
      ~tenant_of:(Workload.Tenants.tenant_of cfg.workload)
  in
  let integ = Integrator.create ~schemas views in
  (* Link plumbing: every warehouse-internal hop is a named simulator
     channel the fault plan can target, optionally wrapped in the ARQ
     layer. The sources->integ feed stays outside the plan's reach. *)
  let quiescence : (unit -> bool) list ref = ref [] in
  let link_stats : (unit -> Sim.Reliable.stats) list ref = ref [] in
  let drop_counts : (unit -> int) list ref = ref [] in
  let register ~faultable chan =
    if faultable && not (Workload.Fault_plan.is_empty cfg.fault_plan) then
      Workload.Fault_plan.attach cfg.fault_plan ~rng:fault_rng chan;
    drop_counts := (fun () -> Sim.Channel.dropped chan) :: !drop_counts
  in
  let make_link ?(faultable = true) ~name deliver =
    match cfg.reliability with
    | Whips.System.Off ->
      let ch =
        Sim.Channel.create engine ~name
          ~latency:(fun () -> sample cfg.latencies.Whips.System.message)
          deliver
      in
      register ~faultable ch;
      { send = (fun m -> Sim.Channel.send ch m) }
    | Whips.System.Acked params ->
      let rl =
        Sim.Reliable.create engine ~name ~params ~rng:(Sim.Rng.split link_rng)
          ~on_give_up:(fun () -> Atomic.incr metrics.Whips.Metrics.gave_up)
          ~latency:(fun () -> sample cfg.latencies.Whips.System.message)
          deliver
      in
      register ~faultable (Sim.Reliable.data_channel rl);
      register ~faultable (Sim.Reliable.ctrl_channel rl);
      quiescence := (fun () -> Sim.Reliable.quiescent rl) :: !quiescence;
      link_stats := (fun () -> Sim.Reliable.stats rl) :: !link_stats;
      { send = (fun m -> Sim.Reliable.send rl m) }
  in
  (* Shards, each with fault-injectable manager->merge links. *)
  let shards_arr =
    Array.init cfg.shards (fun s ->
        Shard.create ~engine ~id:s
          ~views:(Router.views_of_shard router views s)
          ~initial:initial_db
          ~compute_latency:(fun () -> sample cfg.latencies.Whips.System.compute)
          ~merge_latency:(fun () -> sample cfg.latencies.Whips.System.merge)
          ~commit_latency:(fun () -> sample cfg.latencies.Whips.System.commit)
          ~durable:cfg.durable ~selfmaint:cfg.selfmaint
          ~al_link:(fun ~view ~deliver ->
            (make_link ~name:(Printf.sprintf "%s->merge%d" view s) deliver)
              .send)
          ~on_merge_event:(fun ~held ~live ->
            Sim.Stats.Summary.add metrics.Whips.Metrics.merge_held
              (float_of_int held);
            Sim.Stats.Summary.add metrics.Whips.Metrics.merge_live_rows
              (float_of_int live))
          ())
  in
  let arrival_times : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let shard_links =
    Array.to_list
      (Array.init cfg.shards (fun s ->
           make_link ~name:(Printf.sprintf "integ->shard%d" s)
             (fun (txn, rel) -> Shard.receive shards_arr.(s) (txn, rel))))
  in
  let integrator_link =
    make_link ~faultable:false ~name:"sources->integ" (fun txn ->
        let stamped, rel = Integrator.ingest integ txn in
        Hashtbl.replace arrival_times stamped.Update.Transaction.id
          (Sim.Engine.now engine);
        let fanned = Router.fan_out router rel in
        if fanned <> [] then
          Sim.Stats.Summary.add metrics.Whips.Metrics.routed_shards
            (float_of_int (List.length fanned));
        List.iter
          (fun (s, rel_s) -> (List.nth shard_links s).send (stamped, rel_s))
          fanned)
  in
  (* Serving: a global cut over every shard's serving layer. *)
  let cut_mgr =
    Global_cut.create
      (Array.to_list
         (Array.mapi (fun s sh -> (s, Shard.versions sh)) shards_arr))
  in
  let unions =
    List.map
      (fun (name, legs) ->
        Union_view.make ~name ~assignment:(Router.assignment router) legs)
      cfg.workload.Workload.Tenants.unions
  in
  let reads_rev : Consistency.Checker.cut_read list ref = ref [] in
  let read_counter = ref 0 in
  let serve_union u =
    let session = !read_counter mod cfg.read_sessions in
    incr read_counter;
    let t0 = Sim.Engine.now engine in
    let cut = Global_cut.acquire cut_mgr ~shards:(Union_view.shards u) in
    let result = Union_view.stitch u ~state_of:(Global_cut.state_of cut) in
    reads_rev :=
      { Consistency.Checker.cr_session = session;
        cr_legs = u.Union_view.legs;
        cr_vector = Global_cut.vector cut;
        cr_result = result }
      :: !reads_rev;
    Atomic.incr metrics.Whips.Metrics.union_reads;
    Sim.Engine.schedule_after engine
      (sample cfg.latencies.Whips.System.read)
      (fun () ->
        Global_cut.release cut_mgr cut;
        Sim.Stats.Summary.add metrics.Whips.Metrics.union_read_latency
          (Sim.Engine.now engine -. t0))
  in
  (* Schedule the update script along the arrival process, tracking the
     horizon so mid-run reads can spread over it. *)
  let clock = ref 0.0 in
  let horizon = ref 0.0 in
  List.iter
    (fun updates ->
      let at =
        match cfg.arrival with
        | Whips.System.All_at_once -> 0.0
        | Whips.System.Uniform gap ->
          clock := !clock +. gap;
          !clock
        | Whips.System.Poisson rate ->
          clock := !clock +. Sim.Rng.exponential arrival_rng ~mean:(1.0 /. rate);
          !clock
      in
      horizon := Float.max !horizon at;
      Sim.Engine.schedule_at engine at (fun () ->
          let txn = Source.Sources.execute sources updates in
          Atomic.incr metrics.Whips.Metrics.transactions;
          integrator_link.send txn))
    scenario.Workload.Scenarios.script;
  if cfg.union_reads > 0 && unions <> [] then begin
    let n = cfg.union_reads in
    for i = 1 to n do
      let at = !horizon *. float_of_int i /. float_of_int (n + 1) in
      let u = List.nth unions ((i - 1) mod List.length unions) in
      Sim.Engine.schedule_at engine at (fun () -> serve_union u)
    done
  end;
  (* Drain: run, flush, re-run until every link is quiescent and every
     shard has no queued, pending, emitted or outstanding work. *)
  let drained () =
    List.for_all (fun q -> q ()) !quiescence
    && Array.for_all Shard.quiescent shards_arr
  in
  let rec drain guard =
    Sim.Engine.run engine;
    Array.iter Shard.flush shards_arr;
    Sim.Engine.run engine;
    if drained () then true else if guard = 0 then false else drain (guard - 1)
  in
  let ok = drain 1000 in
  (* Final reads: one per union view, against the drained warehouse —
     the deterministic record the smoke equivalence asserts on. *)
  List.iter serve_union unions;
  Sim.Engine.run engine;
  metrics.Whips.Metrics.completed_at <- Sim.Engine.now engine;
  (* Commit + staleness accounting from the recorded histories. *)
  Array.iter
    (fun sh ->
      let store = Shard.store sh in
      Whips.Metrics.add metrics.Whips.Metrics.commits
        (Warehouse.Store.commit_count store);
      List.iter
        (fun (c : Warehouse.Store.commit) ->
          Whips.Metrics.add metrics.Whips.Metrics.actions_applied
            (Warehouse.Wt.action_count c.Warehouse.Store.transaction);
          List.iter
            (fun row ->
              match Hashtbl.find_opt arrival_times row with
              | Some t0 ->
                Sim.Stats.Summary.add metrics.Whips.Metrics.staleness
                  (c.Warehouse.Store.time -. t0)
              | None -> ())
            c.Warehouse.Store.transaction.Warehouse.Wt.rows)
        (Warehouse.Store.commits store))
    shards_arr;
  List.iter
    (fun stats ->
      let s = stats () in
      Whips.Metrics.add metrics.Whips.Metrics.retransmits
        s.Sim.Reliable.retransmits;
      Whips.Metrics.add metrics.Whips.Metrics.acks s.Sim.Reliable.acks_sent;
      Whips.Metrics.add metrics.Whips.Metrics.nacks s.Sim.Reliable.nacks_sent;
      Whips.Metrics.add metrics.Whips.Metrics.dup_frames_dropped
        s.Sim.Reliable.dups_dropped)
    !link_stats;
  List.iter
    (fun dropped -> Whips.Metrics.add metrics.Whips.Metrics.msgs_dropped (dropped ()))
    !drop_counts;
  { config = cfg; sources; transactions = Source.Sources.transactions sources;
    shards =
      Array.to_list
        (Array.map
           (fun sh ->
             { sh_id = Shard.id sh; sh_views = Shard.view_names sh;
               sh_store = Shard.store sh;
               sh_merge_events = Shard.merge_events sh;
               sh_wts = Shard.wts_emitted sh;
               sh_commits = Warehouse.Store.commit_count (Shard.store sh);
               sh_wal_appends = Shard.wal_appends sh })
           shards_arr);
    unions; reads = List.rev !reads_rev; metrics; stuck = not ok }

let shard_verdicts r =
  let source_states = Source.Sources.states r.sources in
  let view_of =
    let all = r.config.workload.Workload.Tenants.scenario.Workload.Scenarios.views in
    fun name -> List.find (fun v -> Query.View.name v = name) all
  in
  List.filter_map
    (fun sh ->
      if sh.sh_views = [] then None
      else
        Some
          ( sh.sh_id,
            Consistency.Checker.check
              ~views:(List.map view_of sh.sh_views)
              ~transactions:r.transactions ~source_states
              ~warehouse_states:(Warehouse.Store.states sh.sh_store) ))
    r.shards

let certificate r =
  Consistency.Checker.certify_distributed
    ~shard_states:
      (List.map (fun sh -> Warehouse.Store.states sh.sh_store) r.shards)
    ~reads:r.reads

let union_contents r name =
  let u = List.find (fun u -> u.Union_view.name = name) r.unions in
  let snapshot_of s =
    Warehouse.Store.snapshot (List.nth r.shards s).sh_store
  in
  Union_view.stitch u ~state_of:snapshot_of

let merge_events_per_update r =
  let active = List.filter (fun sh -> sh.sh_views <> []) r.shards in
  let n_active = List.length active in
  let n_txns = List.length r.transactions in
  if n_active = 0 || n_txns = 0 then 0.0
  else
    float_of_int
      (List.fold_left (fun acc sh -> acc + sh.sh_merge_events) 0 active)
    /. float_of_int n_active /. float_of_int n_txns
