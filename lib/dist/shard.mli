(** One warehouse shard: a complete, self-contained MVC pipeline.

    A shard owns the views assigned to it and runs its own merge process
    (SPA over its own VUT), one {!Viewmgr.Complete_vm} per view, a
    commit submitter over a private {!Warehouse.Store}, a
    {!Serve.Version_manager} publishing every commit (the shard's leg of
    any cross-shard global cut), and — optionally — a write-ahead log
    recording each WT before the store applies it. This is the paper's
    §6.1 / Figure 3 shape: multiple cooperating merge processes, each
    responsible for a disjoint view family, never coordinating because
    the router guarantees no update spans shards.

    The merge is a single-threaded server: REL rows and action lists are
    handled one at a time, each costing a sampled merge latency — the
    per-shard bottleneck the distributed benchmark measures. *)

type t

val create :
  engine:Sim.Engine.t ->
  id:int ->
  views:Query.View.t list ->
  initial:Relational.Database.t ->
  compute_latency:(unit -> float) ->
  merge_latency:(unit -> float) ->
  commit_latency:(unit -> float) ->
  durable:bool ->
  ?selfmaint:bool ->
  al_link:
    (view:string ->
    deliver:(Query.Action_list.t -> unit) ->
    Query.Action_list.t -> unit) ->
  ?on_merge_event:(held:int -> live:int -> unit) ->
  ?on_commit:(Warehouse.Wt.t -> unit) ->
  unit ->
  t
(** [initial] is the full source state [ss_0] (managers cache the base
    relations they need from it). [selfmaint] (default false) builds
    {!Selfmaint.Vm} managers over derived auxiliary projections instead
    of {!Viewmgr.Complete_vm} full replicas — action lists, and hence
    the whole downstream shard pipeline, are identical.
    [al_link ~view ~deliver] must return a
    send function for the view manager's action-list channel whose far
    end invokes [deliver] — the system assembly supplies it so every
    manager->merge hop is a named, fault-injectable simulator link.
    [on_merge_event] fires after each merge-server event with the
    merge's held-list and live-VUT-row gauges; [on_commit] fires after a
    commit is applied and its version published. *)

val id : t -> int

val view_names : t -> string list

val store : t -> Warehouse.Store.t

val versions : t -> Serve.Version_manager.t

val receive : t -> Relational.Update.Transaction.t * string list -> unit
(** Deliver one routed update: the shard-local REL subset enters the
    merge server, then the transaction is handed to each relevant view
    manager. The REL is enqueued before any manager can emit, so the
    merge always learns a row's paint set before its action lists. *)

val flush : t -> unit
(** Flush managers and merge, then submit any emitted WTs. *)

val quiescent : t -> bool
(** Nothing queued at the merge server, no manager work pending, no
    emitted-but-unsubmitted WTs, no outstanding commits, merge VUT
    empty. *)

val merge_events : t -> int
(** Messages (RELs + action lists) the merge server has processed — the
    per-shard load the distributed benchmark tracks. *)

val wts_emitted : t -> int

val wal_appends : t -> int
(** WT records appended to the shard WAL (0 when [durable] is off). *)
