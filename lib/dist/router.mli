(** View-to-shard assignment and REL fan-out for the distributed
    warehouse.

    Views are pinned to warehouse shards by owning tenant ([tenant mod
    shards]), so a tenant's whole view family lives on one shard and a
    single-tenant source transaction touches exactly one shard — the
    property that keeps per-shard merge load flat as tenants multiply.
    The router is the integrator-side half of §6.1's multiple cooperating
    merge processes: each update's relevant-view set is split into
    per-shard subsets and only the affected shards' merges are woken. *)

type t

val create : shards:int -> tenant_of:(string -> int) -> t
(** [tenant_of] maps a view name to its owning tenant.
    @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int

val shard_of_view : t -> string -> int
(** The shard a view is assigned to. *)

val assignment : t -> string -> int
(** Same as {!shard_of_view}, shaped for
    {!Integrator.route_shards}. *)

val fan_out : t -> string list -> (int * string list) list
(** Split a relevant-view set into per-shard subsets, ascending by shard
    id; shards with no relevant view are absent (their merges never hear
    about the update). *)

val views_of_shard : t -> Query.View.t list -> int -> Query.View.t list
(** The views assigned to one shard, keeping input order. *)
