(** The distributed warehouse assembly: N shards on one simulation.

    One global source population feeds one integrator; a {!Router} fans
    each numbered update's relevant-view set to the shards whose views
    it touches, over per-shard fault-injectable links; each {!Shard}
    runs its own complete MVC pipeline (view managers, SPA merge, VUT,
    store, submitter, serving layer, optional WAL). Cross-shard
    {!Union_view}s are served by stitching per-shard legs at a
    {!Global_cut} version vector; every served union read is recorded as
    a {!Consistency.Checker.cut_read} so the run's distributed
    certificate can be re-checked after the fact, and the existing SPA
    consistency ladder is applied to each shard's own commit history. *)

type config = {
  workload : Workload.Tenants.t;
  shards : int;
  arrival : Whips.System.arrival;
  latencies : Whips.System.latencies;
      (** [message], [compute], [commit], [merge] and [read] are used;
          the rest are ignored (no Strobe managers, no result cache). *)
  reliability : Whips.System.reliability;
      (** [Acked] wraps every integ->shard and manager->merge link in
          the ARQ layer; required for runs whose fault plan drops
          messages (under [Off] a dropped routed update is simply lost
          and the run converges to the wrong warehouse). *)
  fault_plan : Workload.Fault_plan.t;
      (** Applies to the warehouse's internal links ([integ->shard*],
          [*->merge]); the sources->integ feed is the ground-truth
          boundary and is never faulted. *)
  durable : bool;
      (** Give each shard a write-ahead log recording every WT before
          its store applies it. *)
  selfmaint : bool;
      (** Build each shard's managers as {!Selfmaint.Vm} over derived
          auxiliary projections instead of {!Viewmgr.Complete_vm} full
          replicas. Trace-identical (same action lists); the shard pays
          projected storage instead of replica storage. *)
  union_reads : int;
      (** Cross-shard union reads issued while the update stream runs
          (spread uniformly over the script horizon). One final read per
          union view is always taken after the drain, so the final
          stitched contents are part of every run's record. *)
  read_sessions : int;  (** Reader sessions the reads round-robin over. *)
  seed : int;
}

val default : ?shards:int -> Workload.Tenants.t -> config
(** 2 shards, uniform arrivals, default latencies, reliability off, no
    faults, no WAL, replica managers (no selfmaint), 8 mid-run reads
    over 2 sessions, seed 42. *)

type shard_result = {
  sh_id : int;
  sh_views : string list;
  sh_store : Warehouse.Store.t;
  sh_merge_events : int;
      (** Merge-server messages (RELs + action lists) this shard
          handled. *)
  sh_wts : int;  (** Warehouse transactions its merge emitted. *)
  sh_commits : int;
  sh_wal_appends : int;
}

type result = {
  config : config;
  sources : Source.Sources.t;
  transactions : Relational.Update.Transaction.t list;
  shards : shard_result list;
  unions : Union_view.t list;
  reads : Consistency.Checker.cut_read list;
      (** Every served union read (mid-run + final), completion order. *)
  metrics : Whips.Metrics.t;
  stuck : bool;
      (** The run failed to drain — only possible with faults under
          [reliability = Off] (or a link that gave up retransmitting). *)
}

val run : config -> result

val shard_verdicts : result -> (int * Consistency.Checker.verdict) list
(** The SPA consistency ladder applied to each non-empty shard's own
    commit history (its views, the full source schedule). *)

val certificate : result -> Consistency.Checker.distributed_certificate
(** Re-check every recorded union read against the recorded per-shard
    commit sequences (see
    {!Consistency.Checker.certify_distributed}). *)

val union_contents : result -> string -> Relational.Bag.t
(** Final stitched contents of a union view (legs read from the final
    shard stores). @raise Not_found on an unknown union name. *)

val merge_events_per_update : result -> float
(** Mean merge-server messages per source transaction per non-empty
    shard — the per-shard merge load the benchmark tracks as tenants
    scale. *)
