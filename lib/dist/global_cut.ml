type t = { serving : (int * Serve.Version_manager.t) list }

type cut = (int * Serve.Version_manager.version) list

let create serving = { serving }

let manager t s =
  match List.assoc_opt s t.serving with
  | Some vm -> vm
  | None ->
    invalid_arg (Printf.sprintf "Global_cut.acquire: unknown shard %d" s)

let acquire t ~shards =
  let shards = List.sort_uniq Int.compare shards in
  List.map (fun s -> (s, Serve.Version_manager.pin_latest (manager t s))) shards

let release t cut =
  List.iter
    (fun (s, (v : Serve.Version_manager.version)) ->
      Serve.Version_manager.unpin (manager t s) v.index)
    cut

let vector cut =
  List.map
    (fun (s, (v : Serve.Version_manager.version)) -> (s, v.index))
    cut

let state_of cut s = (List.assoc s cut).Serve.Version_manager.state
