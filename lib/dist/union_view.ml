open Relational

type t = { name : string; legs : (int * string) list }

let make ~name ~assignment leg_names =
  if leg_names = [] then invalid_arg "Union_view.make: no legs";
  let legs = List.map (fun v -> (assignment v, v)) leg_names in
  (* Stable: legs on the same shard keep their input order. *)
  { name;
    legs = List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) legs }

let shards t = List.sort_uniq Int.compare (List.map fst t.legs)

let stitch t ~state_of =
  List.fold_left
    (fun acc (s, leg) ->
      Bag.union acc (Relation.contents (Database.find (state_of s) leg)))
    Bag.empty t.legs
