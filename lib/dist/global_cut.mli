(** Version-vector cuts over the per-shard serving layers.

    A cross-shard read must observe each shard at exactly one committed
    version; the cut acquires that position atomically per shard by
    pinning the newest published version of every involved shard
    ({!Serve.Version_manager.pin_latest}), so retention pruning can
    never yank a leg's snapshot while the read is in flight. The
    resulting vector is what {!Consistency.Checker.certify_distributed}
    later re-checks against the recorded commit sequences. *)

type t

type cut = (int * Serve.Version_manager.version) list
(** One pinned version per shard, ascending by shard id. *)

val create : (int * Serve.Version_manager.t) list -> t
(** The per-shard serving layers, keyed by shard id. *)

val acquire : t -> shards:int list -> cut
(** Pin the newest version of each listed shard (duplicates ignored).
    @raise Invalid_argument on an unknown shard id. *)

val release : t -> cut -> unit
(** Unpin every component (the read completed). *)

val vector : cut -> (int * int) list
(** The cut as (shard id, commit index) pairs — the shape the
    distributed certificate consumes. *)

val state_of : cut -> int -> Relational.Database.t
(** The warehouse state vector the cut pinned for one shard.
    @raise Not_found if the shard is not in the cut. *)
