type t = { n_shards : int; tenant_of : string -> int }

let create ~shards ~tenant_of =
  if shards < 1 then invalid_arg "Router.create: shards < 1";
  { n_shards = shards; tenant_of }

let shards t = t.n_shards

let shard_of_view t view = t.tenant_of view mod t.n_shards

let assignment t = shard_of_view t

let fan_out t rel = Integrator.route_shards ~assignment:(assignment t) rel

let views_of_shard t views s =
  List.filter (fun v -> shard_of_view t (Query.View.name v) = s) views
