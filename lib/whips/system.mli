(** Full-system assembly: the WHIPS-style warehouse of Figure 1 on the
    discrete-event simulator.

    [run] wires the pipeline — sources report committed transactions to the
    integrator over a FIFO channel; the integrator numbers them, sends
    [REL_i] to the merge process(es) and copies of [U_i] to the relevant
    view managers; view managers emit action lists to their merge over
    per-manager FIFO channels; merges emit warehouse transactions to the
    commit submitter — executes the scenario's script with the configured
    arrival process, drains the system, and returns everything the
    consistency oracle and the benchmarks need.

    Committed transactions are reported to the integrator in commit order
    (one shared FIFO), matching the paper's Section 2.1 assumption that the
    serializable source schedule coincides with the integrator's update
    numbering. *)

type vm_kind =
  | Complete_vm
  | Selfmaint_vm
      (** Complete, self-maintaining: the manager derives warehouse-local
          auxiliary relations (base-table replicas or keyed projections of
          join partners — {!Selfmaint.Derive}) and answers every update
          from them, emitting the same action lists as [Complete_vm] with
          zero source round trips on the steady-state path. Crash
          recovery replays the integrator log over the projected
          auxiliaries (from the auxiliary WAL checkpoint when durable),
          never re-querying the sources. *)
  | Batching_vm  (** Strongly consistent, greedy batching. *)
  | Strobe_vm  (** Strongly consistent, source-querying. *)
  | Periodic_vm of float  (** Refresh period (simulated seconds). *)
  | Convergent_vm
  | Complete_n_vm of int
  | Derived_vm of {
      aux : Query.View.t list;
      over_aux : Query.Algebra.t;
    }
      (** Maintain the view through materialized auxiliary views
          (references [12]/[8]; see {!Viewmgr.Derived_vm}). Complete. *)

type merge_kind =
  | Auto
      (** Choose per Section 6.3 from the weakest view-manager level:
          all complete -> SPA; any strongly-consistent/complete-N -> PA;
          any convergent -> pass-through. *)
  | Force_spa
  | Force_pa
  | Force_passthrough
      (** The MVC-violating baseline / convergent merge. *)
  | Force_holdall
      (** Section 4.4's non-prompt strawman: hold every action list until
          the end of the stream, then release row by row. Complete, but
          the promptness baseline for the freshness benchmarks. *)
  | Sequential
      (** The Section 1.1 strawman: one process computes every view's
          delta for an update, one update at a time, bypassing view
          managers and merge entirely. Complete, but with no
          concurrency. *)

(** How [REL_i] reaches the merge (Section 3.2): directly from the
    integrator, or carried by a relevant view manager and forwarded with
    its action lists — fewer messages, but RELs can trail other managers'
    lists, exercising the merge's buffering. *)
type rel_routing = Direct | Via_manager

type arrival =
  | All_at_once  (** Execute the whole script at time 0 (drain test). *)
  | Uniform of float  (** Fixed inter-arrival gap. *)
  | Poisson of float  (** Rate (transactions per simulated second). *)

type latencies = {
  message : float;  (** Mean channel latency (exponential). *)
  compute : float;  (** Mean per-update view-manager delta computation. *)
  commit : float;  (** Mean warehouse commit latency. *)
  query_roundtrip : float;  (** Mean source query round trip (Strobe). *)
  merge : float;  (** Mean merge-process handling cost per message; the
                      merge is a single-threaded server, so this is what
                      eventually saturates it (benchmark P2). *)
  read : float;  (** Mean per-read service cost at a reader session
                     (result-cache miss: the evaluation kernel runs). *)
  read_hit : float;
      (** Mean per-read service cost when the shared result cache will
          serve the read (no evaluation) — much cheaper than [read]. *)
}

val default_latencies : latencies

(** The read workload served by the snapshot-serving subsystem
    ({!Serve}): a population of reader sessions, an arrival process for
    their reads, and the serving policy knobs. Reads are scheduled
    independently of the update script, so read:write ratio sweeps just
    vary [n_reads] / [read_arrival] against the scenario. *)
type read_profile = {
  sessions : (Serve.Session.guarantee * int) list;
      (** Population: how many sessions per guarantee. Each session is
          one client connection; its reads are served one at a time. *)
  read_arrival : arrival;  (** Arrival process across the population. *)
  n_reads : int;
  as_of_fraction : float;
      (** Fraction of reads that are historical ([as_of]) rather than
          current. *)
  as_of_lag : float;
      (** Historical reads ask for an instant uniform in
          [now - as_of_lag, now]. *)
  read_cache : bool;  (** Share a {!Serve.Result_cache} across sessions. *)
  cache_refresh : bool;
      (** On each commit, advance still-valid cached results in place by
          pushing the commit's per-view deltas through each cached
          query's delta plan ({!Serve.Result_cache.commit}) instead of
          only invalidating them. Exact — a refreshed hit is bit-for-bit
          a recompute — with automatic fallback to invalidation when the
          deltas are wider than the cached result. On by default. *)
  serve_retention : Serve.Version_manager.retention;
  queries : Query.Algebra.t list;
      (** Query mix, drawn uniformly; [[]] means one whole-view query
          per scenario view. *)
}

val default_reads : read_profile
(** Six sessions (two per guarantee), 100 Poisson reads at 200/s, 25%
    historical reads up to 0.2 s back, cache on, keep-last-64
    retention. *)

(** Structured faults for the resilience tests.

    [Drop_action_list] loses the [nth] physical message on a view
    manager's action-list channel (injected in the channel layer, so the
    channel's [dropped] counter stays truthful). With reliability off the
    painting algorithms then either hold every dependent row forever
    (progress stops but nothing wrong is merged), raise
    [Vut.Protocol_error] (SPA), or — the dangerous case — silently
    converge to a wrong warehouse (PA); with reliability on the loss is
    detected and repaired by nack/retransmit.

    [Crash_vm] kills the view manager of [view] at the moment it would
    emit its [at_event]-th action list, losing that list and all of the
    manager's in-memory state. With [reliability = Acked] the manager
    restarts after [restart_after] simulated seconds, re-handshakes with
    the merge via an epoch number, learns the merge's watermark for its
    view, replays the integrator's retained update log to re-derive its
    cache and the missing action lists, and resumes; only [Complete_vm]
    and [Batching_vm] managers support this (log-replay recovery). With
    reliability off the manager stays dead (stuck-but-safe).

    The process crash faults kill one of the three stateful singleton
    processes on the [at_event]-th message it handles (the message is
    lost with it), wiping all of its in-memory state:

    - [Crash_merge]: the merge layer loses its VUTs, reorderers, service
      queues, buffered WTs and watermark table. Recovery restarts fresh
      merge processes, transfers the REL sets of every unsubmitted row
      from the integrator's retained log, and demands a resync from
      every view manager, which replays its action lists above the
      submitted watermark.
    - [Crash_integrator]: the integrator loses its numbering position
      and retained log. Recovery replays its checkpoint + WAL, re-routes
      the unsubmitted suffix of the restored log (receivers dedup), and
      re-fetches from the sources anything at or above the restored
      numbering position.
    - [Crash_warehouse]: the store and submitter queue die. Recovery
      replays the warehouse checkpoint + WAL into the store, republishes
      the restored version history to the serving layer (reads are
      frozen, not failed, during the outage), and then performs the
      merge restart above (submitted-but-uncommitted WTs died in the
      submitter and must be re-derived).

    Process crash runs require [Acked] reliability to recover (under
    [Off] the process stays dead: stuck-but-safe), and are restricted to
    the configuration corner whose invariants the protocol leans on:
    SPA merge, [Complete_vm] managers, [Direct] REL routing, no semantic
    filter, [Keep_all] store retention. The durable layer (WALs and
    checkpoints, see {!durability}) is forced on. *)
type fault =
  | Drop_action_list of { view : string; nth : int }
  | Crash_vm of { view : string; at_event : int; restart_after : float }
  | Crash_merge of { at_event : int; restart_after : float }
  | Crash_integrator of { at_event : int; restart_after : float }
  | Crash_warehouse of { at_event : int; restart_after : float }

(** The delivery layer under the system's channels. [Off] is the paper's
    assumption of reliable FIFO delivery — faults then corrupt or stall.
    [Acked params] wraps every inter-process channel in the
    {!Sim.Reliable} ARQ layer (sequence numbers, dedup, cumulative acks,
    NACK-on-gap, timeout retransmit with capped jittered backoff), which
    restores the MVC guarantees under message loss and duplication. *)
type reliability = Off | Acked of Sim.Reliable.params

(** Tuning for the durable layer (write-ahead logs + checkpoints) behind
    the warehouse and the integrator. The warehouse WAL records every WT
    immediately before the store applies it and syncs per append (the
    write-ahead discipline); the integrator WAL records every stamped
    transaction with its REL set under group commit. *)
type durability = {
  checkpoint_every : int;
      (** Warehouse checkpoint cadence, in commits. Each checkpoint
          atomically replaces the checkpoint slot with the full commit
          history and truncates the WAL. *)
  integ_checkpoint_every : int;
      (** Integrator checkpoint cadence, in ingested transactions. *)
  group_commit : int;
      (** Integrator WAL group-commit batch: a crash can lose up to a
          batch of unsynced appends (recovered by re-fetching from the
          sources). *)
  replay_latency : float;
      (** Simulated seconds charged per WAL-tail record replayed during
          recovery — the knob the recovery-time-vs-checkpoint-interval
          experiment sweeps. *)
}

val default_durability : durability
(** Checkpoint every 8 commits / 16 ingests, group commit 4, zero replay
    latency. *)

(** How a merge's ready run — the warehouse transactions one merge step
    releases together — reaches the commit submitter (the merge fast
    path).

    [Per_message] is the pre-fast-path baseline: every emitted WT is
    submitted individually and the store applies it in its own pass.

    [Coalesced] (the default) hands the run to the submitter as a unit
    ({!Warehouse.Submitter.submit_run}): the store plans the whole run's
    per-view timelines in one pass at the run's first commit, summing
    each view's action-list deltas ({!Relational.Signed_bag.coalesce})
    and fanning the independent per-view walks across the domain pool.
    Pure CPU batching — the simulated event schedule, every RNG draw,
    every commit, read and verdict are byte-identical to [Per_message];
    only real machine time changes.

    [Fused] is the opt-in behavioral change: each merge service event
    covers the whole queued backlog for one latency sample, and the
    resulting ready run commits as one batched warehouse transaction
    (BWT) — the paper's batching consistency level (Section 4.3), which
    skips the run's intermediate warehouse states and therefore trades
    completeness for throughput. Certified by {!fused_certificate};
    rejected in process-crash runs (recovery accounts for completed
    work per-row). Process-crash runs silently degrade [Coalesced] to
    the per-message path for the same reason — an observably identical
    downgrade. *)
type merge_batch = Per_message | Coalesced | Fused

type config = {
  scenario : Workload.Scenarios.t;
  vm_kind : vm_kind;
  vm_overrides : (string * vm_kind) list;
      (** Per-view exceptions to [vm_kind] (mixed systems, Section 6.3). *)
  merge_kind : merge_kind;
  merge_batch : merge_batch;
      (** Merge fast path (see {!merge_batch}); [Coalesced] by default. *)
  submit : Warehouse.Submitter.policy;
  arrival : arrival;
  latencies : latencies;
  merge_groups : int option;
      (** [Some k]: distribute the merge over up to [k] processes along
          the disjoint-base-relation partition (Section 6.1). [None]: one
          merge process. *)
  semantic_filter : bool;  (** Integrator irrelevance filtering. *)
  rel_routing : rel_routing;
  optimize_views : bool;
      (** Rewrite view definitions with {!Query.Optimize.optimize} before
          handing them to the view managers (semantics-preserving;
          micro-benchmarked in the ablation). *)
  faults : fault list;  (** Structured faults (see {!fault}). *)
  fault_plan : Workload.Fault_plan.t;
      (** Channel-level fault schedule: deterministic nth-message rules
          and seeded random drop/duplicate/delay rules, composable and
          matched by channel-name pattern. Applies to the warehouse's
          internal messaging only — the [sources->integ] feed is the
          ground-truth boundary (the paper assumes sources report every
          committed transaction) and is never faulted. *)
  reliability : reliability;
  durable : durability option;
      (** [Some d] turns the durable layer on with tuning [d]; [None]
          (the default) leaves it off unless a process crash fault is
          configured, which forces it on with {!default_durability}. *)
  reads : read_profile option;
      (** [Some profile] attaches the snapshot-serving subsystem: every
          warehouse commit is published as a {!Serve.Version_manager}
          version and the profile's reader sessions are run against it
          concurrently with the update stream. [None] (the default)
          disables serving entirely. *)
  store_retention : Warehouse.Store.retention;
      (** Retention for the warehouse commit history (satellite of the
          serving work; independent of [serve_retention]). The
          consistency {!verdict} replays the full state sequence, so it
          requires [Keep_all] — prune only in serving/throughput
          experiments that skip the oracle. *)
  record_timeline : bool;
      (** Record a human-readable event log (source commits, REL routing,
          action-list deliveries, warehouse commits) in the result; used
          by the CLI's [--timeline] and by debugging sessions. *)
  parallel : Parallel.Config.t;
      (** The multicore maintenance runtime. [domains > 1] runs per-view
          delta evaluation, sharded join kernels and per-group merge work
          on a shared domain pool; [domains = 1] (the default unless
          [MVC_DOMAINS] is set) executes everything inline. The knob
          never touches simulated time or RNG streams, so every domain
          count yields identical commits, reads and verdicts —
          [model_overlap] is the separate latency-model switch. *)
  shared_plans : bool;
      (** Route per-update delta evaluation through the
          {!Shared.Engine} sub-plan DAG: join-bearing subplans common
          to several views are canonicalized, materialized and
          incrementally maintained once per update instead of once per
          referring view. Per-view deltas are bit-identical to the
          unshared path, so commits, reads and verdicts are unchanged.
          The sequential runtime always honours the flag; the pipelined
          runtime applies it to [Complete_vm]-managed views on
          fault-free, unfiltered runs (every routed view must see every
          transaction touching its base relations, which drops, crashes
          and semantic filtering break) and silently falls back to
          per-view plans otherwise. Off by default. *)
  seed : int;
}

val default : Workload.Scenarios.t -> config
(** [parallel] defaults to {!Parallel.Config.default}[ ()], i.e. the
    [MVC_DOMAINS] / [MVC_SHARDS] environment knobs. *)

(** One served read, recorded in arrival order. [read_state] is the
    exact warehouse state the read was evaluated against (persistent, so
    holding it is free) — tests replay queries over it with the naive
    evaluator to cross-check the compiled/cached read path, and feed the
    deduplicated states to {!Consistency.Checker} to prove every served
    snapshot is consistent. *)
type read_record = {
  read_session : int;
  read_guarantee : Serve.Session.guarantee;
  read_query : Query.Algebra.t;
  read_as_of : float option;  (** Requested instant for historical reads. *)
  read_arrived : float;
  read_served : float;
  read_version : int;
  read_version_time : float;
  read_staleness : float;
  read_cache_hit : bool;
  read_clamped : bool;
  read_state : Relational.Database.t;
  read_result : Relational.Bag.t;
}

type serving = {
  version_manager : Serve.Version_manager.t;  (** Post-run state. *)
  result_cache : Serve.Result_cache.t option;
  reads_served : read_record list;
      (** In completion order (per session this equals arrival order —
          each session serves its reads one at a time). *)
}

(** What the durable layer did during the run — both WALs summed, plus
    the recovery counters. *)
type durability_report = {
  wal_appends : int;
  wal_syncs : int;
  wal_bytes : int;  (** Bytes made durable (the WAL-overhead headline). *)
  wal_checkpoints : int;
  wal_truncated : int;
      (** Durable records discarded by checkpoint truncation. *)
  torn_discarded : int;
      (** Torn/corrupt WAL tails detected and cut by recovery. *)
  wal_replayed : int;  (** WAL-tail records replayed by recoveries. *)
  commits_restored : int;
      (** Commits re-applied to the store by warehouse recovery. *)
  dup_wts_dropped : int;
      (** Recovery-re-derived WTs dropped at submit because every row
          was already committed (the idempotence guard). *)
  recovery_time : float;
      (** Total simulated seconds from crash to recovered, summed over
          recoveries. *)
}

type result = {
  config : config;
  store : Warehouse.Store.t;
  sources : Source.Sources.t;
  transactions : Relational.Update.Transaction.t list;
  metrics : Metrics.t;
  merge_algorithm : string;
  timeline : (float * string) list;
      (** Chronological event log (empty unless [record_timeline]). *)
  stuck : bool;
      (** True when an injected fault prevented the run from draining
          (only possible with faults configured; otherwise {!Stuck}
          raises). *)
  serving : serving option;
      (** Present iff [config.reads] was set. *)
  durability : durability_report option;
      (** Present iff the durable layer was on (explicitly via
          [config.durable] or forced by a process crash fault). *)
  fused : (int list list * (int list * Query.Action_list.t list) list list)
            option;
      (** Present iff the run used [merge_batch = Fused]: the merge's
          emission sequence (per emitted WT, in order, its covered
          rows) and, per fused batch in release order, the constituent
          (rows, action lists) parts — the raw material
          {!fused_certificate} feeds to the checker. *)
}

exception Stuck of string
(** The system failed to drain without an injected fault — always a bug. *)

val run : config -> result

val verdict : result -> Consistency.Checker.verdict
(** Run the consistency oracle on the recorded source and warehouse state
    sequences. *)

val verdict_with_witness :
  result -> Consistency.Checker.verdict * Consistency.Checker.witness option
(** The oracle verdict together with the per-state mapping to source
    states it found (see {!Consistency.Checker.witness}). *)

val view_contents : result -> string -> Relational.Bag.t
(** Final contents of a view at the warehouse. *)

val recovery_certificate : result -> Consistency.Checker.recovery_certificate
(** Judge the run's {e application} history across restarts: no committed
    application lost, none applied twice, and every monotonic-by-contract
    session's served versions nondecreasing (see
    {!Consistency.Checker.certify_recovery}). Expected applications are
    the syntactic relevance pairs — each source transaction crossed with
    the views whose definitions mention one of its base relations —
    which is exactly the action-list set complete managers emit, so the
    certificate is meaningful for the crash-fault configuration corner
    (and any other all-[Complete_vm], unfiltered run). *)

val fused_certificate : result -> Consistency.Checker.fused_certificate
(** Judge a [merge_batch = Fused] run's batching: every fused commit
    covers exactly its recorded parts, no source row was fused twice,
    the batches partition the merge's emission sequence, and replaying
    each batch's parts one by one from its recorded pre-state reproduces
    its recorded post-state (see
    {!Consistency.Checker.certify_fused}). Requires [Keep_all] store
    retention (the replay walks every commit).
    @raise Invalid_argument if the run did not use [Fused] or the
    commit history was pruned. *)
