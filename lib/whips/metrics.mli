(** Run metrics collected by the system assembly — the quantities the
    paper's Section 7 proposes to study: the effect of merging on view
    freshness, and the load at which the merge process becomes a
    bottleneck — plus the resilience counters (channel drops, retransmits,
    crash recoveries) folded in from the fault-injection layer. *)

type t = {
  staleness : Sim.Stats.Summary.t;
      (** Per covered update: warehouse commit time minus source commit
          time — how long the update's effect took to become visible. *)
  merge_held : Sim.Stats.Summary.t;
      (** Action lists held at the merge, sampled after each merge event. *)
  merge_live_rows : Sim.Stats.Summary.t;
      (** Live VUT rows, sampled after each merge event. *)
  vm_queue : Sim.Stats.Summary.t;
      (** Pending work across view managers, sampled on update routing. *)
  read_latency : Sim.Stats.Summary.t;
      (** Per served read: completion time minus arrival time (queueing
          at the session plus the read service latency). *)
  served_staleness : Sim.Stats.Summary.t;
      (** Per served read: completion time minus the served version's
          commit time — how old the data a client actually saw was. *)
  versions_retained : Sim.Stats.Summary.t;
      (** Versions held by the serving layer, sampled at each publish. *)
  versions_pinned : Sim.Stats.Summary.t;
      (** Versions under an active reader lease, sampled at each
          publish. *)
  mutable transactions : int;  (** Source transactions executed. *)
  mutable commits : int;  (** Warehouse transactions committed. *)
  mutable actions_applied : int;  (** Elementary view operations applied. *)
  mutable completed_at : float;  (** Simulated time when the run drained. *)
  mutable msgs_dropped : int;
      (** Messages dropped by injected channel faults (all channels). *)
  mutable retransmits : int;  (** Frames resent by reliable links. *)
  mutable acks : int;  (** Acks sent by reliable links. *)
  mutable nacks : int;  (** Gap nacks sent by reliable links. *)
  mutable dup_frames_dropped : int;
      (** Duplicate frames discarded by reliable receivers. *)
  mutable gave_up : int;
      (** Reliable senders that exhausted their retries (run is stuck). *)
  mutable crashes : int;  (** View-manager crash events. *)
  mutable recoveries : int;  (** Completed crash recoveries. *)
  mutable reads : int;  (** Reads served by the snapshot-serving layer. *)
  mutable cache_hits : int;  (** Result-cache hits across all sessions. *)
  mutable cache_misses : int;
  mutable reads_clamped : int;
      (** Reads whose session guarantee (or pruned history) forced a
          newer version than the read asked for. *)
}

val create : unit -> t

val throughput : t -> float
(** Source transactions per simulated second (0 for an instantaneous
    run). *)

val read_throughput : t -> float
(** Served reads per simulated second. *)

val cache_hit_ratio : t -> float
(** [hits / (hits + misses)]; 0 when no cache lookups happened. *)

val pp : Format.formatter -> t -> unit
