(** Run metrics collected by the system assembly — the quantities the
    paper's Section 7 proposes to study: the effect of merging on view
    freshness, and the load at which the merge process becomes a
    bottleneck — plus the resilience counters (channel drops, retransmits,
    crash recoveries) folded in from the fault-injection layer. *)

type t = {
  staleness : Sim.Stats.Summary.t;
      (** Per covered update: warehouse commit time minus source commit
          time — how long the update's effect took to become visible. *)
  merge_held : Sim.Stats.Summary.t;
      (** Action lists held at the merge, sampled after each merge event. *)
  merge_live_rows : Sim.Stats.Summary.t;
      (** Live VUT rows, sampled after each merge event. *)
  merge_queue_depth : Sim.Stats.Summary.t;
      (** Messages queued (or in flight) at the merge servers, sampled
          after each merge event — the saturation signal of benchmark
          P2: a depth that grows with offered load means the merge can
          no longer keep up. *)
  merge_batch_size : Sim.Stats.Summary.t;
      (** Warehouse transactions released per ready run (sampled per
          non-empty drain) — the batch-size histogram of the merge fast
          path. Per-message merging pins this at 1. *)
  merge_service_time : Sim.Stats.Summary.t;
      (** Latency charged per merge service event. Under the [Fused]
          policy one service event covers a whole queued batch, so the
          mean stays flat while per-message throughput rises. *)
  merge_runs : int Atomic.t;
      (** Ready runs released by the merge and planned as a unit by the
          commit submitter. *)
  coalesced_in : int Atomic.t;
      (** Action-list delta entries entering run coalescing. *)
  coalesced_out : int Atomic.t;
      (** Delta entries remaining after per-view signed-bag summing —
          [in - out] is the work cancellation the fast path saved. *)
  coalesce_fallbacks : int Atomic.t;
      (** Per-view groups applied sequentially because summing would
          have clamped (see {!Relational.Signed_bag.coalesce}). *)
  index_slots : Sim.Stats.Summary.t;
      (** Physical slot-table sizes of the memoized {!Relational.Bag_index}es
          of committed warehouse states, sampled per index at commit. *)
  index_live : Sim.Stats.Summary.t;
      (** Live entries per sampled index. *)
  index_tombstones : Sim.Stats.Summary.t;
      (** Tombstoned entries per sampled index — churn that compaction
          has not yet reclaimed. *)
  vm_queue : Sim.Stats.Summary.t;
      (** Pending work across view managers, sampled on update routing. *)
  read_latency : Sim.Stats.Summary.t;
      (** Per served read: completion time minus arrival time (queueing
          at the session plus the read service latency). *)
  served_staleness : Sim.Stats.Summary.t;
      (** Per served read: completion time minus the served version's
          commit time — how old the data a client actually saw was. *)
  versions_retained : Sim.Stats.Summary.t;
      (** Versions held by the serving layer, sampled at each publish. *)
  versions_pinned : Sim.Stats.Summary.t;
      (** Versions under an active reader lease, sampled at each
          publish. *)
  transactions : int Atomic.t;  (** Source transactions executed. *)
  commits : int Atomic.t;  (** Warehouse transactions committed. *)
  actions_applied : int Atomic.t;
      (** Elementary view operations applied. *)
  mutable completed_at : float;  (** Simulated time when the run drained. *)
  msgs_dropped : int Atomic.t;
      (** Messages dropped by injected channel faults (all channels). *)
  retransmits : int Atomic.t;  (** Frames resent by reliable links. *)
  acks : int Atomic.t;  (** Acks sent by reliable links. *)
  nacks : int Atomic.t;  (** Gap nacks sent by reliable links. *)
  dup_frames_dropped : int Atomic.t;
      (** Duplicate frames discarded by reliable receivers. *)
  gave_up : int Atomic.t;
      (** Reliable senders that exhausted their retries (run is stuck). *)
  crashes : int Atomic.t;  (** View-manager crash events. *)
  recoveries : int Atomic.t;  (** Completed crash recoveries. *)
  reads : int Atomic.t;  (** Reads served by the snapshot-serving layer. *)
  cache_hits : int Atomic.t;
      (** Result-cache hits across all sessions. *)
  cache_misses : int Atomic.t;
  reads_clamped : int Atomic.t;
      (** Reads whose session guarantee (or pruned history) forced a
          newer version than the read asked for. *)
  shared_hits : int Atomic.t;
      (** Shared-plan engine demands served from a node's per-transaction
          memo — a delta some other view's pass already computed. *)
  shared_misses : int Atomic.t;
      (** Shared-plan engine demands that computed a fresh node delta. *)
  shared_rows : int Atomic.t;
      (** Delta rows folded into materialized intermediates — the
          engine's maintenance cost. *)
  memo_contention : int Atomic.t;
      (** Contended plan-memo shard-lock acquisitions during the run
          ({!Query.Compiled.memo_contention} delta). *)
  cache_refreshes : int Atomic.t;
      (** Result-cache entries advanced in place by incremental refresh
          at commit. *)
  cache_refresh_fallbacks : int Atomic.t;
      (** Touched cache entries left to invalidation because the
          commit's deltas were wider than the cached result. *)
  routed_shards : Sim.Stats.Summary.t;
      (** Per routed update in a distributed run: how many warehouse
          shards its relevant-view set fanned out to (1 for a
          tenant-local update — the common case the router exploits). *)
  union_reads : int Atomic.t;
      (** Cross-shard union-view reads served through a global cut. *)
  union_read_latency : Sim.Stats.Summary.t;
      (** Per union read: completion time minus arrival time. *)
  source_queries : int Atomic.t;
      (** Compensation round trips to the sources (Strobe-style managers
          querying per relevant update, integrator catch-up fetches).
          Self-maintaining managers keep this at 0 on the steady-state
          path — the headline of the selfmaint bench. *)
  source_query_latency : Sim.Stats.Summary.t;
      (** Per source query: answer arrival minus request issue (both
          travel legs plus any modeled evaluation delay). *)
  aux_rows : int Atomic.t;
      (** Rows held in self-maintenance auxiliary relations at plan
          derivation, summed across views. *)
  aux_cells : int Atomic.t;
      (** Cells (rows x live arity) in the auxiliaries — the storage the
          warehouse pays to avoid the round trips. *)
  aux_saved_cells : int Atomic.t;
      (** Cells a full-replica cache ([Complete_vm]) would have held
          minus [aux_cells]: what the keyed projections saved. *)
}
(** Every integer counter is an [Atomic.t]: with [domains > 1] the
    maintenance runtime executes work on pool domains, and counters
    must tolerate increments from any of them. [completed_at] and the
    {!Sim.Stats.Summary.t} accumulators are only touched from the
    simulation (main) domain. *)

val create : unit -> t

val add : int Atomic.t -> int -> unit
(** [add counter n] atomically bumps a counter by [n]. *)

val throughput : t -> float
(** Source transactions per simulated second (0 for an instantaneous
    run). *)

val read_throughput : t -> float
(** Served reads per simulated second. *)

val cache_hit_ratio : t -> float
(** [hits / (hits + misses)]; 0 when no cache lookups happened. *)

val shared_hit_ratio : t -> float
(** Shared-plan engine [hits / (hits + misses)]; 0 when the engine was
    off or never demanded. *)

val coalesce_cancel_ratio : t -> float
(** [(coalesced_in - coalesced_out) / coalesced_in]: the fraction of
    delta entries run coalescing cancelled; 0 when nothing was
    coalesced. *)

val pp : Format.formatter -> t -> unit
