type t = {
  staleness : Sim.Stats.Summary.t;
  merge_held : Sim.Stats.Summary.t;
  merge_live_rows : Sim.Stats.Summary.t;
  merge_queue_depth : Sim.Stats.Summary.t;
  merge_batch_size : Sim.Stats.Summary.t;
  merge_service_time : Sim.Stats.Summary.t;
  merge_runs : int Atomic.t;
  coalesced_in : int Atomic.t;
  coalesced_out : int Atomic.t;
  coalesce_fallbacks : int Atomic.t;
  index_slots : Sim.Stats.Summary.t;
  index_live : Sim.Stats.Summary.t;
  index_tombstones : Sim.Stats.Summary.t;
  vm_queue : Sim.Stats.Summary.t;
  read_latency : Sim.Stats.Summary.t;
  served_staleness : Sim.Stats.Summary.t;
  versions_retained : Sim.Stats.Summary.t;
  versions_pinned : Sim.Stats.Summary.t;
  transactions : int Atomic.t;
  commits : int Atomic.t;
  actions_applied : int Atomic.t;
  mutable completed_at : float;
  msgs_dropped : int Atomic.t;
  retransmits : int Atomic.t;
  acks : int Atomic.t;
  nacks : int Atomic.t;
  dup_frames_dropped : int Atomic.t;
  gave_up : int Atomic.t;
  crashes : int Atomic.t;
  recoveries : int Atomic.t;
  reads : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  reads_clamped : int Atomic.t;
  shared_hits : int Atomic.t;
  shared_misses : int Atomic.t;
  shared_rows : int Atomic.t;
  memo_contention : int Atomic.t;
  cache_refreshes : int Atomic.t;
  cache_refresh_fallbacks : int Atomic.t;
  routed_shards : Sim.Stats.Summary.t;
  union_reads : int Atomic.t;
  union_read_latency : Sim.Stats.Summary.t;
  source_queries : int Atomic.t;
  source_query_latency : Sim.Stats.Summary.t;
  aux_rows : int Atomic.t;
  aux_cells : int Atomic.t;
  aux_saved_cells : int Atomic.t;
}

let create () =
  { staleness = Sim.Stats.Summary.create ();
    merge_held = Sim.Stats.Summary.create ();
    merge_live_rows = Sim.Stats.Summary.create ();
    merge_queue_depth = Sim.Stats.Summary.create ();
    merge_batch_size = Sim.Stats.Summary.create ();
    merge_service_time = Sim.Stats.Summary.create ();
    merge_runs = Atomic.make 0;
    coalesced_in = Atomic.make 0;
    coalesced_out = Atomic.make 0;
    coalesce_fallbacks = Atomic.make 0;
    index_slots = Sim.Stats.Summary.create ();
    index_live = Sim.Stats.Summary.create ();
    index_tombstones = Sim.Stats.Summary.create ();
    vm_queue = Sim.Stats.Summary.create ();
    read_latency = Sim.Stats.Summary.create ();
    served_staleness = Sim.Stats.Summary.create ();
    versions_retained = Sim.Stats.Summary.create ();
    versions_pinned = Sim.Stats.Summary.create ();
    transactions = Atomic.make 0; commits = Atomic.make 0;
    actions_applied = Atomic.make 0; completed_at = 0.0;
    msgs_dropped = Atomic.make 0; retransmits = Atomic.make 0;
    acks = Atomic.make 0; nacks = Atomic.make 0;
    dup_frames_dropped = Atomic.make 0; gave_up = Atomic.make 0;
    crashes = Atomic.make 0; recoveries = Atomic.make 0;
    reads = Atomic.make 0; cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0; reads_clamped = Atomic.make 0;
    shared_hits = Atomic.make 0; shared_misses = Atomic.make 0;
    shared_rows = Atomic.make 0; memo_contention = Atomic.make 0;
    cache_refreshes = Atomic.make 0; cache_refresh_fallbacks = Atomic.make 0;
    routed_shards = Sim.Stats.Summary.create ();
    union_reads = Atomic.make 0;
    union_read_latency = Sim.Stats.Summary.create ();
    source_queries = Atomic.make 0;
    source_query_latency = Sim.Stats.Summary.create ();
    aux_rows = Atomic.make 0; aux_cells = Atomic.make 0;
    aux_saved_cells = Atomic.make 0 }

let add counter n = Atomic.fetch_and_add counter n |> ignore

let throughput t =
  if t.completed_at <= 0.0 then 0.0
  else float_of_int (Atomic.get t.transactions) /. t.completed_at

let read_throughput t =
  if t.completed_at <= 0.0 then 0.0
  else float_of_int (Atomic.get t.reads) /. t.completed_at

let cache_hit_ratio t =
  let total = Atomic.get t.cache_hits + Atomic.get t.cache_misses in
  if total = 0 then 0.0
  else float_of_int (Atomic.get t.cache_hits) /. float_of_int total

let shared_hit_ratio t =
  let total = Atomic.get t.shared_hits + Atomic.get t.shared_misses in
  if total = 0 then 0.0
  else float_of_int (Atomic.get t.shared_hits) /. float_of_int total

let coalesce_cancel_ratio t =
  let inn = Atomic.get t.coalesced_in in
  if inn = 0 then 0.0
  else
    float_of_int (inn - Atomic.get t.coalesced_out) /. float_of_int inn

let pp ppf t =
  Fmt.pf ppf
    "@[<v>txns=%d commits=%d actions=%d completed=%.3fs tput=%.2f/s@ \
     staleness: %a@ merge-held: %a@ vut-rows: %a@ vm-queue: %a@ \
     merge-fastpath: runs=%d coalesced=%d->%d (cancel %.2f) fallbacks=%d@ \
     merge-queue-depth: %a@ merge-batch-size: %a@ merge-service: %a@ \
     index-occupancy: slots: %a live: %a tombstones: %a@ \
     resilience: dropped=%d retx=%d acks=%d nacks=%d dups=%d gave-up=%d \
     crashes=%d recoveries=%d@ \
     serving: reads=%d rtput=%.2f/s cache=%d/%d clamped=%d \
     refreshed=%d refresh-fallbacks=%d@ \
     shared-plans: hits=%d/%d rows-maintained=%d memo-contention=%d@ \
     distributed: union-reads=%d shard-fanout: %a@ \
     sources: queries=%d latency: %a@ \
     selfmaint: aux-rows=%d aux-cells=%d saved-cells=%d@ \
     read-latency: %a@ served-staleness: %a@ versions-retained: %a@ \
     versions-pinned: %a@]"
    (Atomic.get t.transactions) (Atomic.get t.commits)
    (Atomic.get t.actions_applied) t.completed_at (throughput t)
    Sim.Stats.Summary.pp t.staleness Sim.Stats.Summary.pp t.merge_held
    Sim.Stats.Summary.pp t.merge_live_rows Sim.Stats.Summary.pp t.vm_queue
    (Atomic.get t.merge_runs)
    (Atomic.get t.coalesced_in) (Atomic.get t.coalesced_out)
    (coalesce_cancel_ratio t)
    (Atomic.get t.coalesce_fallbacks)
    Sim.Stats.Summary.pp t.merge_queue_depth
    Sim.Stats.Summary.pp t.merge_batch_size
    Sim.Stats.Summary.pp t.merge_service_time
    Sim.Stats.Summary.pp t.index_slots
    Sim.Stats.Summary.pp t.index_live
    Sim.Stats.Summary.pp t.index_tombstones
    (Atomic.get t.msgs_dropped) (Atomic.get t.retransmits) (Atomic.get t.acks)
    (Atomic.get t.nacks)
    (Atomic.get t.dup_frames_dropped)
    (Atomic.get t.gave_up) (Atomic.get t.crashes) (Atomic.get t.recoveries)
    (Atomic.get t.reads) (read_throughput t)
    (Atomic.get t.cache_hits)
    (Atomic.get t.cache_hits + Atomic.get t.cache_misses)
    (Atomic.get t.reads_clamped)
    (Atomic.get t.cache_refreshes)
    (Atomic.get t.cache_refresh_fallbacks)
    (Atomic.get t.shared_hits)
    (Atomic.get t.shared_hits + Atomic.get t.shared_misses)
    (Atomic.get t.shared_rows)
    (Atomic.get t.memo_contention)
    (Atomic.get t.union_reads)
    Sim.Stats.Summary.pp t.routed_shards
    (Atomic.get t.source_queries)
    Sim.Stats.Summary.pp t.source_query_latency
    (Atomic.get t.aux_rows) (Atomic.get t.aux_cells)
    (Atomic.get t.aux_saved_cells)
    Sim.Stats.Summary.pp t.read_latency Sim.Stats.Summary.pp
    t.served_staleness Sim.Stats.Summary.pp t.versions_retained
    Sim.Stats.Summary.pp t.versions_pinned
