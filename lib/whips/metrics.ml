type t = {
  staleness : Sim.Stats.Summary.t;
  merge_held : Sim.Stats.Summary.t;
  merge_live_rows : Sim.Stats.Summary.t;
  vm_queue : Sim.Stats.Summary.t;
  read_latency : Sim.Stats.Summary.t;
  served_staleness : Sim.Stats.Summary.t;
  versions_retained : Sim.Stats.Summary.t;
  versions_pinned : Sim.Stats.Summary.t;
  mutable transactions : int;
  mutable commits : int;
  mutable actions_applied : int;
  mutable completed_at : float;
  mutable msgs_dropped : int;
  mutable retransmits : int;
  mutable acks : int;
  mutable nacks : int;
  mutable dup_frames_dropped : int;
  mutable gave_up : int;
  mutable crashes : int;
  mutable recoveries : int;
  mutable reads : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable reads_clamped : int;
}

let create () =
  { staleness = Sim.Stats.Summary.create ();
    merge_held = Sim.Stats.Summary.create ();
    merge_live_rows = Sim.Stats.Summary.create ();
    vm_queue = Sim.Stats.Summary.create ();
    read_latency = Sim.Stats.Summary.create ();
    served_staleness = Sim.Stats.Summary.create ();
    versions_retained = Sim.Stats.Summary.create ();
    versions_pinned = Sim.Stats.Summary.create ();
    transactions = 0; commits = 0; actions_applied = 0; completed_at = 0.0;
    msgs_dropped = 0; retransmits = 0; acks = 0; nacks = 0;
    dup_frames_dropped = 0; gave_up = 0; crashes = 0; recoveries = 0;
    reads = 0; cache_hits = 0; cache_misses = 0; reads_clamped = 0 }

let throughput t =
  if t.completed_at <= 0.0 then 0.0
  else float_of_int t.transactions /. t.completed_at

let read_throughput t =
  if t.completed_at <= 0.0 then 0.0
  else float_of_int t.reads /. t.completed_at

let cache_hit_ratio t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let pp ppf t =
  Fmt.pf ppf
    "@[<v>txns=%d commits=%d actions=%d completed=%.3fs tput=%.2f/s@ \
     staleness: %a@ merge-held: %a@ vut-rows: %a@ vm-queue: %a@ \
     resilience: dropped=%d retx=%d acks=%d nacks=%d dups=%d gave-up=%d \
     crashes=%d recoveries=%d@ \
     serving: reads=%d rtput=%.2f/s cache=%d/%d clamped=%d@ \
     read-latency: %a@ served-staleness: %a@ versions-retained: %a@ \
     versions-pinned: %a@]"
    t.transactions t.commits t.actions_applied t.completed_at (throughput t)
    Sim.Stats.Summary.pp t.staleness Sim.Stats.Summary.pp t.merge_held
    Sim.Stats.Summary.pp t.merge_live_rows Sim.Stats.Summary.pp t.vm_queue
    t.msgs_dropped t.retransmits t.acks t.nacks t.dup_frames_dropped
    t.gave_up t.crashes t.recoveries t.reads (read_throughput t)
    t.cache_hits
    (t.cache_hits + t.cache_misses)
    t.reads_clamped Sim.Stats.Summary.pp t.read_latency Sim.Stats.Summary.pp
    t.served_staleness Sim.Stats.Summary.pp t.versions_retained
    Sim.Stats.Summary.pp t.versions_pinned
