open Relational

type vm_kind =
  | Complete_vm
  | Selfmaint_vm
  | Batching_vm
  | Strobe_vm
  | Periodic_vm of float
  | Convergent_vm
  | Complete_n_vm of int
  | Derived_vm of {
      aux : Query.View.t list;
      over_aux : Query.Algebra.t;
    }

type merge_kind =
  | Auto
  | Force_spa
  | Force_pa
  | Force_passthrough
  | Force_holdall
  | Sequential

type rel_routing = Direct | Via_manager

type arrival = All_at_once | Uniform of float | Poisson of float

type fault =
  | Drop_action_list of { view : string; nth : int }
  | Crash_vm of { view : string; at_event : int; restart_after : float }
  | Crash_merge of { at_event : int; restart_after : float }
  | Crash_integrator of { at_event : int; restart_after : float }
  | Crash_warehouse of { at_event : int; restart_after : float }

type reliability = Off | Acked of Sim.Reliable.params

type durability = {
  checkpoint_every : int;
  integ_checkpoint_every : int;
  group_commit : int;
  replay_latency : float;
}

let default_durability =
  { checkpoint_every = 8; integ_checkpoint_every = 16; group_commit = 4;
    replay_latency = 0.0 }

type latencies = {
  message : float;
  compute : float;
  commit : float;
  query_roundtrip : float;
  merge : float;
  read : float;
  read_hit : float;
}

let default_latencies =
  { message = 0.002; compute = 0.01; commit = 0.005; query_roundtrip = 0.02;
    merge = 0.0005; read = 0.005; read_hit = 0.0005 }

type read_profile = {
  sessions : (Serve.Session.guarantee * int) list;
  read_arrival : arrival;
  n_reads : int;
  as_of_fraction : float;
  as_of_lag : float;
  read_cache : bool;
  cache_refresh : bool;
  serve_retention : Serve.Version_manager.retention;
  queries : Query.Algebra.t list;
}

let default_reads =
  { sessions =
      [ (Serve.Session.Latest, 2); (Serve.Session.Monotonic_reads, 2);
        (Serve.Session.Bounded_staleness 0.1, 2) ];
    read_arrival = Poisson 200.0;
    n_reads = 100;
    as_of_fraction = 0.25;
    as_of_lag = 0.2;
    read_cache = true;
    cache_refresh = true;
    serve_retention = Serve.Version_manager.Keep_last 64;
    queries = [] }

(* How a merge's ready run reaches the commit submitter. [Per_message]
   is the pre-fast-path baseline: one submit per emitted WT.
   [Coalesced] (the default) hands the run to the submitter as a unit so
   it can plan the whole run's store work in one coalesced pass — pure
   CPU batching, byte-identical traces. [Fused] additionally releases
   the run as one batched warehouse transaction (BWT) after a batched
   merge service event — the paper's batching consistency level, which
   changes timing and skips the run's intermediate states. *)
type merge_batch = Per_message | Coalesced | Fused

type config = {
  scenario : Workload.Scenarios.t;
  vm_kind : vm_kind;
  vm_overrides : (string * vm_kind) list;
  merge_kind : merge_kind;
  merge_batch : merge_batch;
  submit : Warehouse.Submitter.policy;
  arrival : arrival;
  latencies : latencies;
  merge_groups : int option;
  semantic_filter : bool;
  rel_routing : rel_routing;
  optimize_views : bool;
  faults : fault list;
  fault_plan : Workload.Fault_plan.t;
  reliability : reliability;
  durable : durability option;
  reads : read_profile option;
  store_retention : Warehouse.Store.retention;
  record_timeline : bool;
  parallel : Parallel.Config.t;
  shared_plans : bool;
  seed : int;
}

let default scenario =
  { scenario; vm_kind = Complete_vm; vm_overrides = []; merge_kind = Auto;
    merge_batch = Coalesced;
    submit = Warehouse.Submitter.Serial; arrival = Uniform 0.05;
    latencies = default_latencies; merge_groups = None;
    semantic_filter = false; rel_routing = Direct; optimize_views = false;
    faults = []; fault_plan = Workload.Fault_plan.empty; reliability = Off;
    durable = None; reads = None;
    store_retention = Warehouse.Store.Keep_all;
    record_timeline = false; parallel = Parallel.Config.default ();
    shared_plans = false; seed = 1 }

let faultless cfg =
  cfg.faults = [] && Workload.Fault_plan.is_empty cfg.fault_plan

(* Process-level crash faults (merge / integrator / warehouse): these wipe
   a whole process's in-memory state and require the durable layer for
   recovery, unlike message-level faults and Crash_vm (whose recovery is
   log replay from the live integrator). *)
let process_crash_faults cfg =
  List.exists
    (function
      | Crash_merge _ | Crash_integrator _ | Crash_warehouse _ -> true
      | Drop_action_list _ | Crash_vm _ -> false)
    cfg.faults

type read_record = {
  read_session : int;
  read_guarantee : Serve.Session.guarantee;
  read_query : Query.Algebra.t;
  read_as_of : float option;
  read_arrived : float;
  read_served : float;
  read_version : int;
  read_version_time : float;
  read_staleness : float;
  read_cache_hit : bool;
  read_clamped : bool;
  read_state : Database.t;
  read_result : Bag.t;
}

type serving = {
  version_manager : Serve.Version_manager.t;
  result_cache : Serve.Result_cache.t option;
  reads_served : read_record list;
}

type durability_report = {
  wal_appends : int;
  wal_syncs : int;
  wal_bytes : int;
  wal_checkpoints : int;
  wal_truncated : int;
  torn_discarded : int;
  wal_replayed : int;
  commits_restored : int;
  dup_wts_dropped : int;
  recovery_time : float;
}

type result = {
  config : config;
  store : Warehouse.Store.t;
  sources : Source.Sources.t;
  transactions : Update.Transaction.t list;
  metrics : Metrics.t;
  merge_algorithm : string;
  timeline : (float * string) list;
  stuck : bool;
  serving : serving option;
  durability : durability_report option;
  fused : (int list list * (int list * Query.Action_list.t list) list list)
            option;
      (* Recorded under [merge_batch = Fused]: the merge's emission
         sequence (per emitted WT, its covered rows, in order) and, per
         fused batch in release order, its constituent parts — the raw
         material of {!Consistency.Checker.certify_fused}. *)
}

exception Stuck of string

let kind_of cfg view =
  match List.assoc_opt (Query.View.name view) cfg.vm_overrides with
  | Some kind -> kind
  | None -> cfg.vm_kind

let level_of = function
  | Complete_vm | Selfmaint_vm | Derived_vm _ -> Viewmgr.Vm.Complete
  | Batching_vm | Strobe_vm | Periodic_vm _ -> Viewmgr.Vm.Strongly_consistent
  | Convergent_vm -> Viewmgr.Vm.Convergent
  | Complete_n_vm n -> Viewmgr.Vm.Complete_n n

(* Section 6.3: "it is always possible to use the merge algorithm
   corresponding to the view manager guaranteeing the weakest level of
   consistency". *)
let auto_algorithm levels =
  let weakest acc level =
    match (acc, level) with
    | Mvc.Merge.Passthrough, _ | _, Viewmgr.Vm.Convergent ->
      Mvc.Merge.Passthrough
    | Mvc.Merge.Pa, _
    | _, (Viewmgr.Vm.Strongly_consistent | Viewmgr.Vm.Complete_n _) ->
      Mvc.Merge.Pa
    | Mvc.Merge.Spa, Viewmgr.Vm.Complete -> Mvc.Merge.Spa
    | Mvc.Merge.Holdall, _ ->
      (* Never chosen automatically; present for exhaustiveness. *)
      Mvc.Merge.Holdall
  in
  List.fold_left weakest Mvc.Merge.Spa levels

let algorithm_for cfg levels =
  match cfg.merge_kind with
  | Auto -> auto_algorithm levels
  | Force_spa -> Mvc.Merge.Spa
  | Force_pa -> Mvc.Merge.Pa
  | Force_passthrough -> Mvc.Merge.Passthrough
  | Force_holdall -> Mvc.Merge.Holdall
  | Sequential -> assert false

(* Schedule the scenario script along the configured arrival process. *)
let schedule_script engine rng cfg ~execute =
  let clock = ref 0.0 in
  List.iter
    (fun updates ->
      let at =
        match cfg.arrival with
        | All_at_once -> 0.0
        | Uniform gap ->
          clock := !clock +. gap;
          !clock
        | Poisson rate ->
          clock := !clock +. Sim.Rng.exponential rng ~mean:(1.0 /. rate);
          !clock
      in
      Sim.Engine.schedule_at engine at (fun () -> execute updates))
    cfg.scenario.Workload.Scenarios.script

(* Returns false when the system cannot make progress any more (the event
   queue is empty, every manager flushed, and something is still
   outstanding). *)
let drain engine ~flushes ~drained =
  let rec loop guard =
    Sim.Engine.run engine;
    List.iter (fun flush -> flush ()) flushes;
    Sim.Engine.run engine;
    if drained () then true else if guard = 0 then false else loop (guard - 1)
  in
  loop 1000

(* ---- the snapshot-serving subsystem (lib/serve) wired to a run ----

   One version manager over the store, one optional shared result cache,
   and a population of reader sessions, each with its own serial service
   queue (a session is one client connection: its reads are handled one
   at a time, each costing a sampled read latency). The version is
   selected and *pinned* when service starts and released when the read
   completes, so the retention pruning that a concurrent commit triggers
   can never drop the snapshot an in-flight read is using. *)
type serving_ctx = {
  ctx_vm : Serve.Version_manager.t;
  ctx_cache : Serve.Result_cache.t option;
  ctx_records : read_record list ref;
  ctx_publish : Warehouse.Wt.t -> unit;  (* call after each store commit *)
  ctx_pending : unit -> int;
  ctx_freeze : bool -> unit;
      (* warehouse down: stop starting new reads (queued reads wait; reads
         already in service complete against their pinned versions) *)
  ctx_recover : Warehouse.Store.commit list -> unit;
      (* republish the restored commit history from version 0 *)
}

let setup_serving engine ~rng ~sample ~metrics ~store ~views ~log cfg =
  match cfg.reads with
  | None -> None
  | Some rp ->
    let population =
      List.concat_map (fun (g, n) -> List.init n (fun _ -> g)) rp.sessions
    in
    if population = [] then
      invalid_arg "System: cfg.reads needs at least one session";
    let arrival_rng = Sim.Rng.split rng in
    let pick_rng = Sim.Rng.split rng in
    let vm =
      Serve.Version_manager.create ~retention:rp.serve_retention
        (Warehouse.Store.snapshot store)
    in
    let cache =
      if rp.read_cache then Some (Serve.Result_cache.create ()) else None
    in
    let queries =
      Array.of_list
        (match rp.queries with
        | [] ->
          List.map (fun v -> Query.Algebra.base (Query.View.name v)) views
        | qs -> qs)
    in
    let records = ref [] in
    let frozen = ref false in
    let servers =
      Array.of_list
        (List.mapi
           (fun sid g ->
             let session = Serve.Session.create ?cache ~guarantee:g vm in
             let queue = Queue.create () in
             let busy = ref false in
             let rec pump () =
               if (not !frozen) && (not !busy) && not (Queue.is_empty queue)
               then begin
                 busy := true;
                 let arrived, as_of, query = Queue.pop queue in
                 let pending =
                   Serve.Session.start session ~now:(Sim.Engine.now engine)
                     ?as_of ()
                 in
                 let version = Serve.Session.pending_version pending in
                 (* A cache hit skips the evaluation kernel, so it gets the
                    cheap service-time distribution. The probe pins neither
                    statistics nor the entry: the authoritative lookup (and
                    hit/miss accounting) happens at completion, against the
                    version pinned here, so the probe's answer cannot rot.
                    Either branch draws exactly one latency sample, keeping
                    the RNG stream aligned across configurations. *)
                 let will_hit =
                   match cache with
                   | Some c ->
                     Serve.Result_cache.peek c
                       ~version:version.Serve.Version_manager.index query
                   | None -> false
                 in
                 let service_mean =
                   if will_hit then cfg.latencies.read_hit
                   else cfg.latencies.read
                 in
                 Sim.Engine.schedule_after engine (sample service_mean)
                   (fun () ->
                     let now = Sim.Engine.now engine in
                     let o = Serve.Session.complete session pending ~now query in
                     Atomic.incr metrics.Metrics.reads;
                     Sim.Stats.Summary.add metrics.Metrics.read_latency
                       (now -. arrived);
                     Sim.Stats.Summary.add metrics.Metrics.served_staleness
                       o.Serve.Session.staleness;
                     (match cache with
                     | Some _ ->
                       if o.Serve.Session.cache_hit then
                         Atomic.incr metrics.Metrics.cache_hits
                       else Atomic.incr metrics.Metrics.cache_misses
                     | None -> ());
                     if o.Serve.Session.clamped then
                       Atomic.incr metrics.Metrics.reads_clamped;
                     log
                       (Printf.sprintf
                          "session %d (%s) served from version %d%s%s" sid
                          (Serve.Session.guarantee_name g)
                          o.Serve.Session.version
                          (if o.Serve.Session.cache_hit then " [cache]"
                           else "")
                          (if o.Serve.Session.clamped then " [clamped]"
                           else ""));
                     records :=
                       { read_session = sid; read_guarantee = g;
                         read_query = query; read_as_of = as_of;
                         read_arrived = arrived; read_served = now;
                         read_version = o.Serve.Session.version;
                         read_version_time = o.Serve.Session.version_time;
                         read_staleness = o.Serve.Session.staleness;
                         read_cache_hit = o.Serve.Session.cache_hit;
                         read_clamped = o.Serve.Session.clamped;
                         read_state = version.Serve.Version_manager.state;
                         read_result = o.Serve.Session.result }
                       :: !records;
                     busy := false;
                     pump ())
               end
             in
             let submit job =
               Queue.push job queue;
               pump ()
             in
             let pending () = Queue.length queue + if !busy then 1 else 0 in
             (submit, pending, pump))
           population)
    in
    (* Read arrival process, independent of the update schedule. *)
    let clock = ref 0.0 in
    for _ = 1 to rp.n_reads do
      let at =
        match rp.read_arrival with
        | All_at_once -> 0.0
        | Uniform gap ->
          clock := !clock +. gap;
          !clock
        | Poisson rate ->
          clock := !clock +. Sim.Rng.exponential arrival_rng ~mean:(1.0 /. rate);
          !clock
      in
      Sim.Engine.schedule_at engine at (fun () ->
          let sid = Sim.Rng.int pick_rng (Array.length servers) in
          let query = queries.(Sim.Rng.int pick_rng (Array.length queries)) in
          let as_of =
            if
              rp.as_of_fraction > 0.0
              && Sim.Rng.float pick_rng 1.0 < rp.as_of_fraction
            then Some (Float.max 0.0 (at -. Sim.Rng.float pick_rng rp.as_of_lag))
            else None
          in
          let submit, _, _ = servers.(sid) in
          submit (at, as_of, query))
    done;
    (* Warehouse state at the previously published version: the [pre]
       side of the commit's per-view deltas when the cache refreshes
       entries in place instead of invalidating them. *)
    let last_state = ref (Warehouse.Store.snapshot store) in
    let publish wt =
      let now = Sim.Engine.now engine in
      let changed = Warehouse.Wt.views wt in
      let post = Warehouse.Store.snapshot store in
      let v = Serve.Version_manager.publish vm ~time:now ~changed post in
      (match cache with
      | Some c ->
        if rp.cache_refresh then
          Serve.Result_cache.commit c ~version:v.Serve.Version_manager.index
            ~changed ~pre:!last_state ~post
        else
          List.iter
            (fun view ->
              Serve.Result_cache.note_change c ~view
                ~version:v.Serve.Version_manager.index)
            changed
      | None -> ());
      last_state := post;
      Sim.Stats.Summary.add metrics.Metrics.versions_retained
        (float_of_int (Serve.Version_manager.retained vm));
      Sim.Stats.Summary.add metrics.Metrics.versions_pinned
        (float_of_int (Serve.Version_manager.pinned vm))
    in
    let pending () =
      Array.fold_left (fun acc (_, p, _) -> acc + p ()) 0 servers
    in
    let freeze f =
      frozen := f;
      if not f then Array.iter (fun (_, _, pump) -> pump ()) servers
    in
    (* Warehouse crash recovery: restart the version history at 0 and
       republish the restored commits at their recorded times — each
       version lands back at its original index, so leases held by
       in-flight reads and the floors of monotonic sessions stay valid.
       The result cache is wiped outright (entries and change history
       describe the version sequence being rebuilt). *)
    let recover commits =
      Serve.Version_manager.restart vm
        ~initial:(Warehouse.Store.initial store);
      (match cache with Some c -> Serve.Result_cache.clear c | None -> ());
      last_state := Warehouse.Store.initial store;
      List.iter
        (fun (c : Warehouse.Store.commit) ->
          let changed = Warehouse.Wt.views c.transaction in
          let v =
            Serve.Version_manager.publish vm ~time:c.Warehouse.Store.time
              ~changed c.Warehouse.Store.state
          in
          (match cache with
          | Some rc ->
            if rp.cache_refresh then
              Serve.Result_cache.commit rc
                ~version:v.Serve.Version_manager.index ~changed
                ~pre:!last_state ~post:c.Warehouse.Store.state
            else
              List.iter
                (fun view ->
                  Serve.Result_cache.note_change rc ~view
                    ~version:v.Serve.Version_manager.index)
                changed
          | None -> ());
          last_state := c.Warehouse.Store.state)
        commits
    in
    Some
      { ctx_vm = vm; ctx_cache = cache; ctx_records = records;
        ctx_publish = publish; ctx_pending = pending; ctx_freeze = freeze;
        ctx_recover = recover }

let serving_publish ctx wt =
  match ctx with Some c -> c.ctx_publish wt | None -> ()

let serving_pending ctx =
  match ctx with Some c -> c.ctx_pending () | None -> 0

let serving_freeze ctx f =
  match ctx with Some c -> c.ctx_freeze f | None -> ()

let serving_recover ctx commits =
  match ctx with Some c -> c.ctx_recover commits | None -> ()

let serving_result ctx =
  Option.map
    (fun c ->
      { version_manager = c.ctx_vm; result_cache = c.ctx_cache;
        reads_served = List.rev !(c.ctx_records) })
    ctx

let ctx_cache_of = function Some c -> c.ctx_cache | None -> None

(* Fold the run-scoped perf counters into the metrics at drain time: the
   plan-memo contention accrued since the run started, the shared-plan
   engine's hit/miss/maintenance tallies, and the result cache's
   refresh-vs-invalidate decision counts. *)
let finalize_perf_metrics metrics ~contention0 ~shared ~serving =
  Metrics.add metrics.Metrics.memo_contention
    (Query.Compiled.memo_contention () - contention0);
  (match shared with
  | Some eng ->
    let s = Shared.Engine.stats eng in
    Metrics.add metrics.Metrics.shared_hits s.Shared.Engine.hits;
    Metrics.add metrics.Metrics.shared_misses s.Shared.Engine.misses;
    Metrics.add metrics.Metrics.shared_rows s.Shared.Engine.rows_maintained
  | None -> ());
  match ctx_cache_of serving with
  | Some c ->
    let s = Serve.Result_cache.stats c in
    Metrics.add metrics.Metrics.cache_refreshes s.Serve.Result_cache.refreshed;
    Metrics.add metrics.Metrics.cache_refresh_fallbacks
      s.Serve.Result_cache.refresh_fallbacks
  | None -> ()

(* The Section 1.1 baseline: one process, sequential handling of updates,
   one warehouse transaction per update, waiting for each commit. *)
let effective_views cfg schemas =
  if cfg.optimize_views then
    List.map
      (fun v ->
        Query.View.make (Query.View.name v)
          (Query.Optimize.optimize ~schemas v.Query.View.def))
      cfg.scenario.Workload.Scenarios.views
  else cfg.scenario.views

let run_sequential cfg =
  if process_crash_faults cfg then
    invalid_arg
      "System: process crash faults (merge/integrator/warehouse) need the \
       pipelined runtime";
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create cfg.seed in
  let arrival_rng = Sim.Rng.split rng in
  let lat_rng = Sim.Rng.split rng in
  let sources = Workload.Scenarios.sources cfg.scenario in
  let views = effective_views cfg (Source.Sources.schema_lookup sources) in
  let initial_db = Source.Sources.initial sources in
  let store =
    Warehouse.Store.create ~retention:cfg.store_retention
      (List.map
         (fun v -> (Query.View.name v, Query.View.materialize initial_db v))
         views)
  in
  let metrics = Metrics.create () in
  let contention0 = Query.Compiled.memo_contention () in
  let sample mean = Sim.Rng.exponential lat_rng ~mean in
  let exec = Parallel.Config.exec cfg.parallel in
  let shared =
    if cfg.shared_plans then
      Some
        (Shared.Engine.create
           ~schemas:(Source.Sources.schema_lookup sources)
           ~initial:initial_db views)
    else None
  in
  let serving =
    setup_serving engine ~rng ~sample ~metrics ~store ~views ~log:ignore cfg
  in
  let arrival_times = Hashtbl.create 64 in
  let queue = Queue.create () in
  let busy = ref false in
  let cache = ref initial_db in
  let rec pump () =
    if (not !busy) && not (Queue.is_empty queue) then begin
      busy := true;
      let txn = Queue.pop queue in
      let changes = Query.Delta.of_transaction txn in
      let relevant =
        List.filter
          (fun v ->
            List.exists
              (fun r -> Query.View.uses v r)
              (Update.Transaction.relations txn))
          views
      in
      (* The per-view deltas of one source update are independent by
         construction (each reads only the shared pre-state), so they fan
         out across the pool; [Exec.map] preserves view order, making the
         action-list order — and thus the WT — identical to [List.map].
         With [shared_plans] the fan-out instead happens inside the
         engine's topological pass — one node delta per shared subplan,
         served to every referring view — which computes bit-identical
         per-view deltas, so the WT stream is unchanged. *)
      let pre = !cache in
      let actions =
        match shared with
        | Some eng ->
          let deltas = Shared.Engine.txn_pass eng ~exec ~pre txn in
          List.map
            (fun v ->
              let name = Query.View.name v in
              let delta =
                match List.assoc_opt name deltas with
                | Some d -> d
                | None -> Signed_bag.zero
              in
              Query.Action_list.delta ~view:name
                ~state:txn.Update.Transaction.id delta)
            relevant
        | None ->
          Parallel.Exec.map exec
            (fun v ->
              let delta =
                Query.Delta.eval ~exec ~pre changes v.Query.View.def
              in
              Query.Action_list.delta ~view:(Query.View.name v)
                ~state:txn.Update.Transaction.id delta)
            relevant
      in
      cache := Database.apply_transaction !cache txn;
      (* Deltas for all views are computed one after the other by the same
         process — the whole point of the strawman's slowness. Under
         [model_overlap] the charge is instead the LPT makespan of the
         same per-view samples over [domains] lanes (the Figure 3 cost
         model); the samples themselves are drawn identically in both
         modes, so the RNG stream never forks. *)
      let compute_samples =
        List.map (fun _ -> sample cfg.latencies.compute) relevant
      in
      let compute_time =
        if cfg.parallel.Parallel.Config.model_overlap then
          Parallel.makespan ~lanes:cfg.parallel.Parallel.Config.domains
            compute_samples
        else List.fold_left ( +. ) 0.0 compute_samples
      in
      Sim.Engine.schedule_after engine (compute_time +. sample cfg.latencies.commit)
        (fun () ->
          if actions <> [] then begin
            let wt = Warehouse.Wt.make ~rows:[ txn.id ] actions in
            Warehouse.Store.apply store ~time:(Sim.Engine.now engine) wt;
            Atomic.incr metrics.Metrics.commits;
            Metrics.add metrics.Metrics.actions_applied
              (Warehouse.Wt.action_count wt);
            serving_publish serving wt;
            (match Hashtbl.find_opt arrival_times txn.id with
            | Some t0 ->
              Sim.Stats.Summary.add metrics.Metrics.staleness
                (Sim.Engine.now engine -. t0)
            | None -> ())
          end;
          busy := false;
          pump ())
    end
  in
  let integrator_chan =
    Sim.Channel.create engine ~name:"sources->seq"
      ~latency:(fun () -> sample cfg.latencies.message)
      (fun txn ->
        Queue.push txn queue;
        pump ())
  in
  schedule_script engine arrival_rng cfg ~execute:(fun updates ->
      let txn = Source.Sources.execute sources updates in
      Atomic.incr metrics.Metrics.transactions;
      Hashtbl.replace arrival_times txn.Update.Transaction.id
        (Sim.Engine.now engine);
      Sim.Channel.send integrator_chan txn);
  let ok =
    drain engine ~flushes:[]
      ~drained:(fun () ->
        (not !busy) && Queue.is_empty queue && serving_pending serving = 0)
  in
  if not ok then
    raise (Stuck "sequential baseline failed to drain");
  metrics.Metrics.completed_at <- Sim.Engine.now engine;
  finalize_perf_metrics metrics ~contention0 ~shared ~serving;
  { config = cfg; store; sources;
    transactions = Source.Sources.transactions sources; metrics;
    merge_algorithm = "sequential"; timeline = []; stuck = false;
    serving = serving_result serving; durability = None; fused = None }

(* A single-threaded service queue: the merge process handles one message
   at a time, each costing a sampled latency. This is what lets benchmark
   P2 observe the merge becoming a bottleneck (Section 7's question).

   A job is two halves. [work] is the group-local computation — reorderer
   ingest, painting, VUT bookkeeping — touching only state owned by this
   server's merge group; with a pooled exec it is dispatched to the
   domain pool when the message is popped and joined at the
   service-completion event, so different groups' merges genuinely
   overlap (Figure 3, one process per group). The busy flag guarantees
   at most one in-flight job per server, making each group's state
   single-writer. [finish] is the externally visible half — timeline
   records, WT submission, control replies, metric samples — and always
   runs on the simulation domain at the completion event, in the same
   order as the fully sequential server, which is why [domains = 1] and
   [domains = n] produce identical traces. *)
let make_server ?(batch = false) engine ~exec ~latency =
  let queue = Queue.create () in
  let busy = ref false in
  let gen = ref 0 in
  let rec pump () =
    if (not !busy) && not (Queue.is_empty queue) then begin
      busy := true;
      (* [batch] is the fused fast path's service model: one service
         event covers everything queued at pump time — the whole backlog
         is charged a single latency sample, which is what moves the
         merge's saturation point. The default pops one message, the
         paper's single-threaded merge server. Either way the work
         halves run in queue order on one pool domain (the group's state
         stays single-writer) and the finish halves run in the same
         order on the simulation domain. *)
      let jobs =
        if batch then begin
          let js = ref [] in
          while not (Queue.is_empty queue) do
            js := Queue.pop queue :: !js
          done;
          List.rev !js
        end
        else [ Queue.pop queue ]
      in
      let fut =
        Parallel.Exec.spawn exec (fun () ->
            List.iter (fun (work, _) -> work ()) jobs)
      in
      let g = !gen in
      Sim.Engine.schedule_after engine (latency ()) (fun () ->
          (* Always join the future (the pool domain must not be leaked),
             but a completion fenced by [reset] publishes nothing: its
             finish half — and the pump — belong to a dead incarnation. *)
          Parallel.Exec.await fut;
          if g = !gen then begin
            List.iter (fun (_, finish) -> finish ()) jobs;
            busy := false;
            pump ()
          end)
    end
  in
  let submit job =
    Queue.push job queue;
    pump ()
  in
  let pending () = Queue.length queue + if !busy then 1 else 0 in
  (* Process crash: drop queued jobs and fence the in-flight one. *)
  let reset () =
    incr gen;
    Queue.clear queue;
    busy := false
  in
  (submit, pending, reset)

(* Channels between processes, optionally wrapped in the ARQ layer. Both
   flavours expose the same [send]; reliable links additionally track
   quiescence (unacked / buffered frames) for the drain check. *)
type 'a link = { send : 'a -> unit; reliable : 'a Sim.Reliable.t option }

(* Control traffic merge -> manager. [Resync_reply] answers a restarting
   manager's handshake with the merge's watermark for its view;
   [Resync_demand] is the inverse direction of initiative — a restarted
   merge asking every live manager to re-handshake and replay the action
   lists the fresh incarnation has not seen. *)
type ctrl_msg = Resync_reply of int * int | Resync_demand

let run_pipelined cfg =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create cfg.seed in
  let arrival_rng = Sim.Rng.split rng in
  let lat_rng = Sim.Rng.split rng in
  let sample mean = Sim.Rng.exponential lat_rng ~mean in
  let exec = Parallel.Config.exec cfg.parallel in
  let metrics = Metrics.create () in
  let timeline = ref [] in
  let record fmt =
    Fmt.kstr
      (fun msg ->
        if cfg.record_timeline then
          timeline := (Sim.Engine.now engine, msg) :: !timeline)
      fmt
  in
  (* Fault plan: the config's channel-level plan plus the deterministic
     translation of Drop_action_list faults (the nth physical message on
     the manager's action-list channel). Injection happens in the channel,
     so sent/delivered/dropped statistics stay truthful. *)
  let fault_rng = Sim.Rng.split rng in
  let link_rng = Sim.Rng.split rng in
  let plan =
    Workload.Fault_plan.union
      (cfg.fault_plan
      :: List.filter_map
           (function
             | Drop_action_list { view; nth } ->
               Some
                 (Workload.Fault_plan.nth ~channel:(view ^ "->merge") ~nth
                    Workload.Fault_plan.Drop)
             | Crash_vm _ | Crash_merge _ | Crash_integrator _
             | Crash_warehouse _ ->
               None)
           cfg.faults)
  in
  let quiescence : (unit -> bool) list ref = ref [] in
  let link_stats : (unit -> Sim.Reliable.stats) list ref = ref [] in
  let drop_counts : (unit -> int) list ref = ref [] in
  let register ~faultable chan =
    if faultable && not (Workload.Fault_plan.is_empty plan) then
      Workload.Fault_plan.attach plan ~rng:fault_rng chan;
    drop_counts := (fun () -> Sim.Channel.dropped chan) :: !drop_counts
  in
  (* [faultable:false] keeps a link outside the fault plan's reach. The
     source->integrator feed is the ground-truth boundary: the paper
     assumes sources report every committed transaction, and the
     consistency oracle's recorded schedule depends on it, so injected
     faults model only the warehouse's internal messaging. *)
  let make_link ?(faultable = true) ~name deliver =
    match cfg.reliability with
    | Off ->
      let ch =
        Sim.Channel.create engine ~name
          ~latency:(fun () -> sample cfg.latencies.message)
          deliver
      in
      register ~faultable ch;
      { send = (fun m -> Sim.Channel.send ch m); reliable = None }
    | Acked params ->
      let rl =
        Sim.Reliable.create engine ~name ~params ~rng:(Sim.Rng.split link_rng)
          ~on_give_up:(fun () ->
            (* Link death surfaced at the instant it happens, not just as
               an end-of-run statistic. *)
            Atomic.incr metrics.Metrics.gave_up;
            record "link %s gave up on a frame after max retries" name)
          ~latency:(fun () -> sample cfg.latencies.message)
          deliver
      in
      register ~faultable (Sim.Reliable.data_channel rl);
      register ~faultable (Sim.Reliable.ctrl_channel rl);
      quiescence := (fun () -> Sim.Reliable.quiescent rl) :: !quiescence;
      link_stats := (fun () -> Sim.Reliable.stats rl) :: !link_stats;
      { send = (fun m -> Sim.Reliable.send rl m); reliable = Some rl }
  in
  let sources = Workload.Scenarios.sources cfg.scenario in
  let schemas = Source.Sources.schema_lookup sources in
  let views = effective_views cfg schemas in
  let initial_db = Source.Sources.initial sources in
  let store =
    Warehouse.Store.create ~retention:cfg.store_retention
      (List.map
         (fun v -> (Query.View.name v, Query.View.materialize initial_db v))
         views)
  in
  let contention0 = Query.Compiled.memo_contention () in
  (* Shared-plan engine for the pipelined runtime: complete managers
     route their per-update deltas through one sub-plan DAG instead of
     each evaluating its own compiled plan, so a subplan common to
     several views is maintained once per update. Gated to fault-free,
     unfiltered runs — the engine requires every routed view to demand
     every transaction touching its base relations in id order, which
     message drops, crashes and semantic filtering all break. *)
  let is_complete v =
    match kind_of cfg v with Complete_vm -> true | _ -> false
  in
  let shared =
    if cfg.shared_plans && faultless cfg && not cfg.semantic_filter
       && List.exists is_complete views
    then
      Some
        (Shared.Engine.create ~schemas ~initial:initial_db
           (List.filter is_complete views))
    else None
  in
  let arrival_times = Hashtbl.create 64 in
  let serving =
    setup_serving engine ~rng ~sample ~metrics ~store ~views
      ~log:(fun msg -> record "%s" msg)
      cfg
  in
  (* ---- the durable layer and process-crash bookkeeping ----

     Two write-ahead logs back the two stateful singleton processes: the
     warehouse WAL records every WT just before the store applies it
     (sync-per-append — the write-ahead is load-bearing), the integrator
     WAL records every stamped transaction with its REL set under group
     commit. Both are checkpointed periodically to bound replay. The WAL
     handles exist unconditionally so the report can read their stats;
     appends are gated on [durable_on]. *)
  let process_crashes = process_crash_faults cfg in
  let durable_on = process_crashes || cfg.durable <> None in
  (* Process-crash recovery accounts for completed work per submitted WT
     (dup-row guards, submitted-row seeding), so crash runs drain the
     merge per message; [Fused] is rejected outright below, and
     [Coalesced] — whose whole point is being observably identical —
     silently degrades to the per-message path. *)
  let batch_mode = if process_crashes then Per_message else cfg.merge_batch in
  (* Fused-run records for {!Consistency.Checker.certify_fused}: the
     emission sequence (rows per emitted WT) and each fused batch's
     constituent parts, both accumulated newest-first. *)
  let fused_emitted : int list list ref = ref [] in
  let fused_parts : (int list * Query.Action_list.t list) list list ref =
    ref []
  in
  let dur = Option.value ~default:default_durability cfg.durable in
  let wh_wal : (unit, float * Warehouse.Wt.t) Durable.Wal.t =
    Durable.Wal.create ~group_commit:1 ()
  in
  let integ_wal : (unit, Update.Transaction.t * string list) Durable.Wal.t =
    Durable.Wal.create ~group_commit:dur.group_commit ()
  in
  (* Checkpoints are sealed: both logs record exactly their recovery
     state (commits; stamped ingests), so a checkpoint just adopts the
     synced WAL image as the next segment ({!Durable.Wal.seal}) — zero
     re-marshaling, cost independent of history and of delta size. *)
  let wal_replayed = ref 0 in
  (* Auxiliary-state WALs of the self-maintaining managers (one per
     Selfmaint_vm when durable): records are applied transaction ids,
     the checkpoint slot snapshots the projected auxiliary database.
     Recovery restarts log replay from the checkpointed id instead of
     source state 0 — and never queries the sources. Collected here so
     the durability report can fold their disk stats in. *)
  let aux_wals :
      (string * (Database.t * int, int) Durable.Wal.t) list ref =
    ref []
  in
  let commits_restored = ref 0 in
  let dup_wts = ref 0 in
  let recovery_total = ref 0.0 in
  (* Rows whose WTs have been handed to the submitter, and per view the
     highest action-list state among them. This is the ground recovery
     dedups against: a restarted merge re-derives exactly the rows not
     here, and replayed action lists at or below a view's mark are
     duplicates. Rebuilt from the restored commit history after a
     warehouse crash (anything submitted but uncommitted died with the
     submitter queue and must be re-derived). *)
  let submitted_rows : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let submitted_marks : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let note_submitted (wt : Warehouse.Wt.t) =
    List.iter (fun row -> Hashtbl.replace submitted_rows row ()) wt.rows;
    List.iter
      (fun al ->
        let cur =
          Option.value ~default:0
            (Hashtbl.find_opt submitted_marks al.Query.Action_list.view)
        in
        if al.Query.Action_list.state > cur then
          Hashtbl.replace submitted_marks al.Query.Action_list.view
            al.Query.Action_list.state)
      wt.actions
  in
  (* Crash specs fire once, on the nth event the process handles; the
     crash bodies are tied through refs once the processes they wipe
     exist. The message carrying the triggering event is the casualty. *)
  let find_crash f = List.find_map f cfg.faults in
  let merge_crash_spec =
    find_crash (function
      | Crash_merge { at_event; restart_after } ->
        Some (at_event, restart_after)
      | _ -> None)
  in
  let integ_crash_spec =
    find_crash (function
      | Crash_integrator { at_event; restart_after } ->
        Some (at_event, restart_after)
      | _ -> None)
  in
  let wh_crash_spec =
    find_crash (function
      | Crash_warehouse { at_event; restart_after } ->
        Some (at_event, restart_after)
      | _ -> None)
  in
  let merge_down = ref false in
  let integ_down = ref false in
  let wh_down = ref false in
  let merge_crash_armed = ref (merge_crash_spec <> None) in
  let integ_crash_armed = ref (integ_crash_spec <> None) in
  let wh_crash_armed = ref (wh_crash_spec <> None) in
  let merge_events = ref 0 in
  let integ_events = ref 0 in
  let wh_events = ref 0 in
  let crash_merge_ref = ref (fun () -> ()) in
  let crash_integ_ref = ref (fun () -> ()) in
  let crash_wh_ref = ref (fun () -> ()) in
  let note_merge_event () =
    incr merge_events;
    match merge_crash_spec with
    | Some (n, _) when !merge_crash_armed && !merge_events = n ->
      merge_crash_armed := false;
      !crash_merge_ref ()
    | _ -> ()
  in
  let note_integ_event () =
    incr integ_events;
    match integ_crash_spec with
    | Some (n, _) when !integ_crash_armed && !integ_events = n ->
      integ_crash_armed := false;
      !crash_integ_ref ()
    | _ -> ()
  in
  let note_wh_event () =
    incr wh_events;
    match wh_crash_spec with
    | Some (n, _) when !wh_crash_armed && !wh_events = n ->
      wh_crash_armed := false;
      !crash_wh_ref ()
    | _ -> ()
  in
  (* Per-link hooks collected as the links are built, so the crash bodies
     can reach every receiver/sender half they must reset. *)
  let merge_rx_down : (bool -> unit) list ref = ref [] in
  let merge_rx_reset : (unit -> unit) list ref = ref [] in
  let ctrl_bumps : (unit -> unit) list ref = ref [] in
  let vm_ctrls : (ctrl_msg -> unit) list ref = ref [] in
  let integ_sender_bumps : (unit -> unit) list ref = ref [] in
  let submitter =
    Warehouse.Submitter.create engine ~policy:cfg.submit
      ~commit_latency:(fun () -> sample cfg.latencies.commit)
      ~store
      ~run_tasks:(fun tasks ->
        (* Fan a run plan's independent per-view walks across the domain
           pool; planning happens on the simulation domain at the run's
           first commit event, so joining here blocks nothing else. *)
        match tasks with
        | [] -> ()
        | [ task ] -> task ()
        | _ ->
          let futs =
            List.map (fun task -> Parallel.Exec.spawn exec task) tasks
          in
          List.iter Parallel.Exec.await futs)
      ~on_plan:(fun (p : Warehouse.Store.run_plan) ->
        Atomic.incr metrics.Metrics.merge_runs;
        Metrics.add metrics.Metrics.coalesced_in p.Warehouse.Store.coalesced_in;
        Metrics.add metrics.Metrics.coalesced_out
          p.Warehouse.Store.coalesced_out;
        Metrics.add metrics.Metrics.coalesce_fallbacks
          p.Warehouse.Store.seq_fallbacks)
      ~pre_commit:(fun ~time wt ->
        (* Write-ahead: the WT is durable before the store applies it, so
           every applied commit is reproducible from checkpoint + WAL. A
           fused run was already logged as one group frame at release
           ({!Durable.Wal.append_group}), part by part. *)
        if durable_on && batch_mode <> Fused then
          Durable.Wal.append wh_wal (time, wt))
      ~on_commit:(fun wt ->
        record "warehouse commit: rows [%a] -> views {%s}"
          (Fmt.list ~sep:Fmt.comma Fmt.int)
          wt.Warehouse.Wt.rows
          (String.concat ", " (Warehouse.Wt.views wt));
        Atomic.incr metrics.Metrics.commits;
        Metrics.add metrics.Metrics.actions_applied
          (Warehouse.Wt.action_count wt);
        serving_publish serving wt;
        if
          durable_on
          && Warehouse.Store.commit_count store mod dur.checkpoint_every = 0
        then Durable.Wal.seal wh_wal;
        List.iter
          (fun row ->
            match Hashtbl.find_opt arrival_times row with
            | Some t0 ->
              Sim.Stats.Summary.add metrics.Metrics.staleness
                (Sim.Engine.now engine -. t0)
            | None -> ())
          wt.Warehouse.Wt.rows;
        (* Index churn next to the batch counters: occupancy of every
           memoized hash index of the views this commit touched. The
           sample is free when the kernels built no index. *)
        List.iter
          (fun v ->
            List.iter
              (fun (o : Bag_index.occupancy) ->
                Sim.Stats.Summary.add metrics.Metrics.index_slots
                  (float_of_int o.Bag_index.slots);
                Sim.Stats.Summary.add metrics.Metrics.index_live
                  (float_of_int o.Bag_index.live);
                Sim.Stats.Summary.add metrics.Metrics.index_tombstones
                  (float_of_int o.Bag_index.tombstones))
              (Relation.index_stats (Warehouse.Store.view store v)))
          (Warehouse.Wt.views wt))
      ()
  in
  (* Merge processes: one per group (Section 6.1), or a single one. Groups
     are balanced by estimated evaluation cost — the summed initial
     cardinality of each view's base relations — so that with parallel
     merge groups every domain gets comparable work, not just a
     comparable view count. *)
  let groups =
    match cfg.merge_groups with
    | None -> [ views ]
    | Some k ->
      let weight v =
        List.fold_left
          (fun acc r ->
            acc
            +
            match Database.find initial_db r with
            | rel -> Relation.cardinal rel
            | exception _ -> 0)
          1
          (Query.View.base_relations v)
      in
      Mvc.Partition.coarsen ~weight ~max_groups:k
        (Mvc.Partition.groups views)
  in
  let levels = List.map (fun v -> level_of (kind_of cfg v)) views in
  let algorithm = algorithm_for cfg levels in
  (* The crash-recovery protocol leans on invariants only this corner of
     the configuration space provides: SPA's one-WT-per-row discipline
     (submitted rows identify completed work), complete managers
     (re-derivable from the integrator log), direct REL routing (the
     integrator, not a manager, is the authority re-sending RELs), no
     semantic filtering (syntactic REL sets are reproducible), and a
     full commit history (checkpoints re-apply it). *)
  if process_crashes then begin
    if cfg.merge_batch = Fused then
      invalid_arg
        "System: process crash faults require a non-Fused merge_batch \
         (recovery identifies completed work by per-row WTs)";
    if cfg.rel_routing <> Direct then
      invalid_arg "System: process crash faults require Direct REL routing";
    if cfg.semantic_filter then
      invalid_arg
        "System: process crash faults require semantic_filter = false";
    if
      not
        (List.for_all
           (fun v ->
             match kind_of cfg v with
             | Complete_vm | Selfmaint_vm -> true
             | _ -> false)
           views)
    then
      invalid_arg
        "System: process crash faults require Complete_vm or Selfmaint_vm \
         view managers";
    if algorithm <> Mvc.Merge.Spa then
      invalid_arg "System: process crash faults require the SPA merge";
    if cfg.store_retention <> Warehouse.Store.Keep_all then
      invalid_arg
        "System: process crash faults require Keep_all store retention \
         (checkpoints re-apply the full commit history)"
  end;
  let n_groups = List.length groups in
  (* A merge's [emit] fires inside its group's work half, which may be
     running on a pool domain; WTs are buffered group-locally and
     submitted from the simulation domain — in emission order — by the
     job's finish half (or by the flush wrapper during drain). *)
  let emitted = Array.init n_groups (fun _ -> Queue.create ()) in
  (* Merge state lives in a mutable array so a crash can replace a group's
     merge with a fresh incarnation; everything downstream dereferences
     through [merge_of] at use time. *)
  let groups_arr = Array.of_list groups in
  let make_merge gi group =
    Mvc.Merge.create algorithm
      ~views:(List.map Query.View.name group)
      ~emit:(fun wt -> Queue.push wt emitted.(gi))
  in
  let merge_arr = Array.init n_groups (fun gi -> make_merge gi groups_arr.(gi)) in
  let merge_of gi = merge_arr.(gi) in
  (* Per-group row dedup for REL deliveries (process-crash runs only):
     after a merge restart, the state transfer and the integrator's live
     ARQ retransmits overlap, and SPA must see each group REL exactly
     once. Seeded with the submitted rows on restart. *)
  let rel_seen : (int, unit) Hashtbl.t array =
    Array.init n_groups (fun _ -> Hashtbl.create 64)
  in
  (* Per-message draining: one submit per emitted WT, with the
     process-crash guards (duplicate-row drop, submitted-row seeding)
     that recovery's accounting depends on. *)
  let drain_per_message gi =
    while not (Queue.is_empty emitted.(gi)) do
      let wt = Queue.pop emitted.(gi) in
      if !wh_down then
        record "warehouse down: WT for rows [%a] lost"
          (Fmt.list ~sep:Fmt.comma Fmt.int)
          wt.Warehouse.Wt.rows
      else begin
        note_wh_event ();
        if !wh_down then
          record "warehouse crashed receiving WT for rows [%a]"
            (Fmt.list ~sep:Fmt.comma Fmt.int)
            wt.Warehouse.Wt.rows
        else if
          process_crashes
          && wt.Warehouse.Wt.rows <> []
          && List.for_all
               (fun r -> Hashtbl.mem submitted_rows r)
               wt.Warehouse.Wt.rows
        then begin
          (* Recovery re-derived a WT the pre-crash incarnation already
             submitted; committing it twice would double-apply. *)
          incr dup_wts;
          record "duplicate WT for rows [%a] dropped at submit"
            (Fmt.list ~sep:Fmt.comma Fmt.int)
            wt.Warehouse.Wt.rows
        end
        else begin
          if process_crashes then note_submitted wt;
          Warehouse.Submitter.submit submitter wt
        end
      end
    done
  in
  (* Pop everything the last merge step emitted — the ready run, in
     emission order. Only reached with [batch_mode <> Per_message], so
     [process_crashes] is false and the warehouse can never be down;
     [note_wh_event] keeps the event counter truthful all the same. *)
  let pop_ready gi =
    let run = ref [] in
    while not (Queue.is_empty emitted.(gi)) do
      let wt = Queue.pop emitted.(gi) in
      note_wh_event ();
      run := wt :: !run
    done;
    List.rev !run
  in
  let drain_emitted gi =
    match batch_mode with
    | Per_message -> drain_per_message gi
    | Coalesced -> (
      (* The whole run reaches the submitter as a unit: the same commit
         events fire at the same instants as per-message submission (the
         head entry alone schedules work), but the store plans the run's
         view timelines in one coalesced pass at the first commit. *)
      match pop_ready gi with
      | [] -> ()
      | wts ->
        Sim.Stats.Summary.add metrics.Metrics.merge_batch_size
          (float_of_int (List.length wts));
        Warehouse.Submitter.submit_run submitter wts)
    | Fused -> (
      (* The run is released as one batched warehouse transaction: the
         store lands on the run's endpoint and skips its intermediate
         states (batching consistency). The parts and the emission
         sequence are recorded for {!Consistency.Checker.certify_fused},
         and the durable layer gets the run as one WAL group frame. *)
      match pop_ready gi with
      | [] -> ()
      | wts ->
        Sim.Stats.Summary.add metrics.Metrics.merge_batch_size
          (float_of_int (List.length wts));
        List.iter
          (fun (wt : Warehouse.Wt.t) ->
            fused_emitted := wt.Warehouse.Wt.rows :: !fused_emitted)
          wts;
        fused_parts :=
          List.map
            (fun (wt : Warehouse.Wt.t) ->
              (wt.Warehouse.Wt.rows, wt.Warehouse.Wt.actions))
            wts
          :: !fused_parts;
        if durable_on then
          Durable.Wal.append_group wh_wal
            (List.map (fun wt -> (Sim.Engine.now engine, wt)) wts);
        let bwt = Warehouse.Wt.batch wts in
        if List.length wts > 1 then
          record "merge: fused %d WTs into one BWT (rows [%a])"
            (List.length wts)
            (Fmt.list ~sep:Fmt.comma Fmt.int)
            bwt.Warehouse.Wt.rows;
        (* As a single-entry run so the submitter plans it: the BWT's
           action lists are coalesced per view — a batch cancels its own
           churn — and the per-view walks fan across the pool. *)
        Warehouse.Submitter.submit_run submitter [ bwt ])
  in
  (* One service queue per merge process: messages from the REL channel and
     every view manager's AL channel are handled one at a time. *)
  let merge_servers =
    Array.init n_groups (fun _ ->
        make_server ~batch:(batch_mode = Fused) engine ~exec
          ~latency:(fun () ->
            (* Wrapping the sample changes no RNG draw — the service-time
               summary rides along for free. *)
            let l = sample cfg.latencies.merge in
            Sim.Stats.Summary.add metrics.Metrics.merge_service_time l;
            l))
  in
  let merge_server_of gi =
    let submit, _, _ = merge_servers.(gi) in
    submit
  in
  let merge_servers_pending () =
    Array.fold_left (fun acc (_, pending, _) -> acc + pending ()) 0
      merge_servers
  in
  let merge_servers_reset () =
    Array.iter (fun (_, _, reset) -> reset ()) merge_servers
  in
  (* Merge occupancy is sampled from per-group snapshots refreshed on the
     simulation domain whenever that group's state settles (job finish,
     flush). Reading another group's merge live would race with its
     in-flight work; the snapshots are exactly the live values at every
     sampling point because merge state only changes inside jobs and
     flushes. *)
  let held_snapshot = Array.make n_groups 0 in
  let rows_snapshot = Array.make n_groups 0 in
  let snapshot_group gi merge =
    held_snapshot.(gi) <- Mvc.Merge.held_action_lists merge;
    rows_snapshot.(gi) <- Mvc.Merge.live_rows merge
  in
  let sample_merge_metrics () =
    Sim.Stats.Summary.add metrics.Metrics.merge_held
      (float_of_int (Array.fold_left ( + ) 0 held_snapshot));
    Sim.Stats.Summary.add metrics.Metrics.merge_live_rows
      (float_of_int (Array.fold_left ( + ) 0 rows_snapshot));
    Sim.Stats.Summary.add metrics.Metrics.merge_queue_depth
      (float_of_int (merge_servers_pending ()))
  in
  (* View managers and their AL channels to the owning merge. *)
  let merge_of_view =
    let table = Hashtbl.create 16 in
    List.iteri
      (fun gi group ->
        List.iter
          (fun v -> Hashtbl.replace table (Query.View.name v) gi)
          group)
      groups;
    fun name -> Hashtbl.find table name
  in
  let remote_query expr k =
    (* Request travel, evaluation at the source's then-current state,
       answer travel. Each call is a compensation round trip the
       self-maintaining managers exist to avoid, so it is counted. *)
    Atomic.incr metrics.Metrics.source_queries;
    let issued = Sim.Engine.now engine in
    Sim.Engine.schedule_after engine (sample (cfg.latencies.query_roundtrip /. 2.))
      (fun () ->
        let contents = Relation.contents (Source.Sources.query sources expr) in
        let version = Source.Sources.last_id sources in
        Sim.Engine.schedule_after engine
          (sample (cfg.latencies.query_roundtrip /. 2.))
          (fun () ->
            Sim.Stats.Summary.add metrics.Metrics.source_query_latency
              (Sim.Engine.now engine -. issued);
            k (contents, version)))
  in
  (* Pending REL forwards per view manager (Section 3.2's alternative
     scheme: the integrator hands REL_i to a relevant manager, which
     forwards it to the merge when it delivers its action lists).

     Unlike the direct scheme, forwarded RELs can reach the merge out of
     row order (they travel on different managers' channels), while the
     painting algorithms assume that when an action list covering row j is
     processed, every group REL for rows <= j has been seen. Each forward
     therefore carries the previous row routed to the same merge, and a
     per-merge reorderer ingests RELs strictly in that chain order. *)
  let rel_forwards : (string, (int * string list * int) Queue.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let rel_reorderers =
    List.mapi
      (fun gi _ ->
        let held = Hashtbl.create 16 in
        let last = ref 0 in
        let rec ingest (row, rel, prev) =
          if prev = !last then begin
            Mvc.Merge.receive_rel (merge_of gi) ~row ~rel;
            last := row;
            match Hashtbl.find_opt held row with
            | Some next ->
              Hashtbl.remove held row;
              ingest next
            | None -> ()
          end
          else Hashtbl.replace held prev (row, rel, prev)
        in
        (ingest, fun () -> Hashtbl.length held))
      groups
  in
  let reorderer_of gi = List.nth rel_reorderers gi in
  let forwards_of name =
    match Hashtbl.find_opt rel_forwards name with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add rel_forwards name q;
      q
  in
  (* The integrator is created early so recovering view managers can close
     over it: crash recovery replays its retained update log. *)
  let retain_log =
    durable_on
    || List.exists (function Crash_vm _ -> true | _ -> false) cfg.faults
  in
  let integ =
    Integrator.create ~semantic_filter:cfg.semantic_filter ~retain_log
      ~schemas views
  in
  (* Highest action-list state the merge layer has received per view: the
     watermark a restarting manager resyncs against (it replays only the
     log suffix the merge has not yet seen). *)
  let watermarks : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* Views whose managers a restarted merge has not yet re-handshaked
     with. Until a view's [`Resync] marker (the first frame of the
     manager's fresh epoch) arrives, any action list delivered for it is
     a remnant of the dead merge's stream — a pre-crash in-flight frame
     the reset receiver adopted — and delivering it would violate SPA's
     per-manager FIFO invariant (a later row's list overtaking an earlier
     row still waiting). Dropping is safe: the resync replay re-derives
     every state above the submitted watermark. *)
  let awaiting_resync : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let make_vm view =
    let name = Query.View.name view in
    let kind = kind_of cfg view in
    let gi = merge_of_view name in
    let crash_spec =
      List.find_map
        (function
          | Crash_vm { view = v; at_event; restart_after }
            when String.equal v name ->
            Some (at_event, restart_after)
          | _ -> None)
        cfg.faults
    in
    (match (crash_spec, kind) with
    | Some _, (Complete_vm | Selfmaint_vm | Batching_vm) | None, _ -> ()
    | Some _, _ ->
      invalid_arg
        "System: Crash_vm faults support Complete_vm, Selfmaint_vm and \
         Batching_vm managers (log-replay recovery)");
    (* Control channel merge -> manager, carrying resync replies
       (epoch, watermark) and restarted-merge resync demands. Handler
       installed below. *)
    let ctrl_handler = ref (fun (_ : ctrl_msg) -> ()) in
    let ctrl_link =
      make_link ~name:("merge->" ^ name) (fun msg -> !ctrl_handler msg)
    in
    let al_link =
      make_link ~name:(name ^ "->merge") (fun msg ->
          if !merge_down then ()
          else begin
            note_merge_event ();
            if !merge_down then ()
              (* crashed on this very event; the message is the casualty *)
            else begin
              (match msg with
              | `Resync _ -> Hashtbl.remove awaiting_resync name
              | _ -> ());
              if
                (match msg with `Al _ -> true | _ -> false)
                && Hashtbl.mem awaiting_resync name
              then record "merge dropped pre-resync AL(%s)" name
              else
              (* Delivery-time dedup around merge restarts: a replayed
                 action list at or below the view's delivered watermark
                 would trip SPA's strictly-increasing state check. Only
                 live under process-crash faults — crash-free runs keep
                 the raw channel behaviour. *)
              let duplicate =
                match msg with
                | `Al al when process_crashes ->
                  let cur =
                    Option.value ~default:0
                      (Hashtbl.find_opt watermarks al.Query.Action_list.view)
                  in
                  if al.Query.Action_list.state <= cur then true
                  else begin
                    Hashtbl.replace watermarks al.Query.Action_list.view
                      al.Query.Action_list.state;
                    false
                  end
                | _ -> false
              in
              if duplicate then
                record "merge dropped duplicate AL(%s)" name
              else begin
                (* Work half: group-local painting/reordering, safe off
                   the simulation domain. Finish half: timeline records,
                   the watermark table (shared across groups), control
                   replies and buffered WT submission — simulation domain
                   only. *)
                let work, finish =
                  match msg with
                  | `Rel ((row, _, _) as fwd) ->
                    ( (fun () -> fst (reorderer_of gi) fwd),
                      fun () ->
                        record "merge <- forwarded REL_%d (via %s)" row name
                    )
                  | `Al al ->
                    ( (fun () ->
                        Mvc.Merge.receive_action_list (merge_of gi) al),
                      fun () ->
                        record "merge <- AL(%s, %d)" al.Query.Action_list.view
                          al.Query.Action_list.state;
                        let cur =
                          Option.value ~default:0
                            (Hashtbl.find_opt watermarks
                               al.Query.Action_list.view)
                        in
                        if al.Query.Action_list.state > cur then
                          Hashtbl.replace watermarks
                            al.Query.Action_list.view
                            al.Query.Action_list.state )
                  | `Resync epoch ->
                    ( (fun () -> ()),
                      fun () ->
                        record "merge <- resync(%s, epoch %d)" name epoch;
                        let w =
                          Option.value ~default:0
                            (Hashtbl.find_opt watermarks name)
                        in
                        ctrl_link.send (Resync_reply (epoch, w)) )
                in
                merge_server_of gi
                  ( work,
                    fun () ->
                      finish ();
                      snapshot_group gi (merge_of gi);
                      drain_emitted gi;
                      sample_merge_metrics () )
              end
            end
          end)
    in
    (* Register the crash hooks this manager's links contribute: the
       merge owns the receiving half of [al_link] and the sending half of
       [ctrl_link]; the integrator owns the sending half of
       [integ_link] (registered below, once it exists). *)
    merge_rx_down :=
      (fun d ->
        match al_link.reliable with
        | Some rl -> Sim.Reliable.set_receiver_down rl d
        | None -> ())
      :: !merge_rx_down;
    merge_rx_reset :=
      (fun () ->
        match al_link.reliable with
        | Some rl -> Sim.Reliable.reset_receiver rl
        | None -> ())
      :: !merge_rx_reset;
    ctrl_bumps :=
      (fun () ->
        match ctrl_link.reliable with
        | Some rl -> ignore (Sim.Reliable.bump_epoch rl)
        | None -> ())
      :: !ctrl_bumps;
    vm_ctrls := (fun msg -> ctrl_link.send msg) :: !vm_ctrls;
    let emit_to_merge al =
      (* Forward any RELs this manager owes the merge for rows the list
         covers, ahead of the list itself (same FIFO channel). *)
      let owed = forwards_of name in
      let rec drain () =
        match Queue.peek_opt owed with
        | Some ((row, _, _) as fwd) when row <= al.Query.Action_list.state ->
          ignore (Queue.pop owed);
          al_link.send (`Rel fwd);
          drain ()
        | Some _ | None -> ()
      in
      drain ();
      al_link.send (`Al al)
    in
    (* Crash wrapper state. [incarnation] fences events scheduled by a dead
       incarnation of the manager (the engine cannot cancel events). *)
    let incarnation = ref 0 in
    let down = ref false in
    let recovering = ref false in
    let last_id = ref 0 in
    let pending_recovery : Update.Transaction.t Queue.t = Queue.create () in
    let emit_count = ref 0 in
    let crash_armed = ref (crash_spec <> None) in
    let resync_epoch = ref 0 in
    (* Self-maintenance state. [selfmaint_resume] carries a rebuilt
       (plan, auxiliary cache) pair from the resync replay into the next
       [build_inner]; the aux WAL checkpoints the auxiliary state so that
       replay starts from the checkpoint, not from ss_0. *)
    let selfmaint_resume : (Selfmaint.Plan.t * Database.t) option ref =
      ref None
    in
    let aux_wal =
      if durable_on && kind = Selfmaint_vm then begin
        let wal : (Database.t * int, int) Durable.Wal.t =
          Durable.Wal.create ~group_commit:dur.group_commit ()
        in
        aux_wals := (name, wal) :: !aux_wals;
        Some wal
      end
      else None
    in
    let aux_applies = ref 0 in
    let aux_on_apply (txn : Update.Transaction.t) cache =
      match aux_wal with
      | None -> ()
      | Some wal ->
        Durable.Wal.append wal txn.Update.Transaction.id;
        incr aux_applies;
        if !aux_applies mod dur.checkpoint_every = 0 then
          Durable.Wal.checkpoint wal (cache, txn.Update.Transaction.id)
    in
    let receive_ref = ref (fun (_ : Update.Transaction.t) -> ()) in
    let integ_link =
      make_link ~name:("integ->" ^ name) (fun txn -> !receive_ref txn)
    in
    integ_sender_bumps :=
      (fun () ->
        match integ_link.reliable with
        | Some rl -> ignore (Sim.Reliable.bump_epoch rl)
        | None -> ())
      :: !integ_sender_bumps;
    let crash () =
      crash_armed := false;
      down := true;
      incr incarnation;
      Atomic.incr metrics.Metrics.crashes;
      record "%s crashed (losing its in-memory state)" name;
      (* The auxiliary WAL is a disk: it survives, minus the unsynced
         tail. *)
      (match aux_wal with
      | Some wal -> Durable.Wal.crash wal
      | None -> ());
      (match integ_link.reliable with
      | Some rl -> Sim.Reliable.set_receiver_down rl true
      | None -> ());
      match (cfg.reliability, crash_spec) with
      | Off, _ | _, None ->
        (* Without the reliability layer there is no resync protocol: the
           manager stays dead. Progress may stop, but nothing wrong is
           ever merged (stuck-but-safe). *)
        ()
      | Acked _, Some (_, restart_after) ->
        Sim.Engine.schedule_after engine restart_after (fun () ->
            down := false;
            recovering := true;
            (match integ_link.reliable with
            | Some rl -> Sim.Reliable.reset_receiver rl
            | None -> ());
            (match ctrl_link.reliable with
            | Some rl -> Sim.Reliable.reset_receiver rl
            | None -> ());
            let epoch =
              match al_link.reliable with
              | Some rl -> Sim.Reliable.bump_epoch rl
              | None -> !resync_epoch + 1
            in
            resync_epoch := epoch;
            record "%s restarting, resync epoch %d" name epoch;
            al_link.send (`Resync epoch))
    in
    let guarded_emit inc al =
      if !incarnation <> inc || !down then ()
      else begin
        incr emit_count;
        match crash_spec with
        | Some (n, _) when !crash_armed && !emit_count = n -> crash ()
        | _ -> emit_to_merge al
      end
    in
    let compute_latency ~batch =
      sample (cfg.latencies.compute *. float_of_int (max 1 batch))
    in
    let build_inner ~initial ~inc =
      let emit = guarded_emit inc in
      match kind with
      | Complete_vm ->
        let delta_fn =
          Option.map
            (fun eng ~pre txn -> Shared.Engine.txn_delta eng ~view:name ~pre txn)
            shared
        in
        Viewmgr.Complete_vm.create ~engine ~compute_latency ~exec ?delta_fn
          ~initial ~view ~emit ()
      | Selfmaint_vm ->
        let state = !selfmaint_resume in
        selfmaint_resume := None;
        (match state with
        | None ->
          let plan = Selfmaint.Plan.create ~initial view in
          let s = Selfmaint.Plan.storage plan in
          Metrics.add metrics.Metrics.aux_rows s.Selfmaint.Plan.aux_rows;
          Metrics.add metrics.Metrics.aux_cells s.Selfmaint.Plan.aux_cells;
          Metrics.add metrics.Metrics.aux_saved_cells
            (s.Selfmaint.Plan.replica_cells - s.Selfmaint.Plan.aux_cells);
          Selfmaint.Vm.create ~engine ~compute_latency ~exec
            ~state:(plan, Selfmaint.Plan.initial_cache plan)
            ~on_apply:aux_on_apply ~initial ~view ~emit ()
        | Some st ->
          Selfmaint.Vm.create ~engine ~compute_latency ~exec ~state:st
            ~on_apply:aux_on_apply ~initial ~view ~emit ())
      | Batching_vm ->
        Viewmgr.Batching_vm.create ~engine ~compute_latency ~exec ~initial
          ~view ~emit ()
      | Strobe_vm ->
        Viewmgr.Strobe_vm.create ~engine ~query:remote_query ~view ~emit ()
      | Periodic_vm period ->
        Viewmgr.Periodic_vm.create ~engine ~period ~compute_latency ~initial
          ~view ~emit ()
      | Convergent_vm ->
        Viewmgr.Convergent_vm.create ~engine
          ~emit_delay:(fun () ->
            sample (cfg.latencies.compute +. cfg.latencies.message))
          ~initial ~view ~emit ()
      | Complete_n_vm n ->
        Viewmgr.Complete_n_vm.create ~engine ~compute_latency ~exec ~n
          ~initial ~view ~emit ()
      | Derived_vm { aux; over_aux } ->
        Viewmgr.Derived_vm.create ~engine ~compute_latency ~initial ~aux
          ~view ~over_aux ~emit ()
    in
    let inner = ref (build_inner ~initial:initial_db ~inc:0) in
    (* Application-level id dedup is only needed around crash recovery
       (replay overlaps live retransmissions); without a crash fault the
       raw channel behaviour — including duplicate delivery under
       reliability Off — must stay observable. *)
    let dedup = crash_spec <> None || process_crashes in
    let receive txn =
      if !down then ()
      else if !recovering then Queue.push txn pending_recovery
      else if dedup && txn.Update.Transaction.id <= !last_id then ()
      else begin
        last_id := txn.Update.Transaction.id;
        !inner.Viewmgr.Vm.receive txn
      end
    in
    receive_ref := receive;
    (ctrl_handler :=
       function
       | Resync_demand ->
         (* A restarted merge asks for a fresh handshake. The manager is
            alive and its state is intact, but anything in flight or
            unacked on the AL link belongs to a dead merge incarnation:
            fence the current inner manager (its pending emissions are
            re-derived by the replay) and re-run the resync protocol.
            A demand that lands mid-recovery restarts the handshake —
            the epoch bump voids any reply or replay the dead merge
            still owes us. *)
         if not !down then begin
           recovering := true;
           incr incarnation;
           let epoch =
             match al_link.reliable with
             | Some rl -> Sim.Reliable.bump_epoch rl
             | None -> !resync_epoch + 1
           in
           resync_epoch := epoch;
           record "%s resyncing on merge demand, epoch %d" name epoch;
           al_link.send (`Resync epoch)
         end
       | Resync_reply (epoch, w) ->
         if !recovering && epoch = !resync_epoch then begin
           (* Read the integrator's retained log (one query round trip),
              re-derive the base-relation cache, and recompute the action
              lists the merge has not seen (states > watermark w). Both
              scheduled halves re-check the epoch: a newer handshake
              (another crash, a fresh merge demand) voids this one. *)
           Sim.Engine.schedule_after engine
             (sample cfg.latencies.query_roundtrip)
             (fun () ->
               if epoch <> !resync_epoch then ()
               else
               let head = Integrator.log_head integ in
               let lists, rebuild_initial =
                 match kind with
                 | Selfmaint_vm ->
                   (* Self-maintaining recovery never queries the
                      sources: the auxiliary state is rebuilt from its
                      WAL checkpoint (when one exists at or below the
                      merge watermark — later checkpoints cannot
                      re-derive the action lists the merge still needs)
                      plus the integrator log suffix, with every replayed
                      delta projected exactly like the live path. *)
                   let plan =
                     Selfmaint.Plan.create ~initial:initial_db view
                   in
                   let start_cache, from_id =
                     match aux_wal with
                     | Some wal ->
                       (match Durable.Wal.recover wal with
                       | Some (ck, id), _ when id <= w -> (ck, id)
                       | _ -> (Selfmaint.Plan.initial_cache plan, 0))
                     | None -> (Selfmaint.Plan.initial_cache plan, 0)
                   in
                   let cache = ref start_cache in
                   let replayed = ref [] in
                   List.iter
                     (fun ((txn : Update.Transaction.t), _rel) ->
                       if txn.Update.Transaction.id > from_id then begin
                         let changes =
                           Selfmaint.Plan.project plan
                             (Query.Delta.of_transaction txn)
                         in
                         if txn.Update.Transaction.id > w then begin
                           let delta =
                             Selfmaint.Plan.delta ~exec plan ~pre:!cache
                               changes
                           in
                           replayed :=
                             Query.Action_list.delta ~view:name
                               ~state:txn.Update.Transaction.id delta
                             :: !replayed
                         end;
                         cache := Selfmaint.Plan.advance plan !cache changes
                       end)
                     (Integrator.replay_for integ ~view:name ~after:0);
                   ( List.rev !replayed,
                     fun () ->
                       selfmaint_resume := Some (plan, !cache);
                       initial_db )
                 | _ ->
                   let base =
                     Database.restrict initial_db
                       (Query.View.base_relations view)
                   in
                   let vplan =
                     Query.Compiled.compile ~lookup:(Database.schema base)
                       view.Query.View.def
                   in
                   let cache = ref base in
                   let replayed = ref [] in
                   List.iter
                     (fun (txn, _rel) ->
                       let changes = Query.Delta.of_transaction txn in
                       if txn.Update.Transaction.id > w then begin
                         let delta =
                           Query.Delta.eval_plan ~exec ~pre:!cache changes
                             vplan
                         in
                         let al =
                           Query.Action_list.delta ~view:name
                             ~state:txn.Update.Transaction.id delta
                         in
                         replayed := al :: !replayed
                       end;
                       cache := Database.apply_relevant !cache txn)
                     (Integrator.replay_for integ ~view:name ~after:0);
                   (List.rev !replayed, fun () -> !cache)
               in
               let n = List.length lists in
               Sim.Engine.schedule_after engine
                 (compute_latency ~batch:(max 1 n))
                 (fun () ->
                   if epoch <> !resync_epoch then ()
                   else begin
                   List.iter emit_to_merge lists;
                   inner :=
                     build_inner ~initial:(rebuild_initial ())
                       ~inc:!incarnation;
                   last_id := head;
                   recovering := false;
                   Atomic.incr metrics.Metrics.recoveries;
                   record
                     "%s recovered: merge watermark %d, replayed %d lists \
                      up to U%d"
                     name w n head;
                   Queue.iter receive pending_recovery;
                   Queue.clear pending_recovery
                   end))
         end);
    let vm0 = !inner in
    let vm =
      { Viewmgr.Vm.view; level = vm0.Viewmgr.Vm.level;
        receive;
        flush =
          (fun () ->
            if (not !down) && not !recovering then !inner.Viewmgr.Vm.flush ());
        needs_ticks = vm0.Viewmgr.Vm.needs_ticks;
        pending =
          (fun () ->
            if !down then 0
            else
              !inner.Viewmgr.Vm.pending ()
              + Queue.length pending_recovery
              + if !recovering then 1 else 0) }
    in
    (vm, integ_link)
  in
  let vm_links = List.map make_vm views in
  let vms = List.map fst vm_links in
  let vm_chans = vm_links in
  (* Hand one group REL to a merge server — shared by live channel
     delivery and the restart-time state transfer (which bypasses the
     channel: FIFO server queues then guarantee the transferred RELs
     process before any replayed action list that needs them). *)
  let deliver_rel gi row rel_group =
    merge_server_of gi
      ( (fun () -> Mvc.Merge.receive_rel (merge_of gi) ~row ~rel:rel_group),
        fun () ->
          record "merge <- REL_%d = {%s}" row (String.concat ", " rel_group);
          snapshot_group gi (merge_of gi);
          drain_emitted gi;
          sample_merge_metrics () )
  in
  let rel_chans =
    List.mapi
      (fun gi _ ->
        let link =
          make_link ~name:"integ->merge" (fun (row, rel) ->
              if !merge_down then ()
              else begin
                note_merge_event ();
                if !merge_down then ()
                else if process_crashes && Hashtbl.mem rel_seen.(gi) row then
                  record "merge dropped duplicate REL_%d" row
                else begin
                  if process_crashes then Hashtbl.replace rel_seen.(gi) row ();
                  deliver_rel gi row rel
                end
              end)
        in
        merge_rx_down :=
          (fun d ->
            match link.reliable with
            | Some rl -> Sim.Reliable.set_receiver_down rl d
            | None -> ())
          :: !merge_rx_down;
        merge_rx_reset :=
          (fun () ->
            match link.reliable with
            | Some rl -> Sim.Reliable.reset_receiver rl
            | None -> ())
          :: !merge_rx_reset;
        integ_sender_bumps :=
          (fun () ->
            match link.reliable with
            | Some rl -> ignore (Sim.Reliable.bump_epoch rl)
            | None -> ())
          :: !integ_sender_bumps;
        link)
      groups
  in
  let group_names =
    List.map (fun group -> List.map Query.View.name group) groups
  in
  let group_last_routed = Array.make (List.length groups) 0 in
  (* REL_i to the merge(s) owning affected views: either directly
     (Figure 1) or carried by a relevant view manager (the Section 3.2
     alternative, which saves messages but lets RELs trail other
     managers' action lists). Factored out of ingest because integrator
     recovery re-routes the unsubmitted suffix of the restored log. *)
  let route_rels (stamped : Update.Transaction.t) rel =
    List.iteri
      (fun gi names ->
        let rel_group = List.filter (fun v -> List.mem v names) rel in
        if rel_group <> [] then
          match cfg.rel_routing with
          | Direct ->
            (List.nth rel_chans gi).send
              (stamped.Update.Transaction.id, rel_group)
          | Via_manager ->
            let carrier = List.hd rel_group in
            Queue.push
              ( stamped.Update.Transaction.id,
                rel_group,
                group_last_routed.(gi) )
              (forwards_of carrier);
            group_last_routed.(gi) <- stamped.Update.Transaction.id)
      group_names
  in
  (* U_i to the relevant view managers (and tick-hungry ones). *)
  let route_updates (stamped : Update.Transaction.t) rel =
    List.iter
      (fun (vm, link) ->
        if vm.Viewmgr.Vm.needs_ticks || List.mem (Viewmgr.Vm.name vm) rel
        then link.send stamped)
      vm_chans
  in
  let process_ingest txn =
    let stamped, rel = Integrator.ingest integ txn in
    assert (stamped.Update.Transaction.id = txn.Update.Transaction.id);
    if durable_on then begin
      Durable.Wal.append integ_wal (stamped, rel);
      if Integrator.ingested integ mod dur.integ_checkpoint_every = 0 then
        Durable.Wal.seal integ_wal
    end;
    record "integrator: U%d (%a) REL = {%s}" stamped.Update.Transaction.id
      Update.Transaction.pp stamped
      (String.concat ", " rel);
    route_rels stamped rel;
    route_updates stamped rel;
    let pending =
      List.fold_left (fun acc vm -> acc + vm.Viewmgr.Vm.pending ()) 0 vms
    in
    Sim.Stats.Summary.add metrics.Metrics.vm_queue (float_of_int pending)
  in
  let integrator_link =
    make_link ~faultable:false ~name:"sources->integ" (fun txn ->
        if !integ_down then
          record "integrator down: U%d ignored in flight"
            txn.Update.Transaction.id
        else if
          durable_on
          && txn.Update.Transaction.id < Integrator.next_id integ
        then
          (* Post-restart ARQ retransmit of a transaction the recovery
             re-fetch already pulled from the sources. *)
          record "integrator dropped duplicate U%d" txn.Update.Transaction.id
        else begin
          note_integ_event ();
          if !integ_down then
            record "integrator crashed receiving U%d (re-fetched on restart)"
              txn.Update.Transaction.id
          else process_ingest txn
        end)
  in
  (* ---- process crash bodies ----

     [wipe_*] runs synchronously at the crash instant and models the loss
     of the process's in-memory state; recovery is scheduled
     [restart_after] later (reliability [Acked] only — under [Off] there
     is no resync protocol and the process stays dead: stuck-but-safe,
     exactly like an unrecovered view-manager crash). *)
  let wipe_merge () =
    merge_down := true;
    List.iter (fun f -> f true) !merge_rx_down;
    merge_servers_reset ();
    Array.iter Queue.clear emitted;
    Array.iter Hashtbl.reset rel_seen;
    Hashtbl.reset watermarks
  in
  let restart_merge () =
    (* Fresh merge incarnations with empty VUTs. The row dedup is seeded
       with every submitted row (their RELs must never be re-ingested),
       and the watermark table restarts at what actually reached the
       warehouse — the resync replies tell each manager to replay
       everything after that. *)
    Array.iteri
      (fun gi group -> merge_arr.(gi) <- make_merge gi group)
      groups_arr;
    Array.iteri
      (fun gi _ ->
        let seen = rel_seen.(gi) in
        Hashtbl.reset seen;
        Hashtbl.iter (fun row () -> Hashtbl.replace seen row ()) submitted_rows;
        snapshot_group gi (merge_of gi))
      groups_arr;
    Hashtbl.reset watermarks;
    Hashtbl.iter (fun v s -> Hashtbl.replace watermarks v s) submitted_marks;
    (* Fence every manager's stream until its fresh-epoch [`Resync]
       marker arrives — adopted pre-crash frames must not reach SPA. *)
    List.iter
      (fun v -> Hashtbl.replace awaiting_resync (Query.View.name v) ())
      views;
    List.iter (fun reset -> reset ()) !merge_rx_reset;
    List.iter (fun bump -> bump ()) !ctrl_bumps;
    merge_down := false
  in
  let merge_state_transfer () =
    (* State transfer from the integrator's retained log: the complete
       group-REL set for every unsubmitted row, handed straight into the
       merge servers in id order. The FIFO server queues then guarantee
       each replayed action list (which arrives strictly later, after the
       resync handshake) processes after every REL it depends on. *)
    List.iter
      (fun ((stamped : Update.Transaction.t), rel) ->
        let row = stamped.Update.Transaction.id in
        if not (Hashtbl.mem submitted_rows row) then
          List.iteri
            (fun gi names ->
              let rel_group = List.filter (fun v -> List.mem v names) rel in
              if rel_group <> [] && not (Hashtbl.mem rel_seen.(gi) row)
              then begin
                Hashtbl.replace rel_seen.(gi) row ();
                record "merge restart: REL_%d transferred from integrator log"
                  row;
                deliver_rel gi row rel_group
              end)
            group_names)
      (Integrator.retained_log integ);
    List.iter (fun send -> send Resync_demand) !vm_ctrls
  in
  crash_merge_ref :=
    (fun () ->
      let crashed_at = Sim.Engine.now engine in
      Atomic.incr metrics.Metrics.crashes;
      record "merge crashed (losing VUT, reorderers and queued work)";
      wipe_merge ();
      match (cfg.reliability, merge_crash_spec) with
      | Off, _ | _, None -> ()
      | Acked _, Some (_, restart_after) ->
        Sim.Engine.schedule_after engine restart_after (fun () ->
            restart_merge ();
            Atomic.incr metrics.Metrics.recoveries;
            recovery_total :=
              !recovery_total +. (Sim.Engine.now engine -. crashed_at);
            record "merge restarted; reading integrator log for transfer";
            Sim.Engine.schedule_after engine
              (sample cfg.latencies.query_roundtrip)
              merge_state_transfer));
  crash_integ_ref :=
    (fun () ->
      let crashed_at = Sim.Engine.now engine in
      integ_down := true;
      Atomic.incr metrics.Metrics.crashes;
      record "integrator crashed (losing numbering and log)";
      Durable.Wal.crash integ_wal;
      (match integrator_link.reliable with
      | Some rl -> Sim.Reliable.set_receiver_down rl true
      | None -> ());
      match (cfg.reliability, integ_crash_spec) with
      | Off, _ | _, None -> ()
      | Acked _, Some (_, restart_after) ->
        Sim.Engine.schedule_after engine restart_after (fun () ->
            let ck_log, tail = Durable.Wal.recover_sealed integ_wal in
            let log = ck_log @ tail in
            (* Every ingest is logged before it routes, so the numbering
               position is derivable from the log itself. *)
            let next_id =
              List.fold_left
                (fun acc ((t : Update.Transaction.t), _) ->
                  max acc (t.Update.Transaction.id + 1))
                1 log
            in
            wal_replayed := !wal_replayed + List.length tail;
            Integrator.restore integ ~next_id ~log;
            record
              "integrator restored: next id %d (%d WAL records replayed)"
              next_id (List.length tail);
            Sim.Engine.schedule_after engine
              (dur.replay_latency *. float_of_int (List.length tail))
              (fun () ->
                (* Void every frame the dead incarnation left unacked,
                   then re-route the unsubmitted suffix of the restored
                   log: receivers dedup (rel_seen per merge group, id
                   watermark per manager), so over-sending is safe while
                   under-sending would lose updates. *)
                List.iter (fun bump -> bump ()) !integ_sender_bumps;
                List.iter
                  (fun ((stamped : Update.Transaction.t), rel) ->
                    if
                      not
                        (Hashtbl.mem submitted_rows
                           stamped.Update.Transaction.id)
                    then begin
                      record "integrator re-sends U%d after restart"
                        stamped.Update.Transaction.id;
                      route_rels stamped rel;
                      route_updates stamped rel
                    end)
                  (Integrator.retained_log integ);
                (* Catch up on transactions lost with the dead
                   incarnation: the sources retain their committed log
                   (the paper's ground-truth boundary) and answer a
                   catch-up query for everything at or above the restored
                   numbering position. *)
                Atomic.incr metrics.Metrics.source_queries;
                let issued = Sim.Engine.now engine in
                Sim.Engine.schedule_after engine
                  (sample cfg.latencies.query_roundtrip)
                  (fun () ->
                    Sim.Stats.Summary.add
                      metrics.Metrics.source_query_latency
                      (Sim.Engine.now engine -. issued);
                    let missed =
                      List.filter
                        (fun (t : Update.Transaction.t) ->
                          t.Update.Transaction.id >= Integrator.next_id integ)
                        (Source.Sources.transactions sources)
                    in
                    List.iter process_ingest missed;
                    (match integrator_link.reliable with
                    | Some rl -> Sim.Reliable.reset_receiver rl
                    | None -> ());
                    integ_down := false;
                    Atomic.incr metrics.Metrics.recoveries;
                    recovery_total :=
                      !recovery_total +. (Sim.Engine.now engine -. crashed_at);
                    record
                      "integrator recovered (%d source transactions \
                       re-fetched)"
                      (List.length missed)))));
  crash_wh_ref :=
    (fun () ->
      let crashed_at = Sim.Engine.now engine in
      wh_down := true;
      Atomic.incr metrics.Metrics.crashes;
      record "warehouse crashed (losing store and submitter queue)";
      Durable.Wal.crash wh_wal;
      Warehouse.Submitter.reset submitter;
      Hashtbl.reset submitted_rows;
      Hashtbl.reset submitted_marks;
      serving_freeze serving true;
      (* Submitted-but-uncommitted WTs died in the submitter queue while
         the merge had already retired their rows; the merge restarts too
         and re-derives them from the integrator log + manager replay. *)
      wipe_merge ();
      match (cfg.reliability, wh_crash_spec) with
      | Off, _ | _, None -> ()
      | Acked _, Some (_, restart_after) ->
        Sim.Engine.schedule_after engine restart_after (fun () ->
            let restored_ck, tail = Durable.Wal.recover_sealed wh_wal in
            let commits = restored_ck @ tail in
            wal_replayed := !wal_replayed + List.length tail;
            record "warehouse restored: %d commits (%d from the WAL tail)"
              (List.length commits) (List.length tail);
            Sim.Engine.schedule_after engine
              (dur.replay_latency *. float_of_int (List.length tail))
              (fun () ->
                Warehouse.Store.restore store commits;
                commits_restored := !commits_restored + List.length commits;
                List.iter (fun (_, wt) -> note_submitted wt) commits;
                (* Republish the restored version history, then unfreeze:
                   sessions resume against indices identical to the
                   pre-crash ones. *)
                serving_recover serving (Warehouse.Store.commits store);
                serving_freeze serving false;
                wh_down := false;
                restart_merge ();
                Atomic.incr metrics.Metrics.recoveries;
                recovery_total :=
                  !recovery_total +. (Sim.Engine.now engine -. crashed_at);
                record
                  "warehouse recovered (%d commits restored); merge \
                   restarting"
                  (List.length commits);
                Sim.Engine.schedule_after engine
                  (sample cfg.latencies.query_roundtrip)
                  merge_state_transfer)));
  schedule_script engine arrival_rng cfg ~execute:(fun updates ->
      let txn = Source.Sources.execute sources updates in
      record "source commit: U%d at %s" txn.Update.Transaction.id
        txn.Update.Transaction.source;
      Atomic.incr metrics.Metrics.transactions;
      Hashtbl.replace arrival_times txn.Update.Transaction.id
        (Sim.Engine.now engine);
      integrator_link.send txn);
  let drained () =
    (not !merge_down) && (not !integ_down) && (not !wh_down)
    && List.for_all (fun vm -> vm.Viewmgr.Vm.pending () = 0) vms
    && merge_servers_pending () = 0
    && Array.for_all Queue.is_empty emitted
    && List.for_all (fun (_, held) -> held () = 0) rel_reorderers
    && Array.for_all Mvc.Merge.quiescent merge_arr
    && Warehouse.Submitter.outstanding submitter = 0
    && serving_pending serving = 0
    && List.for_all (fun q -> q ()) !quiescence
  in
  let ok =
    drain engine
      ~flushes:
        (List.map (fun vm -> vm.Viewmgr.Vm.flush) vms
        @ List.init n_groups (fun gi () ->
              (* Flush runs between engine passes, with no job in flight;
                 refresh the group's snapshot and submit anything the
                 flush emitted so snapshots track live state exactly. A
                 down merge has nothing to flush (its restart is an
                 engine event, so it never interleaves with a flush). *)
              if not !merge_down then begin
                let m = merge_of gi in
                Mvc.Merge.flush m;
                snapshot_group gi m;
                drain_emitted gi
              end))
      ~drained
  in
  if (not ok) && faultless cfg then
    raise (Stuck "system failed to drain after flushing view managers");
  metrics.Metrics.completed_at <- Sim.Engine.now engine;
  finalize_perf_metrics metrics ~contention0 ~shared ~serving;
  Metrics.add metrics.Metrics.msgs_dropped
    (List.fold_left (fun acc d -> acc + d ()) 0 !drop_counts);
  List.iter
    (fun get ->
      let s = get () in
      Metrics.add metrics.Metrics.retransmits s.Sim.Reliable.retransmits;
      Metrics.add metrics.Metrics.acks s.Sim.Reliable.acks_sent;
      Metrics.add metrics.Metrics.nacks s.Sim.Reliable.nacks_sent;
      Metrics.add metrics.Metrics.dup_frames_dropped
        s.Sim.Reliable.dups_dropped
      (* give-ups are counted at event time by the link's on_give_up
         hook, not re-added here *))
    !link_stats;
  let durability =
    if durable_on then begin
      let a = Durable.Wal.stats wh_wal and b = Durable.Wal.stats integ_wal in
      let aux =
        List.map (fun (_, wal) -> Durable.Wal.stats wal) !aux_wals
      in
      let total f = List.fold_left (fun acc s -> acc + f s) (f a + f b) aux in
      Some
        { wal_appends = total (fun s -> s.Durable.Disk.appends);
          wal_syncs = total (fun s -> s.Durable.Disk.syncs);
          wal_bytes = total (fun s -> s.Durable.Disk.synced_bytes);
          wal_checkpoints = total (fun s -> s.Durable.Disk.checkpoints);
          wal_truncated = total (fun s -> s.Durable.Disk.truncated_records);
          torn_discarded = total (fun s -> s.Durable.Disk.torn_discarded);
          wal_replayed = !wal_replayed;
          commits_restored = !commits_restored;
          dup_wts_dropped = !dup_wts;
          recovery_time = !recovery_total }
    end
    else None
  in
  { config = cfg; store; sources;
    transactions = Source.Sources.transactions sources; metrics;
    merge_algorithm = Mvc.Merge.algorithm_name algorithm;
    timeline = List.rev !timeline; stuck = not ok;
    serving = serving_result serving; durability;
    fused =
      (if batch_mode = Fused then
         Some (List.rev !fused_emitted, List.rev !fused_parts)
       else None) }

let run cfg =
  match cfg.merge_kind with
  | Sequential -> run_sequential cfg
  | Auto | Force_spa | Force_pa | Force_passthrough | Force_holdall ->
    run_pipelined cfg

let verdict_with_witness result =
  Consistency.Checker.check_with_witness
    ~views:result.config.scenario.views ~transactions:result.transactions
    ~source_states:(Source.Sources.states result.sources)
    ~warehouse_states:(Warehouse.Store.states result.store)

let verdict result = fst (verdict_with_witness result)

let view_contents result name =
  Relation.contents (Warehouse.Store.view result.store name)

(* The crash-recovery certificate: durability (every relevant
   (view, transaction) application reached some committed WT),
   idempotence (none reached two), and serving monotonicity (no
   monotonic-by-contract session observed versions going backwards
   across a restart). Expected pairs come from syntactic relevance —
   exactly the action lists complete managers emit, including
   empty-delta ones. *)
let recovery_certificate result =
  let views = result.config.scenario.Workload.Scenarios.views in
  let expected =
    List.concat_map
      (fun (txn : Update.Transaction.t) ->
        let rels = Update.Transaction.relations txn in
        List.filter_map
          (fun v ->
            if List.exists (fun r -> Query.View.uses v r) rels then
              Some (Query.View.name v, txn.Update.Transaction.id)
            else None)
          views)
      result.transactions
  in
  let applied =
    List.map
      (fun (c : Warehouse.Store.commit) ->
        List.map
          (fun al -> (al.Query.Action_list.view, al.Query.Action_list.state))
          c.transaction.Warehouse.Wt.actions)
      (Warehouse.Store.commits result.store)
  in
  let served =
    match result.serving with
    | None -> []
    | Some s ->
      let by_session : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun r ->
          let monotonic =
            r.read_as_of = None
            &&
            match r.read_guarantee with
            | Serve.Session.Latest | Serve.Session.Monotonic_reads -> true
            | Serve.Session.Bounded_staleness _ -> false
          in
          if monotonic then begin
            let l =
              match Hashtbl.find_opt by_session r.read_session with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.add by_session r.read_session l;
                order := r.read_session :: !order;
                l
            in
            l := r.read_version :: !l
          end)
        s.reads_served;
      List.rev_map
        (fun sid -> (sid, List.rev !(Hashtbl.find by_session sid)))
        !order
  in
  Consistency.Checker.certify_recovery ~expected ~applied ~served

(* The fused-merge certificate: rebuild each fused batch from the
   recorded parts and the store's commit history (pre/post states are
   the states around the batch's commit), then let the checker prove
   coverage, no duplication, emission contiguity and replay exactness.
   Requires [Keep_all] retention — the replay needs every commit. *)
let fused_certificate result =
  match result.fused with
  | None ->
    invalid_arg "System.fused_certificate: run did not use merge_batch = Fused"
  | Some (emitted, parts) ->
    let states = Warehouse.Store.states result.store in
    let commits = Warehouse.Store.commits result.store in
    if List.length commits + 1 <> List.length states then
      invalid_arg
        "System.fused_certificate: pruned commit history (use Keep_all \
         store retention)";
    (* Batches in release order; each looks up its commit — and the
       states around it — by its covered-row set (unique across batches
       when no duplication happened; a duplicate fails the checker's
       no-dup clause against whichever commit it grabs). *)
    let indexed = List.mapi (fun i c -> (i, c)) commits in
    let states_arr = Array.of_list states in
    let batches =
      List.map
        (fun batch_parts ->
          let rows = List.concat_map fst batch_parts in
          let at =
            List.find_opt
              (fun (_, (c : Warehouse.Store.commit)) ->
                c.transaction.Warehouse.Wt.rows = rows)
              indexed
          in
          match at with
          | None ->
            (* No commit carries these rows: synthesize an impossible
               batch (empty actions, initial states) so the checker's
               coverage clause reports the mismatch instead of this
               function raising. *)
            { Consistency.Checker.fb_parts = batch_parts; fb_rows = rows;
              fb_actions = []; fb_pre = states_arr.(0);
              fb_post = states_arr.(0) }
          | Some (i, c) ->
            { Consistency.Checker.fb_parts = batch_parts;
              fb_rows = c.transaction.Warehouse.Wt.rows;
              fb_actions = c.transaction.Warehouse.Wt.actions;
              fb_pre = states_arr.(i); fb_post = states_arr.(i + 1) })
        parts
    in
    Consistency.Checker.certify_fused ~emitted ~batches
