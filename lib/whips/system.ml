open Relational

type vm_kind =
  | Complete_vm
  | Batching_vm
  | Strobe_vm
  | Periodic_vm of float
  | Convergent_vm
  | Complete_n_vm of int
  | Derived_vm of {
      aux : Query.View.t list;
      over_aux : Query.Algebra.t;
    }

type merge_kind =
  | Auto
  | Force_spa
  | Force_pa
  | Force_passthrough
  | Force_holdall
  | Sequential

type rel_routing = Direct | Via_manager

type arrival = All_at_once | Uniform of float | Poisson of float

type fault =
  | Drop_action_list of { view : string; nth : int }
  | Crash_vm of { view : string; at_event : int; restart_after : float }

type reliability = Off | Acked of Sim.Reliable.params

type latencies = {
  message : float;
  compute : float;
  commit : float;
  query_roundtrip : float;
  merge : float;
  read : float;
  read_hit : float;
}

let default_latencies =
  { message = 0.002; compute = 0.01; commit = 0.005; query_roundtrip = 0.02;
    merge = 0.0005; read = 0.005; read_hit = 0.0005 }

type read_profile = {
  sessions : (Serve.Session.guarantee * int) list;
  read_arrival : arrival;
  n_reads : int;
  as_of_fraction : float;
  as_of_lag : float;
  read_cache : bool;
  cache_refresh : bool;
  serve_retention : Serve.Version_manager.retention;
  queries : Query.Algebra.t list;
}

let default_reads =
  { sessions =
      [ (Serve.Session.Latest, 2); (Serve.Session.Monotonic_reads, 2);
        (Serve.Session.Bounded_staleness 0.1, 2) ];
    read_arrival = Poisson 200.0;
    n_reads = 100;
    as_of_fraction = 0.25;
    as_of_lag = 0.2;
    read_cache = true;
    cache_refresh = true;
    serve_retention = Serve.Version_manager.Keep_last 64;
    queries = [] }

type config = {
  scenario : Workload.Scenarios.t;
  vm_kind : vm_kind;
  vm_overrides : (string * vm_kind) list;
  merge_kind : merge_kind;
  submit : Warehouse.Submitter.policy;
  arrival : arrival;
  latencies : latencies;
  merge_groups : int option;
  semantic_filter : bool;
  rel_routing : rel_routing;
  optimize_views : bool;
  faults : fault list;
  fault_plan : Workload.Fault_plan.t;
  reliability : reliability;
  reads : read_profile option;
  store_retention : Warehouse.Store.retention;
  record_timeline : bool;
  parallel : Parallel.Config.t;
  shared_plans : bool;
  seed : int;
}

let default scenario =
  { scenario; vm_kind = Complete_vm; vm_overrides = []; merge_kind = Auto;
    submit = Warehouse.Submitter.Serial; arrival = Uniform 0.05;
    latencies = default_latencies; merge_groups = None;
    semantic_filter = false; rel_routing = Direct; optimize_views = false;
    faults = []; fault_plan = Workload.Fault_plan.empty; reliability = Off;
    reads = None; store_retention = Warehouse.Store.Keep_all;
    record_timeline = false; parallel = Parallel.Config.default ();
    shared_plans = false; seed = 1 }

let faultless cfg =
  cfg.faults = [] && Workload.Fault_plan.is_empty cfg.fault_plan

type read_record = {
  read_session : int;
  read_guarantee : Serve.Session.guarantee;
  read_query : Query.Algebra.t;
  read_as_of : float option;
  read_arrived : float;
  read_served : float;
  read_version : int;
  read_version_time : float;
  read_staleness : float;
  read_cache_hit : bool;
  read_clamped : bool;
  read_state : Database.t;
  read_result : Bag.t;
}

type serving = {
  version_manager : Serve.Version_manager.t;
  result_cache : Serve.Result_cache.t option;
  reads_served : read_record list;
}

type result = {
  config : config;
  store : Warehouse.Store.t;
  sources : Source.Sources.t;
  transactions : Update.Transaction.t list;
  metrics : Metrics.t;
  merge_algorithm : string;
  timeline : (float * string) list;
  stuck : bool;
  serving : serving option;
}

exception Stuck of string

let kind_of cfg view =
  match List.assoc_opt (Query.View.name view) cfg.vm_overrides with
  | Some kind -> kind
  | None -> cfg.vm_kind

let level_of = function
  | Complete_vm | Derived_vm _ -> Viewmgr.Vm.Complete
  | Batching_vm | Strobe_vm | Periodic_vm _ -> Viewmgr.Vm.Strongly_consistent
  | Convergent_vm -> Viewmgr.Vm.Convergent
  | Complete_n_vm n -> Viewmgr.Vm.Complete_n n

(* Section 6.3: "it is always possible to use the merge algorithm
   corresponding to the view manager guaranteeing the weakest level of
   consistency". *)
let auto_algorithm levels =
  let weakest acc level =
    match (acc, level) with
    | Mvc.Merge.Passthrough, _ | _, Viewmgr.Vm.Convergent ->
      Mvc.Merge.Passthrough
    | Mvc.Merge.Pa, _
    | _, (Viewmgr.Vm.Strongly_consistent | Viewmgr.Vm.Complete_n _) ->
      Mvc.Merge.Pa
    | Mvc.Merge.Spa, Viewmgr.Vm.Complete -> Mvc.Merge.Spa
    | Mvc.Merge.Holdall, _ ->
      (* Never chosen automatically; present for exhaustiveness. *)
      Mvc.Merge.Holdall
  in
  List.fold_left weakest Mvc.Merge.Spa levels

let algorithm_for cfg levels =
  match cfg.merge_kind with
  | Auto -> auto_algorithm levels
  | Force_spa -> Mvc.Merge.Spa
  | Force_pa -> Mvc.Merge.Pa
  | Force_passthrough -> Mvc.Merge.Passthrough
  | Force_holdall -> Mvc.Merge.Holdall
  | Sequential -> assert false

(* Schedule the scenario script along the configured arrival process. *)
let schedule_script engine rng cfg ~execute =
  let clock = ref 0.0 in
  List.iter
    (fun updates ->
      let at =
        match cfg.arrival with
        | All_at_once -> 0.0
        | Uniform gap ->
          clock := !clock +. gap;
          !clock
        | Poisson rate ->
          clock := !clock +. Sim.Rng.exponential rng ~mean:(1.0 /. rate);
          !clock
      in
      Sim.Engine.schedule_at engine at (fun () -> execute updates))
    cfg.scenario.Workload.Scenarios.script

(* Returns false when the system cannot make progress any more (the event
   queue is empty, every manager flushed, and something is still
   outstanding). *)
let drain engine ~flushes ~drained =
  let rec loop guard =
    Sim.Engine.run engine;
    List.iter (fun flush -> flush ()) flushes;
    Sim.Engine.run engine;
    if drained () then true else if guard = 0 then false else loop (guard - 1)
  in
  loop 1000

(* ---- the snapshot-serving subsystem (lib/serve) wired to a run ----

   One version manager over the store, one optional shared result cache,
   and a population of reader sessions, each with its own serial service
   queue (a session is one client connection: its reads are handled one
   at a time, each costing a sampled read latency). The version is
   selected and *pinned* when service starts and released when the read
   completes, so the retention pruning that a concurrent commit triggers
   can never drop the snapshot an in-flight read is using. *)
type serving_ctx = {
  ctx_vm : Serve.Version_manager.t;
  ctx_cache : Serve.Result_cache.t option;
  ctx_records : read_record list ref;
  ctx_publish : Warehouse.Wt.t -> unit;  (* call after each store commit *)
  ctx_pending : unit -> int;
}

let setup_serving engine ~rng ~sample ~metrics ~store ~views ~log cfg =
  match cfg.reads with
  | None -> None
  | Some rp ->
    let population =
      List.concat_map (fun (g, n) -> List.init n (fun _ -> g)) rp.sessions
    in
    if population = [] then
      invalid_arg "System: cfg.reads needs at least one session";
    let arrival_rng = Sim.Rng.split rng in
    let pick_rng = Sim.Rng.split rng in
    let vm =
      Serve.Version_manager.create ~retention:rp.serve_retention
        (Warehouse.Store.snapshot store)
    in
    let cache =
      if rp.read_cache then Some (Serve.Result_cache.create ()) else None
    in
    let queries =
      Array.of_list
        (match rp.queries with
        | [] ->
          List.map (fun v -> Query.Algebra.base (Query.View.name v)) views
        | qs -> qs)
    in
    let records = ref [] in
    let servers =
      Array.of_list
        (List.mapi
           (fun sid g ->
             let session = Serve.Session.create ?cache ~guarantee:g vm in
             let queue = Queue.create () in
             let busy = ref false in
             let rec pump () =
               if (not !busy) && not (Queue.is_empty queue) then begin
                 busy := true;
                 let arrived, as_of, query = Queue.pop queue in
                 let pending =
                   Serve.Session.start session ~now:(Sim.Engine.now engine)
                     ?as_of ()
                 in
                 let version = Serve.Session.pending_version pending in
                 (* A cache hit skips the evaluation kernel, so it gets the
                    cheap service-time distribution. The probe pins neither
                    statistics nor the entry: the authoritative lookup (and
                    hit/miss accounting) happens at completion, against the
                    version pinned here, so the probe's answer cannot rot.
                    Either branch draws exactly one latency sample, keeping
                    the RNG stream aligned across configurations. *)
                 let will_hit =
                   match cache with
                   | Some c ->
                     Serve.Result_cache.peek c
                       ~version:version.Serve.Version_manager.index query
                   | None -> false
                 in
                 let service_mean =
                   if will_hit then cfg.latencies.read_hit
                   else cfg.latencies.read
                 in
                 Sim.Engine.schedule_after engine (sample service_mean)
                   (fun () ->
                     let now = Sim.Engine.now engine in
                     let o = Serve.Session.complete session pending ~now query in
                     Atomic.incr metrics.Metrics.reads;
                     Sim.Stats.Summary.add metrics.Metrics.read_latency
                       (now -. arrived);
                     Sim.Stats.Summary.add metrics.Metrics.served_staleness
                       o.Serve.Session.staleness;
                     (match cache with
                     | Some _ ->
                       if o.Serve.Session.cache_hit then
                         Atomic.incr metrics.Metrics.cache_hits
                       else Atomic.incr metrics.Metrics.cache_misses
                     | None -> ());
                     if o.Serve.Session.clamped then
                       Atomic.incr metrics.Metrics.reads_clamped;
                     log
                       (Printf.sprintf
                          "session %d (%s) served from version %d%s%s" sid
                          (Serve.Session.guarantee_name g)
                          o.Serve.Session.version
                          (if o.Serve.Session.cache_hit then " [cache]"
                           else "")
                          (if o.Serve.Session.clamped then " [clamped]"
                           else ""));
                     records :=
                       { read_session = sid; read_guarantee = g;
                         read_query = query; read_as_of = as_of;
                         read_arrived = arrived; read_served = now;
                         read_version = o.Serve.Session.version;
                         read_version_time = o.Serve.Session.version_time;
                         read_staleness = o.Serve.Session.staleness;
                         read_cache_hit = o.Serve.Session.cache_hit;
                         read_clamped = o.Serve.Session.clamped;
                         read_state = version.Serve.Version_manager.state;
                         read_result = o.Serve.Session.result }
                       :: !records;
                     busy := false;
                     pump ())
               end
             in
             let submit job =
               Queue.push job queue;
               pump ()
             in
             let pending () = Queue.length queue + if !busy then 1 else 0 in
             (submit, pending))
           population)
    in
    (* Read arrival process, independent of the update schedule. *)
    let clock = ref 0.0 in
    for _ = 1 to rp.n_reads do
      let at =
        match rp.read_arrival with
        | All_at_once -> 0.0
        | Uniform gap ->
          clock := !clock +. gap;
          !clock
        | Poisson rate ->
          clock := !clock +. Sim.Rng.exponential arrival_rng ~mean:(1.0 /. rate);
          !clock
      in
      Sim.Engine.schedule_at engine at (fun () ->
          let sid = Sim.Rng.int pick_rng (Array.length servers) in
          let query = queries.(Sim.Rng.int pick_rng (Array.length queries)) in
          let as_of =
            if
              rp.as_of_fraction > 0.0
              && Sim.Rng.float pick_rng 1.0 < rp.as_of_fraction
            then Some (Float.max 0.0 (at -. Sim.Rng.float pick_rng rp.as_of_lag))
            else None
          in
          (fst servers.(sid)) (at, as_of, query))
    done;
    (* Warehouse state at the previously published version: the [pre]
       side of the commit's per-view deltas when the cache refreshes
       entries in place instead of invalidating them. *)
    let last_state = ref (Warehouse.Store.snapshot store) in
    let publish wt =
      let now = Sim.Engine.now engine in
      let changed = Warehouse.Wt.views wt in
      let post = Warehouse.Store.snapshot store in
      let v = Serve.Version_manager.publish vm ~time:now ~changed post in
      (match cache with
      | Some c ->
        if rp.cache_refresh then
          Serve.Result_cache.commit c ~version:v.Serve.Version_manager.index
            ~changed ~pre:!last_state ~post
        else
          List.iter
            (fun view ->
              Serve.Result_cache.note_change c ~view
                ~version:v.Serve.Version_manager.index)
            changed
      | None -> ());
      last_state := post;
      Sim.Stats.Summary.add metrics.Metrics.versions_retained
        (float_of_int (Serve.Version_manager.retained vm));
      Sim.Stats.Summary.add metrics.Metrics.versions_pinned
        (float_of_int (Serve.Version_manager.pinned vm))
    in
    let pending () =
      Array.fold_left (fun acc (_, p) -> acc + p ()) 0 servers
    in
    Some
      { ctx_vm = vm; ctx_cache = cache; ctx_records = records;
        ctx_publish = publish; ctx_pending = pending }

let serving_publish ctx wt =
  match ctx with Some c -> c.ctx_publish wt | None -> ()

let serving_pending ctx =
  match ctx with Some c -> c.ctx_pending () | None -> 0

let serving_result ctx =
  Option.map
    (fun c ->
      { version_manager = c.ctx_vm; result_cache = c.ctx_cache;
        reads_served = List.rev !(c.ctx_records) })
    ctx

let ctx_cache_of = function Some c -> c.ctx_cache | None -> None

(* Fold the run-scoped perf counters into the metrics at drain time: the
   plan-memo contention accrued since the run started, the shared-plan
   engine's hit/miss/maintenance tallies, and the result cache's
   refresh-vs-invalidate decision counts. *)
let finalize_perf_metrics metrics ~contention0 ~shared ~serving =
  Metrics.add metrics.Metrics.memo_contention
    (Query.Compiled.memo_contention () - contention0);
  (match shared with
  | Some eng ->
    let s = Shared.Engine.stats eng in
    Metrics.add metrics.Metrics.shared_hits s.Shared.Engine.hits;
    Metrics.add metrics.Metrics.shared_misses s.Shared.Engine.misses;
    Metrics.add metrics.Metrics.shared_rows s.Shared.Engine.rows_maintained
  | None -> ());
  match ctx_cache_of serving with
  | Some c ->
    let s = Serve.Result_cache.stats c in
    Metrics.add metrics.Metrics.cache_refreshes s.Serve.Result_cache.refreshed;
    Metrics.add metrics.Metrics.cache_refresh_fallbacks
      s.Serve.Result_cache.refresh_fallbacks
  | None -> ()

(* The Section 1.1 baseline: one process, sequential handling of updates,
   one warehouse transaction per update, waiting for each commit. *)
let effective_views cfg schemas =
  if cfg.optimize_views then
    List.map
      (fun v ->
        Query.View.make (Query.View.name v)
          (Query.Optimize.optimize ~schemas v.Query.View.def))
      cfg.scenario.Workload.Scenarios.views
  else cfg.scenario.views

let run_sequential cfg =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create cfg.seed in
  let arrival_rng = Sim.Rng.split rng in
  let lat_rng = Sim.Rng.split rng in
  let sources = Workload.Scenarios.sources cfg.scenario in
  let views = effective_views cfg (Source.Sources.schema_lookup sources) in
  let initial_db = Source.Sources.initial sources in
  let store =
    Warehouse.Store.create ~retention:cfg.store_retention
      (List.map
         (fun v -> (Query.View.name v, Query.View.materialize initial_db v))
         views)
  in
  let metrics = Metrics.create () in
  let contention0 = Query.Compiled.memo_contention () in
  let sample mean = Sim.Rng.exponential lat_rng ~mean in
  let exec = Parallel.Config.exec cfg.parallel in
  let shared =
    if cfg.shared_plans then
      Some
        (Shared.Engine.create
           ~schemas:(Source.Sources.schema_lookup sources)
           ~initial:initial_db views)
    else None
  in
  let serving =
    setup_serving engine ~rng ~sample ~metrics ~store ~views ~log:ignore cfg
  in
  let arrival_times = Hashtbl.create 64 in
  let queue = Queue.create () in
  let busy = ref false in
  let cache = ref initial_db in
  let rec pump () =
    if (not !busy) && not (Queue.is_empty queue) then begin
      busy := true;
      let txn = Queue.pop queue in
      let changes = Query.Delta.of_transaction txn in
      let relevant =
        List.filter
          (fun v ->
            List.exists
              (fun r -> Query.View.uses v r)
              (Update.Transaction.relations txn))
          views
      in
      (* The per-view deltas of one source update are independent by
         construction (each reads only the shared pre-state), so they fan
         out across the pool; [Exec.map] preserves view order, making the
         action-list order — and thus the WT — identical to [List.map].
         With [shared_plans] the fan-out instead happens inside the
         engine's topological pass — one node delta per shared subplan,
         served to every referring view — which computes bit-identical
         per-view deltas, so the WT stream is unchanged. *)
      let pre = !cache in
      let actions =
        match shared with
        | Some eng ->
          let deltas = Shared.Engine.txn_pass eng ~exec ~pre txn in
          List.map
            (fun v ->
              let name = Query.View.name v in
              let delta =
                match List.assoc_opt name deltas with
                | Some d -> d
                | None -> Signed_bag.zero
              in
              Query.Action_list.delta ~view:name
                ~state:txn.Update.Transaction.id delta)
            relevant
        | None ->
          Parallel.Exec.map exec
            (fun v ->
              let delta =
                Query.Delta.eval ~exec ~pre changes v.Query.View.def
              in
              Query.Action_list.delta ~view:(Query.View.name v)
                ~state:txn.Update.Transaction.id delta)
            relevant
      in
      cache := Database.apply_transaction !cache txn;
      (* Deltas for all views are computed one after the other by the same
         process — the whole point of the strawman's slowness. Under
         [model_overlap] the charge is instead the LPT makespan of the
         same per-view samples over [domains] lanes (the Figure 3 cost
         model); the samples themselves are drawn identically in both
         modes, so the RNG stream never forks. *)
      let compute_samples =
        List.map (fun _ -> sample cfg.latencies.compute) relevant
      in
      let compute_time =
        if cfg.parallel.Parallel.Config.model_overlap then
          Parallel.makespan ~lanes:cfg.parallel.Parallel.Config.domains
            compute_samples
        else List.fold_left ( +. ) 0.0 compute_samples
      in
      Sim.Engine.schedule_after engine (compute_time +. sample cfg.latencies.commit)
        (fun () ->
          if actions <> [] then begin
            let wt = Warehouse.Wt.make ~rows:[ txn.id ] actions in
            Warehouse.Store.apply store ~time:(Sim.Engine.now engine) wt;
            Atomic.incr metrics.Metrics.commits;
            Metrics.add metrics.Metrics.actions_applied
              (Warehouse.Wt.action_count wt);
            serving_publish serving wt;
            (match Hashtbl.find_opt arrival_times txn.id with
            | Some t0 ->
              Sim.Stats.Summary.add metrics.Metrics.staleness
                (Sim.Engine.now engine -. t0)
            | None -> ())
          end;
          busy := false;
          pump ())
    end
  in
  let integrator_chan =
    Sim.Channel.create engine ~name:"sources->seq"
      ~latency:(fun () -> sample cfg.latencies.message)
      (fun txn ->
        Queue.push txn queue;
        pump ())
  in
  schedule_script engine arrival_rng cfg ~execute:(fun updates ->
      let txn = Source.Sources.execute sources updates in
      Atomic.incr metrics.Metrics.transactions;
      Hashtbl.replace arrival_times txn.Update.Transaction.id
        (Sim.Engine.now engine);
      Sim.Channel.send integrator_chan txn);
  let ok =
    drain engine ~flushes:[]
      ~drained:(fun () ->
        (not !busy) && Queue.is_empty queue && serving_pending serving = 0)
  in
  if not ok then
    raise (Stuck "sequential baseline failed to drain");
  metrics.Metrics.completed_at <- Sim.Engine.now engine;
  finalize_perf_metrics metrics ~contention0 ~shared ~serving;
  { config = cfg; store; sources;
    transactions = Source.Sources.transactions sources; metrics;
    merge_algorithm = "sequential"; timeline = []; stuck = false;
    serving = serving_result serving }

(* A single-threaded service queue: the merge process handles one message
   at a time, each costing a sampled latency. This is what lets benchmark
   P2 observe the merge becoming a bottleneck (Section 7's question).

   A job is two halves. [work] is the group-local computation — reorderer
   ingest, painting, VUT bookkeeping — touching only state owned by this
   server's merge group; with a pooled exec it is dispatched to the
   domain pool when the message is popped and joined at the
   service-completion event, so different groups' merges genuinely
   overlap (Figure 3, one process per group). The busy flag guarantees
   at most one in-flight job per server, making each group's state
   single-writer. [finish] is the externally visible half — timeline
   records, WT submission, control replies, metric samples — and always
   runs on the simulation domain at the completion event, in the same
   order as the fully sequential server, which is why [domains = 1] and
   [domains = n] produce identical traces. *)
let make_server engine ~exec ~latency =
  let queue = Queue.create () in
  let busy = ref false in
  let rec pump () =
    if (not !busy) && not (Queue.is_empty queue) then begin
      busy := true;
      let work, finish = Queue.pop queue in
      let fut = Parallel.Exec.spawn exec work in
      Sim.Engine.schedule_after engine (latency ()) (fun () ->
          Parallel.Exec.await fut;
          finish ();
          busy := false;
          pump ())
    end
  in
  let submit job =
    Queue.push job queue;
    pump ()
  in
  let pending () = Queue.length queue + if !busy then 1 else 0 in
  (submit, pending)

(* Channels between processes, optionally wrapped in the ARQ layer. Both
   flavours expose the same [send]; reliable links additionally track
   quiescence (unacked / buffered frames) for the drain check. *)
type 'a link = { send : 'a -> unit; reliable : 'a Sim.Reliable.t option }

let run_pipelined cfg =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create cfg.seed in
  let arrival_rng = Sim.Rng.split rng in
  let lat_rng = Sim.Rng.split rng in
  let sample mean = Sim.Rng.exponential lat_rng ~mean in
  let exec = Parallel.Config.exec cfg.parallel in
  (* Fault plan: the config's channel-level plan plus the deterministic
     translation of Drop_action_list faults (the nth physical message on
     the manager's action-list channel). Injection happens in the channel,
     so sent/delivered/dropped statistics stay truthful. *)
  let fault_rng = Sim.Rng.split rng in
  let link_rng = Sim.Rng.split rng in
  let plan =
    Workload.Fault_plan.union
      (cfg.fault_plan
      :: List.filter_map
           (function
             | Drop_action_list { view; nth } ->
               Some
                 (Workload.Fault_plan.nth ~channel:(view ^ "->merge") ~nth
                    Workload.Fault_plan.Drop)
             | Crash_vm _ -> None)
           cfg.faults)
  in
  let quiescence : (unit -> bool) list ref = ref [] in
  let link_stats : (unit -> Sim.Reliable.stats) list ref = ref [] in
  let drop_counts : (unit -> int) list ref = ref [] in
  let register ~faultable chan =
    if faultable && not (Workload.Fault_plan.is_empty plan) then
      Workload.Fault_plan.attach plan ~rng:fault_rng chan;
    drop_counts := (fun () -> Sim.Channel.dropped chan) :: !drop_counts
  in
  (* [faultable:false] keeps a link outside the fault plan's reach. The
     source->integrator feed is the ground-truth boundary: the paper
     assumes sources report every committed transaction, and the
     consistency oracle's recorded schedule depends on it, so injected
     faults model only the warehouse's internal messaging. *)
  let make_link ?(faultable = true) ~name deliver =
    match cfg.reliability with
    | Off ->
      let ch =
        Sim.Channel.create engine ~name
          ~latency:(fun () -> sample cfg.latencies.message)
          deliver
      in
      register ~faultable ch;
      { send = (fun m -> Sim.Channel.send ch m); reliable = None }
    | Acked params ->
      let rl =
        Sim.Reliable.create engine ~name ~params ~rng:(Sim.Rng.split link_rng)
          ~latency:(fun () -> sample cfg.latencies.message)
          deliver
      in
      register ~faultable (Sim.Reliable.data_channel rl);
      register ~faultable (Sim.Reliable.ctrl_channel rl);
      quiescence := (fun () -> Sim.Reliable.quiescent rl) :: !quiescence;
      link_stats := (fun () -> Sim.Reliable.stats rl) :: !link_stats;
      { send = (fun m -> Sim.Reliable.send rl m); reliable = Some rl }
  in
  let sources = Workload.Scenarios.sources cfg.scenario in
  let schemas = Source.Sources.schema_lookup sources in
  let views = effective_views cfg schemas in
  let initial_db = Source.Sources.initial sources in
  let store =
    Warehouse.Store.create ~retention:cfg.store_retention
      (List.map
         (fun v -> (Query.View.name v, Query.View.materialize initial_db v))
         views)
  in
  let metrics = Metrics.create () in
  let contention0 = Query.Compiled.memo_contention () in
  (* Shared-plan engine for the pipelined runtime: complete managers
     route their per-update deltas through one sub-plan DAG instead of
     each evaluating its own compiled plan, so a subplan common to
     several views is maintained once per update. Gated to fault-free,
     unfiltered runs — the engine requires every routed view to demand
     every transaction touching its base relations in id order, which
     message drops, crashes and semantic filtering all break. *)
  let is_complete v =
    match kind_of cfg v with Complete_vm -> true | _ -> false
  in
  let shared =
    if cfg.shared_plans && faultless cfg && not cfg.semantic_filter
       && List.exists is_complete views
    then
      Some
        (Shared.Engine.create ~schemas ~initial:initial_db
           (List.filter is_complete views))
    else None
  in
  let arrival_times = Hashtbl.create 64 in
  let timeline = ref [] in
  let record fmt =
    Fmt.kstr
      (fun msg ->
        if cfg.record_timeline then
          timeline := (Sim.Engine.now engine, msg) :: !timeline)
      fmt
  in
  let serving =
    setup_serving engine ~rng ~sample ~metrics ~store ~views
      ~log:(fun msg -> record "%s" msg)
      cfg
  in
  let submitter =
    Warehouse.Submitter.create engine ~policy:cfg.submit
      ~commit_latency:(fun () -> sample cfg.latencies.commit)
      ~store
      ~on_commit:(fun wt ->
        record "warehouse commit: rows [%a] -> views {%s}"
          (Fmt.list ~sep:Fmt.comma Fmt.int)
          wt.Warehouse.Wt.rows
          (String.concat ", " (Warehouse.Wt.views wt));
        Atomic.incr metrics.Metrics.commits;
        Metrics.add metrics.Metrics.actions_applied
          (Warehouse.Wt.action_count wt);
        serving_publish serving wt;
        List.iter
          (fun row ->
            match Hashtbl.find_opt arrival_times row with
            | Some t0 ->
              Sim.Stats.Summary.add metrics.Metrics.staleness
                (Sim.Engine.now engine -. t0)
            | None -> ())
          wt.Warehouse.Wt.rows)
      ()
  in
  (* Merge processes: one per group (Section 6.1), or a single one. Groups
     are balanced by estimated evaluation cost — the summed initial
     cardinality of each view's base relations — so that with parallel
     merge groups every domain gets comparable work, not just a
     comparable view count. *)
  let groups =
    match cfg.merge_groups with
    | None -> [ views ]
    | Some k ->
      let weight v =
        List.fold_left
          (fun acc r ->
            acc
            +
            match Database.find initial_db r with
            | rel -> Relation.cardinal rel
            | exception _ -> 0)
          1
          (Query.View.base_relations v)
      in
      Mvc.Partition.coarsen ~weight ~max_groups:k
        (Mvc.Partition.groups views)
  in
  let levels = List.map (fun v -> level_of (kind_of cfg v)) views in
  let algorithm = algorithm_for cfg levels in
  let n_groups = List.length groups in
  (* A merge's [emit] fires inside its group's work half, which may be
     running on a pool domain; WTs are buffered group-locally and
     submitted from the simulation domain — in emission order — by the
     job's finish half (or by the flush wrapper during drain). *)
  let emitted = Array.init n_groups (fun _ -> Queue.create ()) in
  let merges =
    List.mapi
      (fun gi group ->
        Mvc.Merge.create algorithm
          ~views:(List.map Query.View.name group)
          ~emit:(fun wt -> Queue.push wt emitted.(gi)))
      groups
  in
  let drain_emitted gi =
    while not (Queue.is_empty emitted.(gi)) do
      Warehouse.Submitter.submit submitter (Queue.pop emitted.(gi))
    done
  in
  (* One service queue per merge process: messages from the REL channel and
     every view manager's AL channel are handled one at a time. *)
  let merge_servers =
    List.map
      (fun _ ->
        make_server engine ~exec
          ~latency:(fun () -> sample cfg.latencies.merge))
      merges
  in
  let merge_server_of =
    let table = Hashtbl.create 8 in
    List.iteri (fun i m -> Hashtbl.replace table i m) merge_servers;
    fun gi -> fst (Hashtbl.find table gi)
  in
  let merge_servers_pending () =
    List.fold_left (fun acc (_, pending) -> acc + pending ()) 0 merge_servers
  in
  (* Merge occupancy is sampled from per-group snapshots refreshed on the
     simulation domain whenever that group's state settles (job finish,
     flush). Reading another group's merge live would race with its
     in-flight work; the snapshots are exactly the live values at every
     sampling point because merge state only changes inside jobs and
     flushes. *)
  let held_snapshot = Array.make n_groups 0 in
  let rows_snapshot = Array.make n_groups 0 in
  let snapshot_group gi merge =
    held_snapshot.(gi) <- Mvc.Merge.held_action_lists merge;
    rows_snapshot.(gi) <- Mvc.Merge.live_rows merge
  in
  let sample_merge_metrics () =
    Sim.Stats.Summary.add metrics.Metrics.merge_held
      (float_of_int (Array.fold_left ( + ) 0 held_snapshot));
    Sim.Stats.Summary.add metrics.Metrics.merge_live_rows
      (float_of_int (Array.fold_left ( + ) 0 rows_snapshot))
  in
  (* View managers and their AL channels to the owning merge. *)
  let merge_of_view =
    let table = Hashtbl.create 16 in
    List.iteri
      (fun gi group ->
        List.iter
          (fun v ->
            Hashtbl.replace table (Query.View.name v) (List.nth merges gi, gi))
          group)
      groups;
    fun name -> Hashtbl.find table name
  in
  let remote_query expr k =
    (* Request travel, evaluation at the source's then-current state,
       answer travel. *)
    Sim.Engine.schedule_after engine (sample (cfg.latencies.query_roundtrip /. 2.))
      (fun () ->
        let contents = Relation.contents (Source.Sources.query sources expr) in
        let version = Source.Sources.last_id sources in
        Sim.Engine.schedule_after engine
          (sample (cfg.latencies.query_roundtrip /. 2.))
          (fun () -> k (contents, version)))
  in
  (* Pending REL forwards per view manager (Section 3.2's alternative
     scheme: the integrator hands REL_i to a relevant manager, which
     forwards it to the merge when it delivers its action lists).

     Unlike the direct scheme, forwarded RELs can reach the merge out of
     row order (they travel on different managers' channels), while the
     painting algorithms assume that when an action list covering row j is
     processed, every group REL for rows <= j has been seen. Each forward
     therefore carries the previous row routed to the same merge, and a
     per-merge reorderer ingests RELs strictly in that chain order. *)
  let rel_forwards : (string, (int * string list * int) Queue.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let rel_reorderers =
    List.map
      (fun merge ->
        let held = Hashtbl.create 16 in
        let last = ref 0 in
        let rec ingest (row, rel, prev) =
          if prev = !last then begin
            Mvc.Merge.receive_rel merge ~row ~rel;
            last := row;
            match Hashtbl.find_opt held row with
            | Some next ->
              Hashtbl.remove held row;
              ingest next
            | None -> ()
          end
          else Hashtbl.replace held prev (row, rel, prev)
        in
        (ingest, fun () -> Hashtbl.length held))
      merges
  in
  let reorderer_of gi = List.nth rel_reorderers gi in
  let forwards_of name =
    match Hashtbl.find_opt rel_forwards name with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add rel_forwards name q;
      q
  in
  (* The integrator is created early so recovering view managers can close
     over it: crash recovery replays its retained update log. *)
  let retain_log =
    List.exists (function Crash_vm _ -> true | _ -> false) cfg.faults
  in
  let integ =
    Integrator.create ~semantic_filter:cfg.semantic_filter ~retain_log
      ~schemas views
  in
  (* Highest action-list state the merge layer has received per view: the
     watermark a restarting manager resyncs against (it replays only the
     log suffix the merge has not yet seen). *)
  let watermarks : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let make_vm view =
    let name = Query.View.name view in
    let kind = kind_of cfg view in
    let merge, gi = merge_of_view name in
    let crash_spec =
      List.find_map
        (function
          | Crash_vm { view = v; at_event; restart_after }
            when String.equal v name ->
            Some (at_event, restart_after)
          | _ -> None)
        cfg.faults
    in
    (match (crash_spec, kind) with
    | Some _, (Complete_vm | Batching_vm) | None, _ -> ()
    | Some _, _ ->
      invalid_arg
        "System: Crash_vm faults support Complete_vm and Batching_vm \
         managers (log-replay recovery)");
    (* Control channel merge -> manager, carrying resync replies
       (epoch, watermark). Handler installed below. *)
    let ctrl_handler = ref (fun ((_ : int), (_ : int)) -> ()) in
    let ctrl_link =
      make_link ~name:("merge->" ^ name) (fun msg -> !ctrl_handler msg)
    in
    let al_link =
      make_link ~name:(name ^ "->merge") (fun msg ->
          (* Work half: group-local painting/reordering, safe off the
             simulation domain. Finish half: timeline records, the
             watermark table (shared across groups), control replies and
             buffered WT submission — simulation domain only. *)
          let work, finish =
            match msg with
            | `Rel ((row, _, _) as fwd) ->
              ( (fun () -> fst (reorderer_of gi) fwd),
                fun () -> record "merge <- forwarded REL_%d (via %s)" row name
              )
            | `Al al ->
              ( (fun () -> Mvc.Merge.receive_action_list merge al),
                fun () ->
                  record "merge <- AL(%s, %d)" al.Query.Action_list.view
                    al.Query.Action_list.state;
                  Hashtbl.replace watermarks al.Query.Action_list.view
                    al.Query.Action_list.state )
            | `Resync epoch ->
              ( (fun () -> ()),
                fun () ->
                  record "merge <- resync(%s, epoch %d)" name epoch;
                  let w =
                    Option.value ~default:0 (Hashtbl.find_opt watermarks name)
                  in
                  ctrl_link.send (epoch, w) )
          in
          merge_server_of gi
            ( work,
              fun () ->
                finish ();
                snapshot_group gi merge;
                drain_emitted gi;
                sample_merge_metrics () ))
    in
    let emit_to_merge al =
      (* Forward any RELs this manager owes the merge for rows the list
         covers, ahead of the list itself (same FIFO channel). *)
      let owed = forwards_of name in
      let rec drain () =
        match Queue.peek_opt owed with
        | Some ((row, _, _) as fwd) when row <= al.Query.Action_list.state ->
          ignore (Queue.pop owed);
          al_link.send (`Rel fwd);
          drain ()
        | Some _ | None -> ()
      in
      drain ();
      al_link.send (`Al al)
    in
    (* Crash wrapper state. [incarnation] fences events scheduled by a dead
       incarnation of the manager (the engine cannot cancel events). *)
    let incarnation = ref 0 in
    let down = ref false in
    let recovering = ref false in
    let last_id = ref 0 in
    let pending_recovery : Update.Transaction.t Queue.t = Queue.create () in
    let emit_count = ref 0 in
    let crash_armed = ref (crash_spec <> None) in
    let resync_epoch = ref 0 in
    let receive_ref = ref (fun (_ : Update.Transaction.t) -> ()) in
    let integ_link =
      make_link ~name:("integ->" ^ name) (fun txn -> !receive_ref txn)
    in
    let crash () =
      crash_armed := false;
      down := true;
      incr incarnation;
      Atomic.incr metrics.Metrics.crashes;
      record "%s crashed (losing its in-memory state)" name;
      (match integ_link.reliable with
      | Some rl -> Sim.Reliable.set_receiver_down rl true
      | None -> ());
      match (cfg.reliability, crash_spec) with
      | Off, _ | _, None ->
        (* Without the reliability layer there is no resync protocol: the
           manager stays dead. Progress may stop, but nothing wrong is
           ever merged (stuck-but-safe). *)
        ()
      | Acked _, Some (_, restart_after) ->
        Sim.Engine.schedule_after engine restart_after (fun () ->
            down := false;
            recovering := true;
            (match integ_link.reliable with
            | Some rl -> Sim.Reliable.reset_receiver rl
            | None -> ());
            (match ctrl_link.reliable with
            | Some rl -> Sim.Reliable.reset_receiver rl
            | None -> ());
            let epoch =
              match al_link.reliable with
              | Some rl -> Sim.Reliable.bump_epoch rl
              | None -> !resync_epoch + 1
            in
            resync_epoch := epoch;
            record "%s restarting, resync epoch %d" name epoch;
            al_link.send (`Resync epoch))
    in
    let guarded_emit inc al =
      if !incarnation <> inc || !down then ()
      else begin
        incr emit_count;
        match crash_spec with
        | Some (n, _) when !crash_armed && !emit_count = n -> crash ()
        | _ -> emit_to_merge al
      end
    in
    let compute_latency ~batch =
      sample (cfg.latencies.compute *. float_of_int (max 1 batch))
    in
    let build_inner ~initial ~inc =
      let emit = guarded_emit inc in
      match kind with
      | Complete_vm ->
        let delta_fn =
          Option.map
            (fun eng ~pre txn -> Shared.Engine.txn_delta eng ~view:name ~pre txn)
            shared
        in
        Viewmgr.Complete_vm.create ~engine ~compute_latency ~exec ?delta_fn
          ~initial ~view ~emit ()
      | Batching_vm ->
        Viewmgr.Batching_vm.create ~engine ~compute_latency ~exec ~initial
          ~view ~emit ()
      | Strobe_vm ->
        Viewmgr.Strobe_vm.create ~engine ~query:remote_query ~view ~emit ()
      | Periodic_vm period ->
        Viewmgr.Periodic_vm.create ~engine ~period ~compute_latency ~initial
          ~view ~emit ()
      | Convergent_vm ->
        Viewmgr.Convergent_vm.create ~engine
          ~emit_delay:(fun () ->
            sample (cfg.latencies.compute +. cfg.latencies.message))
          ~initial ~view ~emit ()
      | Complete_n_vm n ->
        Viewmgr.Complete_n_vm.create ~engine ~compute_latency ~exec ~n
          ~initial ~view ~emit ()
      | Derived_vm { aux; over_aux } ->
        Viewmgr.Derived_vm.create ~engine ~compute_latency ~initial ~aux
          ~view ~over_aux ~emit ()
    in
    let inner = ref (build_inner ~initial:initial_db ~inc:0) in
    (* Application-level id dedup is only needed around crash recovery
       (replay overlaps live retransmissions); without a crash fault the
       raw channel behaviour — including duplicate delivery under
       reliability Off — must stay observable. *)
    let dedup = crash_spec <> None in
    let receive txn =
      if !down then ()
      else if !recovering then Queue.push txn pending_recovery
      else if dedup && txn.Update.Transaction.id <= !last_id then ()
      else begin
        last_id := txn.Update.Transaction.id;
        !inner.Viewmgr.Vm.receive txn
      end
    in
    receive_ref := receive;
    (ctrl_handler :=
       fun (epoch, w) ->
         if !recovering && epoch = !resync_epoch then begin
           (* Read the integrator's retained log (one query round trip),
              re-derive the base-relation cache, and recompute the action
              lists the merge has not seen (states > watermark w). *)
           Sim.Engine.schedule_after engine
             (sample cfg.latencies.query_roundtrip)
             (fun () ->
               let base =
                 Database.restrict initial_db (Query.View.base_relations view)
               in
               let vplan =
                 Query.Compiled.compile ~lookup:(Database.schema base)
                   view.Query.View.def
               in
               let head = Integrator.log_head integ in
               let cache = ref base in
               let replayed = ref [] in
               List.iter
                 (fun (txn, _rel) ->
                   let changes = Query.Delta.of_transaction txn in
                   if txn.Update.Transaction.id > w then begin
                     let delta =
                       Query.Delta.eval_plan ~exec ~pre:!cache changes vplan
                     in
                     let al =
                       Query.Action_list.delta ~view:name
                         ~state:txn.Update.Transaction.id delta
                     in
                     replayed := al :: !replayed
                   end;
                   cache := Database.apply_relevant !cache txn)
                 (Integrator.replay_for integ ~view:name ~after:0);
               let lists = List.rev !replayed in
               let n = List.length lists in
               Sim.Engine.schedule_after engine
                 (compute_latency ~batch:(max 1 n))
                 (fun () ->
                   List.iter emit_to_merge lists;
                   inner := build_inner ~initial:!cache ~inc:!incarnation;
                   last_id := head;
                   recovering := false;
                   Atomic.incr metrics.Metrics.recoveries;
                   record
                     "%s recovered: merge watermark %d, replayed %d lists \
                      up to U%d"
                     name w n head;
                   Queue.iter receive pending_recovery;
                   Queue.clear pending_recovery))
         end);
    let vm0 = !inner in
    let vm =
      { Viewmgr.Vm.view; level = vm0.Viewmgr.Vm.level;
        receive;
        flush =
          (fun () ->
            if (not !down) && not !recovering then !inner.Viewmgr.Vm.flush ());
        needs_ticks = vm0.Viewmgr.Vm.needs_ticks;
        pending =
          (fun () ->
            if !down then 0
            else
              !inner.Viewmgr.Vm.pending ()
              + Queue.length pending_recovery
              + if !recovering then 1 else 0) }
    in
    (vm, integ_link)
  in
  let vm_links = List.map make_vm views in
  let vms = List.map fst vm_links in
  let vm_chans = vm_links in
  let rel_chans =
    List.mapi
      (fun gi merge ->
        make_link ~name:"integ->merge" (fun (row, rel) ->
            merge_server_of gi
              ( (fun () -> Mvc.Merge.receive_rel merge ~row ~rel),
                fun () ->
                  record "merge <- REL_%d = {%s}" row
                    (String.concat ", " rel);
                  snapshot_group gi merge;
                  drain_emitted gi;
                  sample_merge_metrics () )))
      merges
  in
  let group_names =
    List.map (fun group -> List.map Query.View.name group) groups
  in
  let group_last_routed = Array.make (List.length groups) 0 in
  let integrator_link =
    make_link ~faultable:false ~name:"sources->integ" (fun txn ->
        let stamped, rel = Integrator.ingest integ txn in
        assert (stamped.Update.Transaction.id = txn.Update.Transaction.id);
        record "integrator: U%d (%a) REL = {%s}" stamped.Update.Transaction.id
          Update.Transaction.pp stamped
          (String.concat ", " rel);
        (* REL_i to the merge(s) owning affected views: either directly
           (Figure 1) or carried by a relevant view manager (the
           Section 3.2 alternative, which saves messages but lets RELs
           trail other managers' action lists). *)
        List.iteri
          (fun gi names ->
            let rel_group = List.filter (fun v -> List.mem v names) rel in
            if rel_group <> [] then
              match cfg.rel_routing with
              | Direct ->
                (List.nth rel_chans gi).send
                  (stamped.Update.Transaction.id, rel_group)
              | Via_manager ->
                let carrier = List.hd rel_group in
                Queue.push
                  ( stamped.Update.Transaction.id,
                    rel_group,
                    group_last_routed.(gi) )
                  (forwards_of carrier);
                group_last_routed.(gi) <- stamped.Update.Transaction.id)
          group_names;
        (* U_i to the relevant view managers (and tick-hungry ones). *)
        List.iter
          (fun (vm, link) ->
            if
              vm.Viewmgr.Vm.needs_ticks
              || List.mem (Viewmgr.Vm.name vm) rel
            then link.send stamped)
          vm_chans;
        let pending =
          List.fold_left
            (fun acc vm -> acc + vm.Viewmgr.Vm.pending ())
            0 vms
        in
        Sim.Stats.Summary.add metrics.Metrics.vm_queue (float_of_int pending))
  in
  schedule_script engine arrival_rng cfg ~execute:(fun updates ->
      let txn = Source.Sources.execute sources updates in
      record "source commit: U%d at %s" txn.Update.Transaction.id
        txn.Update.Transaction.source;
      Atomic.incr metrics.Metrics.transactions;
      Hashtbl.replace arrival_times txn.Update.Transaction.id
        (Sim.Engine.now engine);
      integrator_link.send txn);
  let drained () =
    List.for_all (fun vm -> vm.Viewmgr.Vm.pending () = 0) vms
    && merge_servers_pending () = 0
    && Array.for_all Queue.is_empty emitted
    && List.for_all (fun (_, held) -> held () = 0) rel_reorderers
    && List.for_all Mvc.Merge.quiescent merges
    && Warehouse.Submitter.outstanding submitter = 0
    && serving_pending serving = 0
    && List.for_all (fun q -> q ()) !quiescence
  in
  let ok =
    drain engine
      ~flushes:
        (List.map (fun vm -> vm.Viewmgr.Vm.flush) vms
        @ List.mapi
            (fun gi m () ->
              (* Flush runs between engine passes, with no job in flight;
                 refresh the group's snapshot and submit anything the
                 flush emitted so snapshots track live state exactly. *)
              Mvc.Merge.flush m;
              snapshot_group gi m;
              drain_emitted gi)
            merges)
      ~drained
  in
  if (not ok) && faultless cfg then
    raise (Stuck "system failed to drain after flushing view managers");
  metrics.Metrics.completed_at <- Sim.Engine.now engine;
  finalize_perf_metrics metrics ~contention0 ~shared ~serving;
  Metrics.add metrics.Metrics.msgs_dropped
    (List.fold_left (fun acc d -> acc + d ()) 0 !drop_counts);
  List.iter
    (fun get ->
      let s = get () in
      Metrics.add metrics.Metrics.retransmits s.Sim.Reliable.retransmits;
      Metrics.add metrics.Metrics.acks s.Sim.Reliable.acks_sent;
      Metrics.add metrics.Metrics.nacks s.Sim.Reliable.nacks_sent;
      Metrics.add metrics.Metrics.dup_frames_dropped
        s.Sim.Reliable.dups_dropped;
      Metrics.add metrics.Metrics.gave_up s.Sim.Reliable.gave_up)
    !link_stats;
  { config = cfg; store; sources;
    transactions = Source.Sources.transactions sources; metrics;
    merge_algorithm = Mvc.Merge.algorithm_name algorithm;
    timeline = List.rev !timeline; stuck = not ok;
    serving = serving_result serving }

let run cfg =
  match cfg.merge_kind with
  | Sequential -> run_sequential cfg
  | Auto | Force_spa | Force_pa | Force_passthrough | Force_holdall ->
    run_pipelined cfg

let verdict_with_witness result =
  Consistency.Checker.check_with_witness
    ~views:result.config.scenario.views ~transactions:result.transactions
    ~source_states:(Source.Sources.states result.sources)
    ~warehouse_states:(Warehouse.Store.states result.store)

let verdict result = fst (verdict_with_witness result)

let view_contents result name =
  Relation.contents (Warehouse.Store.view result.store name)
