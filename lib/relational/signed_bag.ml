module Tuple_map = Map.Make (Tuple)

(* Invariant: every stored multiplicity is non-zero. *)
type t = int Tuple_map.t

let zero = Tuple_map.empty

let is_zero = Tuple_map.is_empty

let count t tup =
  match Tuple_map.find_opt tup t with Some n -> n | None -> 0

let add tup n t =
  if n = 0 then t
  else
    Tuple_map.update tup
      (function
        | None -> Some n
        | Some m when m + n = 0 -> None
        | Some m -> Some (m + n))
      t

let singleton tup n = add tup n zero

let of_list entries =
  List.fold_left (fun acc (tup, n) -> add tup n acc) zero entries

let to_list t = Tuple_map.bindings t

let insertions t =
  Tuple_map.fold
    (fun tup n acc -> if n > 0 then Bag.add ~count:n tup acc else acc)
    t Bag.empty

let deletions t =
  Tuple_map.fold
    (fun tup n acc -> if n < 0 then Bag.add ~count:(-n) tup acc else acc)
    t Bag.empty

let of_parts ~insert ~delete =
  let with_inserts =
    Bag.fold (fun tup n acc -> add tup n acc) insert zero
  in
  Bag.fold (fun tup n acc -> add tup (-n) acc) delete with_inserts

(* Empty operands short-circuit before any closure or fold allocates:
   per-transaction maintenance sums and applies a zero delta for every
   view a transaction is irrelevant to. *)
let sum a b =
  if is_zero b then a else if is_zero a then b
  else Tuple_map.fold (fun tup n acc -> add tup n acc) b a

let negate t = Tuple_map.map (fun n -> -n) t

let diff_of_bags ~before ~after =
  let added = Bag.fold (fun tup n acc -> add tup n acc) after zero in
  Bag.fold (fun tup n acc -> add tup (-n) acc) before added

let apply t bag =
  if is_zero t then bag
  else
    Tuple_map.fold
      (fun tup n acc ->
        if n > 0 then Bag.add ~count:n tup acc
        else Bag.remove ~count:(-n) tup acc)
      t bag

let applies_exactly t bag =
  Tuple_map.for_all (fun tup n -> n > 0 || Bag.count bag tup >= -n) t

(* [apply] floors at zero, so applying a sum of deltas need not equal
   applying them one by one: a removal that overshoots loses the deficit,
   and a later insertion cannot restore it. The sum is faithful exactly
   when no per-tuple prefix of the sequence dips below the tuple's
   multiplicity in the pre-state — checked here tuple by tuple with
   running prefix sums. A single delta is trivially its own sum. *)
let coalesce deltas ~bag =
  let exception Clamped in
  match deltas with
  | [] -> Some zero
  | [ d ] -> Some d
  | _ -> (
    try
      let running = ref Tuple_map.empty in
      let total =
        List.fold_left
          (fun acc d ->
            Tuple_map.iter
              (fun tup n ->
                let r =
                  n
                  + (match Tuple_map.find_opt tup !running with
                    | Some r -> r
                    | None -> 0)
                in
                running := Tuple_map.add tup r !running;
                if n < 0 && r < 0 && Bag.count bag tup + r < 0 then
                  raise Clamped)
              d;
            sum acc d)
          zero deltas
      in
      Some total
    with Clamped -> None)

let map f t =
  Tuple_map.fold (fun tup n acc -> add (f tup) n acc) t zero

let filter p t = Tuple_map.filter (fun tup _ -> p tup) t

let fold f t init = Tuple_map.fold f t init

let size t = Tuple_map.fold (fun _ n acc -> acc + abs n) t 0

let equal a b = Tuple_map.equal Int.equal a b

let pp ppf t =
  let pp_entry ppf (tup, n) = Fmt.pf ppf "%+d%a" n Tuple.pp tup in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_entry) (to_list t)

let to_string t = Fmt.str "%a" pp t
