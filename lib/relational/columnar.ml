(* Columnar relational storage: a relation snapshot as flat per-column
   arrays of interned value ids ({!Value.intern}) with multiplicities in
   a parallel array. The hot kernels — hash join, selection scans,
   signed-delta probes — run as tight int-array loops over this layout,
   with output rows appended into batch-allocated (doubling, arena
   style) chunk builders instead of consing per row. Conversions to and
   from the boxed {!Bag}/{!Signed_bag} world happen only at operator
   boundaries; results are normalized there, so row order inside a chunk
   carries no meaning. *)

type t = {
  arity : int;
  len : int;  (* rows; cols.(i) and mult may be longer (builder slack) *)
  cols : int array array;  (* arity arrays of value ids, column-major *)
  mult : int array;  (* per-row multiplicity, non-zero (signed ok) *)
  total : int;  (* sum of multiplicities *)
}

(* Global off-switch for the columnar kernels, read by {!Compiled}: the
   @col-smoke gate and the qcheck oracles flip it to prove the columnar
   and boxed paths produce identical results. *)
let enabled =
  ref
    (match Sys.getenv_opt "MVC_COLUMNAR" with
    | Some ("0" | "false" | "off") -> false
    | Some _ | None -> true)

(* Chunk snapshots built from boxed bags, process-wide. MVCC retention
   shares chunk pointers across versions; this counter is how tests and
   benches observe that unchanged relations are not re-encoded. *)
let builds_counter = Atomic.make 0

let chunk_builds () = Atomic.get builds_counter

let arity t = t.arity

let length t = t.len

let total t = t.total

let empty ~arity =
  { arity; len = 0; cols = Array.make (max arity 1) [||]; mult = [||];
    total = 0 }

(* ------------------------------------------------------------------ *)
(* Batch-allocated chunk builder.                                     *)

module Builder = struct
  type b = {
    b_arity : int;
    mutable cap : int;
    mutable n : int;
    mutable bcols : int array array;
    mutable bmult : int array;
    mutable btotal : int;
  }

  let create ?(cap = 64) arity =
    let cap = max cap 8 in
    { b_arity = arity; cap; n = 0;
      bcols = Array.init (max arity 1) (fun _ -> Array.make cap 0);
      bmult = Array.make cap 0; btotal = 0 }

  let grow b =
    let cap = 2 * b.cap in
    b.bcols <-
      Array.map
        (fun col ->
          let c = Array.make cap 0 in
          Array.blit col 0 c 0 b.n;
          c)
        b.bcols;
    let m = Array.make cap 0 in
    Array.blit b.bmult 0 m 0 b.n;
    b.bmult <- m;
    b.cap <- cap

  let reserve b = if b.n = b.cap then grow b

  (* [push_row b ids n]: append one row. [ids] is read, not retained. *)
  let push_row b ids n =
    if n <> 0 then begin
      reserve b;
      let row = b.n in
      for c = 0 to b.b_arity - 1 do
        b.bcols.(c).(row) <- ids.(c)
      done;
      b.bmult.(row) <- n;
      b.btotal <- b.btotal + n;
      b.n <- row + 1
    end

  let length b = b.n

  (* The finished chunk keeps the builder's arrays (slack included) —
     no trailing copy. The builder must not be pushed to afterwards. *)
  let finish b =
    { arity = b.b_arity; len = b.n; cols = b.bcols; mult = b.bmult;
      total = b.btotal }
end

(* ------------------------------------------------------------------ *)
(* Conversions.                                                       *)

let of_counted_seq ~arity fold_fn =
  let b = Builder.create arity in
  fold_fn (fun (tup : Tuple.t) n ->
      Builder.reserve b;
      let row = b.Builder.n in
      for c = 0 to arity - 1 do
        b.Builder.bcols.(c).(row) <- Value.intern (Tuple.get tup c)
      done;
      b.Builder.bmult.(row) <- n;
      b.Builder.btotal <- b.Builder.btotal + n;
      b.Builder.n <- row + 1);
  Builder.finish b

let arity_of_bag bag =
  match Bag.to_counted_list bag with
  | (tup, _) :: _ -> Tuple.arity tup
  | [] -> 0

let of_bag ?arity bag =
  Atomic.incr builds_counter;
  let arity = match arity with Some a -> a | None -> arity_of_bag bag in
  of_counted_seq ~arity (fun push -> Bag.iter push bag)

let of_signed ?(arity = -1) sb =
  let arity =
    if arity >= 0 then arity
    else
      match Signed_bag.to_list sb with
      | (tup, _) :: _ -> Tuple.arity tup
      | [] -> 0
  in
  of_counted_seq ~arity (fun push ->
      Signed_bag.fold (fun tup n () -> push tup n) sb ())

let of_counted_list ~arity entries =
  of_counted_seq ~arity (fun push ->
      List.iter (fun (tup, n) -> push tup n) entries)

(* Decode row [row] to a boxed tuple. *)
let decode_row t row =
  let a = Array.make t.arity Value.Null in
  for c = 0 to t.arity - 1 do
    a.(c) <- Value.of_id t.cols.(c).(row)
  done;
  (* [a] is fresh — install it directly as the tuple's storage. *)
  Tuple.of_array a

let to_bag t =
  let acc = ref Bag.empty in
  for row = 0 to t.len - 1 do
    acc := Bag.add ~count:t.mult.(row) (decode_row t row) !acc
  done;
  !acc

let to_signed t =
  let acc = ref Signed_bag.zero in
  for row = 0 to t.len - 1 do
    acc := Signed_bag.add (decode_row t row) t.mult.(row) !acc
  done;
  !acc

(* Unmerged counted rows (duplicate tuples may repeat; callers
   normalize through Bag/Signed_bag). *)
let to_counted_list t =
  let acc = ref [] in
  for row = t.len - 1 downto 0 do
    acc := (decode_row t row, t.mult.(row)) :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Scans.                                                             *)

(* Zero-copy projection: column pointers are shared, rows unmerged
   (duplicate projected rows keep separate multiplicities — exact under
   bag semantics once normalized downstream). *)
let project positions t =
  { arity = Array.length positions; len = t.len;
    cols =
      (if Array.length positions = 0 then [| [||] |]
       else Array.map (fun p -> t.cols.(p)) positions);
    mult = t.mult; total = t.total }

let get t c row = t.cols.(c).(row)

let mult t row = t.mult.(row)

let filter ~keep t =
  let b = Builder.create ~cap:(max 8 (t.len / 2)) t.arity in
  for row = 0 to t.len - 1 do
    if keep row then begin
      Builder.reserve b;
      let out = b.Builder.n in
      for c = 0 to t.arity - 1 do
        b.Builder.bcols.(c).(out) <- t.cols.(c).(row)
      done;
      b.Builder.bmult.(out) <- t.mult.(row);
      b.Builder.btotal <- b.Builder.btotal + t.mult.(row);
      b.Builder.n <- out + 1
    end
  done;
  Builder.finish b

let append a b =
  if a.arity <> b.arity then invalid_arg "Columnar.append: arity mismatch";
  if a.len = 0 then b
  else if b.len = 0 then a
  else begin
    let len = a.len + b.len in
    let cols =
      Array.init (max a.arity 1) (fun c ->
          let col = Array.make len 0 in
          if a.arity > 0 then begin
            Array.blit a.cols.(c) 0 col 0 a.len;
            Array.blit b.cols.(c) 0 col a.len b.len
          end;
          col)
    in
    let mult = Array.make len 0 in
    Array.blit a.mult 0 mult 0 a.len;
    Array.blit b.mult 0 mult a.len b.len;
    { arity = a.arity; len; cols; mult; total = a.total + b.total }
  end

(* ------------------------------------------------------------------ *)
(* Hash join kernel.                                                  *)

(* Multiplicative mixing of key ids; the result only feeds table sizing
   and shard routing, never anything trace-visible. *)
let key_hash t key_pos row =
  let h = ref 0x9e3779b9 in
  for c = 0 to Array.length key_pos - 1 do
    let id = t.cols.(key_pos.(c)).(row) in
    h := (!h * 486187739) + id
  done;
  !h land max_int

let keys_equal build bkey brow probe pkey prow =
  let k = Array.length bkey in
  let rec go c =
    c >= k
    || build.cols.(bkey.(c)).(brow) = probe.cols.(pkey.(c)).(prow) && go (c + 1)
  in
  go 0

(* Open-addressing hash over the build side's key columns: [slots]
   holds chain heads (row + 1; 0 = empty), [next] intra-key chains.
   Distinct keys linear-probe past each other; rows with equal keys
   share one slot. *)
type hash = { ht : t; hkey : int array; slots : int array; next : int array }

let build_hash ht hkey =
  let cap =
    let rec up n = if n >= 2 * ht.len + 1 then n else up (2 * n) in
    up 16
  in
  let mask = cap - 1 in
  let slots = Array.make cap 0 and next = Array.make ht.len (-1) in
  for row = 0 to ht.len - 1 do
    let h = ref (key_hash ht hkey row land mask) in
    let placed = ref false in
    while not !placed do
      let head = slots.(!h) in
      if head = 0 then begin
        slots.(!h) <- row + 1;
        placed := true
      end
      else if keys_equal ht hkey (head - 1) ht hkey row then begin
        next.(row) <- head - 1;
        slots.(!h) <- row + 1;
        placed := true
      end
      else h := (!h + 1) land mask
    done
  done;
  { ht; hkey; slots; next }

(* Head row of the chain matching [probe]'s key at [prow], or -1. *)
let hash_find h probe pkey prow =
  let mask = Array.length h.slots - 1 in
  let s = ref (key_hash probe pkey prow land mask) in
  let res = ref (-2) in
  while !res = -2 do
    let head = h.slots.(!s) in
    if head = 0 then res := -1
    else if keys_equal h.ht h.hkey (head - 1) probe pkey prow then
      res := head - 1
    else s := (!s + 1) land mask
  done;
  !res

(* [join ~key_left ~key_right ~right_extra l r]: hash join; output rows
   are always [left ++ right_extra] and multiplicities multiply. Builds
   on the smaller side, probes with the larger — identical to the boxed
   kernel's plan shape. *)
let join ~key_left ~key_right ~right_extra l r =
  let out_arity = l.arity + Array.length right_extra in
  if l.len = 0 || r.len = 0 then empty ~arity:out_arity
  else begin
    let b = Builder.create ~cap:(max 16 (max l.len r.len)) out_arity in
    let emit lrow rrow =
      let n = l.mult.(lrow) * r.mult.(rrow) in
      if n <> 0 then begin
        Builder.reserve b;
        let out = b.Builder.n in
        for c = 0 to l.arity - 1 do
          b.Builder.bcols.(c).(out) <- l.cols.(c).(lrow)
        done;
        for c = 0 to Array.length right_extra - 1 do
          b.Builder.bcols.(l.arity + c).(out) <- r.cols.(right_extra.(c)).(rrow)
        done;
        b.Builder.bmult.(out) <- n;
        b.Builder.btotal <- b.Builder.btotal + n;
        b.Builder.n <- out + 1
      end
    in
    if r.len <= l.len then begin
      let h = build_hash r key_right in
      for lrow = 0 to l.len - 1 do
        let rrow = ref (hash_find h l key_left lrow) in
        while !rrow >= 0 do
          emit lrow !rrow;
          rrow := h.next.(!rrow)
        done
      done
    end
    else begin
      let h = build_hash l key_left in
      for rrow = 0 to r.len - 1 do
        let lrow = ref (hash_find h r key_right rrow) in
        while !lrow >= 0 do
          emit !lrow rrow;
          lrow := h.next.(!lrow)
        done
      done
    end;
    Builder.finish b
  end

(* Partition rows by key-id hash so matching keys land in the same
   shard on both sides; used by the sharded parallel join. *)
let hash_partition ~shards ~key_pos t =
  let builders =
    Array.init shards (fun _ ->
        Builder.create ~cap:(max 8 (t.len / shards)) t.arity)
  in
  for row = 0 to t.len - 1 do
    let s = key_hash t key_pos row mod shards in
    let b = builders.(s) in
    Builder.reserve b;
    let out = b.Builder.n in
    for c = 0 to t.arity - 1 do
      b.Builder.bcols.(c).(out) <- t.cols.(c).(row)
    done;
    b.Builder.bmult.(out) <- t.mult.(row);
    b.Builder.btotal <- b.Builder.btotal + t.mult.(row);
    b.Builder.n <- out + 1
  done;
  Array.map Builder.finish builders
