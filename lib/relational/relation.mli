(** A relation instance: a {!Bag.t} of tuples typed by a {!Schema.t}. *)

type t

exception Type_error of string

val create : Schema.t -> t
(** Empty relation over the schema. *)

val of_tuples : Schema.t -> Tuple.t list -> t
(** @raise Type_error if a tuple does not conform to the schema. *)

val schema : t -> Schema.t

val contents : t -> Bag.t

val with_contents : t -> Bag.t -> t
(** Replace the contents, keeping the schema. Conformance is the caller's
    responsibility (used by the evaluator, which constructs typed bags). *)

val insert : ?count:int -> Tuple.t -> t -> t
(** @raise Type_error if the tuple does not conform. *)

val delete : ?count:int -> Tuple.t -> t -> t

val apply_delta : Signed_bag.t -> t -> t
(** Apply a signed delta to the contents. An empty delta returns the
    relation itself (physically — memoized chunks and indexes ride
    along), so versions untouched by a transaction share storage. *)

val columnar : t -> Columnar.t
(** The relation's contents as a columnar chunk, memoized: encoded at
    most once per relation version and shared by pointer with every
    consumer (and, through {!apply_delta}'s empty-delta fast path, with
    later versions that leave the relation unchanged). *)

val index : t -> key_pos:int array -> Bag_index.t
(** Memoized hash index over the contents keyed at [key_pos]. The
    returned index is shared — callers must treat it as read-only
    (never {!Bag_index.apply_signed} it); the delta rules only probe. *)

val index_stats : t -> Bag_index.occupancy list
(** Occupancy of every memoized index of this relation version (empty if
    none has been built) — surfaced through the system metrics so index
    churn is observable next to the merge batch counters. *)

val cardinal : t -> int

val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val count : t -> Tuple.t -> int

val tuples : t -> Tuple.t list

val equal : t -> t -> bool
(** Schemas and contents both equal. *)

val equal_contents : t -> t -> bool
(** Contents equal, ignoring attribute names (used by the consistency oracle
    to compare a materialized view with its recomputed definition). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
