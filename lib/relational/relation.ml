(* A relation instance. Alongside the boxed bag, a relation memoizes its
   columnar snapshot and per-key-position hash indexes: the compiled
   kernels ask for them on every evaluation/delta over a pre-state, so a
   base relation is encoded (and indexed) at most once per version
   instead of once per view per transaction. The memo fields are
   mutable but the relation value stays observably immutable — every
   content-changing operation builds a fresh record with empty memos,
   and an empty delta returns the same record, so MVCC versions that
   retain an unchanged relation share its chunks and indexes by
   pointer. Concurrent memo fills from pool domains are benign races:
   both domains compute the same deterministic snapshot and one
   single-word write wins. *)

type t = {
  schema : Schema.t;
  contents : Bag.t;
  mutable col : Columnar.t option;
  mutable idxs : (int array * Bag_index.t) list;
}

exception Type_error of string

let make schema contents = { schema; contents; col = None; idxs = [] }

let create schema = make schema Bag.empty

let check_tuple schema tup =
  if not (Tuple.conforms schema tup) then
    raise
      (Type_error
         (Fmt.str "tuple %a does not conform to schema %a" Tuple.pp tup
            Schema.pp schema))

let of_tuples schema tuples =
  List.iter (check_tuple schema) tuples;
  make schema (Bag.of_list tuples)

let schema t = t.schema

let contents t = t.contents

let with_contents t contents =
  if contents == t.contents then t else make t.schema contents

let insert ?count tup t =
  check_tuple t.schema tup;
  make t.schema (Bag.add ?count tup t.contents)

let delete ?count tup t = make t.schema (Bag.remove ?count tup t.contents)

let apply_delta delta t =
  (* Empty-delta fast path: same record, memos (chunks, indexes) kept. *)
  if Signed_bag.is_zero delta then t
  else make t.schema (Signed_bag.apply delta t.contents)

let columnar t =
  match t.col with
  | Some c -> c
  | None ->
    let c = Columnar.of_bag ~arity:(Schema.arity t.schema) t.contents in
    t.col <- Some c;
    c

let index t ~key_pos =
  let rec lookup = function
    | [] -> None
    | (kp, idx) :: rest -> if kp = key_pos then Some idx else lookup rest
  in
  match lookup t.idxs with
  | Some idx -> idx
  | None ->
    let idx = Bag_index.of_bag ~key_pos t.contents in
    t.idxs <- (key_pos, idx) :: t.idxs;
    idx

let index_stats t = List.map (fun (_, idx) -> Bag_index.occupancy idx) t.idxs

let cardinal t = Bag.cardinal t.contents

let is_empty t = Bag.is_empty t.contents

let mem t tup = Bag.mem t.contents tup

let count t tup = Bag.count t.contents tup

let tuples t = Bag.to_list t.contents

let equal a b = Schema.equal a.schema b.schema && Bag.equal a.contents b.contents

let equal_contents a b = Bag.equal a.contents b.contents

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@ %a@]" Schema.pp t.schema Bag.pp t.contents

let to_string t = Fmt.str "%a" pp t
