(** Tuples: fixed-arity arrays of {!Value.t}, interpreted against a
    {!Schema.t}. *)

type t

val of_list : Value.t list -> t

val of_array : Value.t array -> t
(** The array is copied. *)

val to_list : t -> Value.t list

val arity : t -> int

val get : t -> int -> Value.t

val field : Schema.t -> t -> string -> Value.t
(** [field schema tuple name] is the value of attribute [name].
    @raise Schema.Unknown_attribute if absent.
    @raise Invalid_argument if the tuple arity does not match the schema. *)

val conforms : Schema.t -> t -> bool
(** Arity matches and each value conforms to its attribute type. *)

val project : Schema.t -> string list -> t -> t
(** Restrict the tuple to the named attributes, in the order given. *)

val project_pos : int array -> t -> t
(** Positional projection: [project_pos [|i0; ..|] t] is [[|t.(i0); ..|]].
    The compiled query kernel resolves attribute names to positions once per
    plan, then uses this on every tuple — no name lookups on the hot path. *)

val concat : t -> t -> t

val join : Schema.t -> Schema.t -> t -> t -> t option
(** [join sa sb a b] is the natural-join combination of [a] and [b]: [Some]
    of [a] extended with [b]'s non-shared attributes when all shared
    attributes agree, [None] otherwise. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val intern : t -> int array
(** Per-field {!Value.intern}: the tuple as a row of interned ids, the
    currency of the columnar kernel ({!Columnar}). *)

val of_ids : int array -> t
(** Inverse of {!intern} (per-field {!Value.of_id}). The array is not
    retained. *)

(** Convenience constructors used pervasively in tests and examples. *)

val ints : int list -> t

val mk : Value.t list -> t
(** Alias of {!of_list}. *)
