(** Signed bags: tuples with non-zero integer multiplicities.

    Signed bags are the currency of incremental view maintenance: the delta
    of a bag-valued expression is a signed bag (positive counts are
    insertions, negative counts deletions), and deltas compose by pointwise
    addition. Applying a delta to a {!Bag.t} yields the post-state. *)

type t

val zero : t

val is_zero : t -> bool

val count : t -> Tuple.t -> int

val add : Tuple.t -> int -> t -> t
(** [add tup n t] adds [n] (possibly negative) to the multiplicity of [tup];
    entries reaching zero are dropped. [n = 0] is a no-op. *)

val singleton : Tuple.t -> int -> t

val of_list : (Tuple.t * int) list -> t

val to_list : t -> (Tuple.t * int) list
(** Entries in tuple order; all counts non-zero. *)

val insertions : t -> Bag.t
(** The positive part. *)

val deletions : t -> Bag.t
(** The negated negative part (as positive multiplicities). *)

val of_parts : insert:Bag.t -> delete:Bag.t -> t
(** [of_parts ~insert ~delete] is [insert - delete]. *)

val sum : t -> t -> t
(** Pointwise addition. *)

val negate : t -> t

val diff_of_bags : before:Bag.t -> after:Bag.t -> t
(** The delta that transforms [before] into [after]. *)

val apply : t -> Bag.t -> Bag.t
(** [apply delta bag] adds the delta to [bag]. Negative counts remove
    multiplicity; a resulting multiplicity below zero is floored at zero
    (applying a delta computed by {!diff_of_bags} to its [before] never
    floors). *)

val applies_exactly : t -> Bag.t -> bool
(** True when applying [delta] to [bag] would not floor any multiplicity,
    i.e. the delta's deletions are all present. *)

val coalesce : t list -> bag:Bag.t -> t option
(** [coalesce deltas ~bag] is [Some] of the pointwise sum of [deltas]
    when applying the sum to [bag] is guaranteed to equal applying the
    deltas one by one in order — i.e. no intermediate application would
    floor a multiplicity at zero ({!apply}'s clamp). [None] means the
    sum may be unfaithful and the caller must fall back to sequential
    application. [coalesce [] ~bag = Some zero]; a singleton always
    coalesces to itself. *)

val map : (Tuple.t -> Tuple.t) -> t -> t

val filter : (Tuple.t -> bool) -> t -> t

val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val size : t -> int
(** Sum of absolute multiplicities. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
