module Tuple_map = Map.Make (Tuple)

(* Invariant: every stored multiplicity is > 0 and [card] is the sum of all
   stored multiplicities. Caching the total makes [cardinal] O(1) — it sits
   on the Count-aggregate and metrics hot paths, which previously folded the
   whole map per call. *)
type t = { map : int Tuple_map.t; card : int }

let empty = { map = Tuple_map.empty; card = 0 }

let is_empty t = Tuple_map.is_empty t.map

let cardinal t = t.card

let size = cardinal

let distinct t = Tuple_map.cardinal t.map

let count t tup =
  match Tuple_map.find_opt tup t.map with Some n -> n | None -> 0

let mem t tup = Tuple_map.mem tup t.map

let check_count count =
  if count <= 0 then invalid_arg "Bag: count must be positive"

let add ?(count = 1) tup t =
  check_count count;
  { map =
      Tuple_map.update tup
        (function None -> Some count | Some n -> Some (n + count))
        t.map;
    card = t.card + count }

let remove ?(count = 1) tup t =
  check_count count;
  let removed = ref 0 in
  let map =
    Tuple_map.update tup
      (function
        | None -> None
        | Some n when n <= count ->
          removed := n;
          None
        | Some n ->
          removed := count;
          Some (n - count))
      t.map
  in
  { map; card = t.card - !removed }

let of_list tuples = List.fold_left (fun acc tup -> add tup acc) empty tuples

let of_counted_list entries =
  List.fold_left (fun acc (tup, n) -> add ~count:n tup acc) empty entries

let to_counted_list t = Tuple_map.bindings t.map

let to_list t =
  List.concat_map
    (fun (tup, n) -> List.init n (fun _ -> tup))
    (to_counted_list t)

let fold f t init = Tuple_map.fold f t.map init

let iter f t = Tuple_map.iter f t.map

let union a b = Tuple_map.fold (fun tup n acc -> add ~count:n tup acc) b.map a

let diff a b =
  Tuple_map.fold (fun tup n acc -> remove ~count:n tup acc) b.map a

let map f t =
  Tuple_map.fold (fun tup n acc -> add ~count:n (f tup) acc) t.map empty

let filter p t =
  Tuple_map.fold
    (fun tup n acc -> if p tup then add ~count:n tup acc else acc)
    t.map empty

let equal a b = Tuple_map.equal Int.equal a.map b.map

let compare a b = Tuple_map.compare Int.compare a.map b.map

let pp ppf t =
  let pp_entry ppf (tup, n) =
    if n = 1 then Tuple.pp ppf tup else Fmt.pf ppf "%a*%d" Tuple.pp tup n
  in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_entry) (to_counted_list t)

let to_string t = Fmt.str "%a" pp t
