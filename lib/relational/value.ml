type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type ty = Bool_ty | Int_ty | Float_ty | String_ty

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ ->
    Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let type_of = function
  | Null -> None
  | Bool _ -> Some Bool_ty
  | Int _ -> Some Int_ty
  | Float _ -> Some Float_ty
  | String _ -> Some String_ty

let conforms v ty =
  match type_of v with None -> true | Some ty' -> ty = ty'

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s

let pp_ty ppf = function
  | Bool_ty -> Fmt.string ppf "bool"
  | Int_ty -> Fmt.string ppf "int"
  | Float_ty -> Fmt.string ppf "float"
  | String_ty -> Fmt.string ppf "string"

let to_string v = Fmt.str "%a" pp v

let ty_to_string ty = Fmt.str "%a" pp_ty ty

(* ------------------------------------------------------------------ *)
(* Interning: values as dense int ids.                                *)

(* Ids are tagged: an odd id [(i lsl 1) lor 1] encodes [Int i] directly
   (no dictionary traffic, and the encoding is monotone, so ordered
   comparisons between two int ids never decode); an even id
   [idx lsl 1] indexes the global dictionary. The dictionary is keyed
   by {!equal}/{!hash} (not polymorphic equality — Float NaN must
   intern to one id), so [intern] is injective up to {!equal} and id
   equality decides value equality. *)

module Vtbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)

let dict_lock = Mutex.create ()

let dict_tbl : int Vtbl.t = Vtbl.create 256

let dict_vals : t array ref = ref (Array.make 256 Null)

let dict_len = ref 0

(* Pre-seed the nullary/boolean constants so their ids are fixed
   process-wide constants ([null_id] in particular anchors the compiled
   predicates' Null semantics). *)
let seed v =
  let idx = !dict_len in
  !dict_vals.(idx) <- v;
  dict_len := idx + 1;
  Vtbl.add dict_tbl v idx;
  idx lsl 1

let null_id = seed Null

let false_id = seed (Bool false)

let true_id = seed (Bool true)

let fits_tagged i = (i lsl 1) asr 1 = i

let intern v =
  match v with
  | Int i when fits_tagged i -> (i lsl 1) lor 1
  | Null -> null_id
  | Bool false -> false_id
  | Bool true -> true_id
  | _ ->
    Mutex.lock dict_lock;
    let id =
      match Vtbl.find_opt dict_tbl v with
      | Some idx -> idx lsl 1
      | None ->
        let idx = !dict_len in
        if idx = Array.length !dict_vals then begin
          let bigger = Array.make (2 * idx) Null in
          Array.blit !dict_vals 0 bigger 0 idx;
          dict_vals := bigger
        end;
        !dict_vals.(idx) <- v;
        dict_len := idx + 1;
        Vtbl.add dict_tbl v idx;
        idx lsl 1
    in
    Mutex.unlock dict_lock;
    id

let of_id id =
  if id land 1 = 1 then Int (id asr 1)
  else if id = null_id then Null
  else if id = false_id then Bool false
  else if id = true_id then Bool true
  else begin
    Mutex.lock dict_lock;
    let v = !dict_vals.(id lsr 1) in
    Mutex.unlock dict_lock;
    v
  end

let equal_ids : int -> int -> bool = Int.equal

(* Total order on ids consistent with {!compare} on the underlying
   values. Two tagged ids compare as raw ints (the encoding is
   monotone); anything else decodes. *)
let compare_ids a b =
  if a = b then 0
  else if a land 1 = 1 && b land 1 = 1 then Int.compare a b
  else compare (of_id a) (of_id b)

let interned_count () =
  Mutex.lock dict_lock;
  let n = !dict_len in
  Mutex.unlock dict_lock;
  n
