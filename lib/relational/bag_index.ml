module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

type t = { key_pos : int array; table : (Tuple.t * int) list Tuple_tbl.t }

let key_of t tup = Tuple.project_pos t.key_pos tup

let add t tup n =
  let key = key_of t tup in
  let existing =
    match Tuple_tbl.find_opt t.table key with Some l -> l | None -> []
  in
  Tuple_tbl.replace t.table key ((tup, n) :: existing)

let of_counted ~key_pos entries =
  let t = { key_pos; table = Tuple_tbl.create (List.length entries + 1) } in
  List.iter (fun (tup, n) -> add t tup n) entries;
  t

let of_bag ~key_pos bag =
  let t = { key_pos; table = Tuple_tbl.create (Bag.distinct bag + 1) } in
  Bag.iter (fun tup n -> add t tup n) bag;
  t

let find t key =
  match Tuple_tbl.find_opt t.table key with Some l -> l | None -> []

let find_matching t tup = find t (key_of t tup)

let groups t = Tuple_tbl.fold (fun key entries acc -> (key, entries) :: acc) t.table []

let n_keys t = Tuple_tbl.length t.table

let apply_signed t delta =
  Signed_bag.to_list delta
  |> List.iter (fun (tup, n) ->
         let key = key_of t tup in
         let entries = find t key in
         let merged, found =
           List.fold_left
             (fun (acc, found) (etup, en) ->
               if Tuple.equal etup tup then
                 let m = en + n in
                 ((if m = 0 then acc else (etup, m) :: acc), true)
               else ((etup, en) :: acc, found))
             ([], false) entries
         in
         let merged = if found then merged else (tup, n) :: merged in
         if merged = [] then Tuple_tbl.remove t.table key
         else Tuple_tbl.replace t.table key merged)
