(* Open-addressing hash index keyed on interned key-column ids.

   Rows live in flat parallel arrays (boxed tuple + count + the key's
   value ids, flattened); the table stores chain heads (row + 1, 0 =
   empty) with linear probing between distinct keys and an intra-key
   [next] chain. Probing therefore costs an int-mix of the key ids and
   a handful of int compares — no per-probe tuple hashing or boxed key
   allocation. Counts may be negative (signed deltas index fine); a
   count that reaches exactly zero under [apply_signed] is dead and
   skipped by every reader. *)

type t = {
  key_pos : int array;
  karity : int;
  mutable tups : Tuple.t array;
  mutable counts : int array;
  mutable keys : int array;  (* flat: row * karity + c *)
  mutable n : int;  (* rows, dead included *)
  mutable slots : int array;  (* chain heads: row + 1; 0 = empty *)
  mutable next : int array;
  mutable used : int;  (* occupied slots (distinct keys) *)
  mutable dead : int;  (* rows whose count reached exactly 0 (tombstones) *)
}

let dummy_tuple = Tuple.of_list []

let hash_ids ids off karity =
  let h = ref 0x9e3779b9 in
  for c = 0 to karity - 1 do
    h := (!h * 486187739) + ids.(off + c)
  done;
  !h land max_int

let row_hash t row = hash_ids t.keys (row * t.karity) t.karity

let keys_equal_rows t a b =
  let ka = a * t.karity and kb = b * t.karity in
  let rec go c =
    c >= t.karity || (t.keys.(ka + c) = t.keys.(kb + c) && go (c + 1))
  in
  go 0

let keys_equal_probe t row (ids : int array) =
  let k = row * t.karity in
  let rec go c = c >= t.karity || (t.keys.(k + c) = ids.(c) && go (c + 1)) in
  go 0

let create ~key_pos cap =
  let cap = max cap 8 in
  let scap =
    let rec up n = if n >= 2 * cap then n else up (2 * n) in
    up 16
  in
  { key_pos; karity = Array.length key_pos;
    tups = Array.make cap dummy_tuple; counts = Array.make cap 0;
    keys = Array.make (cap * Array.length key_pos + 1) 0; n = 0;
    slots = Array.make scap 0; next = Array.make cap (-1); used = 0;
    dead = 0 }

(* Link [row] into the table: linear-probe for its key's slot. *)
let link t row =
  let mask = Array.length t.slots - 1 in
  let h = ref (row_hash t row land mask) in
  let placed = ref false in
  while not !placed do
    let head = t.slots.(!h) in
    if head = 0 then begin
      t.slots.(!h) <- row + 1;
      t.next.(row) <- -1;
      t.used <- t.used + 1;
      placed := true
    end
    else if keys_equal_rows t (head - 1) row then begin
      t.next.(row) <- head - 1;
      t.slots.(!h) <- row + 1;
      placed := true
    end
    else h := (!h + 1) land mask
  done

let rehash t =
  let scap = 2 * Array.length t.slots in
  t.slots <- Array.make scap 0;
  t.used <- 0;
  for row = 0 to t.n - 1 do
    link t row
  done

let grow_rows t =
  let cap = 2 * Array.length t.tups in
  let tups = Array.make cap dummy_tuple in
  Array.blit t.tups 0 tups 0 t.n;
  t.tups <- tups;
  let counts = Array.make cap 0 in
  Array.blit t.counts 0 counts 0 t.n;
  t.counts <- counts;
  let keys = Array.make (cap * t.karity + 1) 0 in
  Array.blit t.keys 0 keys 0 (t.n * t.karity);
  t.keys <- keys;
  let next = Array.make cap (-1) in
  Array.blit t.next 0 next 0 t.n;
  t.next <- next

(* Append a new row (not yet linked). *)
let push_row t tup count =
  if t.n = Array.length t.tups then grow_rows t;
  let row = t.n in
  t.tups.(row) <- tup;
  t.counts.(row) <- count;
  let k = row * t.karity in
  for c = 0 to t.karity - 1 do
    t.keys.(k + c) <- Value.intern (Tuple.get tup t.key_pos.(c))
  done;
  t.n <- row + 1;
  if 2 * t.used >= Array.length t.slots then rehash t;
  link t row

let add t tup n = if n <> 0 then push_row t tup n

let of_counted ~key_pos entries =
  let t = create ~key_pos (List.length entries) in
  List.iter (fun (tup, n) -> add t tup n) entries;
  t

let of_bag ~key_pos bag =
  let t = create ~key_pos (Bag.distinct bag) in
  Bag.iter (fun tup n -> add t tup n) bag;
  t

(* Chain head for the key given as interned ids, or -1. *)
let find_head t (ids : int array) =
  let mask = Array.length t.slots - 1 in
  let s = ref (hash_ids ids 0 t.karity land mask) in
  let res = ref (-2) in
  while !res = -2 do
    let head = t.slots.(!s) in
    if head = 0 then res := -1
    else if keys_equal_probe t (head - 1) ids then res := head - 1
    else s := (!s + 1) land mask
  done;
  !res

let fold_ids t ids f acc =
  let rec go row acc =
    if row < 0 then acc
    else
      go t.next.(row)
        (if t.counts.(row) = 0 then acc else f t.tups.(row) t.counts.(row) acc)
  in
  go (find_head t ids) acc

let find t key =
  fold_ids t (Tuple.intern key) (fun tup n acc -> (tup, n) :: acc) []

let key_of t tup = Tuple.project_pos t.key_pos tup

let find_matching t tup = find t (key_of t tup)

(* Live groups, rebuilt by scan (test/debug surface, not a hot path). *)
let groups t =
  let heads = Hashtbl.create (t.used + 1) in
  for row = 0 to t.n - 1 do
    if t.counts.(row) <> 0 then begin
      let key = key_of t t.tups.(row) in
      let existing =
        match Hashtbl.find_opt heads key with Some l -> l | None -> []
      in
      Hashtbl.replace heads key ((t.tups.(row), t.counts.(row)) :: existing)
    end
  done;
  Hashtbl.fold (fun key entries acc -> (key, entries) :: acc) heads []

let n_keys t = List.length (groups t)

(* Tombstone compaction: slide live rows down over the dead ones and
   relink every chain from scratch. Row order within a key's chain is
   not preserved — consumers canonicalize into bags, so only the set of
   live (tuple, count) entries matters, and that is untouched. *)
let compact t =
  let m = ref 0 in
  for row = 0 to t.n - 1 do
    if t.counts.(row) <> 0 then begin
      let m' = !m in
      if m' <> row then begin
        t.tups.(m') <- t.tups.(row);
        t.counts.(m') <- t.counts.(row);
        Array.blit t.keys (row * t.karity) t.keys (m' * t.karity) t.karity
      end;
      incr m
    end
  done;
  for row = !m to t.n - 1 do
    t.tups.(row) <- dummy_tuple;
    t.counts.(row) <- 0
  done;
  t.n <- !m;
  t.dead <- 0;
  Array.fill t.slots 0 (Array.length t.slots) 0;
  t.used <- 0;
  for row = 0 to t.n - 1 do
    link t row
  done

(* In-place signed migration. The empty-delta fast path returns before
   touching (or allocating) anything — per-transaction maintenance
   calls this for every live index, delta or no delta. *)
let apply_signed t delta =
  if not (Signed_bag.is_zero delta) then begin
    Signed_bag.fold
      (fun tup n () ->
        let ids =
          Array.map
            (fun p -> Value.intern (Tuple.get tup p))
            t.key_pos
        in
        let rec adjust row =
          if row < 0 then push_row t tup n
          else if t.counts.(row) <> 0 && Tuple.equal t.tups.(row) tup then begin
            t.counts.(row) <- t.counts.(row) + n;
            if t.counts.(row) = 0 then t.dead <- t.dead + 1
          end
          else adjust t.next.(row)
        in
        adjust (find_head t ids))
      delta ();
    (* Long-lived indexes under churn accumulate count-0 tombstones that
       every probe must skip and that keep forcing slot-table growth.
       Rehash in place once tombstones dominate: amortized O(1) per
       migrated entry, and row/slot storage stays proportional to the
       live population. *)
    if t.n >= 16 && 2 * t.dead >= t.n then compact t
  end

type occupancy = { rows : int; live : int; tombstones : int; slots : int }

let occupancy t =
  { rows = t.n; live = t.n - t.dead; tombstones = t.dead;
    slots = Array.length t.slots }
