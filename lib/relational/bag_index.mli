(** Hash index over counted tuples, keyed by a projected position list.

    The probe side of a hash join, group-by partitioning, and view-store
    membership checks all need "every (tuple, count) whose key columns equal
    [k]" in O(1) expected time. An index is built once per operator
    invocation from the build side's counted tuples; keys are positional
    projections ({!Tuple.project_pos}), so no attribute-name resolution
    happens per tuple. Counts pass through untouched and may be negative
    (signed deltas index fine). *)

type t

val of_counted : key_pos:int array -> (Tuple.t * int) list -> t
(** Zero-count entries are dropped. *)

val of_bag : key_pos:int array -> Bag.t -> t

val find : t -> Tuple.t -> (Tuple.t * int) list
(** [find t key] is every indexed entry whose projected key equals [key]
    (which must have arity [Array.length key_pos]); [[]] when none. *)

val fold_ids : t -> int array -> (Tuple.t -> int -> 'a -> 'a) -> 'a -> 'a
(** [fold_ids t ids f acc] folds [f] over every live entry whose key
    columns intern to exactly [ids] — the allocation-free probe the
    compiled delta rules use: the key never exists as a boxed tuple. *)

val find_matching : t -> Tuple.t -> (Tuple.t * int) list
(** [find_matching t tup] projects [tup] through the index's own [key_pos]
    and looks the result up — for probes whose tuples share the build side's
    schema. When the probe side has a different schema, project its key with
    that side's positions and use {!find}. *)

val groups : t -> (Tuple.t * (Tuple.t * int) list) list
(** All (key, entries) groups, unordered. *)

val n_keys : t -> int

val apply_signed : t -> Signed_bag.t -> unit
(** [apply_signed t delta] edits the index in place so it indexes
    [Signed_bag.apply delta b] whenever it previously indexed [b] (the
    delta must apply exactly — counts that sum to zero are dropped, and
    net-negative counts would be recorded as-is). Lets a long-lived index
    over a maintained intermediate ride through updates instead of being
    rebuilt per batch. Bucket order is not preserved; consumers must not
    depend on entry order (join results are canonicalized into bags).
    An empty delta returns immediately without allocating.

    Counts that reach exactly zero become tombstones; once tombstones
    are at least half of the stored rows (and the index is non-trivial)
    the index compacts in place — live entries and probe results are
    unchanged, but row and slot storage stays proportional to the live
    population under churn instead of growing forever. *)

type occupancy = {
  rows : int;  (** Stored rows, tombstones included. *)
  live : int;
  tombstones : int;
  slots : int;  (** Physical slot-table size (power of two). *)
}

val occupancy : t -> occupancy
(** Storage accounting, for the churn tests pinning bounded growth. *)
