(** Hash index over counted tuples, keyed by a projected position list.

    The probe side of a hash join, group-by partitioning, and view-store
    membership checks all need "every (tuple, count) whose key columns equal
    [k]" in O(1) expected time. An index is built once per operator
    invocation from the build side's counted tuples; keys are positional
    projections ({!Tuple.project_pos}), so no attribute-name resolution
    happens per tuple. Counts pass through untouched and may be negative
    (signed deltas index fine). *)

type t

val of_counted : key_pos:int array -> (Tuple.t * int) list -> t

val of_bag : key_pos:int array -> Bag.t -> t

val find : t -> Tuple.t -> (Tuple.t * int) list
(** [find t key] is every indexed entry whose projected key equals [key]
    (which must have arity [Array.length key_pos]); [[]] when none. *)

val find_matching : t -> Tuple.t -> (Tuple.t * int) list
(** [find_matching t tup] projects [tup] through the index's own [key_pos]
    and looks the result up — for probes whose tuples share the build side's
    schema. When the probe side has a different schema, project its key with
    that side's positions and use {!find}. *)

val groups : t -> (Tuple.t * (Tuple.t * int) list) list
(** All (key, entries) groups, unordered. *)

val n_keys : t -> int
