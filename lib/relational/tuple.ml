type t = Value.t array

let of_list vs = Array.of_list vs

let of_array a = Array.copy a

let to_list t = Array.to_list t

let arity t = Array.length t

let get t i = t.(i)

let check_arity schema t =
  if Array.length t <> Schema.arity schema then
    invalid_arg "Tuple: arity does not match schema"

let field schema t name =
  check_arity schema t;
  t.(Schema.index_of schema name)

let conforms schema t =
  Array.length t = Schema.arity schema
  && List.for_all2
       (fun (attr : Schema.attribute) v -> Value.conforms v attr.ty)
       (Schema.attributes schema) (Array.to_list t)

let project schema names t =
  check_arity schema t;
  Array.of_list (List.map (fun n -> t.(Schema.index_of schema n)) names)

let project_pos positions t = Array.map (fun i -> t.(i)) positions

let concat a b = Array.append a b

let join sa sb a b =
  check_arity sa a;
  check_arity sb b;
  let shared = Schema.common sa sb in
  let agree n =
    Value.equal a.(Schema.index_of sa n) b.(Schema.index_of sb n)
  in
  if List.for_all agree shared then begin
    let extra =
      List.filter
        (fun (attr : Schema.attribute) -> not (Schema.mem sa attr.name))
        (Schema.attributes sb)
    in
    let extra_vals =
      List.map
        (fun (attr : Schema.attribute) -> b.(Schema.index_of sb attr.name))
        extra
    in
    Some (Array.append a (Array.of_list extra_vals))
  end
  else None

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else match Value.compare a.(i) b.(i) with 0 -> loop (i + 1) | c -> c
  in
  loop 0

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

let pp ppf t =
  Fmt.pf ppf "[%a]" (Fmt.array ~sep:(Fmt.any "; ") Value.pp) t

let to_string t = Fmt.str "%a" pp t

let intern t = Array.map Value.intern t

let of_ids ids = Array.map Value.of_id ids

let ints is = of_list (List.map (fun i -> Value.Int i) is)

let mk = of_list
