(** Columnar relational storage: flat per-column arrays of interned
    value ids with a parallel multiplicity array.

    A value of type [t] is an immutable chunk — one snapshot of a bag or
    signed bag. Chunks are built once (batch-allocated, doubling
    builders; no per-row consing) and then only read; MVCC versions that
    retain the same relation share the chunk by pointer. Row order
    inside a chunk carries no meaning: every consumer normalizes through
    {!Bag}/{!Signed_bag} at operator boundaries, which is what keeps the
    columnar and boxed kernels trace-identical. *)

type t

val enabled : bool ref
(** Process-wide switch consulted by the compiled kernels; initialized
    from [MVC_COLUMNAR] ([0]/[false]/[off] disable). The @col-smoke gate
    and qcheck oracles flip it to compare both paths in one process. *)

val chunk_builds : unit -> int
(** Chunks encoded from boxed bags since process start (monotone) — the
    observable for chunk-pointer sharing: an unchanged relation served
    across many versions encodes once. *)

val arity : t -> int

val length : t -> int
(** Number of stored rows (distinct-ness is not guaranteed after
    projections or joins; multiplicities of duplicate rows add on
    normalization). *)

val total : t -> int
(** Sum of multiplicities (signed). *)

val empty : arity:int -> t

(** {1 Conversions} *)

val of_bag : ?arity:int -> Bag.t -> t

val of_signed : ?arity:int -> Signed_bag.t -> t

val of_counted_list : arity:int -> (Tuple.t * int) list -> t

val to_bag : t -> Bag.t
(** Decode and normalize. Every multiplicity must be positive. *)

val to_signed : t -> Signed_bag.t

val to_counted_list : t -> (Tuple.t * int) list
(** Decoded rows, unmerged (duplicate tuples may repeat). *)

val decode_row : t -> int -> Tuple.t

val get : t -> int -> int -> int
(** [get t col row] is the value id at [(col, row)]. *)

val mult : t -> int -> int
(** [mult t row] is the row's multiplicity. *)

(** {1 Scans} *)

val project : int array -> t -> t
(** Zero-copy positional projection: column pointers are shared. *)

val filter : keep:(int -> bool) -> t -> t
(** Rows for which [keep row] holds, in order. *)

val append : t -> t -> t
(** Bag union (rows concatenated; multiplicities untouched). *)

(** {1 Join kernel} *)

val join :
  key_left:int array -> key_right:int array -> right_extra:int array ->
  t -> t -> t
(** Hash join on precomputed key positions: builds an open-addressing
    id-keyed table over the smaller side, probes with the larger. Output
    rows are [left ++ right_extra]; multiplicities multiply (either side
    may be signed). *)

val hash_partition : shards:int -> key_pos:int array -> t -> t array
(** Partition rows by join-key hash. Matching keys of two sides
    partitioned with their respective key positions land in the same
    shard, so shards join independently. *)

(** {1 Builders} *)

module Builder : sig
  type b

  val create : ?cap:int -> int -> b
  (** [create arity]: an empty builder; capacity doubles as needed. *)

  val push_row : b -> int array -> int -> unit
  (** [push_row b ids n] appends a row of value ids with multiplicity
      [n] ([n = 0] rows are dropped). [ids] is copied, not retained. *)

  val length : b -> int

  val finish : b -> t
  (** The built chunk (adopts the builder's arrays; do not push after
      finishing). *)
end
