type attribute = { name : string; ty : Value.ty }

type t = { attrs : attribute array }

exception Duplicate_attribute of string

exception Unknown_attribute of string

let make pairs =
  let seen = Hashtbl.create 8 in
  let check (name, _) =
    if Hashtbl.mem seen name then raise (Duplicate_attribute name);
    Hashtbl.add seen name ()
  in
  List.iter check pairs;
  { attrs = Array.of_list (List.map (fun (name, ty) -> { name; ty }) pairs) }

let attributes t = Array.to_list t.attrs

let names t = Array.to_list (Array.map (fun a -> a.name) t.attrs)

let arity t = Array.length t.attrs

let find_opt t name =
  let rec loop i =
    if i >= Array.length t.attrs then None
    else if String.equal t.attrs.(i).name name then Some i
    else loop (i + 1)
  in
  loop 0

let mem t name = Option.is_some (find_opt t name)

let index_of t name =
  match find_opt t name with
  | Some i -> i
  | None -> raise (Unknown_attribute name)

let type_of t name = t.attrs.(index_of t name).ty

let equal a b =
  Array.length a.attrs = Array.length b.attrs
  && Array.for_all2
       (fun x y -> String.equal x.name y.name && x.ty = y.ty)
       a.attrs b.attrs

let compare a b =
  let cmp_attr x y =
    match String.compare x.name y.name with
    | 0 -> Stdlib.compare x.ty y.ty
    | c -> c
  in
  let rec loop i =
    match
      (i >= Array.length a.attrs, i >= Array.length b.attrs)
    with
    | true, true -> 0
    | true, false -> -1
    | false, true -> 1
    | false, false -> (
      match cmp_attr a.attrs.(i) b.attrs.(i) with 0 -> loop (i + 1) | c -> c)
  in
  loop 0

let project t names =
  make (List.map (fun n -> (n, type_of t n)) names)

let positions t names = Array.of_list (List.map (index_of t) names)

let common a b =
  List.filter (fun n -> mem b n) (names a)

let join a b =
  let shared = common a b in
  let conflict n = type_of a n <> type_of b n in
  (match List.find_opt conflict shared with
  | Some n ->
    invalid_arg
      (Printf.sprintf "Schema.join: attribute %s has conflicting types" n)
  | None -> ());
  let extra =
    List.filter (fun attr -> not (mem a attr.name)) (attributes b)
  in
  let pairs attrs = List.map (fun attr -> (attr.name, attr.ty)) attrs in
  make (pairs (attributes a) @ pairs extra)

let rename t mapping =
  let rename_one attr =
    match List.assoc_opt attr.name mapping with
    | Some fresh -> (fresh, attr.ty)
    | None -> (attr.name, attr.ty)
  in
  let missing (src, _) = not (mem t src) in
  (match List.find_opt missing mapping with
  | Some (src, _) -> raise (Unknown_attribute src)
  | None -> ());
  make (List.map rename_one (attributes t))

let pp ppf t =
  let pp_attr ppf a = Fmt.pf ppf "%s:%a" a.name Value.pp_ty a.ty in
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_attr) (attributes t)

let to_string t = Fmt.str "%a" pp t
