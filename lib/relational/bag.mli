(** Bags (multisets) of tuples with strictly positive multiplicities.

    Views and base relations are bags: incremental maintenance of
    select-project-join views is only exact under bag semantics, because a
    projection can map several source tuples to one view tuple and a single
    deletion must not remove the view tuple while other derivations remain.
    Persistent maps make snapshotting source/warehouse state sequences for
    the consistency oracle O(1). *)

type t

val empty : t

val is_empty : t -> bool

val cardinal : t -> int
(** Total number of tuples counting multiplicity. O(1): the representation
    caches the total, so aggregate Counts and metrics never fold the map. *)

val size : t -> int
(** Alias of {!cardinal}. *)

val distinct : t -> int
(** Number of distinct tuples. *)

val count : t -> Tuple.t -> int
(** Multiplicity of a tuple; 0 when absent. *)

val mem : t -> Tuple.t -> bool

val add : ?count:int -> Tuple.t -> t -> t
(** [add ?count tup t] inserts [count] (default 1) copies.
    @raise Invalid_argument if [count <= 0]. *)

val remove : ?count:int -> Tuple.t -> t -> t
(** [remove ?count tup t] deletes [count] (default 1) copies; multiplicities
    never drop below zero (removing from an absent tuple is a no-op, removing
    more copies than present leaves zero).
    @raise Invalid_argument if [count <= 0]. *)

val of_list : Tuple.t list -> t

val of_counted_list : (Tuple.t * int) list -> t
(** Bulk constructor from (tuple, multiplicity) pairs; multiplicities of
    repeated tuples add. @raise Invalid_argument on a non-positive count. *)

val to_list : t -> Tuple.t list
(** Expanded (multiplicity-respecting) tuple list in tuple order. *)

val to_counted_list : t -> (Tuple.t * int) list
(** Distinct tuples with multiplicities, in tuple order. *)

val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Tuple.t -> int -> unit) -> t -> unit

val union : t -> t -> t
(** Additive bag union: multiplicities add. *)

val diff : t -> t -> t
(** Monus: multiplicities subtract, floored at zero. *)

val map : (Tuple.t -> Tuple.t) -> t -> t
(** Bag map; multiplicities of colliding images add. *)

val filter : (Tuple.t -> bool) -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
