(** Atomic values stored in warehouse and source relations.

    The data model is deliberately small: the MVC algorithms of the paper are
    independent of the data model (Section 3.1), so a compact typed value
    domain is enough to express every example and workload while keeping
    comparisons total and deterministic. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

(** Value types, used by {!Schema} to type attributes. [Null] inhabits every
    type. *)
type ty = Bool_ty | Int_ty | Float_ty | String_ty

val compare : t -> t -> int
(** Total order over values; values of different constructors are ordered by
    constructor rank so that heterogeneous comparisons never raise. *)

val equal : t -> t -> bool

val hash : t -> int

val type_of : t -> ty option
(** [type_of v] is [None] for [Null], otherwise the value's type. *)

val conforms : t -> ty -> bool
(** [conforms v ty] holds when [v] may appear in an attribute of type [ty];
    [Null] conforms to every type. *)

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit

val to_string : t -> string

val ty_to_string : ty -> string

(** {1 Interning}

    The columnar storage kernel stores relations as flat arrays of int
    ids. [Int i] values are tag-encoded directly into the id (no table,
    order-preserving); every other value goes through a process-global
    dictionary keyed by {!equal}, so interning is injective up to value
    equality and id equality decides value equality. Both directions are
    safe to call from any domain. *)

val intern : t -> int
(** The id of [v]; equal values (per {!equal}) always intern to the same
    id within a process. *)

val of_id : int -> t
(** Inverse of {!intern}. Behaviour on an int that {!intern} never
    returned is unspecified. *)

val null_id : int
(** [intern Null], a fixed process-wide constant — compiled predicates
    test it directly for the Null comparison semantics. *)

val equal_ids : int -> int -> bool
(** [equal_ids (intern a) (intern b)] iff [equal a b]. *)

val compare_ids : int -> int -> int
(** Total order on ids consistent with {!compare} on the decoded values.
    Two int-tagged ids compare without decoding. *)

val interned_count : unit -> int
(** Number of dictionary entries (tag-encoded ints not included). *)
