(** Relation schemas: an ordered list of named, typed attributes.

    Attribute names are significant for natural joins and projections, which
    is how the paper's example views ([V1 = R |><| S] joining on the shared
    attribute [B]) are expressed. *)

type attribute = { name : string; ty : Value.ty }

type t
(** A schema. Attribute names within a schema are unique. *)

exception Duplicate_attribute of string

exception Unknown_attribute of string

val make : (string * Value.ty) list -> t
(** [make attrs] builds a schema.
    @raise Duplicate_attribute if a name is repeated. *)

val attributes : t -> attribute list

val names : t -> string list

val arity : t -> int

val mem : t -> string -> bool

val index_of : t -> string -> int
(** Position of an attribute.
    @raise Unknown_attribute if absent. *)

val type_of : t -> string -> Value.ty
(** @raise Unknown_attribute if absent. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val project : t -> string list -> t
(** [project s names] is the sub-schema with exactly [names], in the order
    given. @raise Unknown_attribute on any missing name. *)

val positions : t -> string list -> int array
(** Positions of the named attributes, in the order given — the one-time
    name resolution step of the compiled query kernel.
    @raise Unknown_attribute on any missing name. *)

val common : t -> t -> string list
(** Attribute names shared by both schemas, in the order they appear in the
    first schema. Used to compute natural-join conditions. *)

val join : t -> t -> t
(** Natural-join schema: all attributes of the first schema followed by the
    attributes of the second that are not shared.
    @raise Invalid_argument if a shared attribute has conflicting types. *)

val rename : t -> (string * string) list -> t
(** [rename s mapping] renames attributes listed in [mapping]; other
    attributes are untouched.
    @raise Unknown_attribute if a source name is absent.
    @raise Duplicate_attribute if renaming introduces a clash. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
