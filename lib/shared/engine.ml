(* Shared-plan delta engine.

   One view manager per view (the paper's Figure 1) recomputes identical
   join subexpressions once per view per update. This engine
   canonicalizes every registered view definition (Optimize rewrites,
   then Canon's normal form + hash-consing), collects the subexpressions
   that contain a join and appear in >= 2 views, and turns each into a
   DAG node with a materialized intermediate: a persistent [Bag.t] per
   advanced state, plus long-lived [Bag_index]es that ride through
   updates via [Bag_index.apply_signed]. Node plans and view root plans
   are rewritten to reference deeper shared nodes as synthetic base
   relations ("#shared:i" — real relation names never start with '#'),
   so one delta computation per (node, transaction) serves every view,
   and the dA |><| B_pre join rules against a materialized intermediate
   become pure probes of its index ([Compiled.delta]'s [pre_index]).

   Consistency discipline. Views demand their transactions in global
   transaction-id order (the integrator feeds each view manager a FIFO
   of its relevant transactions), but different views reach a shared
   node at different real times. Two mechanisms make that safe:

   - Versioned intermediates: [n_versions] keeps the node's bag at each
     advanced transaction id (persistent bags share structure, so a
     snapshot is O(1)). A demand at transaction [u] always evaluates
     pre-state against the newest version with id < u, wherever other
     views have gotten to.

   - Deferred advance: the delta computed at [u] is NOT applied to the
     head immediately — other views' pre-state reads at [u] must still
     see the pre-[u] head — but parked in [n_pending] and folded in
     lazily, before the next strictly later demand ([ensure_advanced]).
     Because every node-relevant transaction is demanded by every
     referrer view in id order, at most one pending delta is ever
     outstanding, which [demand] asserts.

   Determinism: a node's delta at [u] is a pure function of the node
   expression, the pre-state and the transaction, none of which depend
   on domain count or real-time interleaving; hit/miss totals are
   per-(node, txn) — one miss, referrers-1 hits — regardless of which
   view arrives first. Runs at MVC_DOMAINS 1/2/4 therefore produce
   byte-identical traces, the same discipline the PR 4 runtime keeps. *)

open Relational
module Algebra = Query.Algebra

let synth_prefix = "#shared:"

let is_synth name = String.length name > 0 && name.[0] = '#'

type node = {
  n_name : string;
  n_expr : Algebra.t;  (* full canonical expression, real bases only *)
  n_plan : Query.Compiled.t;  (* rewritten: deeper shared nodes as Base *)
  n_schema : Schema.t;
  n_bases : string list;  (* real base relations of the full expression *)
  n_deps : node list;  (* direct synthetic dependencies *)
  n_level : int;
  n_referrers : string list;  (* views whose canonical def contains it *)
  mutable n_versions : (int * Bag.t) list;  (* newest first; 0 = initial *)
  mutable n_pending : (int * Signed_bag.t) option;
  n_memo : (int, Signed_bag.t) Hashtbl.t;  (* txn id -> delta *)
  n_indexes : (int array * int, Bag_index.t) Hashtbl.t;
      (* (key positions, version id) -> index over that version *)
}

type view_info = {
  v_name : string;
  v_expr : Algebra.t;  (* canonical definition *)
  v_plan : Query.Compiled.t;  (* rewritten root plan *)
  v_bases : string list;
  v_deps : node list;
}

type t = {
  nodes_by_name : (string, node) Hashtbl.t;
  all_nodes : node list;  (* ascending (size, structural) order *)
  levels : node list list;  (* ascending level *)
  views : view_info list;  (* registration order *)
  completed : (string, int) Hashtbl.t;  (* view -> last completed txn *)
  lock : Mutex.t;  (* serializes txn_delta entries (pipelined mode) *)
  index_lock : Mutex.t;  (* guards every n_indexes table *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  rows : int Atomic.t;  (* intermediate maintenance cost, in delta rows *)
}

(* ---- construction ---- *)

let rec has_join = function
  | Algebra.Join _ -> true
  | Algebra.Base _ -> false
  | Algebra.Select (_, e) | Algebra.Project (_, e) | Algebra.Rename (_, e) ->
    has_join e
  | Algebra.Union (a, b) -> has_join a || has_join b
  | Algebra.Group_by g -> has_join g.Algebra.input

let children = function
  | Algebra.Base _ -> []
  | Algebra.Select (_, e)
  | Algebra.Project (_, e)
  | Algebra.Rename (_, e) ->
    [ e ]
  | Algebra.Join (a, b) | Algebra.Union (a, b) -> [ a; b ]
  | Algebra.Group_by g -> [ g.Algebra.input ]

let create ~schemas ~initial views =
  let canon_views =
    List.map
      (fun v ->
        ( Query.View.name v,
          Query.Canon.canonical ~schemas
            (Query.Optimize.optimize ~schemas v.Query.View.def) ))
      views
  in
  (* Tally every join-bearing subexpression by the set of views whose
     canonical definition contains it. *)
  let tally : (Algebra.t, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let rec visit vname e =
    if has_join e then begin
      let r =
        match Hashtbl.find_opt tally e with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add tally e r;
          r
      in
      if not (List.mem vname !r) then r := vname :: !r
    end;
    List.iter (visit vname) (children e)
  in
  List.iter (fun (name, def) -> visit name def) canon_views;
  let shared =
    Hashtbl.fold
      (fun e refs acc ->
        if List.length !refs >= 2 then (e, List.rev !refs) :: acc else acc)
      tally []
    (* Hashtbl.fold order is unspecified; the structural sort makes node
       naming, levels and every downstream trace deterministic. Smaller
       expressions first, so a node's strict subexpressions precede it. *)
    |> List.sort (fun (a, _) (b, _) ->
           Stdlib.compare (Algebra.size a, a) (Algebra.size b, b))
  in
  let shared_name : (Algebra.t, string) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun i (e, _) ->
      Hashtbl.add shared_name e (Printf.sprintf "%s%d" synth_prefix i))
    shared;
  (* Rewrite an expression against the shared set: every maximal shared
     strict subexpression becomes a synthetic base relation. [top]
     suppresses the self-match when rewriting a shared node's own
     expression. *)
  let rec rewrite ~top e =
    match if top then None else Hashtbl.find_opt shared_name e with
    | Some name -> Algebra.Base name
    | None -> (
      match e with
      | Algebra.Base _ -> e
      | Algebra.Select (p, x) -> Algebra.Select (p, rewrite ~top:false x)
      | Algebra.Project (ns, x) -> Algebra.Project (ns, rewrite ~top:false x)
      | Algebra.Join (a, b) ->
        Algebra.Join (rewrite ~top:false a, rewrite ~top:false b)
      | Algebra.Union (a, b) ->
        Algebra.Union (rewrite ~top:false a, rewrite ~top:false b)
      | Algebra.Rename (m, x) -> Algebra.Rename (m, rewrite ~top:false x)
      | Algebra.Group_by { keys; aggregates; input } ->
        Algebra.Group_by { keys; aggregates; input = rewrite ~top:false input })
  in
  let nodes_by_name = Hashtbl.create 16 in
  let lookup name =
    if is_synth name then (Hashtbl.find nodes_by_name name).n_schema
    else schemas name
  in
  let all_nodes =
    List.map
      (fun (expr, referrers) ->
        let n_name = Hashtbl.find shared_name expr in
        let rewritten = rewrite ~top:true expr in
        let n_deps =
          List.filter_map
            (fun b ->
              if is_synth b then Some (Hashtbl.find nodes_by_name b) else None)
            (Algebra.base_relations rewritten)
        in
        let n_level =
          List.fold_left (fun acc d -> max acc (d.n_level + 1)) 0 n_deps
        in
        let n_plan = Query.Compiled.compile ~lookup rewritten in
        let n_schema = Query.Compiled.schema n_plan in
        (* Materialize the initial state through the dependencies'
           initial states — each shared join is evaluated once even
           during construction. *)
        let aug =
          List.fold_left
            (fun db d ->
              Database.add d.n_name
                (Relation.with_contents
                   (Relation.create d.n_schema)
                   (snd (List.hd d.n_versions)))
                db)
            initial n_deps
        in
        let bag0 = Query.Compiled.eval_bag aug n_plan in
        let node =
          { n_name;
            n_expr = expr;
            n_plan;
            n_schema;
            n_bases = Algebra.base_relations expr;
            n_deps;
            n_level;
            n_referrers = referrers;
            n_versions = [ (0, bag0) ];
            n_pending = None;
            n_memo = Hashtbl.create 16;
            n_indexes = Hashtbl.create 8 }
        in
        Hashtbl.add nodes_by_name n_name node;
        node)
      shared
  in
  let max_level =
    List.fold_left (fun acc n -> max acc n.n_level) (-1) all_nodes
  in
  let levels =
    List.init (max_level + 1) (fun l ->
        List.filter (fun n -> n.n_level = l) all_nodes)
  in
  let views =
    List.map
      (fun (v_name, v_expr) ->
        let rewritten = rewrite ~top:false v_expr in
        let v_deps =
          List.filter_map
            (fun b ->
              if is_synth b then Some (Hashtbl.find nodes_by_name b) else None)
            (Algebra.base_relations rewritten)
        in
        { v_name;
          v_expr;
          v_plan = Query.Compiled.compile ~lookup rewritten;
          v_bases = Algebra.base_relations v_expr;
          v_deps })
      canon_views
  in
  { nodes_by_name;
    all_nodes;
    levels;
    views;
    completed = Hashtbl.create 8;
    lock = Mutex.create ();
    index_lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    rows = Atomic.make 0 }

(* ---- node state ---- *)

(* Newest version strictly before transaction [u] — the node's pre-state
   for a demand at [u]. *)
let state_before node u =
  let rec go = function
    | [] -> invalid_arg "Shared.Engine: no state before transaction"
    | (id, bag) :: rest -> if id < u then (id, bag) else go rest
  in
  go node.n_versions

(* Fold a pending delta older than [u] into the head version and migrate
   the head's live indexes in place. Must run before any pre-state read
   at [u] — including for transactions the node is irrelevant to —
   otherwise a later parent evaluation would see a stale head. *)
let ensure_advanced t node ~before:u =
  match node.n_pending with
  | Some (w, d) when w < u ->
    if Signed_bag.is_zero d then
      (* Zero-delta fast path: the head bag is already the post-[w]
         state and every index over it stays valid, so skip the version
         push and the index migration entirely. *)
      node.n_pending <- None
    else begin
    let hid, hbag = List.hd node.n_versions in
    assert (w > hid);
    node.n_versions <- (w, Signed_bag.apply d hbag) :: node.n_versions;
    node.n_pending <- None;
    Mutex.lock t.index_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.index_lock)
      (fun () ->
        let stale =
          Hashtbl.fold
            (fun (kp, vid) idx acc ->
              if vid = hid then (kp, idx) :: acc else acc)
            node.n_indexes []
        in
        List.iter
          (fun (kp, idx) ->
            Bag_index.apply_signed idx d;
            Hashtbl.remove node.n_indexes (kp, hid);
            Hashtbl.add node.n_indexes (kp, w) idx)
          stale)
    end
  | _ -> ()

(* A live index over the node's pre-[u] state, building (and caching) it
   on first use. Indexes at the current head ride through advances via
   [apply_signed]; an index requested for an older version (a lagging
   view) is built fresh and dropped at the next prune. *)
let node_index t node ~before:u ~key_pos =
  let vid, bag = state_before node u in
  Mutex.lock t.index_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.index_lock)
    (fun () ->
      match Hashtbl.find_opt node.n_indexes (key_pos, vid) with
      | Some idx -> idx
      | None ->
        let idx = Bag_index.of_bag ~key_pos bag in
        Hashtbl.add node.n_indexes (key_pos, vid) idx;
        idx)

let relevant_to bases rels = List.exists (fun r -> List.mem r bases) rels

(* ---- the demand-driven delta pass ---- *)

let rec demand t node ~exec ~pre ~changes txn =
  let u = txn.Update.Transaction.id in
  if not (relevant_to node.n_bases (Update.Transaction.relations txn)) then
    Signed_bag.zero
  else
    match Hashtbl.find_opt node.n_memo u with
    | Some d ->
      Atomic.incr t.hits;
      d
    | None ->
      Atomic.incr t.misses;
      let d = plan_delta t ~exec ~pre ~changes ~txn ~deps:node.n_deps node.n_plan in
      Hashtbl.replace node.n_memo u d;
      assert (node.n_pending = None);
      node.n_pending <- Some (u, d);
      ignore (Atomic.fetch_and_add t.rows (Signed_bag.size d));
      d

(* Delta of one rewritten plan at [txn], demanding synthetic bases
   recursively and resolving their pre-states from the versioned
   intermediates. The dependency pre-states are pinned (ensured + read)
   before [Compiled.delta] runs, so recursive demands during the
   traversal — which park new pending deltas at [txn] — cannot move
   what [eval_pre] sees. *)
and plan_delta t ~exec ~pre ~changes ~txn ~deps plan =
  let u = txn.Update.Transaction.id in
  List.iter (fun d -> ensure_advanced t d ~before:u) deps;
  let aug =
    List.fold_left
      (fun db d ->
        Database.add d.n_name
          (Relation.with_contents
             (Relation.create d.n_schema)
             (snd (state_before d u)))
          db)
      pre deps
  in
  Query.Compiled.delta ~exec
    ~changes:(fun name ->
      match Hashtbl.find_opt t.nodes_by_name name with
      | Some child -> demand t child ~exec ~pre ~changes txn
      | None -> Query.Delta.change_for changes name)
    ~eval_pre:(Query.Compiled.eval_bag ~exec aug)
    ~pre_index:(fun name ~key_pos ->
      match Hashtbl.find_opt t.nodes_by_name name with
      | Some child -> Some (node_index t child ~before:u ~key_pos)
      | None -> None)
      (* Real base relations (not engine intermediates) expose their own
         memoized indexes, so the join rules probe them instead of
         re-evaluating the pre-state — the same fast path the unshared
         runtime gets. Synthetic dependency bindings in [aug] are fresh
         records per call and are excluded: the engine's [pre_index]
         already covers them with long-lived indexes. *)
    ~pre_relation:(fun name ->
      if Hashtbl.mem t.nodes_by_name name then None
      else Database.find_opt pre name)
    plan

(* ---- retention ---- *)

(* Drop node state no view can demand again: every referrer has
   completed transaction [c], so memo entries at ids <= min c and
   versions older than the newest one at or below min c are dead. *)
let prune t =
  List.iter
    (fun node ->
      let min_c =
        List.fold_left
          (fun acc v ->
            min acc (Option.value (Hashtbl.find_opt t.completed v) ~default:0))
          max_int node.n_referrers
      in
      let min_c = if node.n_referrers = [] then 0 else min_c in
      let rec keep = function
        | [] -> []
        | (id, bag) :: rest ->
          if id <= min_c then [ (id, bag) ] else (id, bag) :: keep rest
      in
      node.n_versions <- keep node.n_versions;
      let kept = List.map fst node.n_versions in
      let dead_memo =
        Hashtbl.fold
          (fun id _ acc -> if id <= min_c then id :: acc else acc)
          node.n_memo []
      in
      List.iter (Hashtbl.remove node.n_memo) dead_memo;
      Mutex.lock t.index_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.index_lock)
        (fun () ->
          let dead_idx =
            Hashtbl.fold
              (fun ((_, vid) as key) _ acc ->
                if List.mem vid kept then acc else key :: acc)
              node.n_indexes []
          in
          List.iter (Hashtbl.remove node.n_indexes) dead_idx))
    t.all_nodes

(* ---- entry points ---- *)

let txn_pass t ?(exec = Parallel.Exec.sequential) ~pre txn =
  let u = txn.Update.Transaction.id in
  let rels = Update.Transaction.relations txn in
  let changes = Query.Delta.of_transaction txn in
  (* Apply last transaction's pendings on the simulation thread, before
     any parallelism: two parents of one child may then run on different
     domains without racing on its version list. *)
  List.iter (fun n -> ensure_advanced t n ~before:u) t.all_nodes;
  List.iter
    (fun level ->
      match List.filter (fun n -> relevant_to n.n_bases rels) level with
      | [] -> ()
      | live ->
        (* Same-level nodes share no state (their dependencies sit in
           lower, already-completed levels), so the level fans out on
           the domain pool. *)
        ignore
          (Parallel.Exec.map exec
             (fun n -> demand t n ~exec ~pre ~changes txn)
             live))
    t.levels;
  let live_views =
    List.filter (fun vi -> relevant_to vi.v_bases rels) t.views
  in
  let out =
    Parallel.Exec.map exec
      (fun vi ->
        ( vi.v_name,
          plan_delta t ~exec ~pre ~changes ~txn ~deps:vi.v_deps vi.v_plan ))
      live_views
  in
  List.iter (fun vi -> Hashtbl.replace t.completed vi.v_name u) t.views;
  prune t;
  out

(* No [exec] here, deliberately. The pipelined runtime calls this from
   futures running on pool domains; the engine lock serializes them. A
   lock holder that fanned work out on the pool would, in the help-first
   discipline, execute queued tasks while waiting — possibly another
   view's delta future, which would try to take the same (non-reentrant)
   lock on the same domain. Keeping everything under the lock strictly
   sequential removes that cycle: a holder never waits on the pool, so
   blocked domains always make progress once it returns. *)
let txn_delta t ~view ~pre txn =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let vi =
        try List.find (fun vi -> vi.v_name = view) t.views
        with Not_found ->
          invalid_arg ("Shared.Engine.txn_delta: unregistered view " ^ view)
      in
      let exec = Parallel.Exec.sequential in
      let changes = Query.Delta.of_transaction txn in
      let d =
        plan_delta t ~exec ~pre ~changes ~txn ~deps:vi.v_deps vi.v_plan
      in
      let u = txn.Update.Transaction.id in
      let prev = Option.value (Hashtbl.find_opt t.completed view) ~default:0 in
      Hashtbl.replace t.completed view (max prev u);
      prune t;
      d)

(* ---- introspection ---- *)

type stats = {
  nodes : int;
  levels : int;
  hits : int;
  misses : int;
  rows_maintained : int;
}

let stats t =
  { nodes = List.length t.all_nodes;
    levels = List.length t.levels;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    rows_maintained = Atomic.get t.rows }

let node_count t = List.length t.all_nodes

let describe t =
  List.map (fun n -> (n.n_name, Algebra.to_string n.n_expr)) t.all_nodes
