(** Shared-plan delta engine: cross-view subplan sharing with
    materialized, incrementally-maintained intermediates.

    View definitions are canonicalized ({!Query.Optimize} rewrites, then
    {!Query.Canon}'s normal form + hash-consing); join-bearing
    subexpressions appearing in two or more views become nodes of a
    sub-plan DAG, each with a materialized intermediate — a persistent
    [Bag.t] per advanced transaction plus long-lived [Bag_index]es
    migrated in place by the node's own deltas. Per transaction, each
    node's delta is computed once and served to every referring view
    (one miss, then memo hits); the join rules against an intermediate
    probe its existing index instead of evaluating pre-state.

    Semantics-preserving: per-view deltas equal what
    {!Query.Delta.eval} computes against the original definitions
    (property-tested against the naive evaluator). Deterministic: node
    deltas are pure functions of node expression, pre-state and
    transaction, so traces are byte-identical across MVC_DOMAINS.

    Both entry points assume views demand transactions in increasing
    transaction-id order, each view seeing every transaction that
    touches its base relations (the integrator's FIFO discipline). *)

open Relational

type t

val create :
  schemas:(string -> Schema.t) -> initial:Database.t -> Query.View.t list -> t
(** Build the DAG over the given views and materialize every shared
    intermediate's initial state from [initial]. [schemas] must resolve
    every base relation mentioned; [initial] must contain them. *)

val txn_pass :
  t ->
  ?exec:Parallel.Exec.t ->
  pre:Database.t ->
  Update.Transaction.t ->
  (string * Signed_bag.t) list
(** One topological pass for one transaction (the sequential runtime's
    shape): shared nodes are computed level by level — independent
    nodes of a level fan out on [exec] — then every relevant view's
    delta is read off its root plan. Returns (view name, delta) for
    exactly the views whose base relations the transaction touches, in
    registration order. [pre] is the warehouse state before the
    transaction. Must be called with strictly increasing transaction
    ids; not reentrant (one caller, the simulation loop). *)

val txn_delta :
  t -> view:string -> pre:Database.t -> Update.Transaction.t -> Signed_bag.t
(** Demand-driven entry for the pipelined runtime: the delta of one
    view for one transaction, computing shared nodes on first demand
    and serving memoized deltas to later-arriving views. Thread-safe
    (internally serialized); each view must demand its relevant
    transactions in increasing id order. [pre] is that view's
    pre-transaction base state (it must agree with every other view's
    on the shared nodes' base relations, which the integrator's
    routing guarantees). Work under the internal lock is deliberately
    sequential — a lock holder must never wait on the help-first pool
    (see the implementation note) — so callers get parallelism across
    views, not within a node delta. *)

type stats = {
  nodes : int;  (** shared DAG nodes *)
  levels : int;  (** DAG depth in dispatch levels *)
  hits : int;  (** demands served from the per-transaction memo *)
  misses : int;  (** demands that computed a fresh node delta *)
  rows_maintained : int;
      (** total |delta| rows folded into materialized intermediates *)
}

val stats : t -> stats

val node_count : t -> int

val describe : t -> (string * string) list
(** (node name, canonical expression) per shared node, in node order. *)
