(** Composable, seeded fault schedules for simulated channels.

    A plan is a union of rules, each scoped to a channel-name pattern
    (exact name, ["*"] for every channel, or a single leading/trailing
    ["*"] glob such as ["*->merge"]). Deterministic [Nth] rules target the
    n-th message ever sent on a channel; [Random] rules sample per message
    from the run's seeded {!Sim.Rng}, so a whole faulty run is still a
    pure function of its seed. *)

type action = Drop | Duplicate | Delay of float

type rule =
  | Nth of { channel : string; nth : int; action : action }
  | Random of {
      channel : string;
      drop : float;  (** per-message drop probability *)
      duplicate : float;  (** per-message duplicate probability *)
      delay : float;  (** per-message delay-spike probability *)
      delay_by : float;  (** delay-spike magnitude bound (seconds) *)
    }

type t = rule list

val empty : t

val is_empty : t -> bool

val nth : channel:string -> nth:int -> action -> t
(** Plan with a single deterministic rule. *)

val random :
  ?drop:float ->
  ?duplicate:float ->
  ?delay:float ->
  ?delay_by:float ->
  string ->
  t
(** [random channel] builds a single seeded random rule; probabilities
    default to 0. *)

val union : t list -> t
(** Compose plans. [Nth] rules take precedence over [Random] rules when
    both match the same message. *)

val matches : pattern:string -> channel:string -> bool

val hook :
  t -> rng:Sim.Rng.t -> channel:string -> (int -> Sim.Channel.decision) option
(** The fault hook for one channel, or [None] when no rule's pattern
    matches it (the channel then skips hook dispatch entirely). *)

val attach : t -> rng:Sim.Rng.t -> 'a Sim.Channel.t -> unit
(** Install the plan's hook on a channel, keyed by the channel's name. *)

val pp : t Fmt.t
