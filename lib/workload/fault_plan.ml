type action = Drop | Duplicate | Delay of float

type rule =
  | Nth of { channel : string; nth : int; action : action }
  | Random of {
      channel : string;
      drop : float;
      duplicate : float;
      delay : float;
      delay_by : float;
    }

type t = rule list

let empty = []

let is_empty t = t = []

let nth ~channel ~nth:n action = [ Nth { channel; nth = n; action } ]

let random ?(drop = 0.0) ?(duplicate = 0.0) ?(delay = 0.0) ?(delay_by = 0.1)
    channel =
  [ Random { channel; drop; duplicate; delay; delay_by } ]

let union plans = List.concat plans

(* Channel patterns: exact name, "*" for all, or a single leading/trailing
   "*" glob ("*->merge", "integ->*"). *)
let matches ~pattern ~channel =
  let plen = String.length pattern and clen = String.length channel in
  if pattern = "*" then true
  else if plen > 0 && pattern.[0] = '*' then
    let suffix = String.sub pattern 1 (plen - 1) in
    let slen = String.length suffix in
    clen >= slen && String.sub channel (clen - slen) slen = suffix
  else if plen > 0 && pattern.[plen - 1] = '*' then
    let prefix = String.sub pattern 0 (plen - 1) in
    let prlen = String.length prefix in
    clen >= prlen && String.sub channel 0 prlen = prefix
  else pattern = channel

let rule_channel = function
  | Nth { channel; _ } -> channel
  | Random { channel; _ } -> channel

let to_decision = function
  | Drop -> Sim.Channel.Drop
  | Duplicate -> Sim.Channel.Duplicate
  | Delay d -> Sim.Channel.Delay d

let hook plan ~rng ~channel =
  let rules =
    List.filter (fun r -> matches ~pattern:(rule_channel r) ~channel) plan
  in
  if rules = [] then None
  else
    let nths, randoms =
      List.partition (function Nth _ -> true | Random _ -> false) rules
    in
    Some
      (fun i ->
        let deterministic =
          List.find_map
            (function
              | Nth { nth = n; action; _ } when n = i -> Some action
              | _ -> None)
            nths
        in
        match deterministic with
        | Some a -> to_decision a
        | None ->
          let rec sample = function
            | [] -> Sim.Channel.Deliver
            | Random { drop; duplicate; delay; delay_by; _ } :: rest ->
              let u = Sim.Rng.float rng 1.0 in
              if u < drop then Sim.Channel.Drop
              else if u < drop +. duplicate then Sim.Channel.Duplicate
              else if u < drop +. duplicate +. delay then
                Sim.Channel.Delay (Sim.Rng.float rng delay_by)
              else sample rest
            | Nth _ :: rest -> sample rest
          in
          sample randoms)

let attach plan ~rng chan =
  Sim.Channel.set_fault chan (hook plan ~rng ~channel:(Sim.Channel.name chan))

let pp_action ppf = function
  | Drop -> Fmt.string ppf "drop"
  | Duplicate -> Fmt.string ppf "duplicate"
  | Delay d -> Fmt.pf ppf "delay(%.3f)" d

let pp_rule ppf = function
  | Nth { channel; nth; action } ->
    Fmt.pf ppf "nth(%s, %d, %a)" channel nth pp_action action
  | Random { channel; drop; duplicate; delay; delay_by } ->
    Fmt.pf ppf "random(%s, drop=%.2f, dup=%.2f, delay=%.2f@%.3f)" channel
      drop duplicate delay delay_by

let pp ppf t = Fmt.(list ~sep:(any "; ") pp_rule) ppf t
