open Relational

type config = {
  seed : int;
  tenants : int;
  initial_tuples : int;
  n_transactions : int;
  skew : float;
  value_range : int;
}

let default =
  { seed = 42; tenants = 4; initial_tuples = 6; n_transactions = 24;
    skew = 1.0; value_range = 5 }

type t = {
  scenario : Scenarios.t;
  tenant_of_view : (string * int) list;
  unions : (string * string list) list;
}

let tenant_of t view = List.assoc view t.tenant_of_view

(* Inverse-CDF sampling over the truncated Zipf weights 1/(i+1)^skew.
   skew = 0 degenerates to uniform. *)
let zipf rng ~skew n =
  if n < 1 then invalid_arg "Tenants.zipf: n < 1";
  if skew < 0.0 then invalid_arg "Tenants.zipf: negative skew";
  let weights =
    Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** skew))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let x = Sim.Rng.float rng total in
  let rec walk i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else walk (i + 1) acc
  in
  walk 0 0.0

let orders_rel t = Printf.sprintf "orders_t%d" t
let items_rel t = Printf.sprintf "items_t%d" t
let sales_view t = Printf.sprintf "sales_t%d" t
let hot_view t = Printf.sprintf "hot_t%d" t

(* All tenants share attribute names, so same-kind legs have identical
   schemas — the union-compatibility the cross-tenant unions rely on. *)
let orders_schema = lazy (Schema.make [ ("a", Value.Int_ty); ("b", Value.Int_ty) ])
let items_schema = lazy (Schema.make [ ("b", Value.Int_ty); ("c", Value.Int_ty) ])

let random_tuple rng cfg =
  Tuple.ints [ Sim.Rng.int rng cfg.value_range; Sim.Rng.int rng cfg.value_range ]

let gen_specs rng cfg =
  List.concat_map
    (fun t ->
      let tuples schema =
        Relation.of_tuples (Lazy.force schema)
          (List.init cfg.initial_tuples (fun _ -> random_tuple rng cfg))
      in
      [ { Source.Sources.source = Printf.sprintf "s%d" t;
          relation = orders_rel t; init = tuples orders_schema };
        { Source.Sources.source = Printf.sprintf "s%d" t;
          relation = items_rel t; init = tuples items_schema } ])
    (List.init cfg.tenants Fun.id)

let gen_views cfg =
  List.concat_map
    (fun t ->
      let sales =
        Query.View.make (sales_view t)
          (Query.Algebra.join
             (Query.Algebra.base (orders_rel t))
             (Query.Algebra.base (items_rel t)))
      in
      let hot =
        Query.View.make (hot_view t)
          (Query.Algebra.select
             (Query.Pred.le "a" (Value.Int ((cfg.value_range - 1) / 2)))
             (Query.Algebra.base (orders_rel t)))
      in
      [ sales; hot ])
    (List.init cfg.tenants Fun.id)

(* Single-tenant, single-update transactions against a tracked live
   state, so deletes and modifies always target existing tuples. *)
let gen_script rng cfg specs =
  let state = Hashtbl.create 8 in
  List.iter
    (fun (s : Source.Sources.spec) ->
      Hashtbl.replace state s.relation (Relation.contents s.init))
    specs;
  let gen_update () =
    let t = zipf rng ~skew:cfg.skew cfg.tenants in
    let rel = if Sim.Rng.bool rng then orders_rel t else items_rel t in
    let existing = Bag.to_list (Hashtbl.find state rel) in
    let u =
      match (Sim.Rng.int rng 4, existing) with
      | (0 | 1), _ | _, [] -> Update.insert rel (random_tuple rng cfg)
      | 2, _ -> Update.delete rel (Sim.Rng.pick rng existing)
      | _, _ ->
        Update.modify rel
          ~before:(Sim.Rng.pick rng existing)
          ~after:(random_tuple rng cfg)
    in
    Hashtbl.replace state rel
      (Signed_bag.apply (Update.to_delta u) (Hashtbl.find state rel));
    u
  in
  List.init cfg.n_transactions (fun _ -> [ gen_update () ])

let generate cfg =
  if cfg.tenants < 1 then invalid_arg "Tenants: tenants < 1";
  if cfg.value_range < 1 then invalid_arg "Tenants: value_range < 1";
  if cfg.skew < 0.0 then invalid_arg "Tenants: negative skew";
  let rng = Sim.Rng.create cfg.seed in
  let specs = gen_specs rng cfg in
  let views = gen_views cfg in
  let script = gen_script rng cfg specs in
  let tenant_of_view =
    List.concat_map
      (fun t -> [ (sales_view t, t); (hot_view t, t) ])
      (List.init cfg.tenants Fun.id)
  in
  let legs f = List.init cfg.tenants f in
  { scenario =
      { Scenarios.name = Printf.sprintf "tenants-%d-%d" cfg.tenants cfg.seed;
        specs; views; script };
    tenant_of_view;
    unions =
      [ ("sales_all", legs sales_view); ("hot_all", legs hot_view) ] }
