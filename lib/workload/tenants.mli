(** Seeded multi-tenant workload generation for the distributed
    (sharded) warehouse.

    Each tenant [t] owns two base relations — [orders_t] (attributes
    [(a, b)]) and [items_t] (attributes [(b, c)]) — and two per-tenant
    materialized views: a join leg [sales_t = orders_t ⋈ items_t] and a
    selection leg [hot_t = σ(orders_t)]. All tenants share the same
    attribute names, so same-kind legs are union-compatible across
    tenants: the generator also describes two cross-tenant {e union
    views} ([sales_all], [hot_all]) stitched from every tenant's legs.
    Transactions are single-tenant (the property the shard router
    exploits); which tenant a transaction hits is drawn from a Zipf
    distribution with exponent [skew] (0 = uniform), so a skewed
    deployment hammers tenant 0 hardest. Everything is a pure function
    of [config.seed]. *)

type config = {
  seed : int;
  tenants : int;
  initial_tuples : int;  (** Per relation. *)
  n_transactions : int;
  skew : float;
      (** Zipf exponent for the tenant-popularity distribution;
          [0.0] is uniform, [1.0] classic Zipf. *)
  value_range : int;  (** Attribute values drawn from [0, value_range). *)
}

val default : config

type t = {
  scenario : Scenarios.t;
      (** Sources, per-tenant leg views, and the transaction script.
          Only the legs appear in [scenario.views]; the unions below are
          stitched at read time and never materialized globally. *)
  tenant_of_view : (string * int) list;
      (** Owning tenant of each leg view in [scenario.views]. *)
  unions : (string * string list) list;
      (** Cross-tenant union views as (name, leg view names). *)
}

val generate : config -> t
(** @raise Invalid_argument on nonsensical configs (no tenants, empty
    value range, negative skew...). *)

val tenant_of : t -> string -> int
(** Owning tenant of a leg view name.
    @raise Not_found for names outside the workload. *)

val zipf : Sim.Rng.t -> skew:float -> int -> int
(** [zipf rng ~skew n] samples a rank in [0, n): rank [i] with
    probability proportional to [1 / (i+1)^skew]. Exposed for tests. *)
