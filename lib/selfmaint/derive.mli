(** Static derivation of the auxiliary data that makes a view
    self-maintainable at the warehouse.

    The Strobe-style managers compensate for concurrent updates by
    querying the sources — a full round trip per update. The classic
    alternative (Quass/Gupta/Mumick/Widom, "Making views
    self-maintainable for data warehousing") stores {e auxiliary
    relations} next to the view: enough base data, replicated or
    projected at the warehouse, that every maintenance delta is
    answerable locally. This module computes that auxiliary set for an
    {!Query.Algebra} view definition.

    The analysis is a top-down {e demanded-attribute} pass. Starting
    from the full view output, each node records what it needs from its
    inputs:

    - [Project names] materializes exactly [names], so everything below
      must supply all of them;
    - [Select p] additionally demands [p]'s attributes;
    - [Join a b] splits the demand by side and adds the natural-join
      shared attributes to {e both} sides (dropping a join attribute
      would change the join);
    - [Rename] maps the demand back through the renaming;
    - [Group_by] demands its keys and aggregate inputs;
    - [Union] conservatively demands everything from both branches (the
      two branches may otherwise achieve different projections and the
      union would no longer be well-typed);
    - [Base r] accumulates the demand into [r]'s {e live} attribute
      set, unioned across all occurrences of [r].

    Under bag semantics, replacing each base relation [R] with the
    keyed projection [pi_live(R)] is exact: projection merges
    multiplicities linearly, and every attribute any operator touches
    is live, so evaluation — and therefore every Griffin–Libkin delta —
    over the projected replicas equals evaluation over the full base
    data, tuple for tuple and multiplicity for multiplicity. *)

open Relational

type aux = {
  relation : string;  (** base relation the auxiliary covers *)
  live : string list;
      (** live attributes, in base-schema order; the auxiliary stores
          [pi_live(relation)] *)
  full : bool;
      (** [live] is the whole base schema: the auxiliary degenerates to
          a replica and the projection is the identity *)
}

val analyze : schemas:(string -> Schema.t) -> Query.Algebra.t -> aux list
(** One auxiliary per base relation of the expression, in
    {!Query.Algebra.base_relations} order. Raises the same exceptions
    as {!Query.Algebra.schema_of} on ill-typed definitions. *)

val pp_aux : Format.formatter -> aux -> unit
