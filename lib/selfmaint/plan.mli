(** A self-maintenance plan: the auxiliary relations of one view plus
    the compiled machinery to probe and advance them.

    The plan is immutable; the auxiliary {e state} is a plain
    {!Database.t} threaded by the caller (the view manager, or the
    crash-recovery replay), so snapshots for in-flight delta futures
    and WAL checkpoints are pointer copies. *)

open Relational

type t

val create : initial:Database.t -> Query.View.t -> t
(** Derive the auxiliaries ({!Derive.analyze}) from the view definition
    against [initial]'s full base schemas, build the projected initial
    replicas, and compile the definition against the projected
    schemas. *)

val view : t -> Query.View.t

val auxes : t -> Derive.aux list

val initial_cache : t -> Database.t
(** The auxiliary state at source state [ss_0]: one relation per base
    relation of the view, full replicas shared by pointer with
    [initial], keyed projections materialized. *)

val project : t -> Query.Delta.changes -> Query.Delta.changes
(** Restrict a transaction's base-data changes to the view's base
    relations and project each one onto its live attributes — the only
    transformation between the update stream and the local probe. *)

val delta :
  ?exec:Parallel.Exec.t ->
  t ->
  pre:Database.t ->
  Query.Delta.changes ->
  Signed_bag.t
(** The view's maintenance delta, computed entirely from the auxiliary
    pre-state and the (already {!project}ed) changes — no source
    access. Equals {!Query.Delta} over the full base data (see
    {!Derive}). *)

val advance : t -> Database.t -> Query.Delta.changes -> Database.t
(** Apply (already {!project}ed) changes to the auxiliary state. *)

type storage = {
  aux_rows : int;  (** rows across all auxiliary relations at [ss_0] *)
  aux_cells : int;  (** rows x live arity: what self-maintenance stores *)
  replica_rows : int;  (** rows a full-replica cache would hold *)
  replica_cells : int;  (** cells a full-replica cache would hold *)
}

val storage : t -> storage
(** Storage cost of the auxiliaries vs. the full-replica alternative
    ({!Viewmgr.Complete_vm}'s cache), measured at the initial state. *)

val pp : Format.formatter -> t -> unit
