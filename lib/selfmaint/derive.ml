open Relational
module S = Set.Make (String)

type aux = {
  relation : string;
  live : string list;
  full : bool;
}

(* [All] is "every attribute of this node's output schema" — the demand
   at the root (the view materializes its full output) and the
   conservative escape hatch. [Attrs] is always a subset of the node's
   original output schema, which keeps every pushed projection
   well-typed. *)
type demand = All | Attrs of S.t

let analyze ~schemas def =
  let acc : (string, demand) Hashtbl.t = Hashtbl.create 8 in
  let note r d =
    let joined =
      match (Hashtbl.find_opt acc r, d) with
      | (None, d) -> d
      | (Some All, _) | (Some _, All) -> All
      | (Some (Attrs a), Attrs b) -> Attrs (S.union a b)
    in
    Hashtbl.replace acc r joined
  in
  let widen d names =
    match d with All -> All | Attrs s -> Attrs (S.union s (S.of_list names))
  in
  let schema_of e = Query.Algebra.schema_of schemas e in
  let rec go d e =
    match (e : Query.Algebra.t) with
    | Base r -> note r d
    | Select (p, e1) -> go (widen d (Query.Pred.attrs p)) e1
    | Project (names, e1) ->
      (* The node materializes exactly [names], regardless of what the
         parent keeps of them. *)
      go (Attrs (S.of_list names)) e1
    | Join (a, b) ->
      (match d with
      | All ->
        go All a;
        go All b
      | Attrs want ->
        let sa = S.of_list (Schema.names (schema_of a)) in
        let sb = S.of_list (Schema.names (schema_of b)) in
        (* Shared attributes are the natural-join keys: both sides must
           keep them even when the output never mentions them. *)
        let shared = S.inter sa sb in
        go (Attrs (S.union (S.inter want sa) shared)) a;
        go (Attrs (S.union (S.inter want sb) shared)) b)
    | Union (a, b) ->
      (* Conservative: asymmetric branches (a bare Base on one side, a
         Project on the other) can achieve different projections under a
         partial demand, and the union would no longer type-check. Full
         width on both sides is always exact. *)
      go All a;
      go All b
    | Rename (mapping, e1) ->
      let back n =
        match List.find_opt (fun (_, fresh) -> String.equal fresh n) mapping with
        | Some (old, _) -> old
        | None -> n
      in
      (match d with
      | All -> go All e1
      | Attrs want -> go (Attrs (S.map back want)) e1)
    | Group_by { keys; aggregates; input } ->
      let agg_attrs =
        List.filter_map
          (fun ((_, agg) : string * Query.Algebra.aggregate) ->
            match agg with
            | Count -> None
            | Sum a | Avg a | Min a | Max a -> Some a)
          aggregates
      in
      go (Attrs (S.of_list (keys @ agg_attrs))) input
  in
  go All def;
  List.map
    (fun r ->
      let names = Schema.names (schemas r) in
      match Hashtbl.find_opt acc r with
      | None | Some All -> { relation = r; live = names; full = true }
      | Some (Attrs s) ->
        let live = List.filter (fun n -> S.mem n s) names in
        { relation = r; live; full = List.length live = List.length names })
    (Query.Algebra.base_relations def)

let pp_aux ppf a =
  if a.full then Fmt.pf ppf "%s (replica)" a.relation
  else
    Fmt.pf ppf "pi[%a](%s)"
      (Fmt.list ~sep:Fmt.comma Fmt.string)
      a.live a.relation
