open Relational

type state = {
  engine : Sim.Engine.t;
  compute_latency : batch:int -> float;
  exec : Parallel.Exec.t;
  plan : Plan.t;
  emit : Query.Action_list.t -> unit;
  on_apply : Update.Transaction.t -> Database.t -> unit;
  queue : Update.Transaction.t Queue.t;
  mutable cache : Database.t;
  mutable busy : bool;
}

let rec pump st =
  if (not st.busy) && not (Queue.is_empty st.queue) then begin
    st.busy <- true;
    let txn = Queue.pop st.queue in
    (* Same discipline as Complete_vm: the delta runs as a future over an
       immutable snapshot of the auxiliary pre-state and is joined in the
       emit event, so a pooled exec moves real work off this domain
       without perturbing the simulated timeline. *)
    let changes = Plan.project st.plan (Query.Delta.of_transaction txn) in
    let pre = st.cache in
    let fut =
      Parallel.Exec.spawn st.exec (fun () ->
          let delta = Plan.delta ~exec:st.exec st.plan ~pre changes in
          Query.Action_list.delta
            ~view:(Query.View.name (Plan.view st.plan))
            ~state:txn.Update.Transaction.id delta)
    in
    st.cache <- Plan.advance st.plan st.cache changes;
    st.on_apply txn st.cache;
    Sim.Engine.schedule_after st.engine (st.compute_latency ~batch:1)
      (fun () ->
        st.emit (Parallel.Exec.await fut);
        st.busy <- false;
        pump st)
  end

let plan_of ~initial view = Plan.create ~initial view

let create ~engine ~compute_latency ?(exec = Parallel.Exec.sequential) ?state
    ?(on_apply = fun _ _ -> ()) ~initial ~view ~emit () =
  let plan, cache =
    match state with
    | Some (plan, cache) -> (plan, cache)
    | None ->
      let plan = Plan.create ~initial view in
      (plan, Plan.initial_cache plan)
  in
  let st =
    { engine; compute_latency; exec; plan; emit; on_apply;
      queue = Queue.create (); cache; busy = false }
  in
  { Viewmgr.Vm.view; level = Viewmgr.Vm.Complete;
    receive =
      (fun txn ->
        Queue.push txn st.queue;
        pump st);
    flush = (fun () -> ());
    needs_ticks = false;
    pending = (fun () -> Queue.length st.queue + if st.busy then 1 else 0) }
