(** The self-maintaining view manager.

    Shape and timing are identical to {!Viewmgr.Complete_vm} — one
    transaction in computation at a time, the delta spawned as a future
    over an immutable pre-state snapshot and joined after the compute
    latency — but the local state is the view's {!Plan} auxiliaries
    (keyed projections) instead of full base replicas, and incoming
    deltas are projected before probing. It emits the same action lists
    as [Complete_vm] (see {!Derive} for the exactness argument), runs at
    consistency level [Complete], and never touches the sources. *)

open Relational

val create :
  engine:Sim.Engine.t ->
  compute_latency:(batch:int -> float) ->
  ?exec:Parallel.Exec.t ->
  ?state:Plan.t * Database.t ->
  ?on_apply:(Update.Transaction.t -> Database.t -> unit) ->
  initial:Database.t ->
  view:Query.View.t ->
  emit:(Query.Action_list.t -> unit) ->
  unit ->
  Viewmgr.Vm.t
(** [state], when given, resumes an existing plan at a given auxiliary
    state (crash recovery rebuilds it from the integrator log and the
    WAL checkpoint) instead of deriving a fresh one from [initial].
    [on_apply txn cache] fires after each transaction's changes are
    applied to the auxiliary state — the durability hook the system
    layer uses to append to and checkpoint the auxiliary WAL. *)

val plan_of : initial:Database.t -> Query.View.t -> Plan.t
(** Convenience alias of {!Plan.create} for callers that want the
    derived auxiliaries (storage metrics, recovery) without building a
    manager. *)
