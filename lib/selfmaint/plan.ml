open Relational

type storage = {
  aux_rows : int;
  aux_cells : int;
  replica_rows : int;
  replica_cells : int;
}

type t = {
  view : Query.View.t;
  auxes : Derive.aux list;
  (* Per-relation tuple projector for the non-full auxiliaries, resolved
     once against the full base schema (incoming deltas carry full-width
     tuples). *)
  projectors : (string * (Signed_bag.t -> Signed_bag.t)) list;
  compiled : Query.Compiled.t;
  initial : Database.t;
  storage : storage;
}

let create ~initial view =
  let base = Database.restrict initial (Query.View.base_relations view) in
  let auxes =
    Derive.analyze ~schemas:(Database.schema base) view.Query.View.def
  in
  let cache =
    List.fold_left
      (fun db (a : Derive.aux) ->
        if a.full then db
        else
          Database.add a.relation
            (Query.Eval.eval base
               (Query.Algebra.Project (a.live, Query.Algebra.Base a.relation)))
            db)
      base auxes
  in
  let projectors =
    List.filter_map
      (fun (a : Derive.aux) ->
        if a.full then None
        else
          let pos = Schema.positions (Database.schema base a.relation) a.live in
          Some (a.relation, Signed_bag.map (Tuple.project_pos pos)))
      auxes
  in
  let compiled =
    Query.Compiled.compile ~lookup:(Database.schema cache) view.Query.View.def
  in
  let storage =
    List.fold_left
      (fun acc (a : Derive.aux) ->
        let full = Database.find base a.relation in
        let aux = Database.find cache a.relation in
        { aux_rows = acc.aux_rows + Relation.cardinal aux;
          aux_cells =
            acc.aux_cells + (Relation.cardinal aux * List.length a.live);
          replica_rows = acc.replica_rows + Relation.cardinal full;
          replica_cells =
            acc.replica_cells
            + Relation.cardinal full * Schema.arity (Relation.schema full) })
      { aux_rows = 0; aux_cells = 0; replica_rows = 0; replica_cells = 0 }
      auxes
  in
  { view; auxes; projectors; compiled; initial = cache; storage }

let view t = t.view

let auxes t = t.auxes

let initial_cache t = t.initial

let storage t = t.storage

let project t changes =
  Query.Delta.changes_of_list
    (List.filter_map
       (fun (a : Derive.aux) ->
         let raw = Query.Delta.change_for changes a.relation in
         if Signed_bag.is_zero raw then None
         else
           match List.assoc_opt a.relation t.projectors with
           | Some f -> Some (a.relation, f raw)
           | None -> Some (a.relation, raw))
       t.auxes)

let delta ?exec t ~pre changes =
  Query.Delta.eval_plan ?exec ~pre changes t.compiled

let advance _t cache changes =
  List.fold_left
    (fun db r ->
      match Database.find_opt db r with
      | None -> db
      | Some rel ->
        Database.add r
          (Relation.apply_delta (Query.Delta.change_for changes r) rel)
          db)
    cache
    (Query.Delta.changed_relations changes)

let pp ppf t =
  Fmt.pf ppf "@[<v>selfmaint %s:@ %a@ aux %d rows / %d cells (replica %d/%d)@]"
    (Query.View.name t.view)
    (Fmt.list ~sep:Fmt.sp Derive.pp_aux)
    t.auxes t.storage.aux_rows t.storage.aux_cells t.storage.replica_rows
    t.storage.replica_cells
