open Relational

let snapshot_db store = Store.snapshot store

(* Reads run on the compiled positional kernel; the memoized compile means
   an inquiry application issuing the same expression repeatedly pays name
   resolution once (hits revalidate against the snapshot's schemas, so a
   store with different view schemas never reuses a stale plan). The
   interpreted evaluator (Query.Eval.eval ~naive:true) is kept as the
   equivalence oracle in the property tests. *)
let eval db expr =
  Query.Compiled.eval db (Query.Compiled.compile_memo ~lookup:(Database.schema db) expr)

let query store expr = eval (Store.snapshot store) expr

let query_as_of store ~time expr = eval (Store.as_of store time) expr
