(** Commit sequencing of warehouse transactions (Section 4.3).

    The merge process emits warehouse transactions in a correct order, but
    the warehouse DBMS could still commit independent submissions out of
    order; dependent transactions (intersecting view sets) must commit in
    submission order or MVC is violated. The paper sketches three
    solutions, all implemented here as policies:

    - [Serial]: submit one transaction at a time, waiting for the commit —
      simplest, no intra-warehouse concurrency.
    - [Dependency]: only sequence *dependent* transactions; independent
      ones commit concurrently.
    - [Batched n]: combine up to [n] pending transactions into one batched
      warehouse transaction (BWT), preserving order. Batching eliminates
      intra-batch dependencies but downgrades completeness to strong
      consistency, since one BWT advances the warehouse by several states.

    The submitter runs on the simulation engine: each commit occupies the
    warehouse for a sampled latency. *)

type policy = Serial | Dependency | Batched of int

type t

val create :
  Sim.Engine.t ->
  policy:policy ->
  commit_latency:(unit -> float) ->
  ?batch_timeout:float ->
  store:Store.t ->
  ?run_tasks:((unit -> unit) list -> unit) ->
  ?pre_commit:(time:float -> Wt.t -> unit) ->
  ?on_commit:(Wt.t -> unit) ->
  ?on_plan:(Store.run_plan -> unit) ->
  unit ->
  t
(** [batch_timeout] (default 0.05 simulated seconds) bounds how long a
    partially filled batch may wait before being flushed; only meaningful
    for [Batched]. [pre_commit] fires immediately {e before} the store
    applies the transaction — the write-ahead hook: a durable layer syncs
    its log record there, so every applied commit is recoverable.
    [on_commit] fires after the store has applied the transaction.
    [run_tasks] is handed to {!Store.plan_run} when a submitted run is
    planned — pass a domain-pool iterator to fan the per-view planning
    work out. [on_plan] fires once per planned run with the plan's
    coalescing counters. *)

val submit : t -> Wt.t -> unit
(** Hand a warehouse transaction to the warehouse. Returns immediately;
    the commit happens later in simulated time per the policy. *)

val submit_run : t -> Wt.t list -> unit
(** Hand a ready run — transactions that became ready at the same
    simulated instant, in emission order — to the warehouse in one pass.
    Under [Serial] the entries keep per-item commit latencies and commit
    times (the event schedule is identical to submitting them one by
    one), but the store work is planned once for the whole run via
    {!Store.plan_run} at the first entry's commit and each entry
    installs its precomputed state. Other policies fall back to per-item
    {!submit}. *)

val reset : t -> unit
(** Warehouse crash: drop every queued, batched, and in-flight
    submission. Already-scheduled commit completions and batch flushes
    are fenced by an incarnation counter and become no-ops when they
    fire, so nothing from the dead incarnation reaches the store. *)

val outstanding : t -> int
(** Transactions submitted but not yet committed (including batched ones
    waiting for their batch). *)

val committed : t -> int

val policy_name : policy -> string
