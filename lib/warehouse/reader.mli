(** Reading the warehouse: consistent queries over the materialized views.

    The paper's motivation for MVC is precisely this interface: "when the
    customer calls with a question, we would like to be able to read her
    data consistently" (Section 1.1). A reader query is an algebra
    expression whose base relations are the *view names*; it is evaluated
    against one warehouse state vector, so under SPA/PA it always observes
    a mutually consistent snapshot. [query_as_of] evaluates against the
    state visible at an earlier instant — the warehouse as a store of
    historical data (Section 1's "storing historical data or backup
    data").

    Queries evaluate through the compiled hash-join kernel
    ({!Query.Compiled}) with a memoized compile per expression; the
    interpreted evaluator remains available as [Query.Eval.eval
    ~naive:true] and is the oracle the reader is property-tested
    against. The snapshot-serving layer ({!Serve}) builds sessions,
    guarantees and a versioned result cache on top of this module's
    evaluation path. *)

val snapshot_db : Store.t -> Relational.Database.t
(** The current warehouse state, views as base relations. *)

val query : Store.t -> Query.Algebra.t -> Relational.Relation.t
(** Evaluate against the current warehouse state.
    @raise Database.Unknown_relation if the expression names something
    that is not a view. *)

val query_as_of : Store.t -> time:float -> Query.Algebra.t -> Relational.Relation.t
(** Evaluate against the state visible at [time].
    @raise Store.Pruned if [time] predates the store's retention
    watermark. *)
