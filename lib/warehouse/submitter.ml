type policy = Serial | Dependency | Batched of int

(* A ready run submitted as one unit: the per-entry commits keep their
   own latency samples and commit times (identical event schedule to
   per-item submission), but the store work is planned once for the
   whole run — at the first entry's commit, when the store sits exactly
   at the run's pre-state — and each entry installs its precomputed
   state. Serial FIFO ordering guarantees the run's entries commit
   contiguously, which is what makes planning at the first commit
   sound. *)
type run = { run_wts : Wt.t list; mutable plan : Store.run_plan option }

type entry = {
  wt : Wt.t;
  mutable committing : bool;
  run : run option;
  run_pos : int;
}

type t = {
  engine : Sim.Engine.t;
  policy : policy;
  commit_latency : unit -> float;
  batch_timeout : float;
  store : Store.t;
  run_tasks : ((unit -> unit) list -> unit) option;
  pre_commit : time:float -> Wt.t -> unit;
  on_commit : Wt.t -> unit;
  on_plan : Store.run_plan -> unit;
  (* Submission-order queue as a front list + reversed rear list, so a
     burst of transactions becoming ready at the same simulated instant
     drains into the queue in one pass instead of an O(n) append each. *)
  mutable front : entry list;
  mutable rear : entry list;
  mutable batch : Wt.t list; (* reversed accumulation, Batched only *)
  mutable batch_flush_scheduled : bool;
  mutable busy : bool; (* Serial / Batched: a commit in progress *)
  mutable committed : int;
  mutable gen : int; (* incarnation fence for scheduled completions *)
}

let create engine ~policy ~commit_latency ?(batch_timeout = 0.05) ~store
    ?run_tasks ?(pre_commit = fun ~time:_ _ -> ())
    ?(on_commit = fun _ -> ()) ?(on_plan = fun _ -> ()) () =
  { engine; policy; commit_latency; batch_timeout; store; run_tasks;
    pre_commit; on_commit; on_plan; front = []; rear = []; batch = [];
    batch_flush_scheduled = false; busy = false; committed = 0; gen = 0 }

let normalize t =
  if t.front = [] && t.rear <> [] then begin
    t.front <- List.rev t.rear;
    t.rear <- []
  end

let head_opt t =
  normalize t;
  match t.front with [] -> None | e :: _ -> Some e

let push t e = t.rear <- e :: t.rear

let queued t =
  if t.rear <> [] then begin
    t.front <- t.front @ List.rev t.rear;
    t.rear <- []
  end;
  t.front

let remove t entry =
  (match t.front with
  | e :: rest when e == entry -> t.front <- rest
  | _ ->
    t.front <- List.filter (fun e -> e != entry) t.front;
    t.rear <- List.filter (fun e -> e != entry) t.rear);
  normalize t

let install t ~time entry =
  match entry.run with
  | None -> Store.apply t.store ~time entry.wt
  | Some r ->
    let plan =
      match r.plan with
      | Some p -> p
      | None ->
        (* First entry of the run: the store is at the run's pre-state
           (Serial FIFO — everything submitted earlier has committed). *)
        let p = Store.plan_run ?run_tasks:t.run_tasks t.store r.run_wts in
        r.plan <- Some p;
        t.on_plan p;
        p
    in
    (match List.nth_opt plan.planned entry.run_pos with
    | Some (wt, state) -> Store.apply_planned t.store ~time wt state
    | None -> Store.apply t.store ~time entry.wt)

let finish_commit t entry =
  remove t entry;
  let time = Sim.Engine.now t.engine in
  (* Write-ahead: the durable record must be synced before the store
     mutates, or a crash between the two loses a committed transaction. *)
  t.pre_commit ~time entry.wt;
  install t ~time entry;
  t.committed <- t.committed + 1;
  t.on_commit entry.wt

let start_commit t entry ~after =
  entry.committing <- true;
  let gen = t.gen in
  Sim.Engine.schedule_after t.engine (t.commit_latency ()) (fun () ->
      if gen = t.gen then begin
        finish_commit t entry;
        after ()
      end)

(* Serial: commit the head of the queue, one at a time. *)
let rec pump_serial t =
  if not t.busy then
    match head_opt t with
    | None -> ()
    | Some entry ->
      t.busy <- true;
      start_commit t entry ~after:(fun () ->
          t.busy <- false;
          pump_serial t)

(* Dependency: an entry may commit when no earlier outstanding entry shares
   a view with it. *)
let rec pump_dependency t =
  let rec eligible earlier = function
    | [] -> None
    | entry :: rest ->
      if
        (not entry.committing)
        && not (List.exists (fun e -> Wt.depends_on entry.wt e.wt) earlier)
      then Some entry
      else eligible (entry :: earlier) rest
  in
  match eligible [] (queued t) with
  | None -> ()
  | Some entry ->
    start_commit t entry ~after:(fun () -> pump_dependency t);
    (* Several independent entries may be eligible at once. *)
    pump_dependency t

let flush_batch t =
  match List.rev t.batch with
  | [] -> ()
  | wts ->
    t.batch <- [];
    let bwt = Wt.batch wts in
    push t { wt = bwt; committing = false; run = None; run_pos = 0 };
    pump_serial t

let submit t wt =
  match t.policy with
  | Serial ->
    push t { wt; committing = false; run = None; run_pos = 0 };
    pump_serial t
  | Dependency ->
    push t { wt; committing = false; run = None; run_pos = 0 };
    pump_dependency t
  | Batched size ->
    t.batch <- wt :: t.batch;
    if List.length t.batch >= size then flush_batch t
    else if not t.batch_flush_scheduled then begin
      t.batch_flush_scheduled <- true;
      let gen = t.gen in
      Sim.Engine.schedule_after t.engine t.batch_timeout (fun () ->
          if gen = t.gen then begin
            t.batch_flush_scheduled <- false;
            flush_batch t
          end)
    end

let submit_run t wts =
  match (t.policy, wts) with
  | _, [] -> ()
  | Serial, _ ->
    let run = { run_wts = wts; plan = None } in
    List.iteri
      (fun i wt -> push t { wt; committing = false; run = Some run; run_pos = i })
      wts;
    pump_serial t
  | (Dependency | Batched _), _ ->
    (* Out-of-order or fusing policies void the contiguity the run plan
       relies on; fall back to per-item submission. *)
    List.iter (submit t) wts

(* Warehouse crash: queued and in-flight submissions are gone. The gen
   bump fences every already-scheduled completion and batch flush —
   their closures see a stale gen and do nothing. The committed counter
   survives (it counts durable history, which restore re-applies). *)
let reset t =
  t.gen <- t.gen + 1;
  t.front <- [];
  t.rear <- [];
  t.batch <- [];
  t.batch_flush_scheduled <- false;
  t.busy <- false

let outstanding t =
  List.length t.front + List.length t.rear + List.length t.batch

let committed t = t.committed

let policy_name = function
  | Serial -> "serial"
  | Dependency -> "dependency"
  | Batched n -> Printf.sprintf "batched-%d" n
