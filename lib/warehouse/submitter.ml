type policy = Serial | Dependency | Batched of int

type entry = { wt : Wt.t; mutable committing : bool }

type t = {
  engine : Sim.Engine.t;
  policy : policy;
  commit_latency : unit -> float;
  batch_timeout : float;
  store : Store.t;
  pre_commit : time:float -> Wt.t -> unit;
  on_commit : Wt.t -> unit;
  mutable queue : entry list; (* submission order: oldest first *)
  mutable batch : Wt.t list; (* reversed accumulation, Batched only *)
  mutable batch_flush_scheduled : bool;
  mutable busy : bool; (* Serial / Batched: a commit in progress *)
  mutable committed : int;
  mutable gen : int; (* incarnation fence for scheduled completions *)
}

let create engine ~policy ~commit_latency ?(batch_timeout = 0.05) ~store
    ?(pre_commit = fun ~time:_ _ -> ()) ?(on_commit = fun _ -> ()) () =
  { engine; policy; commit_latency; batch_timeout; store; pre_commit;
    on_commit; queue = []; batch = []; batch_flush_scheduled = false;
    busy = false; committed = 0; gen = 0 }

let finish_commit t entry =
  t.queue <- List.filter (fun e -> e != entry) t.queue;
  let time = Sim.Engine.now t.engine in
  (* Write-ahead: the durable record must be synced before the store
     mutates, or a crash between the two loses a committed transaction. *)
  t.pre_commit ~time entry.wt;
  Store.apply t.store ~time entry.wt;
  t.committed <- t.committed + 1;
  t.on_commit entry.wt

let start_commit t entry ~after =
  entry.committing <- true;
  let gen = t.gen in
  Sim.Engine.schedule_after t.engine (t.commit_latency ()) (fun () ->
      if gen = t.gen then begin
        finish_commit t entry;
        after ()
      end)

(* Serial: commit the head of the queue, one at a time. *)
let rec pump_serial t =
  if not t.busy then
    match t.queue with
    | [] -> ()
    | entry :: _ ->
      t.busy <- true;
      start_commit t entry ~after:(fun () ->
          t.busy <- false;
          pump_serial t)

(* Dependency: an entry may commit when no earlier outstanding entry shares
   a view with it. *)
let rec pump_dependency t =
  let rec eligible earlier = function
    | [] -> None
    | entry :: rest ->
      if
        (not entry.committing)
        && not (List.exists (fun e -> Wt.depends_on entry.wt e.wt) earlier)
      then Some entry
      else eligible (entry :: earlier) rest
  in
  match eligible [] t.queue with
  | None -> ()
  | Some entry ->
    start_commit t entry ~after:(fun () -> pump_dependency t);
    (* Several independent entries may be eligible at once. *)
    pump_dependency t

let flush_batch t =
  match List.rev t.batch with
  | [] -> ()
  | wts ->
    t.batch <- [];
    let bwt = Wt.batch wts in
    let entry = { wt = bwt; committing = false } in
    t.queue <- t.queue @ [ entry ];
    pump_serial t

let submit t wt =
  match t.policy with
  | Serial ->
    t.queue <- t.queue @ [ { wt; committing = false } ];
    pump_serial t
  | Dependency ->
    t.queue <- t.queue @ [ { wt; committing = false } ];
    pump_dependency t
  | Batched size ->
    t.batch <- wt :: t.batch;
    if List.length t.batch >= size then flush_batch t
    else if not t.batch_flush_scheduled then begin
      t.batch_flush_scheduled <- true;
      let gen = t.gen in
      Sim.Engine.schedule_after t.engine t.batch_timeout (fun () ->
          if gen = t.gen then begin
            t.batch_flush_scheduled <- false;
            flush_batch t
          end)
    end

(* Warehouse crash: queued and in-flight submissions are gone. The gen
   bump fences every already-scheduled completion and batch flush —
   their closures see a stale gen and do nothing. The committed counter
   survives (it counts durable history, which restore re-applies). *)
let reset t =
  t.gen <- t.gen + 1;
  t.queue <- [];
  t.batch <- [];
  t.batch_flush_scheduled <- false;
  t.busy <- false

let outstanding t = List.length t.queue + List.length t.batch

let committed t = t.committed

let policy_name = function
  | Serial -> "serial"
  | Dependency -> "dependency"
  | Batched n -> Printf.sprintf "batched-%d" n
