open Relational

type commit = { time : float; transaction : Wt.t; state : Database.t }

type retention = Keep_all | Keep_last of int

(* Retained commits live in [buf.(start) .. buf.(start + len - 1)], oldest
   first, times nondecreasing (the simulator's clock never runs backwards;
   equal times are legal and resolved latest-wins by the binary search).
   [pruned] counts commits discarded below the retention watermark, so the
   global commit index of buf.(start + i) is pruned + i + 1 (index 0 being
   the initial state). *)
type t = {
  initial : Database.t;
  mutable current : Database.t;
  mutable buf : commit option array;
  mutable start : int;
  mutable len : int;
  mutable pruned : int;
  retention : retention;
}

exception Unknown_view of string

exception Pruned of float

let create ?(retention = Keep_all) bindings =
  (match retention with
  | Keep_last n when n < 1 ->
    invalid_arg "Store.create: Keep_last needs a positive window"
  | Keep_last _ | Keep_all -> ());
  let db = Database.of_list bindings in
  { initial = db; current = db; buf = Array.make 16 None; start = 0; len = 0;
    pruned = 0; retention }

let retention t = t.retention

let views t = Database.names t.current

let view t name =
  match Database.find_opt t.current name with
  | Some rel -> rel
  | None -> raise (Unknown_view name)

let snapshot t = t.current

let initial t = t.initial

let nth t i =
  match t.buf.(t.start + i) with
  | Some c -> c
  | None -> assert false

let commit_count t = t.pruned + t.len

let watermark t = t.pruned

let retained t = t.len

let apply_action db (al : Query.Action_list.t) =
  match Database.find_opt db al.view with
  | None -> raise (Unknown_view al.view)
  | Some rel ->
    let contents = Query.Action_list.apply al (Relation.contents rel) in
    Database.add al.view (Relation.with_contents rel contents) db

(* Make room for one more commit at the tail: grow (and compact away the
   pruned prefix) when the physical buffer is exhausted. *)
let ensure_room t =
  if t.start + t.len = Array.length t.buf then begin
    let cap = max 16 (2 * t.len) in
    let buf = Array.make cap None in
    Array.blit t.buf t.start buf 0 t.len;
    t.buf <- buf;
    t.start <- 0
  end

let prune t =
  match t.retention with
  | Keep_all -> ()
  | Keep_last n ->
    while t.len > n do
      t.buf.(t.start) <- None;
      t.start <- t.start + 1;
      t.len <- t.len - 1;
      t.pruned <- t.pruned + 1
    done

let apply t ?(time = 0.0) (wt : Wt.t) =
  let db = List.fold_left apply_action t.current wt.actions in
  t.current <- db;
  ensure_room t;
  t.buf.(t.start + t.len) <- Some { time; transaction = wt; state = db };
  t.len <- t.len + 1;
  prune t

(* ---- merge fast path: batched run application ----

   A ready run of warehouse transactions is planned as a whole: the
   per-view action lists of each transaction are summed (opposing deltas
   cancel) and each view's post-state timeline is computed in a single
   in-order walk, independent per view — so the per-view walks can be
   fanned across a domain pool via [run_tasks]. The plan then installs
   the same per-WT state sequence the one-at-a-time [apply] would have
   produced: views untouched by a transaction share their relation (and
   its memoized chunks/indexes) by pointer, and summing is guarded by
   {!Signed_bag.coalesce} so a sum that clamping could make unfaithful
   falls back to sequential application of that group. *)

type run_plan = {
  planned : (Wt.t * Database.t) list;
  coalesced_in : int;
  coalesced_out : int;
  seq_fallbacks : int;
}

let plan_run ?(run_tasks = List.iter (fun task -> task ())) t wts =
  let wts = Array.of_list wts in
  let n = Array.length wts in
  (* Per view, the transactions that touch it, with the view's action
     lists of each transaction in application order. *)
  let order = ref [] in
  let groups : (string, (int * Query.Action_list.t list) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iteri
    (fun i (wt : Wt.t) ->
      List.iter
        (fun (al : Query.Action_list.t) ->
          let cell =
            match Hashtbl.find_opt groups al.view with
            | Some cell -> cell
            | None ->
              let cell = ref [] in
              Hashtbl.add groups al.view cell;
              order := al.view :: !order;
              cell
          in
          match !cell with
          | (j, als) :: rest when j = i -> cell := (j, al :: als) :: rest
          | _ -> cell := (i, [ al ]) :: !cell)
        wt.actions)
    wts;
  let views = Array.of_list (List.rev !order) in
  let n_views = Array.length views in
  let timelines = Array.make n_views [] in
  let c_in = Array.make n_views 0 in
  let c_out = Array.make n_views 0 in
  let fallbacks = Array.make n_views 0 in
  let plan_view v =
    let name = views.(v) in
    let rel0 =
      match Database.find_opt t.current name with
      | Some rel -> rel
      | None -> raise (Unknown_view name)
    in
    let vgroups =
      List.rev_map (fun (i, als) -> (i, List.rev als)) !(Hashtbl.find groups name)
    in
    let rel = ref rel0 in
    let timeline =
      List.map
        (fun (i, als) ->
          let contents = Relation.contents !rel in
          let deltas =
            List.filter_map
              (fun (al : Query.Action_list.t) ->
                match al.payload with
                | Query.Action_list.Delta d -> Some d
                | Query.Action_list.Refresh _ -> None)
              als
          in
          let contents' =
            if List.length deltas <> List.length als then
              (* A refresh overwrites rather than composes: apply the
                 group one list at a time. *)
              List.fold_left
                (fun acc al -> Query.Action_list.apply al acc)
                contents als
            else begin
              List.iter
                (fun d -> c_in.(v) <- c_in.(v) + Signed_bag.size d)
                deltas;
              match Signed_bag.coalesce deltas ~bag:contents with
              | Some net ->
                c_out.(v) <- c_out.(v) + Signed_bag.size net;
                Signed_bag.apply net contents
              | None ->
                (* The sum could clamp differently from the sequence —
                   stay faithful. *)
                fallbacks.(v) <- fallbacks.(v) + 1;
                c_out.(v)
                <- c_out.(v)
                   + List.fold_left
                       (fun acc d -> acc + Signed_bag.size d)
                       0 deltas;
                List.fold_left
                  (fun acc d -> Signed_bag.apply d acc)
                  contents deltas
            end
          in
          rel := Relation.with_contents !rel contents';
          (i, !rel))
        vgroups
    in
    timelines.(v) <- timeline;
    (* Warm the run's final chunk off the hot path: serving reads after
       the run hit a prebuilt snapshot instead of encoding on demand. *)
    if !Columnar.enabled then ignore (Relation.columnar !rel)
  in
  run_tasks (List.init n_views (fun v () -> plan_view v));
  (* Scatter the per-view timelines back into per-transaction updates and
     roll the database forward once per transaction. *)
  let updates = Array.make n [] in
  Array.iteri
    (fun v timeline ->
      List.iter
        (fun (i, rel) -> updates.(i) <- (views.(v), rel) :: updates.(i))
        timeline)
    timelines;
  let planned = ref [] in
  let db = ref t.current in
  Array.iteri
    (fun i (wt : Wt.t) ->
      db :=
        List.fold_left
          (fun acc (name, rel) -> Database.add name rel acc)
          !db
          (List.rev updates.(i));
      planned := (wt, !db) :: !planned)
    wts;
  { planned = List.rev !planned;
    coalesced_in = Array.fold_left ( + ) 0 c_in;
    coalesced_out = Array.fold_left ( + ) 0 c_out;
    seq_fallbacks = Array.fold_left ( + ) 0 fallbacks }

let apply_planned t ?(time = 0.0) (wt : Wt.t) state =
  t.current <- state;
  ensure_room t;
  t.buf.(t.start + t.len) <- Some { time; transaction = wt; state };
  t.len <- t.len + 1;
  prune t

let commit_run t ?time wts =
  let plan = plan_run t wts in
  List.iter (fun (wt, state) -> apply_planned t ?time wt state) plan.planned;
  plan

let commits t = List.init t.len (fun i -> nth t i)

let commits_from t i =
  let local = max 0 (i - t.pruned) in
  List.init (t.len - local) (fun k -> nth t (local + k))

(* Crash recovery: rebuild the whole store from the initial state and the
   recovered (time, transaction) sequence. Re-applying rather than
   restoring snapshots keeps the durable record minimal (the WAL holds
   transactions, not state vectors) and reproduces byte-identical state
   because apply is deterministic. *)
let restore t cs =
  t.current <- t.initial;
  t.buf <- Array.make 16 None;
  t.start <- 0;
  t.len <- 0;
  t.pruned <- 0;
  List.iter (fun (time, wt) -> apply t ~time wt) cs

let states t = t.initial :: List.init t.len (fun i -> (nth t i).state)

(* Rightmost retained commit with time <= query. Several commits may share
   a simulated time (e.g. an All_at_once script); the binary search keeps
   moving right past equal times, so the latest of them wins. *)
let as_of_index t time =
  if t.len = 0 || (nth t 0).time > time then None
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    (* invariant: (nth lo).time <= time; answer is in [lo, hi] *)
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if (nth t mid).time <= time then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let as_of t time =
  match as_of_index t time with
  | Some i -> (nth t i).state
  | None ->
    (* Nothing retained at or before [time]: before any commit that is
       ws_0, but once commits have been pruned the state at [time] is no
       longer recorded. *)
    if t.pruned = 0 then t.initial else raise (Pruned time)
