open Relational

type commit = { time : float; transaction : Wt.t; state : Database.t }

type retention = Keep_all | Keep_last of int

(* Retained commits live in [buf.(start) .. buf.(start + len - 1)], oldest
   first, times nondecreasing (the simulator's clock never runs backwards;
   equal times are legal and resolved latest-wins by the binary search).
   [pruned] counts commits discarded below the retention watermark, so the
   global commit index of buf.(start + i) is pruned + i + 1 (index 0 being
   the initial state). *)
type t = {
  initial : Database.t;
  mutable current : Database.t;
  mutable buf : commit option array;
  mutable start : int;
  mutable len : int;
  mutable pruned : int;
  retention : retention;
}

exception Unknown_view of string

exception Pruned of float

let create ?(retention = Keep_all) bindings =
  (match retention with
  | Keep_last n when n < 1 ->
    invalid_arg "Store.create: Keep_last needs a positive window"
  | Keep_last _ | Keep_all -> ());
  let db = Database.of_list bindings in
  { initial = db; current = db; buf = Array.make 16 None; start = 0; len = 0;
    pruned = 0; retention }

let retention t = t.retention

let views t = Database.names t.current

let view t name =
  match Database.find_opt t.current name with
  | Some rel -> rel
  | None -> raise (Unknown_view name)

let snapshot t = t.current

let initial t = t.initial

let nth t i =
  match t.buf.(t.start + i) with
  | Some c -> c
  | None -> assert false

let commit_count t = t.pruned + t.len

let watermark t = t.pruned

let retained t = t.len

let apply_action db (al : Query.Action_list.t) =
  match Database.find_opt db al.view with
  | None -> raise (Unknown_view al.view)
  | Some rel ->
    let contents = Query.Action_list.apply al (Relation.contents rel) in
    Database.add al.view (Relation.with_contents rel contents) db

(* Make room for one more commit at the tail: grow (and compact away the
   pruned prefix) when the physical buffer is exhausted. *)
let ensure_room t =
  if t.start + t.len = Array.length t.buf then begin
    let cap = max 16 (2 * t.len) in
    let buf = Array.make cap None in
    Array.blit t.buf t.start buf 0 t.len;
    t.buf <- buf;
    t.start <- 0
  end

let prune t =
  match t.retention with
  | Keep_all -> ()
  | Keep_last n ->
    while t.len > n do
      t.buf.(t.start) <- None;
      t.start <- t.start + 1;
      t.len <- t.len - 1;
      t.pruned <- t.pruned + 1
    done

let apply t ?(time = 0.0) (wt : Wt.t) =
  let db = List.fold_left apply_action t.current wt.actions in
  t.current <- db;
  ensure_room t;
  t.buf.(t.start + t.len) <- Some { time; transaction = wt; state = db };
  t.len <- t.len + 1;
  prune t

let commits t = List.init t.len (fun i -> nth t i)

let commits_from t i =
  let local = max 0 (i - t.pruned) in
  List.init (t.len - local) (fun k -> nth t (local + k))

(* Crash recovery: rebuild the whole store from the initial state and the
   recovered (time, transaction) sequence. Re-applying rather than
   restoring snapshots keeps the durable record minimal (the WAL holds
   transactions, not state vectors) and reproduces byte-identical state
   because apply is deterministic. *)
let restore t cs =
  t.current <- t.initial;
  t.buf <- Array.make 16 None;
  t.start <- 0;
  t.len <- 0;
  t.pruned <- 0;
  List.iter (fun (time, wt) -> apply t ~time wt) cs

let states t = t.initial :: List.init t.len (fun i -> (nth t i).state)

(* Rightmost retained commit with time <= query. Several commits may share
   a simulated time (e.g. an All_at_once script); the binary search keeps
   moving right past equal times, so the latest of them wins. *)
let as_of_index t time =
  if t.len = 0 || (nth t 0).time > time then None
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    (* invariant: (nth lo).time <= time; answer is in [lo, hi] *)
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if (nth t mid).time <= time then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let as_of t time =
  match as_of_index t time with
  | Some i -> (nth t i).state
  | None ->
    (* Nothing retained at or before [time]: before any commit that is
       ws_0, but once commits have been pruned the state at [time] is no
       longer recorded. *)
    if t.pruned = 0 then t.initial else raise (Pruned time)
