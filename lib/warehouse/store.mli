(** The warehouse view store.

    Holds the materialized views and applies warehouse transactions
    atomically, recording the full warehouse state sequence
    [ws_0, ws_1, ..., ws_q] (Section 2.3: a warehouse state is a vector
    with one element per view). The recorded history is what the
    consistency oracle inspects.

    Commits are kept in a growable array ordered by commit time (the
    simulated clock is nondecreasing), so {!as_of} is a binary search
    rather than a scan of the whole history. A {!retention} policy bounds
    how much history is retained: the consistency oracle needs [Keep_all]
    (the default), while long soaks can run with [Keep_last] so a
    million-transaction run does not retain every historical state
    vector. *)

open Relational

type commit = {
  time : float;  (** Simulated commit time (0 outside a simulation). *)
  transaction : Wt.t;
  state : Database.t;  (** The warehouse state vector after the commit. *)
}

(** How much commit history to retain. [Keep_all] records every state
    (what {!states} and the consistency oracle expect). [Keep_last n]
    keeps only the [n] most recent commits; older ones are discarded and
    the watermark advances. The *current* state is always available
    either way — retention only limits time travel. *)
type retention = Keep_all | Keep_last of int

type t

exception Unknown_view of string

exception Pruned of float
(** Raised by {!as_of} when the requested instant falls below the
    retention watermark: some commit before it has been discarded, so the
    state at that time is no longer recorded. Carries the requested
    time. *)

val create : ?retention:retention -> (string * Relation.t) list -> t
(** Initial materializations, one per view. [retention] defaults to
    [Keep_all].
    @raise Invalid_argument on [Keep_last n] with [n < 1]. *)

val retention : t -> retention

val views : t -> string list

val view : t -> string -> Relation.t
(** @raise Unknown_view if absent. *)

val snapshot : t -> Database.t
(** Current warehouse state vector (views as a database). *)

val initial : t -> Database.t
(** [ws_0]. *)

val apply : t -> ?time:float -> Wt.t -> unit
(** Apply a warehouse transaction atomically: every action list in order,
    then record the new state (and prune past the retention window).
    Commit times must be nondecreasing across calls — they are stamped
    from the simulation clock.
    @raise Unknown_view if an action list targets an unknown view. *)

type run_plan = {
  planned : (Wt.t * Database.t) list;
      (** One entry per transaction of the run, in order, with the
          warehouse state vector after it — exactly the states the
          one-at-a-time {!apply} would have recorded. *)
  coalesced_in : int;
      (** Elementary delta operations fed into per-transaction summing. *)
  coalesced_out : int;
      (** Operations left after summing — [1 - out/in] is the
          cancellation ratio. *)
  seq_fallbacks : int;
      (** (transaction, view) groups where the clamp guard refused the
          sum and the group was applied list by list. *)
}

val plan_run :
  ?run_tasks:((unit -> unit) list -> unit) -> t -> Wt.t list -> run_plan
(** Plan a ready run of transactions against the current state without
    committing it. Per view, the run's action lists are summed
    transaction by transaction ({!Signed_bag.coalesce} guards against
    clamping divergence) and the view's relation timeline is built in
    one walk; views untouched by a transaction share their relation by
    pointer. [run_tasks] executes the independent per-view walks — pass
    a domain-pool iterator to fan them out (default: run in place). The
    plan is only valid while no other commit intervenes.
    @raise Unknown_view if an action list targets an unknown view. *)

val apply_planned : t -> ?time:float -> Wt.t -> Database.t -> unit
(** Install one planned entry as a commit, identical in shape and
    sequence to what {!apply} records. Entries of a plan must be
    installed in order, with no interleaved {!apply}. *)

val commit_run : t -> ?time:float -> Wt.t list -> run_plan
(** [plan_run] + install every entry at one [time]: the run committed as
    a batch (the paper's batching consistency level releases a run this
    way). Returns the plan for its counters. *)

val commits : t -> commit list
(** Retained committed transactions, oldest first (all of them under
    [Keep_all]). *)

val commits_from : t -> int -> commit list
(** [commits_from t i]: retained commits whose global index is [>= i],
    oldest first — the delta an incremental checkpoint covers, built
    without materializing the whole history. *)

val restore : t -> (float * Wt.t) list -> unit
(** [restore t commits] discards all in-memory state and rebuilds the
    store by re-applying [commits] (oldest first, as [(time, wt)] pairs)
    to the initial state — crash recovery from a checkpoint + WAL tail.
    Deterministic re-application reproduces the exact pre-crash state
    vector sequence, so downstream consumers (serving, the oracle) see
    identical databases at identical commit indices. *)

val commit_count : t -> int
(** Total commits ever applied, including pruned ones. *)

val watermark : t -> int
(** Number of commits discarded by retention — the global index of the
    oldest retained commit. 0 under [Keep_all]. *)

val retained : t -> int
(** Commits currently retained ([= commit_count] under [Keep_all]). *)

val states : t -> Database.t list
(** [ws_0 ... ws_q]: initial state followed by the state after each
    retained commit. Under [Keep_last] this is a suffix of the history
    prefixed by [ws_0] — feed the oracle [Keep_all] stores only. *)

val as_of : t -> float -> Database.t
(** The warehouse state visible at a given (simulated) time: the state
    produced by the last commit at or before that instant ([ws_0] before
    any commit). When several commits carry the same time, the latest of
    them wins. O(log retained) binary search over the commit array; the
    returned database is a persistent snapshot, so no data is copied.
    @raise Pruned if the instant falls below the retention watermark. *)
