(** Multicore maintenance runtime: a reusable fixed-size domain pool and
    the execution policy threaded through the evaluation kernels.

    The pool is spawned once and reused across submissions (spawning a
    domain costs far more than a delta computation). Work is expressed as
    closures; {!Pool.map} preserves input order and re-raises the
    earliest-index exception a task threw, so a parallel map is
    observably identical to [List.map] over pure functions.

    Scheduling is help-first fork-join: a caller that blocks on a result
    (or submits a batch) executes queued tasks itself while it waits.
    Nested parallelism — a sharded join inside a per-view delta future —
    therefore cannot deadlock even on a pool of one domain, and a pool
    always makes progress with zero workers ([domains = 1] runs
    everything inline on the caller).

    Nothing here touches the simulator: executing work on the pool never
    samples RNG streams or reads the simulated clock, which is what makes
    [domains = n] produce byte-identical simulated traces to
    [domains = 1]. *)

module Pool : sig
  type t

  val create : domains:int -> t
  (** A pool with [domains] total compute lanes: [domains - 1] worker
      domains are spawned immediately (zero when [domains <= 1]) and the
      submitting caller is the remaining lane. Raises [Invalid_argument]
      when [domains < 1]. *)

  val domains : t -> int

  val get : domains:int -> t
  (** Memoized {!create}: one shared pool per size for the process,
      shut down automatically at exit. Use this from long-lived code
      paths (the system runtime) so repeated runs reuse domains. *)

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Ordered parallel map: results are returned in input order. If any
      task raises, every task still runs to completion (or is executed by
      the caller) and the exception of the smallest-index failing task is
      re-raised with its backtrace. *)

  val tasks_run : t -> int
  (** Total tasks executed since creation (all domains; monotone). *)

  val shutdown : t -> unit
  (** Join all worker domains. Idempotent. Submitting to a shut-down
      pool raises [Invalid_argument]. *)
end

(** A deferred computation: either executed by a pool domain or claimed
    inline by the awaiting caller, whichever comes first. *)
type 'a future

(** The execution policy the kernels see: run sequentially, or on a pool
    with a join-sharding factor. *)
module Exec : sig
  type t

  val sequential : t
  (** Inline execution: {!spawn} defers the closure and {!await} runs it
      at the await point, on the calling domain — byte-for-byte the
      sequential evaluation order. *)

  val pooled : ?shards:int -> Pool.t -> t
  (** Execute on [pool]; joins of at least {!shard_threshold} input rows
      are split into [shards] hash partitions (default: the pool's
      domain count). Raises [Invalid_argument] when [shards < 1]. *)

  val is_sequential : t -> bool

  val domains : t -> int
  (** Compute lanes: 1 for {!sequential}. *)

  val shards : t -> int
  (** Join sharding factor: 1 for {!sequential}. *)

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** {!Pool.map} on the policy's pool; [List.map] when sequential. *)

  val spawn : t -> (unit -> 'a) -> 'a future
  (** Submit a closure. Sequential policy: the closure is simply held
      until {!await} (deferred, not eager), so mutation of state the
      closure captured *by reference* after [spawn] is visible to it —
      callers snapshot what they need before spawning. *)

  val await : 'a future -> 'a
  (** Block until the future's value is available, executing other queued
      tasks while waiting. Re-raises the task's exception (with its
      backtrace) if it failed. Idempotent. *)
end

(** Parallelism configuration carried by system configs: real execution
    lanes and join shards, plus the latency-model switch. *)
module Config : sig
  type t = {
    domains : int;
        (** Compute lanes for real (wall-clock) execution. [1] disables
            the pool entirely: byte-identical traces to the sequential
            runtime. Never affects simulated timing. *)
    shards : int;  (** Hash-join sharding factor (>= 1). *)
    model_overlap : bool;
        (** Latency-model knob, independent of [domains]: when true, the
            strawman sequential runtime charges the makespan of the
            per-view compute samples over [domains] lanes instead of
            their sum — the Figure 3 "one process per group" cost model.
            Changes simulated timestamps only, never commit contents. *)
  }

  val sequential : t
  (** [{ domains = 1; shards = 1; model_overlap = false }]. *)

  val default : unit -> t
  (** Reads [MVC_DOMAINS] and [MVC_SHARDS] from the environment
      (defaults: 1 domain, [max 1 domains] shards), [model_overlap]
      false — so [MVC_DOMAINS=4 dune runtest] forces the whole suite
      through the parallel runtime. *)

  val exec : t -> Exec.t
  (** {!Exec.sequential} when [domains <= 1], otherwise a pooled policy
      over the shared {!Pool.get} pool of that size. *)
end

val shard_threshold : int
(** Minimum total rows (build + probe) before a join is sharded across
    domains; below it the sequential kernel always wins. *)

val makespan : lanes:int -> float list -> float
(** LPT makespan of the given task durations on [lanes] identical lanes
    (longest-processing-time greedy): the latency model used by
    [model_overlap]. [makespan ~lanes:1] is the sum; [lanes >= length]
    is the maximum. Deterministic; ties broken by list order. *)
