(* Fixed-size domain pool with help-first fork-join scheduling.

   One mutex + condition guards a FIFO of claim-and-run closures. Every
   deferred computation lives in a typed cell; the queued closure and any
   awaiting caller race to *claim* the cell (Todo -> Running) under the
   lock, so each task body runs exactly once no matter how many hands
   reach for it. A caller blocked in [await] — or collecting a [map]
   batch — pops and runs other queued tasks instead of sleeping, which is
   what lets nested parallel work (a sharded join inside a per-view delta
   future) complete even when every worker domain is busy. *)

type 'a state =
  | Todo of (unit -> 'a)
  | Running
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a cell = { mutable st : 'a state }

type pool = {
  n_domains : int;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t; (* claim-and-run closures *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  tasks : int Atomic.t;
}

type 'a future = Inline of 'a cell | On_pool of { cell : 'a cell; pool : pool }

(* Run the claimed body outside the lock, publish the outcome, wake
   every waiter (awaiters of this cell and helpers looking for work). *)
let settle pool cell f =
  let outcome =
    match f () with
    | v -> Done v
    | exception e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  Atomic.incr pool.tasks;
  Mutex.lock pool.mutex;
  cell.st <- outcome;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex

(* Claim-and-run closure for a queued cell; a no-op if an awaiter
   already claimed it inline. Called without the lock held. *)
let try_run pool cell () =
  Mutex.lock pool.mutex;
  match cell.st with
  | Todo f ->
    cell.st <- Running;
    Mutex.unlock pool.mutex;
    settle pool cell f
  | Running | Done _ | Failed _ -> Mutex.unlock pool.mutex

let worker pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stopped do
      Condition.wait pool.cond pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stopped *)
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

module Pool = struct
  type t = pool

  let create ~domains =
    if domains < 1 then invalid_arg "Parallel.Pool.create: domains < 1";
    let pool =
      { n_domains = domains; mutex = Mutex.create ();
        cond = Condition.create (); queue = Queue.create (); stopped = false;
        workers = []; tasks = Atomic.make 0 }
    in
    pool.workers <-
      List.init (domains - 1) (fun _ -> Domain.spawn (worker pool));
    pool

  let domains t = t.n_domains

  let tasks_run t = Atomic.get t.tasks

  let shutdown t =
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.cond;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    List.iter Domain.join workers

  let check_live t caller =
    if t.stopped then invalid_arg (caller ^ ": pool is shut down")

  let spawn t f =
    check_live t "Parallel.Pool.spawn";
    let cell = { st = Todo f } in
    Mutex.lock t.mutex;
    Queue.push (try_run t cell) t.queue;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    cell

  (* Wait for [cell], helping with queued work rather than sleeping
     whenever there is any. *)
  let rec await_cell t cell =
    Mutex.lock t.mutex;
    match cell.st with
    | Done v ->
      Mutex.unlock t.mutex;
      Ok v
    | Failed (e, bt) ->
      Mutex.unlock t.mutex;
      Error (e, bt)
    | Todo f ->
      cell.st <- Running;
      Mutex.unlock t.mutex;
      settle t cell f;
      await_cell t cell
    | Running ->
      if Queue.is_empty t.queue then Condition.wait t.cond t.mutex
      else begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex
      end;
      Mutex.unlock t.mutex;
      await_cell t cell

  let map t f xs =
    check_live t "Parallel.Pool.map";
    let cells = List.map (fun x -> spawn t (fun () -> f x)) xs in
    (* Collect every result before raising so no task is left running
       against state the caller mutates after the map returns; the
       earliest-index failure wins, as in sequential List.map. *)
    let outcomes = List.map (fun cell -> await_cell t cell) cells in
    List.map
      (function
        | Ok v -> v
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      outcomes

  (* Process-wide pool registry: one pool per size, shut down at exit so
     blocked workers cannot keep the runtime alive. *)
  let registry : (int, t) Hashtbl.t = Hashtbl.create 4

  let registry_mutex = Mutex.create ()

  let exit_hook_installed = ref false

  let get ~domains =
    if domains < 1 then invalid_arg "Parallel.Pool.get: domains < 1";
    Mutex.lock registry_mutex;
    let pool =
      match Hashtbl.find_opt registry domains with
      | Some p when not p.stopped -> p
      | Some _ | None ->
        let p = create ~domains in
        Hashtbl.replace registry domains p;
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit (fun () ->
              Mutex.lock registry_mutex;
              let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
              Hashtbl.reset registry;
              Mutex.unlock registry_mutex;
              List.iter shutdown pools)
        end;
        p
    in
    Mutex.unlock registry_mutex;
    pool
end

module Exec = struct
  type t = Sequential | Pooled of { pool : Pool.t; shards : int }

  let sequential = Sequential

  let pooled ?shards pool =
    let shards =
      match shards with Some s -> s | None -> Pool.domains pool
    in
    if shards < 1 then invalid_arg "Parallel.Exec.pooled: shards < 1";
    Pooled { pool; shards }

  let is_sequential = function Sequential -> true | Pooled _ -> false

  let domains = function
    | Sequential -> 1
    | Pooled { pool; _ } -> Pool.domains pool

  let shards = function Sequential -> 1 | Pooled { shards; _ } -> shards

  let map t f xs =
    match t with
    | Sequential -> List.map f xs
    | Pooled { pool; _ } -> Pool.map pool f xs

  let spawn t f =
    match t with
    | Sequential -> Inline { st = Todo f }
    | Pooled { pool; _ } -> On_pool { cell = Pool.spawn pool f; pool }

  let await = function
    | Inline cell -> (
      match cell.st with
      | Todo f ->
        (* Deferred, not eager: the sequential policy runs the body at
           the await point so traces match the pre-pool evaluation order
           exactly. *)
        (match f () with
        | v ->
          cell.st <- Done v;
          v
        | exception e ->
          cell.st <- Failed (e, Printexc.get_raw_backtrace ());
          raise e)
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Running -> assert false)
    | On_pool { cell; pool } -> (
      match Pool.await_cell pool cell with
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
end

module Config = struct
  type t = { domains : int; shards : int; model_overlap : bool }

  let sequential = { domains = 1; shards = 1; model_overlap = false }

  let env_int name default =
    match Sys.getenv_opt name with
    | None | Some "" -> default
    | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> default)

  let default () =
    let domains = env_int "MVC_DOMAINS" 1 in
    { domains; shards = env_int "MVC_SHARDS" (max 1 domains);
      model_overlap = false }

  let exec t =
    if t.domains <= 1 then Exec.sequential
    else Exec.pooled ~shards:(max 1 t.shards) (Pool.get ~domains:t.domains)
end

let shard_threshold = 1024

let makespan ~lanes durations =
  if lanes < 1 then invalid_arg "Parallel.makespan: lanes < 1";
  match durations with
  | [] -> 0.0
  | _ ->
    let sorted = List.stable_sort (fun a b -> Float.compare b a) durations in
    let lane = Array.make lanes 0.0 in
    List.iter
      (fun d ->
        let best = ref 0 in
        Array.iteri (fun i load -> if load < lane.(!best) then best := i) lane;
        lane.(!best) <- lane.(!best) +. d)
      sorted;
    Array.fold_left Float.max 0.0 lane
