open Relational

type state = {
  engine : Sim.Engine.t;
  compute_latency : batch:int -> float;
  exec : Parallel.Exec.t;
  view : Query.View.t;
  plan : Query.Compiled.t; (* the view definition, compiled once *)
  delta_fn :
    (pre:Database.t -> Update.Transaction.t -> Signed_bag.t) option;
  emit : Query.Action_list.t -> unit;
  queue : Update.Transaction.t Queue.t;
  mutable cache : Database.t;
  mutable busy : bool;
}

let rec pump st =
  if (not st.busy) && not (Queue.is_empty st.queue) then begin
    st.busy <- true;
    let txn = Queue.pop st.queue in
    (* The delta runs as a future over a snapshot of the pre-state
       (Database.t is persistent, so [pre] is immutable); it is joined in
       the emit event, so the simulated timeline is unchanged — a pooled
       exec only moves real work off this domain. *)
    let pre = st.cache in
    let fut =
      Parallel.Exec.spawn st.exec (fun () ->
          let delta =
            match st.delta_fn with
            | Some f -> f ~pre txn
            | None ->
              let changes = Query.Delta.of_transaction txn in
              Query.Delta.eval_plan ~exec:st.exec ~pre changes st.plan
          in
          Query.Action_list.delta ~view:(Query.View.name st.view)
            ~state:txn.Update.Transaction.id delta)
    in
    st.cache <- Database.apply_relevant st.cache txn;
    Sim.Engine.schedule_after st.engine (st.compute_latency ~batch:1)
      (fun () ->
        st.emit (Parallel.Exec.await fut);
        st.busy <- false;
        pump st)
  end

let create ~engine ~compute_latency ?(exec = Parallel.Exec.sequential)
    ?delta_fn ~initial ~view ~emit () =
  let cache = Database.restrict initial (Query.View.base_relations view) in
  let plan =
    Query.Compiled.compile ~lookup:(Database.schema cache)
      view.Query.View.def
  in
  let st =
    { engine; compute_latency; exec; view; plan; delta_fn; emit;
      queue = Queue.create (); cache; busy = false }
  in
  { Vm.view; level = Vm.Complete;
    receive =
      (fun txn ->
        Queue.push txn st.queue;
        pump st);
    flush = (fun () -> ());
    needs_ticks = false;
    pending = (fun () -> Queue.length st.queue + if st.busy then 1 else 0) }
