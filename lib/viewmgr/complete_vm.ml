open Relational

type state = {
  engine : Sim.Engine.t;
  compute_latency : batch:int -> float;
  view : Query.View.t;
  plan : Query.Compiled.t; (* the view definition, compiled once *)
  emit : Query.Action_list.t -> unit;
  queue : Update.Transaction.t Queue.t;
  mutable cache : Database.t;
  mutable busy : bool;
}

let rec pump st =
  if (not st.busy) && not (Queue.is_empty st.queue) then begin
    st.busy <- true;
    let txn = Queue.pop st.queue in
    let changes = Query.Delta.of_transaction txn in
    let delta = Query.Delta.eval_plan ~pre:st.cache changes st.plan in
    st.cache <- Database.apply_relevant st.cache txn;
    let al =
      Query.Action_list.delta ~view:(Query.View.name st.view)
        ~state:txn.Update.Transaction.id delta
    in
    Sim.Engine.schedule_after st.engine (st.compute_latency ~batch:1)
      (fun () ->
        st.emit al;
        st.busy <- false;
        pump st)
  end

let create ~engine ~compute_latency ~initial ~view ~emit () =
  let cache = Database.restrict initial (Query.View.base_relations view) in
  let plan =
    Query.Compiled.compile ~lookup:(Database.schema cache)
      view.Query.View.def
  in
  let st =
    { engine; compute_latency; view; plan; emit; queue = Queue.create ();
      cache; busy = false }
  in
  { Vm.view; level = Vm.Complete;
    receive =
      (fun txn ->
        Queue.push txn st.queue;
        pump st);
    flush = (fun () -> ());
    needs_ticks = false;
    pending = (fun () -> Queue.length st.queue + if st.busy then 1 else 0) }
