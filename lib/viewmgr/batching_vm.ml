open Relational

type state = {
  engine : Sim.Engine.t;
  compute_latency : batch:int -> float;
  exec : Parallel.Exec.t;
  max_batch : int;
  view : Query.View.t;
  plan : Query.Compiled.t; (* the view definition, compiled once *)
  emit : Query.Action_list.t -> unit;
  queue : Update.Transaction.t Queue.t;
  mutable cache : Database.t;
  mutable busy : bool;
}

let rec pump st =
  if (not st.busy) && not (Queue.is_empty st.queue) then begin
    st.busy <- true;
    let rec drain acc n =
      if n >= st.max_batch || Queue.is_empty st.queue then List.rev acc
      else drain (Queue.pop st.queue :: acc) (n + 1)
    in
    let batch = drain [] 0 in
    let changes = Query.Delta.of_transactions batch in
    let pre = st.cache in
    let last =
      match List.rev batch with
      | txn :: _ -> txn.Update.Transaction.id
      | [] -> assert false
    in
    let fut =
      Parallel.Exec.spawn st.exec (fun () ->
          let delta =
            Query.Delta.eval_plan ~exec:st.exec ~pre changes st.plan
          in
          Query.Action_list.delta ~view:(Query.View.name st.view) ~state:last
            delta)
    in
    st.cache <-
      List.fold_left Database.apply_relevant st.cache batch;
    Sim.Engine.schedule_after st.engine
      (st.compute_latency ~batch:(List.length batch))
      (fun () ->
        st.emit (Parallel.Exec.await fut);
        st.busy <- false;
        pump st)
  end

let create ~engine ~compute_latency ?(exec = Parallel.Exec.sequential)
    ?(max_batch = max_int) ~initial ~view ~emit () =
  let cache = Database.restrict initial (Query.View.base_relations view) in
  let plan =
    Query.Compiled.compile ~lookup:(Database.schema cache)
      view.Query.View.def
  in
  let st =
    { engine; compute_latency; exec; max_batch; view; plan; emit;
      queue = Queue.create (); cache; busy = false }
  in
  { Vm.view; level = Vm.Strongly_consistent;
    receive =
      (fun txn ->
        Queue.push txn st.queue;
        pump st);
    flush = (fun () -> ());
    needs_ticks = false;
    pending = (fun () -> Queue.length st.queue + if st.busy then 1 else 0) }
