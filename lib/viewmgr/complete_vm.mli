(** The complete view manager.

    Processes one update at a time: for each relevant transaction [U_j] it
    computes the exact incremental delta of its view against a local cache
    of the base relations (maintained in update order), applies the
    transaction to the cache, and emits [AL^x_j] after a simulated
    computation latency. The emitted warehouse states pass through every
    source state — the manager is complete (Section 2.2), which is what the
    Simple Painting Algorithm requires.

    The manager is a single-server queue: transactions arriving while one
    is being processed wait, preserving order. Under high update rates the
    queue grows — the effect benchmark P2 measures. *)

val create :
  engine:Sim.Engine.t ->
  compute_latency:(batch:int -> float) ->
  ?exec:Parallel.Exec.t ->
  ?delta_fn:
    (pre:Relational.Database.t ->
    Relational.Update.Transaction.t ->
    Relational.Signed_bag.t) ->
  initial:Relational.Database.t ->
  view:Query.View.t ->
  emit:(Query.Action_list.t -> unit) ->
  unit ->
  Vm.t
(** [initial] must contain (at least) the view's base relations at source
    state [ss_0]. [compute_latency ~batch:1] is sampled per update.
    With a pooled [exec] (default sequential) the delta computation runs
    as a future on the domain pool, joined at the emit event; results and
    the simulated timeline are identical.

    [delta_fn], when given, replaces the per-view compiled delta plan as
    the delta computation (the shared-plan engine routes views through
    its DAG this way); it receives the manager's pre-transaction base
    cache and must return exactly what the plan would. *)
