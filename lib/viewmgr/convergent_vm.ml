open Relational

type state = {
  engine : Sim.Engine.t;
  emit_delay : unit -> float;
  view : Query.View.t;
  plan : Query.Compiled.t; (* the view definition, compiled once *)
  emit : Query.Action_list.t -> unit;
  mutable cache : Database.t;
  mutable in_flight : int;
}

let create ~engine ~emit_delay ~initial ~view ~emit () =
  let cache = Database.restrict initial (Query.View.base_relations view) in
  let plan =
    Query.Compiled.compile ~lookup:(Database.schema cache)
      view.Query.View.def
  in
  let st = { engine; emit_delay; view; plan; emit; cache; in_flight = 0 } in
  { Vm.view; level = Vm.Convergent;
    receive =
      (fun txn ->
        let changes = Query.Delta.of_transaction txn in
        let delta = Query.Delta.eval_plan ~pre:st.cache changes st.plan in
        st.cache <- Database.apply_relevant st.cache txn;
        let al =
          Query.Action_list.delta ~view:(Query.View.name st.view)
            ~state:txn.Update.Transaction.id delta
        in
        st.in_flight <- st.in_flight + 1;
        (* Deliberately unordered: each list leaves after its own delay. *)
        Sim.Engine.schedule_after st.engine (st.emit_delay ()) (fun () ->
            st.in_flight <- st.in_flight - 1;
            st.emit al));
    flush = (fun () -> ());
    needs_ticks = false;
    pending = (fun () -> st.in_flight) }
