(** The complete-N view manager (Section 6.3).

    "A view manager may be complete-N: it may process N source updates at
    a time and maintain the view consistently after every N updates." The
    manager accumulates exactly [n] relevant transactions, then computes
    one combined delta and emits one action list (state = id of the N-th).
    A trailing partial batch is only emitted on {!Vm.t.flush}.

    Because one action list covers N VUT rows, SPA cannot merge this
    manager's output; the system must run PA (the weakest-level rule of
    Section 6.3). *)

val create :
  engine:Sim.Engine.t ->
  compute_latency:(batch:int -> float) ->
  ?exec:Parallel.Exec.t ->
  n:int ->
  initial:Relational.Database.t ->
  view:Query.View.t ->
  emit:(Query.Action_list.t -> unit) ->
  unit ->
  Vm.t
(** With a pooled [exec] (default sequential) the batch delta runs as a
    future on the domain pool, joined at the emit event.
    @raise Invalid_argument if [n < 1]. *)
