(** The strongly consistent (batching) view manager.

    "A strongly consistent view manager can batch multiple updates, [U_i]
    through [U_{i+k}], bringing the warehouse from a state consistent with
    the sources before [U_i] to a state consistent with the sources after
    [U_{i+k}]" (Section 2.2). This manager is a greedy-batching single
    server: when it finishes one delta computation it drains its whole
    input queue into the next batch, computes one combined delta against
    its base-relation cache, and emits a single action list whose [state]
    is the last update in the batch. Under load, batches grow and action
    lists become intertwined — exactly the input class the Painting
    Algorithm exists for; when the system is idle, batches have size one
    and the manager behaves like a complete one. [max_batch] caps the
    batch size. *)

val create :
  engine:Sim.Engine.t ->
  compute_latency:(batch:int -> float) ->
  ?exec:Parallel.Exec.t ->
  ?max_batch:int ->
  initial:Relational.Database.t ->
  view:Query.View.t ->
  emit:(Query.Action_list.t -> unit) ->
  unit ->
  Vm.t
(** With a pooled [exec] (default sequential) the batch delta runs as a
    future on the domain pool, joined at the emit event; results and the
    simulated timeline are identical. *)
