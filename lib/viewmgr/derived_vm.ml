open Relational

type state = {
  engine : Sim.Engine.t;
  compute_latency : batch:int -> float;
  aux : Query.View.t list;
  aux_plans : (string * Query.Compiled.t) list; (* per aux view, compiled *)
  view : Query.View.t;
  over_aux_plan : Query.Compiled.t;
  emit : Query.Action_list.t -> unit;
  queue : Update.Transaction.t Queue.t;
  mutable base_cache : Database.t; (* base relations the aux views need *)
  mutable aux_cache : Database.t; (* materialized auxiliary views *)
  mutable busy : bool;
}

let rec pump st =
  if (not st.busy) && not (Queue.is_empty st.queue) then begin
    st.busy <- true;
    let txn = Queue.pop st.queue in
    let base_changes = Query.Delta.of_transaction txn in
    (* Level 1: deltas of each auxiliary view from the base cache. *)
    let aux_changes =
      Query.Delta.changes_of_list
        (List.map
           (fun (name, plan) ->
             (name, Query.Delta.eval_plan ~pre:st.base_cache base_changes plan))
           st.aux_plans)
    in
    (* Level 2: the primary view's delta over the materialized
       auxiliaries. *)
    let delta =
      Query.Delta.eval_plan ~pre:st.aux_cache aux_changes st.over_aux_plan
    in
    st.base_cache <- Database.apply_relevant st.base_cache txn;
    st.aux_cache <-
      List.fold_left
        (fun db aux ->
          let name = Query.View.name aux in
          let rel = Database.find db name in
          Database.add name
            (Relation.apply_delta (Query.Delta.change_for aux_changes name) rel)
            db)
        st.aux_cache st.aux;
    let al =
      Query.Action_list.delta ~view:(Query.View.name st.view)
        ~state:txn.Update.Transaction.id delta
    in
    Sim.Engine.schedule_after st.engine (st.compute_latency ~batch:1)
      (fun () ->
        st.emit al;
        st.busy <- false;
        pump st)
  end

let create ~engine ~compute_latency ~initial ~aux ~view ~over_aux ~emit () =
  let aux_names = List.map Query.View.name aux in
  List.iter
    (fun r ->
      if not (List.mem r aux_names) then
        invalid_arg
          (Printf.sprintf
             "Derived_vm: %s is not an auxiliary view of %s" r
             (Query.View.name view)))
    (Query.Algebra.base_relations over_aux);
  let base_relations =
    List.sort_uniq compare (List.concat_map Query.View.base_relations aux)
  in
  let base_cache = Database.restrict initial base_relations in
  let aux_cache =
    Database.of_list
      (List.map
         (fun a -> (Query.View.name a, Query.View.materialize base_cache a))
         aux)
  in
  let aux_plans =
    List.map
      (fun a ->
        ( Query.View.name a,
          Query.Compiled.compile ~lookup:(Database.schema base_cache)
            a.Query.View.def ))
      aux
  in
  let over_aux_plan =
    Query.Compiled.compile ~lookup:(Database.schema aux_cache) over_aux
  in
  let st =
    { engine; compute_latency; aux; aux_plans; view; over_aux_plan; emit;
      queue = Queue.create (); base_cache; aux_cache; busy = false }
  in
  { Vm.view; level = Vm.Complete;
    receive =
      (fun txn ->
        Queue.push txn st.queue;
        pump st);
    flush = (fun () -> ());
    needs_ticks = false;
    pending = (fun () -> Queue.length st.queue + if st.busy then 1 else 0) }
