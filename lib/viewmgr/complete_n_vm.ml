open Relational

type state = {
  engine : Sim.Engine.t;
  compute_latency : batch:int -> float;
  exec : Parallel.Exec.t;
  n : int;
  view : Query.View.t;
  plan : Query.Compiled.t; (* the view definition, compiled once *)
  emit : Query.Action_list.t -> unit;
  queue : Update.Transaction.t Queue.t;
  mutable cache : Database.t;
  mutable busy : bool;
}

let process st batch k =
  st.busy <- true;
  let changes = Query.Delta.of_transactions batch in
  let pre = st.cache in
  let last =
    match List.rev batch with
    | txn :: _ -> txn.Update.Transaction.id
    | [] -> assert false
  in
  let fut =
    Parallel.Exec.spawn st.exec (fun () ->
        let delta = Query.Delta.eval_plan ~exec:st.exec ~pre changes st.plan in
        Query.Action_list.delta ~view:(Query.View.name st.view) ~state:last
          delta)
  in
  st.cache <- List.fold_left Database.apply_relevant st.cache batch;
  Sim.Engine.schedule_after st.engine (st.compute_latency ~batch:(List.length batch))
    (fun () ->
      st.emit (Parallel.Exec.await fut);
      st.busy <- false;
      k ())

let rec pump st =
  if (not st.busy) && Queue.length st.queue >= st.n then begin
    let batch = List.init st.n (fun _ -> Queue.pop st.queue) in
    process st batch (fun () -> pump st)
  end

let flush st =
  if (not st.busy) && not (Queue.is_empty st.queue) then begin
    let batch =
      List.init (Queue.length st.queue) (fun _ -> Queue.pop st.queue)
    in
    process st batch (fun () -> pump st)
  end

let create ~engine ~compute_latency ?(exec = Parallel.Exec.sequential) ~n
    ~initial ~view ~emit () =
  if n < 1 then invalid_arg "Complete_n_vm.create: n < 1";
  let cache = Database.restrict initial (Query.View.base_relations view) in
  let plan =
    Query.Compiled.compile ~lookup:(Database.schema cache)
      view.Query.View.def
  in
  let st =
    { engine; compute_latency; exec; n; view; plan; emit;
      queue = Queue.create (); cache; busy = false }
  in
  { Vm.view; level = Vm.Complete_n n;
    receive =
      (fun txn ->
        Queue.push txn st.queue;
        pump st);
    flush = (fun () -> flush st);
    needs_ticks = false;
    pending = (fun () -> Queue.length st.queue + if st.busy then 1 else 0) }
