(* mvcwh — command-line runner for the MVC warehouse simulator.

     mvcwh list
     mvcwh run --scenario bank --vm batching --rate 60 --seed 3
     mvcwh run --random 7 --transactions 200 --views 6 --merge passthrough
*)

open Cmdliner

let scenario_names =
  List.map (fun s -> s.Workload.Scenarios.name) Workload.Scenarios.all

let find_scenario name =
  List.find_opt
    (fun s -> String.equal s.Workload.Scenarios.name name)
    Workload.Scenarios.all

(* ---- list ---- *)

let list_cmd =
  let run () =
    Fmt.pr "built-in scenarios:@.";
    List.iter
      (fun s ->
        Fmt.pr "  %-14s %d views, %d transactions, relations: %s@."
          s.Workload.Scenarios.name
          (List.length s.views) (List.length s.script)
          (String.concat ", "
             (List.map
                (fun (spec : Source.Sources.spec) -> spec.relation)
                s.specs)))
      Workload.Scenarios.all;
    Fmt.pr
      "@.use `run --random SEED` for a generated workload, and \
       `bench/main.exe` for the paper experiments.@."
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in scenarios")
    Term.(const run $ const ())

(* ---- run ---- *)

let vm_kind_conv =
  let parse = function
    | "complete" -> Ok Whips.System.Complete_vm
    | "selfmaint" -> Ok Whips.System.Selfmaint_vm
    | "batching" -> Ok Whips.System.Batching_vm
    | "strobe" -> Ok Whips.System.Strobe_vm
    | "convergent" -> Ok Whips.System.Convergent_vm
    | s when String.length s > 9 && String.sub s 0 9 = "periodic:" -> (
      match float_of_string_opt (String.sub s 9 (String.length s - 9)) with
      | Some p when p > 0.0 -> Ok (Whips.System.Periodic_vm p)
      | Some _ | None -> Error (`Msg "periodic:<seconds> expects a positive float"))
    | s when String.length s > 9 && String.sub s 0 9 = "complete-" -> (
      match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
      | Some n when n > 0 -> Ok (Whips.System.Complete_n_vm n)
      | Some _ | None -> Error (`Msg "complete-<n> expects a positive integer"))
    | s -> Error (`Msg ("unknown view-manager kind: " ^ s))
  in
  let print ppf = function
    | Whips.System.Complete_vm -> Fmt.string ppf "complete"
    | Whips.System.Selfmaint_vm -> Fmt.string ppf "selfmaint"
    | Whips.System.Batching_vm -> Fmt.string ppf "batching"
    | Whips.System.Strobe_vm -> Fmt.string ppf "strobe"
    | Whips.System.Periodic_vm p -> Fmt.pf ppf "periodic:%g" p
    | Whips.System.Convergent_vm -> Fmt.string ppf "convergent"
    | Whips.System.Complete_n_vm n -> Fmt.pf ppf "complete-%d" n
    | Whips.System.Derived_vm _ -> Fmt.string ppf "derived"
  in
  Arg.conv (parse, print)

let merge_kind_conv =
  let parse = function
    | "auto" -> Ok Whips.System.Auto
    | "spa" -> Ok Whips.System.Force_spa
    | "pa" -> Ok Whips.System.Force_pa
    | "passthrough" -> Ok Whips.System.Force_passthrough
    | "holdall" -> Ok Whips.System.Force_holdall
    | "sequential" -> Ok Whips.System.Sequential
    | s -> Error (`Msg ("unknown merge kind: " ^ s))
  in
  let print ppf = function
    | Whips.System.Auto -> Fmt.string ppf "auto"
    | Whips.System.Force_spa -> Fmt.string ppf "spa"
    | Whips.System.Force_pa -> Fmt.string ppf "pa"
    | Whips.System.Force_passthrough -> Fmt.string ppf "passthrough"
    | Whips.System.Force_holdall -> Fmt.string ppf "holdall"
    | Whips.System.Sequential -> Fmt.string ppf "sequential"
  in
  Arg.conv (parse, print)

let submit_conv =
  let parse = function
    | "serial" -> Ok Warehouse.Submitter.Serial
    | "dependency" -> Ok Warehouse.Submitter.Dependency
    | s when String.length s > 8 && String.sub s 0 8 = "batched-" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some n when n > 0 -> Ok (Warehouse.Submitter.Batched n)
      | Some _ | None -> Error (`Msg "batched-<n> expects a positive integer"))
    | s -> Error (`Msg ("unknown submit policy: " ^ s))
  in
  let print ppf p = Fmt.string ppf (Warehouse.Submitter.policy_name p) in
  Arg.conv (parse, print)

let run_system ~scenario ~file ~random ~transactions ~views ~vm ~merge
    ~submit ~rate ~groups ~semantic_filter ~via_manager ~optimize ~timeline
    ~explain ~seed ~show_states =
  let scen =
    match (scenario, file, random) with
    | _, Some path, _ -> (
      match Workload.Scenario_file.load path with
      | scen -> scen
      | exception Workload.Scenario_file.Invalid_scenario msg ->
        Fmt.epr "invalid scenario file: %s@." msg;
        exit 1
      | exception Workload.Sexp.Parse_error msg ->
        Fmt.epr "parse error: %s@." msg;
        exit 1
      | exception Sys_error msg ->
        Fmt.epr "%s@." msg;
        exit 1)
    | Some name, None, _ -> (
      match find_scenario name with
      | Some s -> s
      | None ->
        Fmt.epr "unknown scenario %s (try: %s)@." name
          (String.concat ", " scenario_names);
        exit 1)
    | None, None, Some gen_seed ->
      Workload.Generator.generate
        { Workload.Generator.default with
          seed = gen_seed;
          n_transactions = transactions;
          n_views = views;
          n_relations = views + 1 }
    | None, None, None -> Workload.Scenarios.paper_views
  in
  let cfg =
    { (Whips.System.default scen) with
      vm_kind = vm;
      merge_kind = merge;
      submit;
      arrival = Whips.System.Poisson rate;
      merge_groups = groups;
      semantic_filter;
      rel_routing =
        (if via_manager then Whips.System.Via_manager else Whips.System.Direct);
      optimize_views = optimize;
      record_timeline = timeline;
      seed }
  in
  let result = Whips.System.run cfg in
  Fmt.pr "scenario       : %s@." scen.Workload.Scenarios.name;
  Fmt.pr "views          : %s@."
    (String.concat ", " (List.map Query.View.name scen.views));
  Fmt.pr "merge algorithm: %s@." result.merge_algorithm;
  Fmt.pr "metrics        : %a@." Whips.Metrics.pp result.metrics;
  if show_states then begin
    Fmt.pr "warehouse states:@.";
    List.iteri
      (fun i ws ->
        Fmt.pr "  ws%-3d %s@." i
          (String.concat "  "
             (List.map
                (fun v ->
                  let name = Query.View.name v in
                  Fmt.str "%s=%a" name Relational.Bag.pp
                    (Relational.Relation.contents
                       (Relational.Database.find ws name)))
                scen.views)))
      (Warehouse.Store.states result.store)
  end;
  if timeline then begin
    Fmt.pr "timeline:@.";
    List.iter
      (fun (t, event) -> Fmt.pr "  %8.4fs  %s@." t event)
      result.timeline
  end;
  let verdict, witness = Whips.System.verdict_with_witness result in
  Fmt.pr "consistency    : %a@." Consistency.Checker.pp_verdict verdict;
  (if explain then
     match witness with
     | None -> Fmt.pr "witness        : none (run is not strongly consistent)@."
     | Some chain ->
       Fmt.pr "witness (warehouse state -> source state per view):@.";
       List.iteri
         (fun j per_view ->
           Fmt.pr "  ws%-3d %s@." j
             (String.concat "  "
                (List.map (fun (v, c) -> Printf.sprintf "%s@ss%d" v c) per_view)))
         chain);
  if not verdict.convergent then exit 2

let run_cmd =
  let scenario =
    Arg.(value & opt (some string) None
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:(Printf.sprintf "Built-in scenario (%s)."
                     (String.concat ", " scenario_names)))
  in
  let file =
    Arg.(value & opt (some string) None
         & info [ "file" ] ~docv:"PATH"
             ~doc:"Load a scenario from an s-expression file (see \
                   lib/workload/scenario_file.mli for the grammar).")
  in
  let random =
    Arg.(value & opt (some int) None
         & info [ "random" ] ~docv:"SEED" ~doc:"Generate a random workload.")
  in
  let transactions =
    Arg.(value & opt int 50
         & info [ "transactions" ] ~doc:"Random workload: transaction count.")
  in
  let views =
    Arg.(value & opt int 4 & info [ "views" ] ~doc:"Random workload: view count.")
  in
  let vm =
    Arg.(value & opt vm_kind_conv Whips.System.Complete_vm
         & info [ "vm" ]
             ~doc:"View managers: complete, batching, strobe, periodic:SEC, \
                   convergent, complete-N.")
  in
  let merge =
    Arg.(value & opt merge_kind_conv Whips.System.Auto
         & info [ "merge" ]
             ~doc:"Merge: auto, spa, pa, passthrough, holdall, sequential.")
  in
  let submit =
    Arg.(value & opt submit_conv Warehouse.Submitter.Serial
         & info [ "submit" ] ~doc:"Commit policy: serial, dependency, batched-N.")
  in
  let rate =
    Arg.(value & opt float 40.0
         & info [ "rate" ] ~doc:"Poisson arrival rate (transactions/s).")
  in
  let groups =
    Arg.(value & opt (some int) None
         & info [ "merge-processes" ] ~doc:"Distribute the merge (Section 6.1).")
  in
  let semantic_filter =
    Arg.(value & flag
         & info [ "semantic-filter" ]
             ~doc:"Integrator rules out provably irrelevant updates.")
  in
  let via_manager =
    Arg.(value & flag
         & info [ "rel-via-manager" ]
             ~doc:"Route REL_i through a relevant view manager (Section \
                   3.2's alternative) instead of directly to the merge.")
  in
  let optimize =
    Arg.(value & flag
         & info [ "optimize-views" ]
             ~doc:"Rewrite view definitions (selection pushdown etc.) \
                   before maintenance.")
  in
  let timeline =
    Arg.(value & flag
         & info [ "timeline" ] ~doc:"Print the full simulated event log.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Print the oracle's witness: which source state each \
                   view was mapped to at every warehouse state.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let show_states =
    Arg.(value & flag
         & info [ "states" ] ~doc:"Print every recorded warehouse state.")
  in
  let run scenario file random transactions views vm merge submit rate groups
      semantic_filter via_manager optimize timeline explain seed show_states =
    run_system ~scenario ~file ~random ~transactions ~views ~vm ~merge
      ~submit ~rate ~groups ~semantic_filter ~via_manager ~optimize ~timeline
      ~explain ~seed ~show_states
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a warehouse scenario through the simulated system and \
             check its consistency level")
    Term.(
      const run $ scenario $ file $ random $ transactions $ views $ vm
      $ merge $ submit $ rate $ groups $ semantic_filter $ via_manager
      $ optimize $ timeline $ explain $ seed $ show_states)

let () =
  let info =
    Cmd.info "mvcwh" ~version:"1.0"
      ~doc:"Multiple View Consistency warehouse simulator (ICDE 1997)"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
