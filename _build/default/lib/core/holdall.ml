module Int_map = Map.Make (Int)

type row_state = {
  mutable expected : string list option; (* REL, when it has arrived *)
  mutable lists : Query.Action_list.t list; (* arrival order *)
}

type t = {
  views : string list;
  emit : Warehouse.Wt.t -> unit;
  mutable rows : row_state Int_map.t;
  mutable held : int;
}

let create ~views ~emit () = { views; emit; rows = Int_map.empty; held = 0 }

let row_state t row =
  match Int_map.find_opt row t.rows with
  | Some st -> st
  | None ->
    let st = { expected = None; lists = [] } in
    t.rows <- Int_map.add row st t.rows;
    st

let receive_rel t ~row ~rel =
  (row_state t row).expected <- Some rel

let receive_action_list t (al : Query.Action_list.t) =
  let st = row_state t al.state in
  st.lists <- st.lists @ [ al ];
  t.held <- t.held + 1

let complete st =
  match st.expected with
  | None -> false
  | Some rel ->
    List.length st.lists = List.length rel
    && List.for_all
         (fun v ->
           List.exists (fun (al : Query.Action_list.t) -> al.view = v) st.lists)
         rel

let flush t =
  let ready, kept =
    Int_map.partition (fun _ st -> complete st) t.rows
  in
  t.rows <- kept;
  Int_map.iter
    (fun row st ->
      (match st.expected with
      | Some [] | None -> ()
      | Some _ ->
        t.held <- t.held - List.length st.lists;
        t.emit (Warehouse.Wt.make ~rows:[ row ] st.lists));
      ())
    ready

let held_action_lists t = t.held

let pending_rows t = Int_map.cardinal t.rows

let quiescent t = Int_map.is_empty t.rows && t.held = 0
