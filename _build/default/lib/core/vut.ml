type color = White | Red | Gray | Black

type entry = { color : color; state : int }

exception Protocol_error of string

module Int_map = Map.Make (Int)

type cell = { mutable color : color; mutable state : int }

type row = cell array

type t = {
  view_order : string array;
  view_index : (string, int) Hashtbl.t;
  mutable table : row Int_map.t;
}

let protocol_error fmt = Fmt.kstr (fun s -> raise (Protocol_error s)) fmt

let create ~views =
  let view_index = Hashtbl.create 16 in
  List.iteri
    (fun i v ->
      if Hashtbl.mem view_index v then
        invalid_arg (Printf.sprintf "Vut.create: duplicate view %s" v);
      Hashtbl.add view_index v i)
    views;
  { view_order = Array.of_list views; view_index; table = Int_map.empty }

let views t = Array.to_list t.view_order

let index t view =
  match Hashtbl.find_opt t.view_index view with
  | Some i -> i
  | None -> protocol_error "unknown view %s" view

let add_row t ~row ~rel =
  if Int_map.mem row t.table then protocol_error "row %d already exists" row;
  let cells =
    Array.map (fun _ -> { color = Black; state = 0 }) t.view_order
  in
  List.iter (fun v -> cells.(index t v) <- { color = White; state = 0 }) rel;
  t.table <- Int_map.add row cells t.table

let has_row t row = Int_map.mem row t.table

let rows t = List.map fst (Int_map.bindings t.table)

let row_count t = Int_map.cardinal t.table

let cell t ~row ~view =
  match Int_map.find_opt row t.table with
  | None -> protocol_error "row %d is not in the VUT" row
  | Some cells -> cells.(index t view)

let entry t ~row ~view =
  let c = cell t ~row ~view in
  ({ color = c.color; state = c.state } : entry)

let set_color t ~row ~view color = (cell t ~row ~view).color <- color

let set_state t ~row ~view state = (cell t ~row ~view).state <- state

let exists_in_row t ~row f =
  match Int_map.find_opt row t.table with
  | None -> protocol_error "row %d is not in the VUT" row
  | Some cells ->
    let n = Array.length cells in
    let rec loop i =
      i < n
      && (f t.view_order.(i) ({ color = cells.(i).color; state = cells.(i).state } : entry)
         || loop (i + 1))
    in
    loop 0

let fold_row t ~row f init =
  match Int_map.find_opt row t.table with
  | None -> protocol_error "row %d is not in the VUT" row
  | Some cells ->
    let acc = ref init in
    Array.iteri
      (fun i c ->
        acc := f t.view_order.(i) ({ color = c.color; state = c.state } : entry) !acc)
      cells;
    !acc

let earlier_with t ~row ~view pred =
  let col = index t view in
  Int_map.fold
    (fun i cells acc ->
      if i < row
         && pred ({ color = cells.(col).color; state = cells.(col).state } : entry)
      then i :: acc
      else acc)
    t.table []
  |> List.rev

let next_red t ~row ~view =
  let col = index t view in
  let found =
    Int_map.fold
      (fun i cells acc ->
        match acc with
        | Some _ -> acc
        | None -> if i > row && cells.(col).color = Red then Some i else None)
      t.table None
  in
  match found with Some i -> i | None -> 0

let purge_row t row = t.table <- Int_map.remove row t.table

let purgeable t ~row =
  not
    (exists_in_row t ~row (fun _ e ->
         match e.color with White | Red -> true | Gray | Black -> false))

let white_rows_up_to t ~view i =
  let col = index t view in
  Int_map.fold
    (fun i' cells acc ->
      if i' <= i && cells.(col).color = White then i' :: acc else acc)
    t.table []
  |> List.rev

let color_letter = function
  | White -> "w"
  | Red -> "r"
  | Gray -> "g"
  | Black -> "b"

let render_row t ?(show_state = false) row =
  match Int_map.find_opt row t.table with
  | None -> protocol_error "row %d is not in the VUT" row
  | Some cells ->
    let render_cell i c =
      if show_state then
        Printf.sprintf "%s=(%s,%d)" t.view_order.(i) (color_letter c.color)
          c.state
      else Printf.sprintf "%s=%s" t.view_order.(i) (color_letter c.color)
    in
    Printf.sprintf "U%d: %s" row
      (String.concat " " (Array.to_list (Array.mapi render_cell cells)))

let render ?show_state t =
  String.concat "\n" (List.map (render_row t ?show_state) (rows t))
