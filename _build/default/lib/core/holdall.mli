(** The non-prompt complete merge of Section 4.4's discussion.

    "We could devise an algorithm that waits until all actions about all
    source updates (U_1 to U_f) arrive, then applies WT_1 ... WT_f to the
    warehouse in that order. This algorithm is also complete under MVC,
    but is clearly not a desirable one because it unnecessarily delays
    actions."

    Implemented as the promptness baseline: everything is buffered until
    {!flush} (the end of the update stream in a simulation), then released
    one warehouse transaction per row, in row order. The freshness
    experiments quantify exactly how much promptness SPA buys. *)

type t

val create : views:string list -> emit:(Warehouse.Wt.t -> unit) -> unit -> t

val receive_rel : t -> row:int -> rel:string list -> unit

val receive_action_list : t -> Query.Action_list.t -> unit

val flush : t -> unit
(** Release every buffered row, ascending, one warehouse transaction each.
    Rows whose action lists have not all arrived are kept (a later flush
    releases them once complete); released rows are forgotten.
    @raise Vut.Protocol_error never. *)

val held_action_lists : t -> int

val pending_rows : t -> int

val quiescent : t -> bool
