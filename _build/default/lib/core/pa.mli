(** The Painting Algorithm (Algorithm 2, Section 5).

    PA is the merge-process algorithm for {e strongly consistent} view
    managers (e.g. Strobe [17]), which may batch several intertwined source
    updates into a single action list: [AL^x_j] brings view [V_x] directly
    to the state after [U_j], covering every pending earlier update
    relevant to [V_x]. SPA breaks down on such lists (Example 4): applying
    a covered row alone would tear the batch apart. PA therefore records,
    in each covered VUT entry, the {e state} [j] it must jump to, and
    [ProcessRow] chases these links — both backwards (Line 4: earlier
    unapplied lists from the same manager) and forwards (Line 5: rows this
    row is batched with) — accumulating the set [ApplyRows] of rows that
    must be applied together in one warehouse transaction.

    Theorem 5.1: PA is strongly consistent under MVC (not complete: views
    may skip intermediate states, which is inherent to batching view
    managers). Like SPA, PA is prompt.

    Note on [ApplyRows] hygiene: the paper resets [ApplyRows] "before the
    next time the procedure is called" after a failed attempt. A stale
    [ApplyRows] would make Line 1 report an unappliable row as appliable,
    so this implementation resets it before {e every} top-level
    [ProcessRow] call (from ProcessAction and from the post-apply rescan of
    Line 9). *)

type stats = {
  rels_received : int;
  als_received : int;
  wts_emitted : int;
  empty_rels : int;
  max_live_rows : int;
  max_rows_per_wt : int;
      (** Largest [ApplyRows] set applied as one transaction. *)
}

type t

val create : views:string list -> emit:(Warehouse.Wt.t -> unit) -> unit -> t

val receive_rel : t -> row:int -> rel:string list -> unit

val receive_action_list : t -> Query.Action_list.t -> unit
(** Deliver [AL^x_j]. The covered rows are the currently white entries of
    column [x] at rows [<= j]; they are painted red with state [j].
    @raise Vut.Protocol_error if entry [(j, x)] is not white. *)

val vut : t -> Vut.t

val held_action_lists : t -> int

val quiescent : t -> bool

val stats : t -> stats
