lib/core/spa.ml: Hashtbl List Printf Query Vut Warehouse
