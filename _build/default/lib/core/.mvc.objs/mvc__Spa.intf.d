lib/core/spa.mli: Query Vut Warehouse
