lib/core/partition.mli: Query
