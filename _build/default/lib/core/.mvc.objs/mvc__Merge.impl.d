lib/core/merge.ml: Holdall Pa Query Spa Vut Warehouse
