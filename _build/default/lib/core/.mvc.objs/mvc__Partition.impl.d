lib/core/partition.ml: Array Hashtbl Int List Query
