lib/core/holdall.ml: Int List Map Query Warehouse
