lib/core/pa.mli: Query Vut Warehouse
