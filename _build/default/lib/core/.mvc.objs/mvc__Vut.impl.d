lib/core/vut.ml: Array Fmt Hashtbl Int List Map Printf String
