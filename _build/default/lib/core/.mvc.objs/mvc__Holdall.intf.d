lib/core/holdall.mli: Query Warehouse
