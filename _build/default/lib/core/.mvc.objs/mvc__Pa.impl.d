lib/core/pa.ml: Hashtbl Int List Printf Query Set Vut Warehouse
