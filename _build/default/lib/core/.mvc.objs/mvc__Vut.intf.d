lib/core/vut.mli:
