lib/core/merge.mli: Query Warehouse
