
let snapshot_db store = Store.snapshot store

let query store expr = Query.Eval.eval (Store.snapshot store) expr

let query_as_of store ~time expr = Query.Eval.eval (Store.as_of store time) expr
