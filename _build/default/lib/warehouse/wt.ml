open Query

type t = { rows : int list; actions : Action_list.t list }

let make ~rows actions = { rows = List.sort_uniq Int.compare rows; actions }

let views t =
  let add seen v = if List.mem v seen then seen else seen @ [ v ] in
  List.fold_left (fun seen (al : Action_list.t) -> add seen al.view) [] t.actions

let last_row t = List.fold_left Int.max 0 t.rows

let depends_on later earlier =
  let earlier_views = views earlier in
  List.exists (fun v -> List.mem v earlier_views) (views later)

let batch wts =
  { rows = List.sort_uniq Int.compare (List.concat_map (fun w -> w.rows) wts);
    actions = List.concat_map (fun w -> w.actions) wts }

let action_count t =
  List.fold_left (fun acc al -> acc + Action_list.action_count al) 0 t.actions

let pp ppf t =
  Fmt.pf ppf "WT{rows=[%a]; %a}"
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    t.rows
    (Fmt.list ~sep:(Fmt.any "; ") Action_list.pp)
    t.actions
