open Relational

type commit = { time : float; transaction : Wt.t; state : Database.t }

type t = {
  initial : Database.t;
  mutable current : Database.t;
  mutable rev_commits : commit list;
  mutable commit_count : int;
}

exception Unknown_view of string

let create bindings =
  let db = Database.of_list bindings in
  { initial = db; current = db; rev_commits = []; commit_count = 0 }

let views t = Database.names t.current

let view t name =
  match Database.find_opt t.current name with
  | Some rel -> rel
  | None -> raise (Unknown_view name)

let snapshot t = t.current

let initial t = t.initial

let apply_action db (al : Query.Action_list.t) =
  match Database.find_opt db al.view with
  | None -> raise (Unknown_view al.view)
  | Some rel ->
    let contents = Query.Action_list.apply al (Relation.contents rel) in
    Database.add al.view (Relation.with_contents rel contents) db

let apply t ?(time = 0.0) (wt : Wt.t) =
  let db = List.fold_left apply_action t.current wt.actions in
  t.current <- db;
  t.rev_commits <- { time; transaction = wt; state = db } :: t.rev_commits;
  t.commit_count <- t.commit_count + 1

let commits t = List.rev t.rev_commits

let commit_count t = t.commit_count

let states t = t.initial :: List.rev_map (fun c -> c.state) t.rev_commits

let as_of t time =
  (* rev_commits is newest first. *)
  let rec find = function
    | [] -> t.initial
    | c :: older -> if c.time <= time then c.state else find older
  in
  find t.rev_commits
