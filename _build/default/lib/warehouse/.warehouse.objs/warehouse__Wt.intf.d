lib/warehouse/wt.mli: Action_list Format Query
