lib/warehouse/reader.ml: Query Store
