lib/warehouse/submitter.ml: List Printf Sim Store Wt
