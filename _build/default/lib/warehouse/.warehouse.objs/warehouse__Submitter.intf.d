lib/warehouse/submitter.mli: Sim Store Wt
