lib/warehouse/store.ml: Database List Query Relation Relational Wt
