lib/warehouse/wt.ml: Action_list Fmt Int List Query
