lib/warehouse/reader.mli: Query Relational Store
