lib/warehouse/store.mli: Database Relation Relational Wt
