(** Warehouse view-maintenance transactions.

    A [WT_i] bundles the action lists of one VUT row (or, for the Painting
    Algorithm, of a set of mutually dependent rows) so the warehouse applies
    them as one atomic unit. [VS(WT)] — the set of views a transaction
    updates — drives the dependency relation of Section 4.3: [WT_j] depends
    on [WT_i] when [j > i] and their view sets intersect, and dependent
    transactions must commit in submission order. A batched warehouse
    transaction ([BWT]) concatenates several WTs, trading completeness for
    throughput (batching yields only strong consistency, Section 4.3). *)

open Query

type t = {
  rows : int list;
      (** Source transaction ids covered, ascending. A plain SPA
          transaction covers one row; a PA transaction may cover several
          (its [ApplyRows]); a BWT covers the union of its parts. *)
  actions : Action_list.t list;  (** In application order. *)
}

val make : rows:int list -> Action_list.t list -> t

val views : t -> string list
(** [VS(WT)]: distinct views written, in first-occurrence order. *)

val last_row : t -> int
(** Highest covered source transaction id; 0 for an empty transaction. *)

val depends_on : t -> t -> bool
(** [depends_on later earlier] per Section 4.3: view sets intersect. The
    caller supplies submission order; this only tests the intersection. *)

val batch : t list -> t
(** Concatenate into a BWT, preserving order. *)

val action_count : t -> int

val pp : Format.formatter -> t -> unit
