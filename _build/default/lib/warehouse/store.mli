(** The warehouse view store.

    Holds the materialized views and applies warehouse transactions
    atomically, recording the full warehouse state sequence
    [ws_0, ws_1, ..., ws_q] (Section 2.3: a warehouse state is a vector
    with one element per view). The recorded history is what the
    consistency oracle inspects. *)

open Relational

type commit = {
  time : float;  (** Simulated commit time (0 outside a simulation). *)
  transaction : Wt.t;
  state : Database.t;  (** The warehouse state vector after the commit. *)
}

type t

exception Unknown_view of string

val create : (string * Relation.t) list -> t
(** Initial materializations, one per view. *)

val views : t -> string list

val view : t -> string -> Relation.t
(** @raise Unknown_view if absent. *)

val snapshot : t -> Database.t
(** Current warehouse state vector (views as a database). *)

val initial : t -> Database.t
(** [ws_0]. *)

val apply : t -> ?time:float -> Wt.t -> unit
(** Apply a warehouse transaction atomically: every action list in order,
    then record the new state.
    @raise Unknown_view if an action list targets an unknown view. *)

val commits : t -> commit list
(** Committed transactions, oldest first. *)

val commit_count : t -> int

val states : t -> Database.t list
(** [ws_0 ... ws_q]: initial state followed by the state after each
    commit. *)

val as_of : t -> float -> Database.t
(** The warehouse state visible at a given (simulated) time: the state
    produced by the last commit at or before that instant ([ws_0] before
    any commit). Because states are persistent snapshots this is O(log n)
    bookkeeping and O(1) data. *)
