(** The periodic-refresh view manager (Section 6.3).

    "A view manager may do periodical refreshing instead of incremental
    maintenance. Such a view manager will appear to the merge process as
    if it were an ordinary strongly consistent view manager. The action
    lists from this view manager will tell the warehouse to delete the
    entire old view and insert tuples of the new view."

    The manager keeps a base-relation cache (updated immediately as
    transactions arrive) and, on a period boundary after uncovered updates
    exist, emits a [Refresh] action list carrying the full recomputed view,
    with [state] = the id of the last received transaction. Refresh timers
    are armed lazily (only while uncovered updates exist), so an idle
    system drains. *)

val create :
  engine:Sim.Engine.t ->
  period:float ->
  compute_latency:(batch:int -> float) ->
  initial:Relational.Database.t ->
  view:Query.View.t ->
  emit:(Query.Action_list.t -> unit) ->
  unit ->
  Vm.t
(** @raise Invalid_argument if [period <= 0]. *)
