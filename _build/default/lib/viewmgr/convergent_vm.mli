(** The convergence-only view manager (Section 6.3).

    "A view manager may only guarantee the convergence of the view it
    manages... the merge process can just pass along all ALs it received,
    and also guarantees the convergence of the warehouse views."

    This manager computes correct per-update deltas against its cache but
    emits each action list after an independently sampled delay straight
    onto the engine — deliberately {e not} through a FIFO channel — so
    lists may reach the merge out of order. Signed-bag deltas commute, so
    the view still converges to the correct final state, but intermediate
    warehouse states may be inconsistent. Pair it with the pass-through
    merge; the consistency oracle classifies the result as convergent but
    not strongly consistent. *)

val create :
  engine:Sim.Engine.t ->
  emit_delay:(unit -> float) ->
  initial:Relational.Database.t ->
  view:Query.View.t ->
  emit:(Query.Action_list.t -> unit) ->
  unit ->
  Vm.t
