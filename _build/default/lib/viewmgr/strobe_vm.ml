open Relational

type state = {
  view : Query.View.t;
  query : Query.Algebra.t -> ((Bag.t * int) -> unit) -> unit;
  emit : Query.Action_list.t -> unit;
  mutable high : int; (* last transaction id seen (ticks included) *)
  mutable covered : int; (* last id reflected in an emitted refresh *)
  mutable last_relevant : int; (* last relevant id received *)
  mutable uncovered : int list; (* relevant ids > covered, descending *)
  mutable outstanding : bool;
  mutable held_answer : (Bag.t * int) option;
}

(* Emit the held answer once the update stream has caught up with the
   version the sources reported; otherwise keep holding. *)
let rec settle st =
  match st.held_answer with
  | Some (contents, version) when st.high >= version ->
    st.held_answer <- None;
    let state =
      (* The view is unchanged between the last relevant update <= version
         and [version] itself, so the refresh names a row the merge
         actually has. *)
      List.fold_left
        (fun acc id -> if id <= version then max acc id else acc)
        st.covered st.uncovered
    in
    if state > st.covered then
      st.emit
        (Query.Action_list.refresh ~view:(Query.View.name st.view) ~state
           contents);
    st.covered <- max st.covered version;
    st.uncovered <- List.filter (fun id -> id > version) st.uncovered;
    maybe_query st
  | Some _ | None -> ()

and maybe_query st =
  if (not st.outstanding) && st.held_answer = None && st.uncovered <> []
  then begin
    st.outstanding <- true;
    st.query st.view.Query.View.def (fun (contents, version) ->
        st.outstanding <- false;
        st.held_answer <- Some (contents, version);
        settle st)
  end

let create ~engine:_ ~query ~view ~emit () =
  let st =
    { view; query; emit; high = 0; covered = 0; last_relevant = 0;
      uncovered = []; outstanding = false; held_answer = None }
  in
  { Vm.view; level = Vm.Strongly_consistent;
    receive =
      (fun txn ->
        let id = txn.Update.Transaction.id in
        st.high <- max st.high id;
        let relevant =
          List.exists
            (fun r -> Query.View.uses st.view r)
            (Update.Transaction.relations txn)
        in
        if relevant && id > st.covered then begin
          st.last_relevant <- max st.last_relevant id;
          st.uncovered <- id :: st.uncovered
        end;
        settle st;
        maybe_query st);
    flush = (fun () -> ());
    needs_ticks = true;
    pending =
      (fun () ->
        List.length st.uncovered + (if st.outstanding then 1 else 0)
        + match st.held_answer with Some _ -> 1 | None -> 0) }
