type level = Complete | Strongly_consistent | Convergent | Complete_n of int

type t = {
  view : Query.View.t;
  level : level;
  receive : Relational.Update.Transaction.t -> unit;
  flush : unit -> unit;
  needs_ticks : bool;
  pending : unit -> int;
}

let name t = Query.View.name t.view

let level_name = function
  | Complete -> "complete"
  | Strongly_consistent -> "strongly-consistent"
  | Convergent -> "convergent"
  | Complete_n n -> Printf.sprintf "complete-%d" n

let pp_level ppf l = Fmt.string ppf (level_name l)
