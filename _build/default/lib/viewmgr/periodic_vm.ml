open Relational

type state = {
  engine : Sim.Engine.t;
  period : float;
  compute_latency : batch:int -> float;
  view : Query.View.t;
  emit : Query.Action_list.t -> unit;
  mutable cache : Database.t;
  mutable last_received : int;
  mutable covered : int; (* last update id reflected in an emitted refresh *)
  mutable uncovered_count : int;
  mutable timer_armed : bool;
  mutable busy : bool;
}

let refresh st k =
  st.busy <- true;
  let state = st.last_received in
  let batch = st.uncovered_count in
  let contents =
    Relation.contents (Query.View.materialize st.cache st.view)
  in
  let al =
    Query.Action_list.refresh ~view:(Query.View.name st.view) ~state contents
  in
  Sim.Engine.schedule_after st.engine (st.compute_latency ~batch) (fun () ->
      st.emit al;
      st.covered <- state;
      st.uncovered_count <- 0;
      st.busy <- false;
      k ())

let rec arm_timer st =
  if (not st.timer_armed) && (not st.busy) && st.last_received > st.covered
  then begin
    st.timer_armed <- true;
    Sim.Engine.schedule_after st.engine st.period (fun () ->
        st.timer_armed <- false;
        if (not st.busy) && st.last_received > st.covered then
          refresh st (fun () -> arm_timer st))
  end

let create ~engine ~period ~compute_latency ~initial ~view ~emit () =
  if period <= 0.0 then invalid_arg "Periodic_vm.create: period <= 0";
  let st =
    { engine; period; compute_latency; view; emit;
      cache = Database.restrict initial (Query.View.base_relations view);
      last_received = 0; covered = 0; uncovered_count = 0;
      timer_armed = false; busy = false }
  in
  { Vm.view; level = Vm.Strongly_consistent;
    receive =
      (fun txn ->
        st.cache <- Database.apply_relevant st.cache txn;
        st.last_received <- txn.Update.Transaction.id;
        st.uncovered_count <- st.uncovered_count + 1;
        arm_timer st);
    flush =
      (fun () ->
        if (not st.busy) && st.last_received > st.covered then
          refresh st (fun () -> ()));
    needs_ticks = false;
    pending = (fun () -> st.uncovered_count) }
