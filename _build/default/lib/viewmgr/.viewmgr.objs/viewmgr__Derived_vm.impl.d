lib/viewmgr/derived_vm.ml: Database List Printf Query Queue Relation Relational Sim Update Vm
