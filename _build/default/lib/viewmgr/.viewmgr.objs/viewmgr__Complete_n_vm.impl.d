lib/viewmgr/complete_n_vm.ml: Database List Query Queue Relational Sim Update Vm
