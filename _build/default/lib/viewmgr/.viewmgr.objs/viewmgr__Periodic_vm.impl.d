lib/viewmgr/periodic_vm.ml: Database Query Relation Relational Sim Update Vm
