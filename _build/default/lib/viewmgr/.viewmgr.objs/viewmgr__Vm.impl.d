lib/viewmgr/vm.ml: Fmt Printf Query Relational
