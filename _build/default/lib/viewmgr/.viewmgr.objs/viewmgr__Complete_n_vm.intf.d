lib/viewmgr/complete_n_vm.mli: Query Relational Sim Vm
