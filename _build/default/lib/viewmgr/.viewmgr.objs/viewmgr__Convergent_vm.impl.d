lib/viewmgr/convergent_vm.ml: Database Query Relational Sim Update Vm
