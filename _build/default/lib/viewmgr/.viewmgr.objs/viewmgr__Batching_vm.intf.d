lib/viewmgr/batching_vm.mli: Query Relational Sim Vm
