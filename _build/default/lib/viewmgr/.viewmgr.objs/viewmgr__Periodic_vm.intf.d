lib/viewmgr/periodic_vm.mli: Query Relational Sim Vm
