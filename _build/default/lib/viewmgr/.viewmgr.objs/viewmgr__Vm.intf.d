lib/viewmgr/vm.mli: Format Query Relational
