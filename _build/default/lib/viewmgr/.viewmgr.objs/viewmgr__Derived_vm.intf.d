lib/viewmgr/derived_vm.mli: Query Relational Sim Vm
