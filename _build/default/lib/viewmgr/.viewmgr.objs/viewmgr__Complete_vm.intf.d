lib/viewmgr/complete_vm.mli: Query Relational Sim Vm
