lib/viewmgr/complete_vm.ml: Database Query Queue Relational Sim Update Vm
