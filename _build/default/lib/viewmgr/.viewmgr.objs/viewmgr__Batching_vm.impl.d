lib/viewmgr/batching_vm.ml: Database List Query Queue Relational Sim Update Vm
