lib/viewmgr/strobe_vm.ml: Bag List Query Relational Update Vm
