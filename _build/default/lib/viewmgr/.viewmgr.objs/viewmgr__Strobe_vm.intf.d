lib/viewmgr/strobe_vm.mli: Query Relational Sim Vm
