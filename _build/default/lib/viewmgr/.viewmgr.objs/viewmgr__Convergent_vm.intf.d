lib/viewmgr/convergent_vm.mli: Query Relational Sim Vm
