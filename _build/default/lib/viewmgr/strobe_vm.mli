(** A Strobe-style source-querying view manager.

    The paper's strongly consistent managers are the Strobe algorithms of
    Zhuge et al. [17]: they keep no local copy of base data and instead
    send queries back to the autonomous sources; because sources answer
    with their {e current} state, answers can reflect updates the manager
    has not yet processed, and the manager must account for this
    intertwining before telling the warehouse anything.

    This implementation captures that behaviour with version-tagged
    answers: when uncovered updates exist (and no query is outstanding),
    the manager asks the sources to evaluate the whole view; the answer
    arrives after a round-trip latency tagged with the global transaction
    id [q] it reflects. The manager holds the answer until its own update
    stream has caught up to [q] (it watches every transaction id — hence
    [needs_ticks]), then emits a [Refresh] action list with
    [state =] the last {e relevant} id [<= q]. Every uncovered update with
    id [<= q] is thereby covered by one action list — the batching of
    intertwined updates the Painting Algorithm handles. Updates that
    arrived after [q] trigger the next query.

    Compared to real Strobe this substitutes a full recompute plus version
    tag for per-update compensating queries; the message pattern, the
    consistency level (strongly consistent, not complete), and the
    batching behaviour under load are the same (see DESIGN.md). *)

val create :
  engine:Sim.Engine.t ->
  query:(Query.Algebra.t -> ((Relational.Bag.t * int) -> unit) -> unit) ->
  view:Query.View.t ->
  emit:(Query.Action_list.t -> unit) ->
  unit ->
  Vm.t
(** [query expr k] must evaluate [expr] against the current source state
    (after a simulated round trip) and call [k (contents, version)] where
    [version] is the id of the last source transaction reflected in
    [contents]. The system assembly provides this wired to
    {!Source.Sources} with channel latencies. *)
