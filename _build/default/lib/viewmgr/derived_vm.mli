(** Maintenance through auxiliary views (references [12] and [8] of the
    paper — Ross/Srivastava/Sudarshan's space-for-time trade and
    Labio/Quass/Adelberg's physical design).

    "In order to maintain [V = R |><| S |><| T], the algorithm might
    choose to materialize relations [R |><| S] and [S |><| T] and compute
    V from them. The two sub-views must be consistent with each other
    whenever V is computed" (Section 1.1) — the paper's flagship example
    of an application {e requiring} MVC.

    This manager maintains a primary view defined {e over auxiliary
    views}: on each source transaction it first computes the auxiliary
    views' deltas from its base-relation cache, then feeds those deltas
    into the primary definition's delta — two cheap delta evaluations over
    pre-joined materializations instead of one expensive evaluation over
    the full base join (the ablation in the micro-benchmarks quantifies
    the gap). The emitted action lists are exactly those of a complete
    manager, so the merge algorithms are unaffected. *)

val create :
  engine:Sim.Engine.t ->
  compute_latency:(batch:int -> float) ->
  initial:Relational.Database.t ->
  aux:Query.View.t list ->
  view:Query.View.t ->
  over_aux:Query.Algebra.t ->
  emit:(Query.Action_list.t -> unit) ->
  unit ->
  Vm.t
(** [aux] are the auxiliary view definitions (over base relations);
    [over_aux] defines the primary view with the auxiliary view {e names}
    as its base relations. [view] is the primary view as known to the rest
    of the system (its definition over base relations is used for
    relevance only; maintenance goes through [over_aux]).
    @raise Invalid_argument if [over_aux] mentions a name that is not an
    auxiliary view. *)
