(** View managers (Section 3.3).

    Each warehouse view is maintained by its own concurrent view manager
    process — the architectural heart of the paper (Figure 1): "each view
    is under the control of a separate process, [so] it is very easy to use
    different maintenance algorithms for each view". A manager receives the
    sub-sequence of source transactions relevant to its view (in order) and
    emits action lists to the merge process (in order).

    The consistency {!level} a manager guarantees determines which merge
    algorithm the system needs (Section 6.3): SPA needs all managers
    [Complete]; [Strongly_consistent] and [Complete_n] managers need PA;
    [Convergent] managers force the pass-through merge.

    Concrete managers are built by {!Complete_vm}, {!Batching_vm},
    {!Strobe_vm}, {!Periodic_vm}, {!Convergent_vm} and {!Complete_n_vm};
    they all produce this record-of-closures, so the system assembly is
    manager-agnostic. *)

type level =
  | Complete
      (** One action list per relevant update; the view passes through
          every consistent state. *)
  | Strongly_consistent
      (** May batch intertwined updates; every emitted state is
          consistent, but intermediate states can be skipped. *)
  | Convergent
      (** Only the final state is guaranteed; intermediate warehouse
          states may be inconsistent. *)
  | Complete_n of int
      (** Processes exactly N updates at a time (Section 6.3). *)

type t = {
  view : Query.View.t;
  level : level;
  receive : Relational.Update.Transaction.t -> unit;
      (** Deliver the next relevant transaction (or, for managers with
          [needs_ticks], any transaction), in integrator order. *)
  flush : unit -> unit;
      (** Force out any batched work at end of run (no-op for managers
          that never hold work indefinitely). *)
  needs_ticks : bool;
      (** True when the manager must see {e every} transaction, relevant
          or not, to track the global sequence number (Strobe-style
          managers use this to decide when a queried source answer is
          covered by the updates received so far). *)
  pending : unit -> int;
      (** Transactions received but not yet reflected in an emitted action
          list. *)
}

val name : t -> string

val level_name : level -> string

val pp_level : Format.formatter -> level -> unit
