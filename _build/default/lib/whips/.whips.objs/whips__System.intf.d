lib/whips/system.mli: Consistency Metrics Query Relational Source Warehouse Workload
