lib/whips/metrics.ml: Fmt Sim
