lib/whips/metrics.mli: Format Sim
