lib/whips/system.ml: Array Consistency Database Fmt Hashtbl Integrator List Metrics Mvc Query Queue Relation Relational Sim Source String Update Viewmgr Warehouse Workload
