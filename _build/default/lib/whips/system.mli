(** Full-system assembly: the WHIPS-style warehouse of Figure 1 on the
    discrete-event simulator.

    [run] wires the pipeline — sources report committed transactions to the
    integrator over a FIFO channel; the integrator numbers them, sends
    [REL_i] to the merge process(es) and copies of [U_i] to the relevant
    view managers; view managers emit action lists to their merge over
    per-manager FIFO channels; merges emit warehouse transactions to the
    commit submitter — executes the scenario's script with the configured
    arrival process, drains the system, and returns everything the
    consistency oracle and the benchmarks need.

    Committed transactions are reported to the integrator in commit order
    (one shared FIFO), matching the paper's Section 2.1 assumption that the
    serializable source schedule coincides with the integrator's update
    numbering. *)

type vm_kind =
  | Complete_vm
  | Batching_vm  (** Strongly consistent, greedy batching. *)
  | Strobe_vm  (** Strongly consistent, source-querying. *)
  | Periodic_vm of float  (** Refresh period (simulated seconds). *)
  | Convergent_vm
  | Complete_n_vm of int
  | Derived_vm of {
      aux : Query.View.t list;
      over_aux : Query.Algebra.t;
    }
      (** Maintain the view through materialized auxiliary views
          (references [12]/[8]; see {!Viewmgr.Derived_vm}). Complete. *)

type merge_kind =
  | Auto
      (** Choose per Section 6.3 from the weakest view-manager level:
          all complete -> SPA; any strongly-consistent/complete-N -> PA;
          any convergent -> pass-through. *)
  | Force_spa
  | Force_pa
  | Force_passthrough
      (** The MVC-violating baseline / convergent merge. *)
  | Force_holdall
      (** Section 4.4's non-prompt strawman: hold every action list until
          the end of the stream, then release row by row. Complete, but
          the promptness baseline for the freshness benchmarks. *)
  | Sequential
      (** The Section 1.1 strawman: one process computes every view's
          delta for an update, one update at a time, bypassing view
          managers and merge entirely. Complete, but with no
          concurrency. *)

(** How [REL_i] reaches the merge (Section 3.2): directly from the
    integrator, or carried by a relevant view manager and forwarded with
    its action lists — fewer messages, but RELs can trail other managers'
    lists, exercising the merge's buffering. *)
type rel_routing = Direct | Via_manager

type arrival =
  | All_at_once  (** Execute the whole script at time 0 (drain test). *)
  | Uniform of float  (** Fixed inter-arrival gap. *)
  | Poisson of float  (** Rate (transactions per simulated second). *)

type latencies = {
  message : float;  (** Mean channel latency (exponential). *)
  compute : float;  (** Mean per-update view-manager delta computation. *)
  commit : float;  (** Mean warehouse commit latency. *)
  query_roundtrip : float;  (** Mean source query round trip (Strobe). *)
  merge : float;  (** Mean merge-process handling cost per message; the
                      merge is a single-threaded server, so this is what
                      eventually saturates it (benchmark P2). *)
}

val default_latencies : latencies

(** Fault injection for the resilience tests: drop one message on a view
    manager's action-list channel. The painting algorithms then hold every
    dependent row forever — progress stops (the run raises {!Stuck}) but no
    inconsistent state is ever exposed. *)
type fault = Drop_action_list of { view : string; nth : int }

type config = {
  scenario : Workload.Scenarios.t;
  vm_kind : vm_kind;
  vm_overrides : (string * vm_kind) list;
      (** Per-view exceptions to [vm_kind] (mixed systems, Section 6.3). *)
  merge_kind : merge_kind;
  submit : Warehouse.Submitter.policy;
  arrival : arrival;
  latencies : latencies;
  merge_groups : int option;
      (** [Some k]: distribute the merge over up to [k] processes along
          the disjoint-base-relation partition (Section 6.1). [None]: one
          merge process. *)
  semantic_filter : bool;  (** Integrator irrelevance filtering. *)
  rel_routing : rel_routing;
  optimize_views : bool;
      (** Rewrite view definitions with {!Query.Optimize.optimize} before
          handing them to the view managers (semantics-preserving;
          micro-benchmarked in the ablation). *)
  fault : fault option;
  record_timeline : bool;
      (** Record a human-readable event log (source commits, REL routing,
          action-list deliveries, warehouse commits) in the result; used
          by the CLI's [--timeline] and by debugging sessions. *)
  seed : int;
}

val default : Workload.Scenarios.t -> config

type result = {
  config : config;
  store : Warehouse.Store.t;
  sources : Source.Sources.t;
  transactions : Relational.Update.Transaction.t list;
  metrics : Metrics.t;
  merge_algorithm : string;
  timeline : (float * string) list;
      (** Chronological event log (empty unless [record_timeline]). *)
  stuck : bool;
      (** True when an injected fault prevented the run from draining
          (only possible with [fault] set; otherwise {!Stuck} raises). *)
}

exception Stuck of string
(** The system failed to drain without an injected fault — always a bug. *)

val run : config -> result

val verdict : result -> Consistency.Checker.verdict
(** Run the consistency oracle on the recorded source and warehouse state
    sequences. *)

val verdict_with_witness :
  result -> Consistency.Checker.verdict * Consistency.Checker.witness option
(** The oracle verdict together with the per-state mapping to source
    states it found (see {!Consistency.Checker.witness}). *)

val view_contents : result -> string -> Relational.Bag.t
(** Final contents of a view at the warehouse. *)
