(** Atomic values stored in warehouse and source relations.

    The data model is deliberately small: the MVC algorithms of the paper are
    independent of the data model (Section 3.1), so a compact typed value
    domain is enough to express every example and workload while keeping
    comparisons total and deterministic. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

(** Value types, used by {!Schema} to type attributes. [Null] inhabits every
    type. *)
type ty = Bool_ty | Int_ty | Float_ty | String_ty

val compare : t -> t -> int
(** Total order over values; values of different constructors are ordered by
    constructor rank so that heterogeneous comparisons never raise. *)

val equal : t -> t -> bool

val hash : t -> int

val type_of : t -> ty option
(** [type_of v] is [None] for [Null], otherwise the value's type. *)

val conforms : t -> ty -> bool
(** [conforms v ty] holds when [v] may appear in an attribute of type [ty];
    [Null] conforms to every type. *)

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit

val to_string : t -> string

val ty_to_string : ty -> string
