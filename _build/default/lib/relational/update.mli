(** Source updates and source transactions.

    Following Section 2.1 of the paper, the base model has each source
    transaction generate a single tuple insert, delete or modification on one
    relation of one source. Section 6.2 lifts this to transactions with
    several updates spanning several sources; {!Transaction.t} supports both,
    and every algorithm in the repository treats the transaction as the unit
    of consistency. *)

type op =
  | Insert of Tuple.t
  | Delete of Tuple.t
  | Modify of { before : Tuple.t; after : Tuple.t }

type t = { relation : string; op : op }
(** One update against one named base relation. *)

val insert : string -> Tuple.t -> t

val delete : string -> Tuple.t -> t

val modify : string -> before:Tuple.t -> after:Tuple.t -> t

val to_delta : t -> Signed_bag.t
(** The signed-bag effect of the update on its relation. *)

val pp : Format.formatter -> t -> unit

module Transaction : sig
  type update = t

  type t = {
    id : int;  (** Global sequence number assigned by the integrator
                   (or the source group); [U_i] in the paper. *)
    source : string;  (** Originating source (primary source for
                          multi-source transactions). *)
    updates : update list;
  }

  val make : id:int -> source:string -> update list -> t

  val single : id:int -> source:string -> update -> t
  (** The paper's base model: one update per transaction. *)

  val relations : t -> string list
  (** Distinct base relations written, in first-write order. *)

  val delta_for : t -> string -> Signed_bag.t
  (** Combined signed delta of the transaction on one relation. *)

  val pp : Format.formatter -> t -> unit
end
