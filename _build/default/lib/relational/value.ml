type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type ty = Bool_ty | Int_ty | Float_ty | String_ty

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ ->
    Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let type_of = function
  | Null -> None
  | Bool _ -> Some Bool_ty
  | Int _ -> Some Int_ty
  | Float _ -> Some Float_ty
  | String _ -> Some String_ty

let conforms v ty =
  match type_of v with None -> true | Some ty' -> ty = ty'

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s

let pp_ty ppf = function
  | Bool_ty -> Fmt.string ppf "bool"
  | Int_ty -> Fmt.string ppf "int"
  | Float_ty -> Fmt.string ppf "float"
  | String_ty -> Fmt.string ppf "string"

let to_string v = Fmt.str "%a" pp v

let ty_to_string ty = Fmt.str "%a" pp_ty ty
