type op =
  | Insert of Tuple.t
  | Delete of Tuple.t
  | Modify of { before : Tuple.t; after : Tuple.t }

type t = { relation : string; op : op }

let insert relation tup = { relation; op = Insert tup }

let delete relation tup = { relation; op = Delete tup }

let modify relation ~before ~after = { relation; op = Modify { before; after } }

let to_delta t =
  match t.op with
  | Insert tup -> Signed_bag.singleton tup 1
  | Delete tup -> Signed_bag.singleton tup (-1)
  | Modify { before; after } ->
    Signed_bag.add after 1 (Signed_bag.singleton before (-1))

let pp ppf t =
  match t.op with
  | Insert tup -> Fmt.pf ppf "insert %s %a" t.relation Tuple.pp tup
  | Delete tup -> Fmt.pf ppf "delete %s %a" t.relation Tuple.pp tup
  | Modify { before; after } ->
    Fmt.pf ppf "modify %s %a -> %a" t.relation Tuple.pp before Tuple.pp after

module Transaction = struct
  type update = t

  let pp_update = pp

  type t = { id : int; source : string; updates : update list }

  let make ~id ~source updates = { id; source; updates }

  let single ~id ~source update = { id; source; updates = [ update ] }

  let relations t =
    let add seen rel = if List.mem rel seen then seen else seen @ [ rel ] in
    List.fold_left (fun seen u -> add seen u.relation) [] t.updates

  let delta_for t relation =
    List.fold_left
      (fun acc u ->
        if String.equal u.relation relation then
          Signed_bag.sum acc (to_delta u)
        else acc)
      Signed_bag.zero t.updates

  let pp ppf t =
    Fmt.pf ppf "@[T%d@%s{%a}@]" t.id t.source
      (Fmt.list ~sep:(Fmt.any "; ") pp_update)
      t.updates
end
