type t = { schema : Schema.t; contents : Bag.t }

exception Type_error of string

let create schema = { schema; contents = Bag.empty }

let check_tuple schema tup =
  if not (Tuple.conforms schema tup) then
    raise
      (Type_error
         (Fmt.str "tuple %a does not conform to schema %a" Tuple.pp tup
            Schema.pp schema))

let of_tuples schema tuples =
  List.iter (check_tuple schema) tuples;
  { schema; contents = Bag.of_list tuples }

let schema t = t.schema

let contents t = t.contents

let with_contents t contents = { t with contents }

let insert ?count tup t =
  check_tuple t.schema tup;
  { t with contents = Bag.add ?count tup t.contents }

let delete ?count tup t = { t with contents = Bag.remove ?count tup t.contents }

let apply_delta delta t =
  { t with contents = Signed_bag.apply delta t.contents }

let cardinal t = Bag.cardinal t.contents

let is_empty t = Bag.is_empty t.contents

let mem t tup = Bag.mem t.contents tup

let count t tup = Bag.count t.contents tup

let tuples t = Bag.to_list t.contents

let equal a b = Schema.equal a.schema b.schema && Bag.equal a.contents b.contents

let equal_contents a b = Bag.equal a.contents b.contents

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@ %a@]" Schema.pp t.schema Bag.pp t.contents

let to_string t = Fmt.str "%a" pp t
