lib/relational/relation.ml: Bag Fmt List Schema Signed_bag Tuple
