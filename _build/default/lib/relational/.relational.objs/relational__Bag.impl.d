lib/relational/bag.ml: Fmt Int List Map Tuple
