lib/relational/update.ml: Fmt List Signed_bag String Tuple
