lib/relational/schema.ml: Array Fmt Hashtbl List Option Printf Stdlib String Value
