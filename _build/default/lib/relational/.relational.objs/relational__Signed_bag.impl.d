lib/relational/signed_bag.ml: Bag Fmt Int List Map Tuple
