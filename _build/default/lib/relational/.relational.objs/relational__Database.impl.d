lib/relational/database.ml: Fmt List Map Relation String Update
