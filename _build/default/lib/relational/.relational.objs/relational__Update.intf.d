lib/relational/update.mli: Format Signed_bag Tuple
