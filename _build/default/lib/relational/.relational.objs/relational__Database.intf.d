lib/relational/database.mli: Format Relation Schema Update
