lib/relational/bag.mli: Format Tuple
