lib/relational/relation.mli: Bag Format Schema Signed_bag Tuple
