lib/relational/signed_bag.mli: Bag Format Tuple
