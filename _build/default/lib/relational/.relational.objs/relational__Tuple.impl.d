lib/relational/tuple.ml: Array Fmt List Schema Value
