lib/relational/value.ml: Bool Float Fmt Hashtbl Int String
