(** A database state: a finite map from relation names to {!Relation.t}.

    Used both for source base data (a source state [ss_i] in the paper is
    the database holding every base relation across all sources) and as the
    local caches kept by view managers. Persistent, so recording a source
    state sequence for the consistency oracle is a pointer copy. *)

type t

exception Unknown_relation of string

val empty : t

val add : string -> Relation.t -> t -> t
(** Add or replace a relation binding. *)

val of_list : (string * Relation.t) list -> t

val find : t -> string -> Relation.t
(** @raise Unknown_relation if absent. *)

val find_opt : t -> string -> Relation.t option

val mem : t -> string -> bool

val schema : t -> string -> Schema.t
(** @raise Unknown_relation if absent. *)

val names : t -> string list

val restrict : t -> string list -> t
(** Keep only the named relations (absent names ignored). *)

val apply_update : t -> Update.t -> t
(** @raise Unknown_relation if the target relation is absent. *)

val apply_transaction : t -> Update.Transaction.t -> t

val apply_relevant : t -> Update.Transaction.t -> t
(** Like {!apply_transaction}, but updates on relations absent from this
    database are skipped instead of raising — what a view manager's
    partial base-data cache needs when a multi-relation transaction
    (Section 6.2) touches relations outside the view. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
