(** A relation instance: a {!Bag.t} of tuples typed by a {!Schema.t}. *)

type t

exception Type_error of string

val create : Schema.t -> t
(** Empty relation over the schema. *)

val of_tuples : Schema.t -> Tuple.t list -> t
(** @raise Type_error if a tuple does not conform to the schema. *)

val schema : t -> Schema.t

val contents : t -> Bag.t

val with_contents : t -> Bag.t -> t
(** Replace the contents, keeping the schema. Conformance is the caller's
    responsibility (used by the evaluator, which constructs typed bags). *)

val insert : ?count:int -> Tuple.t -> t -> t
(** @raise Type_error if the tuple does not conform. *)

val delete : ?count:int -> Tuple.t -> t -> t

val apply_delta : Signed_bag.t -> t -> t
(** Apply a signed delta to the contents. *)

val cardinal : t -> int

val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val count : t -> Tuple.t -> int

val tuples : t -> Tuple.t list

val equal : t -> t -> bool
(** Schemas and contents both equal. *)

val equal_contents : t -> t -> bool
(** Contents equal, ignoring attribute names (used by the consistency oracle
    to compare a materialized view with its recomputed definition). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
