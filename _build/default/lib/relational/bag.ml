module Tuple_map = Map.Make (Tuple)

(* Invariant: every stored multiplicity is > 0. *)
type t = int Tuple_map.t

let empty = Tuple_map.empty

let is_empty = Tuple_map.is_empty

let cardinal t = Tuple_map.fold (fun _ n acc -> acc + n) t 0

let distinct t = Tuple_map.cardinal t

let count t tup =
  match Tuple_map.find_opt tup t with Some n -> n | None -> 0

let mem t tup = Tuple_map.mem tup t

let check_count count =
  if count <= 0 then invalid_arg "Bag: count must be positive"

let add ?(count = 1) tup t =
  check_count count;
  Tuple_map.update tup
    (function None -> Some count | Some n -> Some (n + count))
    t

let remove ?(count = 1) tup t =
  check_count count;
  Tuple_map.update tup
    (function
      | None -> None
      | Some n when n <= count -> None
      | Some n -> Some (n - count))
    t

let of_list tuples = List.fold_left (fun acc tup -> add tup acc) empty tuples

let to_counted_list t = Tuple_map.bindings t

let to_list t =
  List.concat_map
    (fun (tup, n) -> List.init n (fun _ -> tup))
    (to_counted_list t)

let fold f t init = Tuple_map.fold f t init

let iter f t = Tuple_map.iter f t

let union a b = Tuple_map.fold (fun tup n acc -> add ~count:n tup acc) b a

let diff a b = Tuple_map.fold (fun tup n acc -> remove ~count:n tup acc) b a

let map f t =
  Tuple_map.fold (fun tup n acc -> add ~count:n (f tup) acc) t empty

let filter p t = Tuple_map.filter (fun tup _ -> p tup) t

let equal a b = Tuple_map.equal Int.equal a b

let compare a b = Tuple_map.compare Int.compare a b

let pp ppf t =
  let pp_entry ppf (tup, n) =
    if n = 1 then Tuple.pp ppf tup else Fmt.pf ppf "%a*%d" Tuple.pp tup n
  in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_entry) (to_counted_list t)

let to_string t = Fmt.str "%a" pp t
