module String_map = Map.Make (String)

type t = Relation.t String_map.t

exception Unknown_relation of string

let empty = String_map.empty

let add name rel t = String_map.add name rel t

let of_list bindings =
  List.fold_left (fun acc (name, rel) -> add name rel acc) empty bindings

let find t name =
  match String_map.find_opt name t with
  | Some rel -> rel
  | None -> raise (Unknown_relation name)

let find_opt t name = String_map.find_opt name t

let mem t name = String_map.mem name t

let schema t name = Relation.schema (find t name)

let names t = List.map fst (String_map.bindings t)

let restrict t keep =
  String_map.filter (fun name _ -> List.mem name keep) t

let apply_update t (u : Update.t) =
  let rel = find t u.relation in
  let rel =
    match u.op with
    | Update.Insert tup -> Relation.insert tup rel
    | Update.Delete tup -> Relation.delete tup rel
    | Update.Modify { before; after } ->
      Relation.insert after (Relation.delete before rel)
  in
  String_map.add u.relation rel t

let apply_transaction t (txn : Update.Transaction.t) =
  List.fold_left apply_update t txn.updates

let apply_relevant t (txn : Update.Transaction.t) =
  List.fold_left
    (fun db (u : Update.t) -> if mem db u.relation then apply_update db u else db)
    t txn.updates

let equal a b = String_map.equal Relation.equal a b

let pp ppf t =
  let pp_binding ppf (name, rel) =
    Fmt.pf ppf "@[<v2>%s:@ %a@]" name Relation.pp rel
  in
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut pp_binding)
    (String_map.bindings t)
