open Relational

type t = {
  name : string;
  specs : Source.Sources.spec list;
  views : Query.View.t list;
  script : Update.t list list;
}

let int_schema names = Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)

let rel schema tuples = Relation.of_tuples schema (List.map Tuple.ints tuples)

let spec source relation init = { Source.Sources.source; relation; init }

(* ---- Example 1 (Table 1) ---- *)

let example1 =
  let r = int_schema [ "A"; "B" ]
  and s = int_schema [ "B"; "C" ]
  and t = int_schema [ "C"; "D" ] in
  { name = "example1";
    specs =
      [ spec "src1" "R" (rel r [ [ 1; 2 ] ]);
        spec "src2" "S" (rel s []);
        spec "src3" "T" (rel t [ [ 3; 4 ] ]) ];
    views =
      [ Query.View.make "V1" Query.Algebra.(join (base "R") (base "S"));
        Query.View.make "V2" Query.Algebra.(join (base "S") (base "T")) ];
    script = [ [ Update.insert "S" (Tuple.ints [ 2; 3 ]) ] ] }

(* ---- Examples 2-5 configuration ---- *)

let paper_specs () =
  let r = int_schema [ "A"; "B" ]
  and s = int_schema [ "B"; "C" ]
  and t = int_schema [ "C"; "D" ]
  and q = int_schema [ "D"; "E" ] in
  [ spec "src1" "R" (rel r [ [ 1; 2 ]; [ 7; 2 ] ]);
    spec "src2" "S" (rel s [ [ 2; 3 ] ]);
    spec "src2" "T" (rel t [ [ 3; 4 ] ]);
    spec "src3" "Q" (rel q [ [ 4; 5 ] ]) ]

let paper_view_list =
  [ Query.View.make "V1" Query.Algebra.(join (base "R") (base "S"));
    Query.View.make "V2"
      Query.Algebra.(join_all [ base "S"; base "T"; base "Q" ]);
    Query.View.make "V3" Query.Algebra.(base "Q") ]

let paper_views =
  { name = "paper-views";
    specs = paper_specs ();
    views = paper_view_list;
    script =
      [ [ Update.insert "S" (Tuple.ints [ 2; 8 ]) ];
        [ Update.insert "Q" (Tuple.ints [ 4; 6 ]) ];
        [ Update.delete "S" (Tuple.ints [ 2; 3 ]) ] ] }

let paper_views_q =
  { name = "paper-views-q";
    specs = paper_specs ();
    views = paper_view_list;
    script =
      [ [ Update.insert "S" (Tuple.ints [ 2; 8 ]) ];
        [ Update.insert "Q" (Tuple.ints [ 4; 6 ]) ];
        [ Update.delete "Q" (Tuple.ints [ 4; 5 ]) ] ] }

(* ---- Bank (Section 1.1 motivation + Section 6.2 transfers) ---- *)

let bank =
  let checking = int_schema [ "cust"; "cbal" ]
  and savings = int_schema [ "cust"; "sbal" ] in
  let customers = [ 1; 2; 3; 4; 5 ] in
  let c_rows = List.map (fun c -> [ c; 100 * c ]) customers in
  let s_rows = List.map (fun c -> [ c; 50 * c ]) customers in
  let move rel cust ~from ~into =
    Update.modify rel
      ~before:(Tuple.ints [ cust; from ])
      ~after:(Tuple.ints [ cust; into ])
  in
  { name = "bank";
    specs =
      [ spec "bank-checking" "checking" (rel checking c_rows);
        spec "bank-savings" "savings" (rel savings s_rows) ];
    views =
      [ Query.View.make "linked"
          Query.Algebra.(join (base "checking") (base "savings"));
        Query.View.make "checking_copy" Query.Algebra.(base "checking");
        Query.View.make "promo"
          Query.Algebra.(
            select (Query.Pred.ge "cbal" (Value.Int 300))
              (join (base "checking") (base "savings"))) ];
    script =
      [ (* deposit into checking of customer 1 *)
        [ move "checking" 1 ~from:100 ~into:400 ];
        (* transfer 100 from checking to savings for customer 2: one
           transaction spanning both sources *)
        [ move "checking" 2 ~from:200 ~into:100;
          move "savings" 2 ~from:100 ~into:200 ];
        (* withdrawal from savings of customer 3 *)
        [ move "savings" 3 ~from:150 ~into:50 ];
        (* transfer for customer 4 *)
        [ move "checking" 4 ~from:400 ~into:250;
          move "savings" 4 ~from:200 ~into:350 ] ] }

(* ---- Auxiliary views for efficient maintenance of V = R |><| S |><| T ---- *)

let auxiliary =
  let r = int_schema [ "A"; "B" ]
  and s = int_schema [ "B"; "C" ]
  and t = int_schema [ "C"; "D" ] in
  { name = "auxiliary";
    specs =
      [ spec "src1" "R" (rel r [ [ 1; 2 ]; [ 9; 3 ] ]);
        spec "src1" "S" (rel s [ [ 2; 3 ]; [ 3; 4 ] ]);
        spec "src2" "T" (rel t [ [ 3; 4 ]; [ 4; 5 ] ]) ];
    views =
      [ Query.View.make "RS" Query.Algebra.(join (base "R") (base "S"));
        Query.View.make "ST" Query.Algebra.(join (base "S") (base "T"));
        Query.View.make "V"
          Query.Algebra.(join_all [ base "R"; base "S"; base "T" ]) ];
    script =
      [ [ Update.insert "S" (Tuple.ints [ 2; 4 ]) ];
        [ Update.insert "R" (Tuple.ints [ 5; 2 ]) ];
        [ Update.delete "T" (Tuple.ints [ 3; 4 ]) ];
        [ Update.insert "T" (Tuple.ints [ 4; 7 ]) ];
        [ Update.delete "S" (Tuple.ints [ 3; 4 ]) ] ] }

(* ---- Retail star schema ---- *)

let retail_star =
  let sales = int_schema [ "sku"; "store"; "qty" ]
  and product = int_schema [ "sku"; "cat" ]
  and store = int_schema [ "store"; "region" ] in
  let sales_rows =
    [ [ 1; 1; 5 ]; [ 1; 2; 3 ]; [ 2; 1; 7 ]; [ 3; 2; 2 ]; [ 2; 2; 4 ] ]
  in
  let product_rows = [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 20 ] ] in
  let store_rows = [ [ 1; 100 ]; [ 2; 200 ] ] in
  { name = "retail-star";
    specs =
      [ spec "pos" "sales" (rel sales sales_rows);
        spec "catalog" "product" (rel product product_rows);
        spec "catalog" "store" (rel store store_rows) ];
    views =
      [ Query.View.make "sales_by_product"
          Query.Algebra.(join (base "sales") (base "product"));
        Query.View.make "sales_by_store"
          Query.Algebra.(join (base "sales") (base "store"));
        Query.View.make "full_rollup"
          Query.Algebra.(
            join_all [ base "sales"; base "product"; base "store" ]);
        Query.View.make "west_sales"
          Query.Algebra.(
            project [ "sku"; "qty" ]
              (select
                 (Query.Pred.eq "region" (Value.Int 100))
                 (join (base "sales") (base "store")))) ];
    script =
      [ [ Update.insert "sales" (Tuple.ints [ 3; 1; 9 ]) ];
        [ Update.insert "product" (Tuple.ints [ 4; 20 ]) ];
        [ Update.insert "sales" (Tuple.ints [ 4; 2; 1 ]) ];
        [ Update.delete "sales" (Tuple.ints [ 1; 2; 3 ]) ];
        [ Update.modify "store" ~before:(Tuple.ints [ 2; 200 ])
            ~after:(Tuple.ints [ 2; 100 ]) ] ] }

(* ---- Aggregate rollups (the "aggregate views" of Section 1.2) ---- *)

let sales_rollup =
  let sales = int_schema [ "sku"; "store"; "qty" ]
  and product = int_schema [ "sku"; "cat" ] in
  let sales_rows =
    [ [ 1; 1; 5 ]; [ 1; 2; 3 ]; [ 2; 1; 7 ]; [ 3; 2; 2 ]; [ 2; 2; 4 ] ]
  in
  let product_rows = [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 20 ] ] in
  { name = "sales-rollup";
    specs =
      [ spec "pos" "sales" (rel sales sales_rows);
        spec "catalog" "product" (rel product product_rows) ];
    views =
      [ Query.View.make "qty_by_store"
          (Query.Algebra.group_by ~keys:[ "store" ]
             ~aggregates:
               [ ("total_qty", Query.Algebra.Sum "qty");
                 ("n_sales", Query.Algebra.Count) ]
             (Query.Algebra.base "sales"));
        Query.View.make "qty_by_category"
          (Query.Algebra.group_by ~keys:[ "cat" ]
             ~aggregates:
               [ ("total_qty", Query.Algebra.Sum "qty");
                 ("max_qty", Query.Algebra.Max "qty") ]
             (Query.Algebra.join (Query.Algebra.base "sales")
                (Query.Algebra.base "product")));
        Query.View.make "sales_detail" (Query.Algebra.base "sales") ];
    script =
      [ [ Update.insert "sales" (Tuple.ints [ 3; 1; 9 ]) ];
        [ Update.delete "sales" (Tuple.ints [ 2; 1; 7 ]) ];
        [ Update.insert "sales" (Tuple.ints [ 1; 2; 6 ]) ];
        [ Update.modify "sales" ~before:(Tuple.ints [ 1; 1; 5 ])
            ~after:(Tuple.ints [ 1; 1; 2 ]) ];
        [ Update.insert "product" (Tuple.ints [ 4; 30 ]) ];
        [ Update.insert "sales" (Tuple.ints [ 4; 2; 8 ]) ] ] }

let all =
  [ example1; paper_views; paper_views_q; bank; auxiliary; retail_star;
    sales_rollup ]

let sources t = Source.Sources.create t.specs

let run_script t srcs =
  List.map (fun updates -> Source.Sources.execute srcs updates) t.script
