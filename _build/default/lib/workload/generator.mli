(** Seeded random workload generation for property tests and benchmark
    sweeps.

    Generates a chain-schema source population (relation [R_k] has
    attributes [(a_k, a_{k+1})], so contiguous relations natural-join), a
    mix of view shapes (copies, selections, join chains, projected joins)
    with a controllable degree of base-relation sharing, and a transaction
    script that keeps relations populated (deletes and modifies target
    tuples known to exist). Everything is a pure function of
    [config.seed]. *)

type config = {
  seed : int;
  n_sources : int;  (** Sources the relations are spread over. *)
  n_relations : int;
  n_views : int;
  max_join_width : int;  (** 1 = copies/selects only. *)
  initial_tuples : int;  (** Per relation. *)
  n_transactions : int;
  multi_update_prob : float;
      (** Probability a transaction carries 2-3 updates (Section 6.2);
          0 reproduces the paper's base single-update model. *)
  value_range : int;  (** Attribute values drawn from [0, value_range). *)
  aggregate_views : bool;
      (** Also generate SUM/COUNT group-by views over the chains. *)
}

val default : config

val generate : config -> Scenarios.t
(** @raise Invalid_argument on nonsensical configs (no relations, no
    views, empty value range...). *)
