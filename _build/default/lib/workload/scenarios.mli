(** Named workload scenarios.

    [example1] is Table 1 of the paper verbatim; [paper_views] /
    [paper_views_q] are the three-view configurations of Examples 2-5;
    [bank] is the customer checking/savings scenario motivating MVC in
    Section 1.1; [auxiliary] is the materialized sub-view setup of
    Ross/Srivastava/Sudarshan [12] and Labio/Quass/Adelberg [8] that the
    paper cites as {e requiring} MVC; [retail_star] is a star-schema rollup
    workload for the benchmarks. *)

open Relational

type t = {
  name : string;
  specs : Source.Sources.spec list;  (** Base relations and placement. *)
  views : Query.View.t list;
  script : Update.t list list;
      (** Source transactions to execute, in schedule order; each element
          is one transaction's update list. *)
}

val example1 : t
(** [V1 = R |><| S], [V2 = S |><| T]; initial data of Table 1 at time
    [t_0]; one transaction inserting [ [2,3] ] into [S]. *)

val paper_views : t
(** Example 2/4 configuration: [V1 = R |><| S], [V2 = S |><| T |><| Q],
    [V3 = Q], with small seed data and the three-update script
    [U1(S), U2(Q), U3(S)]. *)

val paper_views_q : t
(** Example 5 configuration: same views, script [U1(S), U2(Q), U3(Q)]. *)

val bank : t
(** Two sources (checking, savings); views: the per-customer linked
    statement [checking |><| savings], a copy of checking, and a promo
    view selecting high-balance linked customers. The script contains
    deposits, withdrawals and {e transfers} — multi-update transactions
    spanning both sources (Section 6.2). *)

val auxiliary : t
(** Primary view [V = R |><| S |><| T] maintained from auxiliary
    materializations [RS = R |><| S] and [ST = S |><| T]: the two
    sub-views must be mutually consistent whenever V is computed. *)

val retail_star : t
(** Fact table [sales] with [product] and [store] dimensions; four rollup
    views of different join widths and selectivities. *)

val sales_rollup : t
(** Aggregate views (Section 1.2's "aggregate views need different
    maintenance algorithms"): per-store and per-category SUM/COUNT/MAX
    rollups maintained incrementally alongside a detail copy. *)

val all : t list

val sources : t -> Source.Sources.t
(** Fresh source group initialized with the scenario's base data. *)

val run_script : t -> Source.Sources.t -> Update.Transaction.t list
(** Execute the whole script serially, returning the stamped
    transactions. *)
