(** Minimal s-expression reader for the scenario file format (no external
    dependencies; see {!Scenario_file} for the grammar). *)

type t = Atom of string | List of t list

exception Parse_error of string
(** Carries a human-readable message with the offending position. *)

val parse_string : string -> t list
(** Parse a whole document (a sequence of s-expressions). Comments run
    from [;] to end of line. Atoms are bare words or ["double-quoted"]
    strings with [\\]-escapes.
    @raise Parse_error on malformed input. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
