type t = Atom of string | List of t list

exception Parse_error of string

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type lexer = { input : string; mutable pos : int; mutable line : int }

let peek lx =
  if lx.pos < String.length lx.input then Some lx.input.[lx.pos] else None

let advance lx =
  (match peek lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let rec skip_blank lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_blank lx
  | Some ';' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_blank lx
  | Some _ | None -> ()

let lex_string lx =
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | None -> error "line %d: unterminated string" lx.line
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek lx with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance lx;
        loop ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance lx;
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance lx;
        loop ()
      | None -> error "line %d: dangling escape" lx.line)
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
  in
  loop ();
  Buffer.contents buf

let lex_atom lx =
  let start = lx.pos in
  let rec loop () =
    match peek lx with
    | Some (' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' | '"') | None -> ()
    | Some _ ->
      advance lx;
      loop ()
  in
  loop ();
  String.sub lx.input start (lx.pos - start)

let rec parse_one lx =
  skip_blank lx;
  match peek lx with
  | None -> error "line %d: unexpected end of input" lx.line
  | Some '(' ->
    advance lx;
    let rec items acc =
      skip_blank lx;
      match peek lx with
      | Some ')' ->
        advance lx;
        List.rev acc
      | None -> error "line %d: unclosed parenthesis" lx.line
      | Some _ -> items (parse_one lx :: acc)
    in
    List (items [])
  | Some ')' -> error "line %d: unexpected ')'" lx.line
  | Some '"' -> Atom (lex_string lx)
  | Some _ -> Atom (lex_atom lx)

let parse_string input =
  let lx = { input; pos = 0; line = 1 } in
  let rec loop acc =
    skip_blank lx;
    if lx.pos >= String.length input then List.rev acc
    else loop (parse_one lx :: acc)
  in
  loop []

let rec pp ppf = function
  | Atom a -> Fmt.string ppf a
  | List items -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any " ") pp) items

let to_string t = Fmt.str "%a" pp t
