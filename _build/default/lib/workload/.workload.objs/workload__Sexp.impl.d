lib/workload/sexp.ml: Buffer Fmt List String
