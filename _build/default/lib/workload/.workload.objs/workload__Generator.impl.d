lib/workload/generator.ml: Bag Hashtbl List Printf Query Relation Relational Scenarios Schema Signed_bag Sim Source Tuple Update Value
