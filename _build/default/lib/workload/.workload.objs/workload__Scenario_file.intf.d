lib/workload/scenario_file.mli: Scenarios
