lib/workload/generator.mli: Scenarios
