lib/workload/scenario_file.ml: Fmt List Printf Query Relation Relational Scenarios Schema Sexp Source String Tuple Update Value
