lib/workload/scenarios.ml: List Query Relation Relational Schema Source Tuple Update Value
