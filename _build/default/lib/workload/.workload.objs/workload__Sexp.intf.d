lib/workload/sexp.mli: Format
