lib/workload/scenarios.mli: Query Relational Source Update
