(** Textual scenario files, so workloads can be defined without
    recompiling (used by [mvcwh run --file]).

    Grammar (s-expressions; [;] comments):

    {v
    (scenario NAME
      (relation R (source alpha)
        (schema (A int) (B int))
        (rows (1 2) (3 4)))
      (view V1 (join R S))
      (view V2 (select (le B 3) R))
      (view V3 (project (A B) (join R S)))
      (view V4 (group-by (keys A) (aggs (total sum B) (n count)) R))
      (txn (insert S (2 3)))
      (txn (delete R (1 2)) (insert S (9 9)))     ; multi-update
      (txn (modify R (3 4) (3 5))))
    v}

    Expressions: a bare name is a base relation; [(join e e ...)] is a
    left-deep natural join; [(select PRED e)], [(project (attrs) e)],
    [(union e e)], [(rename ((old new) ...) e)] and [(group-by ...)] as
    above. Predicates: [(le a v)], [(lt a v)], [(ge a v)], [(gt a v)],
    [(eq a v)], [(ne a v)], [(attr-eq a b)], [(and p p)], [(or p p)],
    [(not p)], [true], [false]. Attribute types: [int], [float],
    [string], [bool]. Values: integer / float / [true] / [false] /
    ["quoted string"] / [null] literals, checked against the schema. *)

exception Invalid_scenario of string

val of_string : string -> Scenarios.t
(** @raise Invalid_scenario on grammar or type errors (with a message
    naming the offending form).
    @raise Sexp.Parse_error on malformed s-expressions. *)

val load : string -> Scenarios.t
(** Read and parse a file. *)
