open Relational

type config = {
  seed : int;
  n_sources : int;
  n_relations : int;
  n_views : int;
  max_join_width : int;
  initial_tuples : int;
  n_transactions : int;
  multi_update_prob : float;
  value_range : int;
  aggregate_views : bool;
}

let default =
  { seed = 42; n_sources = 2; n_relations = 4; n_views = 3; max_join_width = 3;
    initial_tuples = 8; n_transactions = 20; multi_update_prob = 0.0;
    value_range = 6; aggregate_views = false }

let relation_name k = Printf.sprintf "R%d" k

let attr_name k = Printf.sprintf "a%d" k

let schema_of_relation k =
  Schema.make [ (attr_name k, Value.Int_ty); (attr_name (k + 1), Value.Int_ty) ]

let random_tuple rng cfg =
  Tuple.ints [ Sim.Rng.int rng cfg.value_range; Sim.Rng.int rng cfg.value_range ]

let gen_specs rng cfg =
  List.init cfg.n_relations (fun k ->
      let schema = schema_of_relation k in
      let tuples = List.init cfg.initial_tuples (fun _ -> random_tuple rng cfg) in
      { Source.Sources.source =
          Printf.sprintf "src%d" (Sim.Rng.int rng cfg.n_sources);
        relation = relation_name k;
        init = Relation.of_tuples schema tuples })

let gen_view rng cfg index =
  let name = Printf.sprintf "V%d" index in
  let start = Sim.Rng.int rng cfg.n_relations in
  let width =
    min (Sim.Rng.int_range rng 1 cfg.max_join_width) (cfg.n_relations - start)
  in
  let chain =
    Query.Algebra.join_all
      (List.init width (fun i -> Query.Algebra.base (relation_name (start + i))))
  in
  let with_select expr =
    let attr = attr_name (Sim.Rng.int_range rng start (start + width)) in
    let bound = Value.Int (Sim.Rng.int rng cfg.value_range) in
    let pred =
      if Sim.Rng.bool rng then Query.Pred.le attr bound
      else Query.Pred.ge attr bound
    in
    Query.Algebra.select pred expr
  in
  let with_project expr =
    (* Keep a nonempty prefix of the chain's attribute list. *)
    let attrs = List.init (width + 1) (fun i -> attr_name (start + i)) in
    let keep = Sim.Rng.int_range rng 1 (List.length attrs) in
    Query.Algebra.project (List.filteri (fun i _ -> i < keep) attrs) expr
  in
  let with_aggregate expr =
    (* Group on the chain's first attribute, summing the last. *)
    Query.Algebra.group_by
      ~keys:[ attr_name start ]
      ~aggregates:
        [ ("total", Query.Algebra.Sum (attr_name (start + width)));
          ("rows", Query.Algebra.Count) ]
      expr
  in
  let def =
    match Sim.Rng.int rng (if cfg.aggregate_views then 5 else 4) with
    | 0 -> chain
    | 1 -> with_select chain
    | 2 -> with_project chain
    | 3 -> with_project (with_select chain)
    | _ -> with_aggregate chain
  in
  Query.View.make name def

(* Generate a script, tracking relation contents so deletes and modifies
   always target live tuples. *)
let gen_script rng cfg specs =
  let state = Hashtbl.create 8 in
  List.iter
    (fun (s : Source.Sources.spec) ->
      Hashtbl.replace state s.relation (Relation.contents s.init))
    specs;
  let relations = List.map (fun (s : Source.Sources.spec) -> s.relation) specs in
  let live_tuples rel =
    Bag.to_list (Hashtbl.find state rel)
  in
  let apply rel (u : Update.t) =
    let bag = Hashtbl.find state rel in
    Hashtbl.replace state rel (Signed_bag.apply (Update.to_delta u) bag)
  in
  let gen_update () =
    let rel = Sim.Rng.pick rng relations in
    let existing = live_tuples rel in
    let u =
      match (Sim.Rng.int rng 4, existing) with
      | (0 | 1), _ | _, [] -> Update.insert rel (random_tuple rng cfg)
      | 2, _ -> Update.delete rel (Sim.Rng.pick rng existing)
      | _, _ ->
        Update.modify rel
          ~before:(Sim.Rng.pick rng existing)
          ~after:(random_tuple rng cfg)
    in
    apply rel u;
    u
  in
  List.init cfg.n_transactions (fun _ ->
      let n_updates =
        if Sim.Rng.float rng 1.0 < cfg.multi_update_prob then
          Sim.Rng.int_range rng 2 3
        else 1
      in
      List.init n_updates (fun _ -> gen_update ()))

let generate cfg =
  if cfg.n_relations < 1 then invalid_arg "Generator: n_relations < 1";
  if cfg.n_views < 1 then invalid_arg "Generator: n_views < 1";
  if cfg.n_sources < 1 then invalid_arg "Generator: n_sources < 1";
  if cfg.value_range < 1 then invalid_arg "Generator: value_range < 1";
  if cfg.max_join_width < 1 then invalid_arg "Generator: max_join_width < 1";
  let rng = Sim.Rng.create cfg.seed in
  let specs = gen_specs rng cfg in
  let views = List.init cfg.n_views (fun i -> gen_view rng cfg i) in
  let script = gen_script rng cfg specs in
  { Scenarios.name = Printf.sprintf "random-%d" cfg.seed; specs; views; script }
