open Relational

exception Invalid_scenario of string

let error fmt = Fmt.kstr (fun s -> raise (Invalid_scenario s)) fmt

let bad form what = error "%s: %s" what (Sexp.to_string form)

(* ---- values and types ---- *)

let parse_type = function
  | Sexp.Atom "int" -> Value.Int_ty
  | Sexp.Atom "float" -> Value.Float_ty
  | Sexp.Atom "string" -> Value.String_ty
  | Sexp.Atom "bool" -> Value.Bool_ty
  | form -> bad form "unknown attribute type"

let parse_value ty (form : Sexp.t) =
  match (form, ty) with
  | Sexp.Atom "null", _ -> Value.Null
  | Sexp.Atom a, Value.Int_ty -> (
    match int_of_string_opt a with
    | Some i -> Value.Int i
    | None -> error "not an integer: %s" a)
  | Sexp.Atom a, Value.Float_ty -> (
    match float_of_string_opt a with
    | Some f -> Value.Float f
    | None -> error "not a float: %s" a)
  | Sexp.Atom "true", Value.Bool_ty -> Value.Bool true
  | Sexp.Atom "false", Value.Bool_ty -> Value.Bool false
  | Sexp.Atom a, Value.Bool_ty -> error "not a bool: %s" a
  | Sexp.Atom a, Value.String_ty -> Value.String a
  | (Sexp.List _ as form), _ -> bad form "expected a value"

(* Used in predicates, where the attribute type is unknown: infer from the
   literal's shape. *)
let parse_literal = function
  | Sexp.Atom "null" -> Value.Null
  | Sexp.Atom "true" -> Value.Bool true
  | Sexp.Atom "false" -> Value.Bool false
  | Sexp.Atom a -> (
    match int_of_string_opt a with
    | Some i -> Value.Int i
    | None -> (
      match float_of_string_opt a with
      | Some f -> Value.Float f
      | None -> Value.String a))
  | Sexp.List _ as form -> bad form "expected a literal"

let atom = function
  | Sexp.Atom a -> a
  | Sexp.List _ as form -> bad form "expected a name"

(* ---- predicates ---- *)

let rec parse_pred (form : Sexp.t) =
  match form with
  | Sexp.Atom "true" -> Query.Pred.True
  | Sexp.Atom "false" -> Query.Pred.False
  | Sexp.List [ Sexp.Atom cmp; a; v ]
    when List.mem cmp [ "le"; "lt"; "ge"; "gt"; "eq"; "ne" ] -> (
    let attr = atom a and lit = parse_literal v in
    match cmp with
    | "le" -> Query.Pred.le attr lit
    | "lt" -> Query.Pred.lt attr lit
    | "ge" -> Query.Pred.ge attr lit
    | "gt" -> Query.Pred.gt attr lit
    | "eq" -> Query.Pred.eq attr lit
    | _ -> Query.Pred.Cmp (Query.Pred.Ne, Query.Pred.Attr attr, Query.Pred.Const lit))
  | Sexp.List [ Sexp.Atom "attr-eq"; a; b ] -> Query.Pred.attr_eq (atom a) (atom b)
  | Sexp.List [ Sexp.Atom "and"; p; q ] ->
    Query.Pred.And (parse_pred p, parse_pred q)
  | Sexp.List [ Sexp.Atom "or"; p; q ] ->
    Query.Pred.Or (parse_pred p, parse_pred q)
  | Sexp.List [ Sexp.Atom "not"; p ] -> Query.Pred.Not (parse_pred p)
  | form -> bad form "unknown predicate"

(* ---- expressions ---- *)

let parse_aggregate = function
  | Sexp.List [ name; Sexp.Atom "count" ] -> (atom name, Query.Algebra.Count)
  | Sexp.List [ name; Sexp.Atom fn; attr ] -> (
    let attr = atom attr in
    match fn with
    | "sum" -> (atom name, Query.Algebra.Sum attr)
    | "avg" -> (atom name, Query.Algebra.Avg attr)
    | "min" -> (atom name, Query.Algebra.Min attr)
    | "max" -> (atom name, Query.Algebra.Max attr)
    | other -> error "unknown aggregate function: %s" other)
  | form -> bad form "malformed aggregate"

let rec parse_expr (form : Sexp.t) =
  match form with
  | Sexp.Atom name -> Query.Algebra.base name
  | Sexp.List (Sexp.Atom "join" :: (_ :: _ :: _ as operands)) ->
    Query.Algebra.join_all (List.map parse_expr operands)
  | Sexp.List [ Sexp.Atom "select"; pred; e ] ->
    Query.Algebra.select (parse_pred pred) (parse_expr e)
  | Sexp.List [ Sexp.Atom "project"; Sexp.List attrs; e ] ->
    Query.Algebra.project (List.map atom attrs) (parse_expr e)
  | Sexp.List [ Sexp.Atom "union"; a; b ] ->
    Query.Algebra.union (parse_expr a) (parse_expr b)
  | Sexp.List [ Sexp.Atom "rename"; Sexp.List pairs; e ] ->
    let pair = function
      | Sexp.List [ old_name; new_name ] -> (atom old_name, atom new_name)
      | form -> bad form "malformed rename pair"
    in
    Query.Algebra.rename (List.map pair pairs) (parse_expr e)
  | Sexp.List
      [ Sexp.Atom "group-by"; Sexp.List (Sexp.Atom "keys" :: keys);
        Sexp.List (Sexp.Atom "aggs" :: aggs); e ] ->
    Query.Algebra.group_by ~keys:(List.map atom keys)
      ~aggregates:(List.map parse_aggregate aggs)
      (parse_expr e)
  | form -> bad form "unknown expression"

(* ---- top-level forms ---- *)

type partial = {
  mutable specs : Source.Sources.spec list;
  mutable views : Query.View.t list;
  mutable script : Update.t list list;
}

let find_field name fields =
  List.find_map
    (function
      | Sexp.List (Sexp.Atom n :: rest) when String.equal n name -> Some rest
      | _ -> None)
    fields

let parse_relation partial fields =
  match fields with
  | name :: rest ->
    let name = atom name in
    let source =
      match find_field "source" rest with
      | Some [ s ] -> atom s
      | Some _ | None -> error "relation %s: missing (source NAME)" name
    in
    let schema =
      match find_field "schema" rest with
      | Some attrs ->
        Schema.make
          (List.map
             (function
               | Sexp.List [ a; ty ] -> (atom a, parse_type ty)
               | form -> bad form "malformed schema attribute")
             attrs)
      | None -> error "relation %s: missing (schema ...)" name
    in
    let types = List.map (fun (a : Schema.attribute) -> a.ty) (Schema.attributes schema) in
    let parse_row = function
      | Sexp.List cells when List.length cells = List.length types ->
        Tuple.of_list (List.map2 parse_value types cells)
      | form -> bad form (Printf.sprintf "row of %s has wrong arity" name)
    in
    let rows =
      match find_field "rows" rest with
      | Some rows -> List.map parse_row rows
      | None -> []
    in
    partial.specs <-
      partial.specs
      @ [ { Source.Sources.source; relation = name;
            init = Relation.of_tuples schema rows } ]
  | [] -> error "relation form needs a name"

let parse_view partial fields =
  match fields with
  | [ name; expr ] ->
    partial.views <- partial.views @ [ Query.View.make (atom name) (parse_expr expr) ]
  | _ -> error "view form needs a name and one expression"

let schema_of partial relation =
  match
    List.find_opt
      (fun (s : Source.Sources.spec) -> String.equal s.relation relation)
      partial.specs
  with
  | Some s -> Relation.schema s.init
  | None -> error "transaction references unknown relation %s" relation

let parse_update partial = function
  | Sexp.List [ Sexp.Atom "insert"; rel; row ] ->
    let rel = atom rel in
    let types =
      List.map (fun (a : Schema.attribute) -> a.ty)
        (Schema.attributes (schema_of partial rel))
    in
    (match row with
    | Sexp.List cells when List.length cells = List.length types ->
      Update.insert rel (Tuple.of_list (List.map2 parse_value types cells))
    | form -> bad form "insert row has wrong arity")
  | Sexp.List [ Sexp.Atom "delete"; rel; row ] ->
    let rel = atom rel in
    let types =
      List.map (fun (a : Schema.attribute) -> a.ty)
        (Schema.attributes (schema_of partial rel))
    in
    (match row with
    | Sexp.List cells when List.length cells = List.length types ->
      Update.delete rel (Tuple.of_list (List.map2 parse_value types cells))
    | form -> bad form "delete row has wrong arity")
  | Sexp.List [ Sexp.Atom "modify"; rel; before; after ] ->
    let rel = atom rel in
    let types =
      List.map (fun (a : Schema.attribute) -> a.ty)
        (Schema.attributes (schema_of partial rel))
    in
    let row = function
      | Sexp.List cells when List.length cells = List.length types ->
        Tuple.of_list (List.map2 parse_value types cells)
      | form -> bad form "modify row has wrong arity"
    in
    Update.modify rel ~before:(row before) ~after:(row after)
  | form -> bad form "unknown update"

let parse_txn partial fields =
  match fields with
  | [] -> error "empty transaction"
  | updates -> partial.script <- partial.script @ [ List.map (parse_update partial) updates ]

let of_string input =
  match Sexp.parse_string input with
  | [ Sexp.List (Sexp.Atom "scenario" :: name :: forms) ] ->
    let name = atom name in
    let partial = { specs = []; views = []; script = [] } in
    List.iter
      (function
        | Sexp.List (Sexp.Atom "relation" :: fields) ->
          parse_relation partial fields
        | Sexp.List (Sexp.Atom "view" :: fields) -> parse_view partial fields
        | Sexp.List (Sexp.Atom "txn" :: fields) -> parse_txn partial fields
        | form -> bad form "unknown scenario form")
      forms;
    if partial.views = [] then error "scenario %s defines no views" name;
    (* Validate the views against the declared schemas up front. *)
    let lookup r =
      match
        List.find_opt
          (fun (s : Source.Sources.spec) -> String.equal s.relation r)
          partial.specs
      with
      | Some s -> Relation.schema s.init
      | None -> error "view references unknown relation %s" r
    in
    List.iter
      (fun v ->
        match Query.Algebra.schema_of lookup v.Query.View.def with
        | _ -> ()
        | exception Schema.Unknown_attribute a ->
          error "view %s references unknown attribute %s" (Query.View.name v) a
        | exception Invalid_argument msg ->
          error "view %s is ill-formed: %s" (Query.View.name v) msg)
      partial.views;
    { Scenarios.name; specs = partial.specs; views = partial.views;
      script = partial.script }
  | [ form ] -> bad form "expected (scenario NAME ...)"
  | [] -> error "empty scenario file"
  | _ :: _ :: _ -> error "expected exactly one (scenario ...) form"

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  of_string contents
