open Relational

type t = {
  semantic_filter : bool;
  schemas : string -> Schema.t;
  views : Query.View.t list;
  mutable next_id : int;
}

let create ?(semantic_filter = false) ~schemas views =
  { semantic_filter; schemas; views; next_id = 1 }

let views t = t.views

let view_names t = List.map Query.View.name t.views

let rel_set t txn =
  let touched = Update.Transaction.relations txn in
  let syntactic (v : Query.View.t) =
    List.exists (fun r -> Query.View.uses v r) touched
  in
  let relevant v =
    syntactic v
    && (not t.semantic_filter
       ||
       let changes = Query.Delta.of_transaction txn in
       not
         (Query.Irrelevance.provably_irrelevant ~schemas:t.schemas ~changes
            v.Query.View.def))
  in
  List.filter_map
    (fun v -> if relevant v then Some (Query.View.name v) else None)
    t.views

let ingest t txn =
  let stamped = { txn with Update.Transaction.id = t.next_id } in
  t.next_id <- t.next_id + 1;
  (stamped, rel_set t stamped)

let ingested t = t.next_id - 1
