lib/source/sources.ml: Database List Map Printf Query Relation Relational String Update
