lib/source/sources.mli: Database Query Relation Relational Schema Update
