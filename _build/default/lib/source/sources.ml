open Relational

module String_map = Map.Make (String)

type spec = { source : string; relation : string; init : Relation.t }

type t = {
  owners : string String_map.t; (* relation -> source *)
  source_order : string list;
  mutable db : Database.t;
  mutable next_id : int;
  mutable rev_transactions : Update.Transaction.t list;
  mutable rev_states : Database.t list; (* newest first; last is ss_0 *)
}

exception Unknown_source of string

exception Ownership_violation of string

let create specs =
  let add_owner acc s =
    if String_map.mem s.relation acc then
      invalid_arg
        (Printf.sprintf "Sources.create: relation %s declared twice" s.relation)
    else String_map.add s.relation s.source acc
  in
  let owners = List.fold_left add_owner String_map.empty specs in
  let source_order =
    List.fold_left
      (fun seen s ->
        if List.mem s.source seen then seen else seen @ [ s.source ])
      [] specs
  in
  let db =
    List.fold_left
      (fun db s -> Database.add s.relation s.init db)
      Database.empty specs
  in
  { owners; source_order; db; next_id = 1; rev_transactions = [];
    rev_states = [ db ] }

let source_names t = t.source_order

let relation_names t = Database.names t.db

let relations_of t source =
  if not (List.mem source t.source_order) then raise (Unknown_source source);
  List.filter_map
    (fun (rel, owner) -> if String.equal owner source then Some rel else None)
    (String_map.bindings t.owners)

let owner t relation =
  match String_map.find_opt relation t.owners with
  | Some source -> source
  | None -> raise (Database.Unknown_relation relation)

let schema t relation = Database.schema t.db relation

let schema_lookup t relation = schema t relation

let current t = t.db

let initial t =
  match List.rev t.rev_states with
  | initial :: _ -> initial
  | [] -> assert false

let execute t ?source updates =
  if updates = [] then invalid_arg "Sources.execute: empty transaction";
  let check_owner (u : Update.t) =
    let o = owner t u.relation in
    match source with
    | Some s when not (String.equal o s) ->
      raise
        (Ownership_violation
           (Printf.sprintf "relation %s belongs to %s, not %s" u.relation o s))
    | Some _ | None -> ()
  in
  List.iter check_owner updates;
  let attributed_source =
    match (source, updates) with
    | Some s, _ -> s
    | None, u :: _ -> owner t u.relation
    | None, [] -> assert false
  in
  let txn =
    Update.Transaction.make ~id:t.next_id ~source:attributed_source updates
  in
  t.db <- Database.apply_transaction t.db txn;
  t.next_id <- t.next_id + 1;
  t.rev_transactions <- txn :: t.rev_transactions;
  t.rev_states <- t.db :: t.rev_states;
  txn

let last_id t = t.next_id - 1

let transactions t = List.rev t.rev_transactions

let states t = List.rev t.rev_states

let state t i =
  let n = List.length t.rev_states in
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Sources.state: %d out of range [0,%d]" i (n - 1));
  List.nth t.rev_states (n - 1 - i)

let query t expr = Query.Eval.eval t.db expr
