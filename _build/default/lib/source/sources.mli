(** Autonomous data sources and the serializable source schedule.

    Section 2.1 of the paper assumes source transactions are serializable
    and equivalent to a schedule [U_1; U_2; ... U_f]; the *source state
    sequence* [ss_0, ss_1, ..., ss_f] lists the base data after each commit.
    This module owns all base relations, partitions them over named sources,
    executes transactions serially (assigning the global sequence number),
    and records every source state — the ground truth the consistency
    oracle compares warehouse states against.

    In the base model each transaction updates one relation of one source;
    multi-update and multi-source transactions (Section 6.2) are supported
    by passing several updates to {!execute}. *)

open Relational

type t

type spec = { source : string; relation : string; init : Relation.t }
(** Declares that [relation], initialized to [init], lives at [source]. *)

exception Unknown_source of string

exception Ownership_violation of string
(** A single-source transaction touched a relation owned elsewhere. *)

val create : spec list -> t
(** @raise Schema.Duplicate_attribute never; raises [Invalid_argument] if a
    relation name is declared twice. *)

val source_names : t -> string list

val relation_names : t -> string list

val relations_of : t -> string -> string list
(** Relations owned by a source. @raise Unknown_source if absent. *)

val owner : t -> string -> string
(** Owning source of a relation.
    @raise Database.Unknown_relation if the relation is not declared. *)

val schema : t -> string -> Schema.t

val schema_lookup : t -> string -> Schema.t
(** Same as {!schema}; shaped for {!Query.Algebra.schema_of}. *)

val current : t -> Database.t
(** The latest global source state (all base relations). *)

val initial : t -> Database.t
(** [ss_0]. *)

val execute : t -> ?source:string -> Update.t list -> Update.Transaction.t
(** Execute a transaction: apply its updates atomically, assign the next
    global id (ids start at 1), append the new state to the state sequence
    and return the stamped transaction.
    When [source] is given, every update must touch a relation of that
    source ({!Ownership_violation} otherwise); when omitted, the
    transaction may span sources and is attributed to the owner of its
    first update.
    @raise Invalid_argument on an empty update list. *)

val last_id : t -> int
(** Id of the latest transaction; 0 before any commit. *)

val transactions : t -> Update.Transaction.t list
(** Committed transactions, oldest first. *)

val states : t -> Database.t list
(** [ss_0 ... ss_f], oldest first; length is [last_id t + 1]. *)

val state : t -> int -> Database.t
(** [state t i] is [ss_i]. @raise Invalid_argument when out of range. *)

val query : t -> Query.Algebra.t -> Relation.t
(** Evaluate a query against the *current* source state — the paper's
    "queries back to the sources" performed by view managers. Because
    sources are autonomous, the answer may already reflect updates the
    caller has not yet processed; Strobe-style managers compensate. *)
