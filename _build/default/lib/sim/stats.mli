(** Streaming statistics for benchmark metrics (freshness, queue depths,
    throughput). *)

module Summary : sig
  (** Scalar sample summary: count, mean (Welford), min/max, stddev, and
      exact percentiles (samples are retained). *)

  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val mean : t -> float
  (** 0 when empty. *)

  val stddev : t -> float

  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100], nearest-rank; [nan] when
      empty. *)

  val pp : Format.formatter -> t -> unit
end

module Counter : sig
  type t

  val create : unit -> t

  val incr : ?by:int -> t -> unit

  val value : t -> int
end

module Time_weighted : sig
  (** Time-weighted average of a piecewise-constant signal, e.g. queue
      depth over simulated time. *)

  type t

  val create : now:float -> initial:float -> t

  val observe : t -> now:float -> float -> unit
  (** Record that the signal changed to the given value at time [now]. *)

  val average : t -> now:float -> float
  (** Time-weighted mean over [start, now]. *)

  val current : t -> float

  val maximum : t -> float
end
