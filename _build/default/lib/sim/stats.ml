module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable samples : float list;
    mutable sorted : float array option;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; samples = [];
      sorted = None }

  let add t x =
    let n = t.count + 1 in
    let delta = x -. t.mean in
    t.count <- n;
    t.mean <- t.mean +. (delta /. float_of_int n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    t.min <- (if n = 1 then x else Float.min t.min x);
    t.max <- (if n = 1 then x else Float.max t.max x);
    t.samples <- x :: t.samples;
    t.sorted <- None

  let count t = t.count

  let mean t = if t.count = 0 then 0.0 else t.mean

  let stddev t =
    if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

  let min t = t.min

  let max t = t.max

  let sorted t =
    match t.sorted with
    | Some arr -> arr
    | None ->
      let arr = Array.of_list t.samples in
      Array.sort Float.compare arr;
      t.sorted <- Some arr;
      arr

  let percentile t p =
    if t.count = 0 then nan
    else begin
      let arr = sorted t in
      let n = Array.length arr in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
      in
      let rank = Stdlib.max 0 (Stdlib.min (n - 1) rank) in
      arr.(rank)
    end

  let pp ppf t =
    if t.count = 0 then Fmt.string ppf "n=0"
    else
      Fmt.pf ppf "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g"
        t.count (mean t) (stddev t) t.min (percentile t 50.0)
        (percentile t 95.0) t.max
end

module Counter = struct
  type t = { mutable value : int }

  let create () = { value = 0 }

  let incr ?(by = 1) t = t.value <- t.value + by

  let value t = t.value
end

module Time_weighted = struct
  type t = {
    start : float;
    mutable last_time : float;
    mutable last_value : float;
    mutable weighted_sum : float;
    mutable maximum : float;
  }

  let create ~now ~initial =
    { start = now; last_time = now; last_value = initial; weighted_sum = 0.0;
      maximum = initial }

  let observe t ~now value =
    t.weighted_sum <-
      t.weighted_sum +. (t.last_value *. (now -. t.last_time));
    t.last_time <- now;
    t.last_value <- value;
    if value > t.maximum then t.maximum <- value

  let average t ~now =
    let span = now -. t.start in
    if span <= 0.0 then t.last_value
    else
      (t.weighted_sum +. (t.last_value *. (now -. t.last_time))) /. span

  let current t = t.last_value

  let maximum t = t.maximum
end
