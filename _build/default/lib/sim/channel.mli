(** FIFO message channels between simulated processes.

    The MVC algorithms' only delivery assumption (Section 4: "messages from
    the same process must arrive in the order sent") is per-channel FIFO:
    latency is sampled per message, but a message never overtakes an
    earlier one on the same channel. Messages on *different* channels
    interleave arbitrarily — exactly the nondeterminism the painting
    algorithms must tolerate. *)

type 'a t

val create :
  Engine.t ->
  ?name:string ->
  latency:(unit -> float) ->
  ('a -> unit) ->
  'a t
(** [create engine ~latency deliver] builds a channel whose messages are
    handed to [deliver] after a sampled latency, preserving send order.
    Negative sampled latencies are clamped to zero. *)

val send : 'a t -> 'a -> unit

val name : 'a t -> string

val sent : 'a t -> int

val delivered : 'a t -> int

val in_flight : 'a t -> int
