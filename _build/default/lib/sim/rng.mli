(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic choice in the simulator — message latencies, workload
    arrivals, generated values — draws from an explicitly seeded [Rng.t], so
    that a whole distributed-warehouse run is a pure function of its seed.
    This is what makes the interleaving-randomizing consistency tests and
    the benchmark sweeps reproducible. *)

type t

val create : int -> t
(** Seeded generator. Equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent generator; the parent advances. Used to give each
    simulated process its own stream so adding a process does not perturb
    the draws of the others. *)

val bits64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean; used for Poisson
    arrival processes and message latencies. *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)
