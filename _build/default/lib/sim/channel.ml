type 'a t = {
  engine : Engine.t;
  name : string;
  latency : unit -> float;
  deliver : 'a -> unit;
  mutable last_delivery : float;
  mutable sent : int;
  mutable delivered : int;
}

let create engine ?(name = "chan") ~latency deliver =
  { engine; name; latency; deliver; last_delivery = 0.0; sent = 0;
    delivered = 0 }

let send t msg =
  let lat = Float.max 0.0 (t.latency ()) in
  let arrival = Engine.now t.engine +. lat in
  (* FIFO: never deliver before a previously sent message. *)
  let arrival = Float.max arrival t.last_delivery in
  t.last_delivery <- arrival;
  t.sent <- t.sent + 1;
  Engine.schedule_at t.engine arrival (fun () ->
      t.delivered <- t.delivered + 1;
      t.deliver msg)

let name t = t.name

let sent t = t.sent

let delivered t = t.delivered

let in_flight t = t.sent - t.delivered
