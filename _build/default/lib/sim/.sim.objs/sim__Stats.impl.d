lib/sim/stats.ml: Array Float Fmt Stdlib
