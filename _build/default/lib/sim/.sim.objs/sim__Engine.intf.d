lib/sim/engine.mli:
