lib/sim/channel.mli: Engine
