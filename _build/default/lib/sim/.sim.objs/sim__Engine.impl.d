lib/sim/engine.ml: Float Int Map Printf
