lib/sim/channel.ml: Engine Float
