lib/sim/rng.mli:
