type t = { mutable rev_events : string list; mutable length : int }

let create () = { rev_events = []; length = 0 }

let record t event =
  t.rev_events <- event :: t.rev_events;
  t.length <- t.length + 1

let recordf t fmt = Fmt.kstr (record t) fmt

let events t = List.rev t.rev_events

let length t = t.length

let clear t =
  t.rev_events <- [];
  t.length <- 0

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Fmt.string) (events t)
