(** Discrete-event simulation engine.

    A minimal deterministic scheduler: events are thunks ordered by
    (simulated time, insertion sequence). Ties break by insertion order, so
    runs are exactly reproducible. The WHIPS-style warehouse system wires
    its processes (sources, integrator, view managers, merge, warehouse) as
    event handlers over this engine; the engine stands in for the
    distributed testbed of the paper (see DESIGN.md substitutions). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time (seconds). *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** Schedule a thunk at an absolute time.
    @raise Invalid_argument if the time is in the past. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** Schedule a thunk [delay] seconds from now. Negative delays are clamped
    to zero. *)

val pending : t -> int
(** Number of events not yet dispatched. *)

val step : t -> bool
(** Dispatch the next event; false when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Dispatch events until the queue drains, or until the next event would
    be after [until] (the clock is then advanced to [until]). *)

val processed : t -> int
(** Total events dispatched so far. *)
