(** Ordered event traces, used by the golden tests that replay the paper's
    worked examples (the VUT evolution tables of Examples 2-5) and by the
    experiment printers. *)

type t

val create : unit -> t

val record : t -> string -> unit

val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val events : t -> string list
(** In recording order. *)

val length : t -> int

val clear : t -> unit

val pp : Format.formatter -> t -> unit
