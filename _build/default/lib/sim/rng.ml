type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop two bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let shuffle t items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
