module Key = struct
  type t = float * int

  let compare (ta, sa) (tb, sb) =
    match Float.compare ta tb with 0 -> Int.compare sa sb | c -> c
end

module Queue_map = Map.Make (Key)

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable queue : (unit -> unit) Queue_map.t;
  mutable processed : int;
}

let create () =
  { clock = 0.0; seq = 0; queue = Queue_map.empty; processed = 0 }

let now t = t.clock

let schedule_at t time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %g is before now (%g)" time t.clock);
  t.queue <- Queue_map.add (time, t.seq) thunk t.queue;
  t.seq <- t.seq + 1

let schedule_after t delay thunk =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t (t.clock +. delay) thunk

let pending t = Queue_map.cardinal t.queue

let step t =
  match Queue_map.min_binding_opt t.queue with
  | None -> false
  | Some (((time, _) as key), thunk) ->
    t.queue <- Queue_map.remove key t.queue;
    t.clock <- time;
    t.processed <- t.processed + 1;
    thunk ();
    true

let run ?until t =
  let continue () =
    match Queue_map.min_binding_opt t.queue with
    | None -> false
    | Some ((time, _), _) -> (
      match until with None -> true | Some limit -> time <= limit)
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when t.clock < limit && Queue_map.is_empty t.queue ->
    t.clock <- limit
  | Some limit when t.clock < limit -> t.clock <- limit
  | Some _ | None -> ()

let processed t = t.processed
