(** Relational algebra for view definitions.

    The paper's examples use project-select-join views over base relations
    ([V1 = R |><| S], [V2 = S |><| T |><| Q], [V3 = Q]); we additionally
    support bag union and renaming so that realistic warehouse workloads
    (star-schema rollups, unions of regional tables, self-joins) can be
    generated. Joins are natural joins on shared attribute names. *)

open Relational

(** Aggregate functions for [Group_by]. [Count] counts rows (with
    multiplicity); the attribute-parameterized aggregates skip [Null]s
    and yield [Null] on an all-null group. *)
type aggregate =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type t =
  | Base of string  (** A base relation, by name. *)
  | Select of Pred.t * t
  | Project of string list * t
  | Join of t * t  (** Natural join. *)
  | Union of t * t  (** Additive bag union; operands must have equal
                        schemas up to attribute names being identical. *)
  | Rename of (string * string) list * t
  | Group_by of group_by
      (** Grouped aggregation — the "aggregate views" the paper notes
          need different maintenance algorithms (Section 1.2). Output
          schema: the key attributes followed by one attribute per
          aggregate. *)

and group_by = {
  keys : string list;
  aggregates : (string * aggregate) list;
      (** (output attribute name, function). *)
  input : t;
}

val base : string -> t

val select : Pred.t -> t -> t

val project : string list -> t -> t

val join : t -> t -> t

val join_all : t list -> t
(** Left-deep natural join. @raise Invalid_argument on empty list. *)

val union : t -> t -> t

val rename : (string * string) list -> t -> t

val group_by : keys:string list -> aggregates:(string * aggregate) list -> t -> t

val base_relations : t -> string list
(** Distinct base relation names, in first-occurrence order. This is what
    the integrator consults to compute the relevant view set [REL_i]. *)

val schema_of : (string -> Schema.t) -> t -> Schema.t
(** Infer the output schema given a schema for each base relation.
    @raise Invalid_argument on union operands with different schemas or
    joins with conflicting shared-attribute types.
    @raise Schema.Unknown_attribute on projections/selections over missing
    attributes. *)

val depth : t -> int

val size : t -> int
(** Number of operator nodes. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
