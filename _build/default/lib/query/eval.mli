(** Full evaluation of algebra expressions against a database state.

    Used to materialize initial views, by the periodic-refresh view manager,
    and — crucially — by the consistency oracle, which recomputes [V(ss_i)]
    for every source state to decide whether a warehouse state sequence is
    complete / strongly consistent (Section 2 definitions). *)

open Relational

val eval : Database.t -> Algebra.t -> Relation.t
(** Evaluate the expression over the database.
    @raise Database.Unknown_relation if a base relation is missing. *)

val eval_bag : Database.t -> Algebra.t -> Bag.t

val aggregate_group :
  input_schema:Schema.t ->
  group:Algebra.group_by ->
  key:Tuple.t ->
  Bag.t ->
  Tuple.t
(** [aggregate_group ~input_schema ~group ~key contents] computes the
    output row of one group: the key values followed by each aggregate
    evaluated over [contents] (the group's input tuples, multiplicities
    respected). [Null]s are skipped by Sum/Avg/Min/Max and counted by
    Count; an all-null group yields [Null] for that aggregate. Shared by
    full evaluation and incremental maintenance, which recomputes exactly
    the affected groups. *)

val join_counted :
  Schema.t ->
  Schema.t ->
  (Tuple.t * int) list ->
  (Tuple.t * int) list ->
  (Tuple.t * int) list
(** Natural join of counted tuple collections; multiplicities multiply.
    Counts may be negative, which is how {!Delta} joins signed deltas with
    pre-state bags. The right side is indexed on the shared attributes, so
    cost is O(|left| + |right| + |output|). *)
