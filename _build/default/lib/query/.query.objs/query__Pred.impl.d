lib/query/pred.ml: Fmt List Relational Tuple Value
