lib/query/delta.ml: Algebra Bag Database Eval Hashtbl List Map Pred Relational Signed_bag String Tuple Update
