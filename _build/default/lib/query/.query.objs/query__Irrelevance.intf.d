lib/query/irrelevance.mli: Algebra Delta Relational Schema
