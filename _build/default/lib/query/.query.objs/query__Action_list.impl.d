lib/query/action_list.ml: Bag Fmt Relational Signed_bag
