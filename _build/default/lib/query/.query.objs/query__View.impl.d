lib/query/view.ml: Algebra Eval Fmt List
