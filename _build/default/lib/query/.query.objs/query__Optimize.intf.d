lib/query/optimize.mli: Algebra Relational
