lib/query/action_list.mli: Bag Format Relational Signed_bag
