lib/query/eval.mli: Algebra Bag Database Relation Relational Schema Tuple
