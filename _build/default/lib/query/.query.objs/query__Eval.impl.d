lib/query/eval.ml: Algebra Bag Database Hashtbl List Pred Relation Relational Schema Tuple Value
