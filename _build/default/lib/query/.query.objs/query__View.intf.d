lib/query/view.mli: Algebra Database Format Relation Relational Schema
