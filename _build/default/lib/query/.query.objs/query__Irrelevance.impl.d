lib/query/irrelevance.ml: Algebra Delta List Pred Relational Schema Signed_bag String
