lib/query/algebra.ml: Fmt List Pred Relational Schema Value
