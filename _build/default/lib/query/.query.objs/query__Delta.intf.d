lib/query/delta.mli: Algebra Database Relational Signed_bag Update
