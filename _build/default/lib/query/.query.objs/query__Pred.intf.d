lib/query/pred.mli: Format Relational Schema Tuple Value
