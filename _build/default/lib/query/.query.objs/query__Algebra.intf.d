lib/query/algebra.mli: Format Pred Relational Schema
