lib/query/optimize.ml: Algebra List Pred Relational Schema String
