open Relational

type aggregate = Count | Sum of string | Avg of string | Min of string | Max of string

type t =
  | Base of string
  | Select of Pred.t * t
  | Project of string list * t
  | Join of t * t
  | Union of t * t
  | Rename of (string * string) list * t
  | Group_by of group_by

and group_by = {
  keys : string list;
  aggregates : (string * aggregate) list;
  input : t;
}

let base name = Base name

let select pred e = Select (pred, e)

let project names e = Project (names, e)

let join a b = Join (a, b)

let join_all = function
  | [] -> invalid_arg "Algebra.join_all: empty list"
  | e :: es -> List.fold_left join e es

let union a b = Union (a, b)

let rename mapping e = Rename (mapping, e)

let group_by ~keys ~aggregates input = Group_by { keys; aggregates; input }

let base_relations t =
  let add seen name = if List.mem name seen then seen else seen @ [ name ] in
  let rec loop seen = function
    | Base name -> add seen name
    | Select (_, e) | Project (_, e) | Rename (_, e) -> loop seen e
    | Group_by { input; _ } -> loop seen input
    | Join (a, b) | Union (a, b) -> loop (loop seen a) b
  in
  loop [] t

let rec schema_of lookup = function
  | Base name -> lookup name
  | Select (pred, e) ->
    let schema = schema_of lookup e in
    (* Force resolution of every predicate attribute so that ill-typed view
       definitions fail at schema-inference time, not mid-maintenance. *)
    List.iter (fun n -> ignore (Schema.index_of schema n)) (Pred.attrs pred);
    schema
  | Project (names, e) -> Schema.project (schema_of lookup e) names
  | Join (a, b) -> Schema.join (schema_of lookup a) (schema_of lookup b)
  | Union (a, b) ->
    let sa = schema_of lookup a and sb = schema_of lookup b in
    if not (Schema.equal sa sb) then
      invalid_arg "Algebra.schema_of: union of incompatible schemas";
    sa
  | Rename (mapping, e) -> Schema.rename (schema_of lookup e) mapping
  | Group_by { keys; aggregates; input } ->
    let inner = schema_of lookup input in
    let key_attrs = List.map (fun k -> (k, Schema.type_of inner k)) keys in
    let agg_attr (name, agg) =
      let ty =
        match agg with
        | Count -> Value.Int_ty
        | Sum a | Min a | Max a -> Schema.type_of inner a
        | Avg _ -> Value.Float_ty
      in
      (* Force attribute resolution for Avg too. *)
      (match agg with
      | Avg a -> ignore (Schema.type_of inner a)
      | Count | Sum _ | Min _ | Max _ -> ());
      (name, ty)
    in
    Schema.make (key_attrs @ List.map agg_attr aggregates)

let rec depth = function
  | Base _ -> 1
  | Select (_, e) | Project (_, e) | Rename (_, e) -> 1 + depth e
  | Group_by { input; _ } -> 1 + depth input
  | Join (a, b) | Union (a, b) -> 1 + max (depth a) (depth b)

let rec size = function
  | Base _ -> 1
  | Select (_, e) | Project (_, e) | Rename (_, e) -> 1 + size e
  | Group_by { input; _ } -> 1 + size input
  | Join (a, b) | Union (a, b) -> 1 + size a + size b

let rec pp ppf = function
  | Base name -> Fmt.string ppf name
  | Select (pred, e) -> Fmt.pf ppf "sigma[%a](%a)" Pred.pp pred pp e
  | Project (names, e) ->
    Fmt.pf ppf "pi[%a](%a)" (Fmt.list ~sep:Fmt.comma Fmt.string) names pp e
  | Join (a, b) -> Fmt.pf ppf "(%a |><| %a)" pp a pp b
  | Union (a, b) -> Fmt.pf ppf "(%a U %a)" pp a pp b
  | Rename (mapping, e) ->
    let pp_pair ppf (a, b) = Fmt.pf ppf "%s/%s" b a in
    Fmt.pf ppf "rho[%a](%a)"
      (Fmt.list ~sep:Fmt.comma pp_pair)
      mapping pp e
  | Group_by { keys; aggregates; input } ->
    let pp_agg ppf (name, agg) =
      match agg with
      | Count -> Fmt.pf ppf "%s=count" name
      | Sum a -> Fmt.pf ppf "%s=sum(%s)" name a
      | Avg a -> Fmt.pf ppf "%s=avg(%s)" name a
      | Min a -> Fmt.pf ppf "%s=min(%s)" name a
      | Max a -> Fmt.pf ppf "%s=max(%s)" name a
    in
    Fmt.pf ppf "gamma[%a; %a](%a)"
      (Fmt.list ~sep:Fmt.comma Fmt.string)
      keys
      (Fmt.list ~sep:Fmt.comma pp_agg)
      aggregates pp input

let to_string t = Fmt.str "%a" pp t
