(** Named view definitions.

    A view [V_x] at the warehouse is a named algebra expression over base
    relations; the name is the identifier that flows through the whole
    system (REL sets, VUT columns, action lists, warehouse store). *)

open Relational

type t = { name : string; def : Algebra.t }

val make : string -> Algebra.t -> t

val name : t -> string

val base_relations : t -> string list

val schema : (string -> Schema.t) -> t -> Schema.t

val uses : t -> string -> bool
(** [uses v r] is true when base relation [r] appears in [v]'s definition. *)

val materialize : Database.t -> t -> Relation.t
(** Evaluate the view definition over a database state. *)

val overlaps : t -> t -> bool
(** True when the two views share a base relation — the condition under
    which updates may make them mutually inconsistent, and the edge
    relation used to partition merge processes (Section 6.1). *)

val pp : Format.formatter -> t -> unit
