open Relational

(* Rewrite a predicate through the inverse of a rename mapping, so that a
   predicate formulated against the renamed schema applies to the child. *)
let unrename_pred mapping pred =
  let unrename_attr n =
    match List.find_opt (fun (_, dst) -> String.equal dst n) mapping with
    | Some (src, _) -> src
    | None -> n
  in
  let unrename_operand = function
    | Pred.Attr n -> Pred.Attr (unrename_attr n)
    | Pred.Const _ as c -> c
  in
  let rec loop = function
    | Pred.True -> Pred.True
    | Pred.False -> Pred.False
    | Pred.Cmp (cmp, x, y) ->
      Pred.Cmp (cmp, unrename_operand x, unrename_operand y)
    | Pred.And (a, b) -> Pred.And (loop a, loop b)
    | Pred.Or (a, b) -> Pred.Or (loop a, loop b)
    | Pred.Not a -> Pred.Not (loop a)
  in
  loop pred

let subset names schema = List.for_all (Schema.mem schema) names

(* [empty_under schemas changes expr preds]: is the delta of
   [sigma_{preds}(expr)] provably empty, syntactically? [preds] all apply to
   [expr]'s schema. *)
let rec empty_under schemas changes expr preds =
  match (expr : Algebra.t) with
  | Base name ->
    let delta = Delta.change_for changes name in
    Signed_bag.is_zero delta
    ||
    let schema = schemas name in
    let filter = Pred.conj (List.map fst preds) in
    let fails (tup, _count) =
      match Pred.eval schema filter tup with
      | holds -> not holds
      | exception Schema.Unknown_attribute _ -> false
    in
    List.for_all fails (Signed_bag.to_list delta)
  | Select (p, e) -> empty_under schemas changes e ((p, ()) :: preds)
  | Project (_, e) | Rename ([], e) -> empty_under schemas changes e preds
  | Rename (mapping, e) ->
    let rewritten =
      List.map (fun (p, ()) -> (unrename_pred mapping p, ())) preds
    in
    empty_under schemas changes e rewritten
  | Join (a, b) ->
    let sa = Algebra.schema_of schemas a
    and sb = Algebra.schema_of schemas b in
    let pushable schema (p, ()) = subset (Pred.attrs p) schema in
    let preds_a = List.filter (pushable sa) preds
    and preds_b = List.filter (pushable sb) preds in
    empty_under schemas changes a preds_a
    && empty_under schemas changes b preds_b
  | Union (a, b) ->
    empty_under schemas changes a preds && empty_under schemas changes b preds
  | Group_by { keys; input; _ } ->
    (* Selections on group keys commute with the aggregation; others are
       dropped (conservative). *)
    let keyed =
      List.filter
        (fun (p, ()) ->
          List.for_all (fun a -> List.mem a keys) (Pred.attrs p))
        preds
    in
    empty_under schemas changes input keyed

let provably_irrelevant ~schemas ~changes expr =
  empty_under schemas changes expr []
