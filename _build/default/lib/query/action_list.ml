open Relational

type payload = Delta of Signed_bag.t | Refresh of Bag.t

type t = { view : string; state : int; payload : payload }

let delta ~view ~state d = { view; state; payload = Delta d }

let refresh ~view ~state contents = { view; state; payload = Refresh contents }

let is_empty t =
  match t.payload with
  | Delta d -> Signed_bag.is_zero d
  | Refresh _ -> false

let apply t contents =
  match t.payload with
  | Delta d -> Signed_bag.apply d contents
  | Refresh fresh -> fresh

let action_count t =
  match t.payload with
  | Delta d -> Signed_bag.size d
  | Refresh fresh -> Bag.cardinal fresh

let pp ppf t =
  match t.payload with
  | Delta d -> Fmt.pf ppf "AL(%s,%d)%a" t.view t.state Signed_bag.pp d
  | Refresh fresh ->
    Fmt.pf ppf "AL(%s,%d)refresh[%d tuples]" t.view t.state
      (Bag.cardinal fresh)
