open Relational

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

let join_counted sa sb left right =
  let shared = Schema.common sa sb in
  let key_of schema tup = Tuple.project schema shared tup in
  let index = Tuple_tbl.create (List.length right + 1) in
  let index_one (tup, n) =
    let key = key_of sb tup in
    let existing =
      match Tuple_tbl.find_opt index key with Some l -> l | None -> []
    in
    Tuple_tbl.replace index key ((tup, n) :: existing)
  in
  List.iter index_one right;
  let join_one acc (ltup, ln) =
    match Tuple_tbl.find_opt index (key_of sa ltup) with
    | None -> acc
    | Some matches ->
      List.fold_left
        (fun acc (rtup, rn) ->
          match Tuple.join sa sb ltup rtup with
          | Some joined -> (joined, ln * rn) :: acc
          | None ->
            (* Shared-key equality implies joinability. *)
            assert false)
        acc matches
  in
  List.fold_left join_one [] left

let add_values a b =
  match (a, b) with
  | Value.Null, v | v, Value.Null -> v
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | Value.Float x, Value.Float y -> Value.Float (x +. y)
  | Value.Int x, Value.Float y | Value.Float y, Value.Int x ->
    Value.Float (float_of_int x +. y)
  | (Value.Bool _ | Value.String _), _ | _, (Value.Bool _ | Value.String _) ->
    raise (Relation.Type_error "sum over non-numeric attribute")

let scale_value n = function
  | Value.Null -> Value.Null
  | Value.Int x -> Value.Int (n * x)
  | Value.Float x -> Value.Float (float_of_int n *. x)
  | Value.Bool _ | Value.String _ ->
    raise (Relation.Type_error "sum over non-numeric attribute")

let to_float = function
  | Value.Int x -> float_of_int x
  | Value.Float x -> x
  | Value.Null | Value.Bool _ | Value.String _ ->
    raise (Relation.Type_error "avg over non-numeric attribute")

let aggregate_group ~input_schema ~group ~key contents =
  let { Algebra.keys; aggregates; input = _ } = group in
  let non_null attr f init =
    Bag.fold
      (fun tup n acc ->
        match Tuple.field input_schema tup attr with
        | Value.Null -> acc
        | v -> f v n acc)
      contents init
  in
  let compute = function
    | Algebra.Count -> Value.Int (Bag.cardinal contents)
    | Algebra.Sum attr ->
      non_null attr (fun v n acc -> add_values acc (scale_value n v)) Value.Null
    | Algebra.Avg attr ->
      let total, count =
        non_null attr
          (fun v n (total, count) -> (total +. (float_of_int n *. to_float v), count + n))
          (0.0, 0)
      in
      if count = 0 then Value.Null else Value.Float (total /. float_of_int count)
    | Algebra.Min attr ->
      non_null attr
        (fun v _ acc ->
          match acc with
          | Value.Null -> v
          | best -> if Value.compare v best < 0 then v else best)
        Value.Null
    | Algebra.Max attr ->
      non_null attr
        (fun v _ acc ->
          match acc with
          | Value.Null -> v
          | best -> if Value.compare v best > 0 then v else best)
        Value.Null
  in
  ignore keys;
  Tuple.concat key
    (Tuple.of_list (List.map (fun (_, agg) -> compute agg) aggregates))

let rec eval_bag db expr =
  let lookup name = Database.schema db name in
  match (expr : Algebra.t) with
  | Base name -> Relation.contents (Database.find db name)
  | Select (pred, e) ->
    let schema = Algebra.schema_of lookup e in
    Bag.filter (Pred.eval schema pred) (eval_bag db e)
  | Project (names, e) ->
    let schema = Algebra.schema_of lookup e in
    Bag.map (Tuple.project schema names) (eval_bag db e)
  | Join (a, b) ->
    let sa = Algebra.schema_of lookup a and sb = Algebra.schema_of lookup b in
    let joined =
      join_counted sa sb
        (Bag.to_counted_list (eval_bag db a))
        (Bag.to_counted_list (eval_bag db b))
    in
    List.fold_left
      (fun acc (tup, n) -> Bag.add ~count:n tup acc)
      Bag.empty joined
  | Union (a, b) -> Bag.union (eval_bag db a) (eval_bag db b)
  | Rename (_, e) -> eval_bag db e
  | Group_by group ->
    let input_schema = Algebra.schema_of lookup group.input in
    let contents = eval_bag db group.input in
    let by_key = Tuple_tbl.create 32 in
    Bag.iter
      (fun tup n ->
        let key = Tuple.project input_schema group.keys tup in
        let existing =
          match Tuple_tbl.find_opt by_key key with
          | Some bag -> bag
          | None -> Bag.empty
        in
        Tuple_tbl.replace by_key key (Bag.add ~count:n tup existing))
      contents;
    Tuple_tbl.fold
      (fun key members acc ->
        Bag.add (aggregate_group ~input_schema ~group ~key members) acc)
      by_key Bag.empty

let eval db expr =
  let lookup name = Database.schema db name in
  let schema = Algebra.schema_of lookup expr in
  Relation.with_contents (Relation.create schema) (eval_bag db expr)
