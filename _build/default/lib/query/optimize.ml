open Relational

(* Rewrite a predicate through the inverse of a rename mapping (same as
   Irrelevance's pushdown through Rename). *)
let unrename_pred mapping pred =
  let unrename_attr n =
    match List.find_opt (fun (_, dst) -> String.equal dst n) mapping with
    | Some (src, _) -> src
    | None -> n
  in
  let unrename_operand = function
    | Pred.Attr n -> Pred.Attr (unrename_attr n)
    | Pred.Const _ as c -> c
  in
  let rec loop = function
    | Pred.True -> Pred.True
    | Pred.False -> Pred.False
    | Pred.Cmp (cmp, x, y) ->
      Pred.Cmp (cmp, unrename_operand x, unrename_operand y)
    | Pred.And (a, b) -> Pred.And (loop a, loop b)
    | Pred.Or (a, b) -> Pred.Or (loop a, loop b)
    | Pred.Not a -> Pred.Not (loop a)
  in
  loop pred

let attrs_within pred schema =
  List.for_all (Schema.mem schema) (Pred.attrs pred)

(* One top-down pass pushing a pending conjunction of selections as deep
   as it can go. *)
let push_selections ~schemas expr =
  let rec push pending expr =
    let wrap e =
      (* Drop any predicates that could not sink further here. *)
      match pending with
      | [] -> e
      | ps -> Algebra.Select (Pred.conj ps, e)
    in
    match (expr : Algebra.t) with
    | Base _ -> wrap expr
    | Select (p, e) -> push (p :: pending) e
    | Project (names, e) ->
      (* Predicates above a projection reference only projected names,
         which exist below unchanged. *)
      Algebra.Project (names, push pending e)
    | Rename (mapping, e) ->
      Algebra.Rename (mapping, push (List.map (unrename_pred mapping) pending) e)
    | Join (a, b) ->
      let sa = Algebra.schema_of schemas a
      and sb = Algebra.schema_of schemas b in
      (* Predicates over shared attributes are replicated to both sides:
         each side's (delta) input shrinks before the join. *)
      let to_a = List.filter (fun p -> attrs_within p sa) pending in
      let to_b = List.filter (fun p -> attrs_within p sb) pending in
      let stuck =
        List.filter
          (fun p -> not (attrs_within p sa || attrs_within p sb))
          pending
      in
      let joined = Algebra.Join (push to_a a, push to_b b) in
      (match stuck with
      | [] -> joined
      | ps -> Algebra.Select (Pred.conj ps, joined))
    | Union (a, b) -> Algebra.Union (push pending a, push pending b)
    | Group_by { keys; aggregates; input } ->
      let keyed, stuck =
        List.partition
          (fun p -> List.for_all (fun a -> List.mem a keys) (Pred.attrs p))
          pending
      in
      let grouped =
        Algebra.Group_by { keys; aggregates; input = push keyed input }
      in
      (match stuck with
      | [] -> grouped
      | ps -> Algebra.Select (Pred.conj ps, grouped))
  in
  push [] expr

(* Structural cleanups: collapse stacked projections, drop identity
   projections and trivially-true selections. *)
let rec simplify ~schemas expr =
  match (expr : Algebra.t) with
  | Base _ -> expr
  | Select (Pred.True, e) -> simplify ~schemas e
  | Select (p, e) -> Algebra.Select (p, simplify ~schemas e)
  | Project (names, Project (_, e)) ->
    simplify ~schemas (Algebra.Project (names, e))
  | Project (names, e) ->
    let e = simplify ~schemas e in
    if Schema.names (Algebra.schema_of schemas e) = names then e
    else Algebra.Project (names, e)
  | Join (a, b) -> Algebra.Join (simplify ~schemas a, simplify ~schemas b)
  | Union (a, b) -> Algebra.Union (simplify ~schemas a, simplify ~schemas b)
  | Rename ([], e) -> simplify ~schemas e
  | Rename (mapping, e) -> Algebra.Rename (mapping, simplify ~schemas e)
  | Group_by { keys; aggregates; input } ->
    Algebra.Group_by { keys; aggregates; input = simplify ~schemas input }

let optimize ~schemas expr =
  let pass e = simplify ~schemas (push_selections ~schemas e) in
  (* The rewrites strictly shrink or keep size; iterate to a fixpoint with
     a small bound as a safety net. *)
  let rec fix n e =
    let e' = pass e in
    if n = 0 || e' = e then e' else fix (n - 1) e'
  in
  fix 8 expr
