type t = { name : string; def : Algebra.t }

let make name def = { name; def }

let name t = t.name

let base_relations t = Algebra.base_relations t.def

let schema lookup t = Algebra.schema_of lookup t.def

let uses t r = List.mem r (base_relations t)

let materialize db t = Eval.eval db t.def

let overlaps a b =
  let rels = base_relations b in
  List.exists (fun r -> List.mem r rels) (base_relations a)

let pp ppf t = Fmt.pf ppf "%s = %a" t.name Algebra.pp t.def
