(** Algebraic rewrites for view definitions.

    View managers evaluate delta expressions constantly (once per update
    or batch), so the shape of the definition matters: a selection sitting
    above a join forces the join to be computed in full before filtering.
    [optimize] applies the classic equivalence-preserving rewrites —
    selection pushdown through joins / unions / projections / renames /
    group-by keys, adjacent-selection fusion, projection collapsing,
    identity-projection removal — producing an expression with the same
    bag semantics (property-tested in [test/test_optimize.ml]) that is
    never slower to evaluate incrementally.

    Rewrites need the base-relation schemas to decide pushability, hence
    the [schemas] argument. *)

val optimize : schemas:(string -> Relational.Schema.t) -> Algebra.t -> Algebra.t
(** Fixpoint of all rewrites. Guaranteed to preserve {!Eval.eval_bag} and
    {!Delta.eval} semantics and the output schema. *)

val push_selections :
  schemas:(string -> Relational.Schema.t) -> Algebra.t -> Algebra.t
(** Only the selection rules (exposed for the ablation benchmark). *)
