open Relational

type operand = Attr of string | Const of Value.t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * operand * operand
  | And of t * t
  | Or of t * t
  | Not of t

let operand_value schema tup = function
  | Attr name -> Tuple.field schema tup name
  | Const v -> v

let cmp_holds cmp a b =
  let is_null = function Value.Null -> true | _ -> false in
  if is_null a || is_null b then cmp = Ne
  else
    let c = Value.compare a b in
    match cmp with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

let rec eval schema t tup =
  match t with
  | True -> true
  | False -> false
  | Cmp (cmp, x, y) ->
    cmp_holds cmp (operand_value schema tup x) (operand_value schema tup y)
  | And (a, b) -> eval schema a tup && eval schema b tup
  | Or (a, b) -> eval schema a tup || eval schema b tup
  | Not a -> not (eval schema a tup)

let attrs t =
  let add seen name = if List.mem name seen then seen else seen @ [ name ] in
  let of_operand seen = function Attr n -> add seen n | Const _ -> seen in
  let rec loop seen = function
    | True | False -> seen
    | Cmp (_, x, y) -> of_operand (of_operand seen x) y
    | And (a, b) | Or (a, b) -> loop (loop seen a) b
    | Not a -> loop seen a
  in
  loop [] t

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> False
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let eq name v = Cmp (Eq, Attr name, Const v)

let lt name v = Cmp (Lt, Attr name, Const v)

let gt name v = Cmp (Gt, Attr name, Const v)

let le name v = Cmp (Le, Attr name, Const v)

let ge name v = Cmp (Ge, Attr name, Const v)

let attr_eq a b = Cmp (Eq, Attr a, Attr b)

let pp_operand ppf = function
  | Attr n -> Fmt.string ppf n
  | Const v -> Value.pp ppf v

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Cmp (cmp, x, y) ->
    Fmt.pf ppf "%a %s %a" pp_operand x (cmp_symbol cmp) pp_operand y
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp a pp b
  | Not a -> Fmt.pf ppf "(not %a)" pp a
