(** Action lists: the messages view managers send to the merge process.

    [AL^x_j] (paper notation) carries the operations that bring view [V_x]
    to the state consistent with the source state existing after update
    [U_j]. A complete view manager sends one action list per relevant
    update; a strongly consistent manager may batch several intertwined
    updates into a single list, in which case [state] identifies the *last*
    update included (Section 3.3). Empty action lists are still sent — the
    paper notes this simplifies the merge algorithm. *)

open Relational

type payload =
  | Delta of Signed_bag.t
      (** Incremental insert/delete operations. *)
  | Refresh of Bag.t
      (** Replace the whole view contents — what a periodic-refresh view
          manager sends ("delete the entire old view and insert tuples of
          the new view", Section 6.3). *)

type t = {
  view : string;  (** [x]: the view manager / view this list belongs to. *)
  state : int;  (** [j]: the update (transaction) id whose source state the
                    view reaches once this list is applied. *)
  payload : payload;
}

val delta : view:string -> state:int -> Signed_bag.t -> t

val refresh : view:string -> state:int -> Bag.t -> t

val is_empty : t -> bool

val apply : t -> Bag.t -> Bag.t
(** Apply to the current contents of the view at the warehouse. *)

val action_count : t -> int
(** Number of elementary insert/delete operations carried. *)

val pp : Format.formatter -> t -> unit
