(** Semantic irrelevant-update detection.

    Section 3.2 of the paper: the integrator may "be more discerning by
    using selection conditions in the view definitions to rule out
    irrelevant updates" (Blakeley et al., reference [7]). This module
    implements the conservative test: an update to base relation [R] is
    provably irrelevant to a view when, for every occurrence of [R] in the
    view definition, every changed tuple fails a selection predicate that
    applies to that occurrence before any schema-changing operator.

    The test is sound (never claims irrelevance wrongly) but incomplete —
    when in doubt it answers "maybe relevant". *)

open Relational

val provably_irrelevant :
  schemas:(string -> Schema.t) ->
  changes:Delta.changes ->
  Algebra.t ->
  bool
(** [provably_irrelevant ~schemas ~changes expr] is true when the delta of
    [expr] under [changes] is guaranteed empty without consulting base
    data. Updates to relations not mentioned in [expr] are trivially
    irrelevant. *)
