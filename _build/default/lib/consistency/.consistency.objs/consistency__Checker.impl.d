lib/consistency/checker.ml: Array Bag Database Fmt Fun Hashtbl Int List Option Printf Query Relation Relational Set String Update
