lib/consistency/checker.mli: Bag Database Format Query Relational Update
