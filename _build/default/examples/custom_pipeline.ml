(* Using the library as a toolkit: wire the integrator, hand-written view
   managers and the SPA merge directly, without the Whips.System assembly.
   This is the path a user takes to plug in a custom view-manager type —
   here, a manager that also logs every delta it ships (the paper's point
   that per-view manager processes make specialized managers easy).

     dune exec examples/custom_pipeline.exe
*)

open Relational

let () =
  (* Sources and views. *)
  let int_schema names =
    Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)
  in
  let sources =
    Source.Sources.create
      [ { source = "s"; relation = "orders";
          init =
            Relation.of_tuples
              (int_schema [ "order_id"; "item" ])
              [ Tuple.ints [ 1; 10 ] ] };
        { source = "s"; relation = "items";
          init =
            Relation.of_tuples
              (int_schema [ "item"; "price" ])
              [ Tuple.ints [ 10; 99 ]; Tuple.ints [ 11; 5 ] ] } ]
  in
  let priced =
    Query.View.make "priced_orders"
      Query.Algebra.(join (base "orders") (base "items"))
  in
  let cheap =
    Query.View.make "cheap_items"
      Query.Algebra.(
        select (Query.Pred.le "price" (Value.Int 50)) (base "items"))
  in
  let views = [ priced; cheap ] in
  (* Warehouse store + SPA merge, wired by hand. *)
  let initial = Source.Sources.initial sources in
  let store =
    Warehouse.Store.create
      (List.map
         (fun v -> (Query.View.name v, Query.View.materialize initial v))
         views)
  in
  let spa =
    Mvc.Spa.create
      ~views:(List.map Query.View.name views)
      ~emit:(fun wt ->
        Warehouse.Store.apply store wt;
        Fmt.pr "  warehouse commit for rows [%a]@."
          (Fmt.list ~sep:Fmt.comma Fmt.int)
          wt.Warehouse.Wt.rows)
      ()
  in
  (* A custom complete view manager: computes exact deltas against a local
     cache and logs what it ships. Because it is just a closure record, no
     change to the rest of the system is needed. *)
  let logging_manager view =
    let cache = ref (Database.restrict initial (Query.View.base_relations view)) in
    fun (txn : Update.Transaction.t) ->
      let changes = Query.Delta.of_transaction txn in
      let delta = Query.Delta.eval ~pre:!cache changes view.Query.View.def in
      cache := Database.apply_relevant !cache txn;
      Fmt.pr "  [%s] shipping %a for U%d@." (Query.View.name view)
        Signed_bag.pp delta txn.id;
      Mvc.Spa.receive_action_list spa
        (Query.Action_list.delta ~view:(Query.View.name view) ~state:txn.id
           delta)
  in
  let managers = List.map (fun v -> (v, logging_manager v)) views in
  let integ =
    Integrator.create ~schemas:(Source.Sources.schema_lookup sources) views
  in
  (* Drive three transactions through integrator -> managers -> merge. *)
  let feed updates =
    let txn = Source.Sources.execute sources updates in
    let stamped, rel = Integrator.ingest integ txn in
    Fmt.pr "U%d %a  REL = {%s}@." stamped.id Update.Transaction.pp stamped
      (String.concat ", " rel);
    Mvc.Spa.receive_rel spa ~row:stamped.id ~rel;
    List.iter
      (fun (v, manager) ->
        if List.mem (Query.View.name v) rel then manager stamped)
      managers
  in
  feed [ Update.insert "orders" (Tuple.ints [ 2; 11 ]) ];
  feed [ Update.insert "items" (Tuple.ints [ 12; 20 ]) ];
  feed
    [ Update.modify "items" ~before:(Tuple.ints [ 11; 5 ])
        ~after:(Tuple.ints [ 11; 80 ]) ];
  (* Inspect the result and verify consistency with the oracle. *)
  Fmt.pr "final views:@.";
  List.iter
    (fun v ->
      let name = Query.View.name v in
      Fmt.pr "  %s = %a@." name Bag.pp
        (Relation.contents (Warehouse.Store.view store name)))
    views;
  let verdict =
    Consistency.Checker.check ~views
      ~transactions:(Source.Sources.transactions sources)
      ~source_states:(Source.Sources.states sources)
      ~warehouse_states:(Warehouse.Store.states store)
  in
  Fmt.pr "verdict: %a@." Consistency.Checker.pp_verdict verdict
