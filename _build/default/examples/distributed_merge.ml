(* Distributing the merge process (Section 6.1 / Figure 3): partition the
   views into groups whose base relations are disjoint and give each group
   its own merge process. This example prints the partition, runs the same
   loaded workload with 1, 2 and 4 merges, and reports staleness.

     dune exec examples/distributed_merge.exe
*)

let () =
  (* Four independent department marts, two views each. *)
  let scen =
    let rng = Sim.Rng.create 7 in
    let schema d k =
      Relational.Schema.make
        [ (Printf.sprintf "d%d_k%d" d k, Relational.Value.Int_ty);
          (Printf.sprintf "d%d_k%d" d (k + 1), Relational.Value.Int_ty) ]
    in
    let rel d k = Printf.sprintf "dept%d_tbl%d" d k in
    let specs =
      List.concat
        (List.init 4 (fun d ->
             List.init 3 (fun k ->
                 { Source.Sources.source = Printf.sprintf "dept%d" d;
                   relation = rel d k;
                   init =
                     Relational.Relation.of_tuples (schema d k)
                       (List.init 5 (fun _ ->
                            Relational.Tuple.ints
                              [ Sim.Rng.int rng 4; Sim.Rng.int rng 4 ])) })))
    in
    let views =
      List.concat
        (List.init 4 (fun d ->
             List.init 2 (fun i ->
                 Query.View.make
                   (Printf.sprintf "dept%d_view%d" d i)
                   (Query.Algebra.join
                      (Query.Algebra.base (rel d i))
                      (Query.Algebra.base (rel d (i + 1)))))))
    in
    let script =
      List.init 120 (fun _ ->
          let d = Sim.Rng.int rng 4 and k = Sim.Rng.int rng 3 in
          [ Relational.Update.insert (rel d k)
              (Relational.Tuple.ints [ Sim.Rng.int rng 4; Sim.Rng.int rng 4 ]) ])
    in
    { Workload.Scenarios.name = "departments"; specs; views; script }
  in
  Fmt.pr "finest disjoint partition of the views:@.";
  List.iteri
    (fun i group ->
      Fmt.pr "  merge process %d: %s@." (i + 1)
        (String.concat ", " (List.map Query.View.name group)))
    (Mvc.Partition.groups scen.views);
  let run merges =
    let result =
      Whips.System.run
        { (Whips.System.default scen) with
          merge_groups = (if merges = 1 then None else Some merges);
          arrival = Whips.System.Poisson 100.0;
          latencies =
            { Whips.System.default_latencies with merge = 0.004 };
          seed = 7 }
    in
    let v = Whips.System.verdict result in
    Fmt.pr
      "  %d merge process(es): mean staleness %.1f ms, p95 %.1f ms, verdict \
       %a@."
      merges
      (1000.0 *. Sim.Stats.Summary.mean result.metrics.Whips.Metrics.staleness)
      (1000.0
      *. Sim.Stats.Summary.percentile result.metrics.Whips.Metrics.staleness
           95.0)
      Consistency.Checker.pp_verdict v
  in
  Fmt.pr "same workload under increasing merge parallelism:@.";
  List.iter run [ 1; 2; 4 ]
