(* The Section 1.1 motivation: a warehouse answering customer inquiries.
   A customer's checking record (in the `checking_copy` view) must match
   her linked-account record (in the `linked` view). We run the same
   deposit/transfer workload twice — once with action lists forwarded as
   they arrive (no merge coordination) and once under SPA — and count the
   warehouse states in which an inquiry would have seen torn data.

     dune exec examples/bank_consistency.exe
*)

open Relational

let torn_states (result : Whips.System.result) =
  (* A state is torn when some customer's checking balance differs between
     the linked view (cust, cbal, sbal) and the checking copy (cust, cbal). *)
  let check ws =
    let linked = Relation.contents (Database.find ws "linked") in
    let copy = Relation.contents (Database.find ws "checking_copy") in
    let balance bag cust =
      List.filter_map
        (fun t ->
          if Value.equal (Tuple.get t 0) (Value.Int cust) then
            Some (Tuple.get t 1)
          else None)
        (Bag.to_list bag)
    in
    List.exists
      (fun cust ->
        match (balance linked cust, balance copy cust) with
        | [ a ], [ b ] -> not (Value.equal a b)
        | _ -> false)
      [ 1; 2; 3; 4; 5 ]
  in
  List.length (List.filter check (Warehouse.Store.states result.store))

let run merge_kind seed =
  Whips.System.run
    { (Whips.System.default Workload.Scenarios.bank) with
      merge_kind;
      arrival = Whips.System.Poisson 150.0;
      seed }

let () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let total kind =
    List.fold_left (fun acc seed -> acc + torn_states (run kind seed)) 0 seeds
  in
  let broken = total Whips.System.Force_passthrough in
  let spa = total Whips.System.Auto in
  Fmt.pr "workload: deposits, withdrawals and cross-source transfers@.";
  Fmt.pr "torn customer records across %d runs:@." (List.length seeds);
  Fmt.pr "  without merge coordination : %d warehouse states@." broken;
  Fmt.pr "  under SPA                  : %d warehouse states@." spa;
  let verdict = Whips.System.verdict (run Whips.System.Auto 1) in
  Fmt.pr "SPA verdict: %a@." Consistency.Checker.pp_verdict verdict;
  if spa = 0 && broken > 0 then
    Fmt.pr "=> the merge process is what makes the inquiry read safe.@."
