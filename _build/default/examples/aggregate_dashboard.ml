(* Aggregate views: a live sales dashboard. The paper's architecture
   motivates per-view manager processes partly because "aggregate views
   need different maintenance algorithms" (Section 1.2); here SUM/COUNT/MAX
   rollups are maintained incrementally, mutually consistent with a detail
   copy of the fact table — so a dashboard reading totals and drill-down
   detail in one warehouse state never sees them disagree.

     dune exec examples/aggregate_dashboard.exe
*)

open Relational

let () =
  let scen = Workload.Scenarios.sales_rollup in
  let result =
    Whips.System.run
      { (Whips.System.default scen) with
        arrival = Whips.System.Poisson 80.0;
        seed = 4 }
  in
  Fmt.pr "views:@.";
  List.iter (fun v -> Fmt.pr "  %a@." Query.View.pp v) scen.views;
  Fmt.pr "@.dashboard at each warehouse state (totals vs detail):@.";
  List.iteri
    (fun i ws ->
      let rollup = Relation.contents (Database.find ws "qty_by_store") in
      let detail = Relation.contents (Database.find ws "sales_detail") in
      (* Cross-check: the rollup's total quantity must equal the sum over
         the detail copy in the same state — mutual consistency makes the
         dashboard's overview and drill-down agree. *)
      let rollup_total =
        Bag.fold
          (fun tup n acc ->
            match Tuple.get tup 1 with
            | Value.Int q -> acc + (n * q)
            | _ -> acc)
          rollup 0
      in
      let detail_total =
        Bag.fold
          (fun tup n acc ->
            match Tuple.get tup 2 with
            | Value.Int q -> acc + (n * q)
            | _ -> acc)
          detail 0
      in
      Fmt.pr "  ws%-2d qty_by_store=%a  total=%d  detail-total=%d  %s@." i
        Bag.pp rollup rollup_total detail_total
        (if rollup_total = detail_total then "consistent" else "TORN"))
    (Warehouse.Store.states result.store);
  Fmt.pr "@.verdict: %a@." Consistency.Checker.pp_verdict
    (Whips.System.verdict result)
