(* Quickstart: define base relations at two sources, two join views at the
   warehouse, run the full simulated Figure-1 pipeline, and check the
   consistency level achieved.

     dune exec examples/quickstart.exe
*)

open Relational

let () =
  (* 1. Base data: R(A,B) at source alpha, S(B,C) and T(C,D) at beta. *)
  let int_schema names =
    Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)
  in
  let specs =
    [ { Source.Sources.source = "alpha"; relation = "R";
        init = Relation.of_tuples (int_schema [ "A"; "B" ]) [ Tuple.ints [ 1; 2 ] ] };
      { source = "beta"; relation = "S";
        init = Relation.of_tuples (int_schema [ "B"; "C" ]) [] };
      { source = "beta"; relation = "T";
        init = Relation.of_tuples (int_schema [ "C"; "D" ]) [ Tuple.ints [ 3; 4 ] ] } ]
  in
  (* 2. Two warehouse views sharing S — the paper's Example 1. *)
  let views =
    [ Query.View.make "V1" Query.Algebra.(join (base "R") (base "S"));
      Query.View.make "V2" Query.Algebra.(join (base "S") (base "T")) ]
  in
  (* 3. A few source transactions. *)
  let script =
    [ [ Update.insert "S" (Tuple.ints [ 2; 3 ]) ];
      [ Update.insert "R" (Tuple.ints [ 9; 2 ]) ];
      [ Update.delete "S" (Tuple.ints [ 2; 3 ]) ] ]
  in
  let scenario = { Workload.Scenarios.name = "quickstart"; specs; views; script } in
  (* 4. Run: complete view managers, SPA merge, serial commits. *)
  let result = Whips.System.run (Whips.System.default scenario) in
  Fmt.pr "merge algorithm: %s@." result.merge_algorithm;
  Fmt.pr "warehouse states (each row is one atomic warehouse transaction):@.";
  List.iteri
    (fun i ws ->
      Fmt.pr "  ws%d  V1=%a  V2=%a@." i Bag.pp
        (Relation.contents (Database.find ws "V1"))
        Bag.pp
        (Relation.contents (Database.find ws "V2")))
    (Warehouse.Store.states result.store);
  (* 5. The oracle checks the formal Section-2 definitions. *)
  let verdict = Whips.System.verdict result in
  Fmt.pr "consistency: %a@." Consistency.Checker.pp_verdict verdict;
  Fmt.pr "mean staleness: %.1f ms@."
    (1000.0 *. Sim.Stats.Summary.mean result.metrics.Whips.Metrics.staleness)
