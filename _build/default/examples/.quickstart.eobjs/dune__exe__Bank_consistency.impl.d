examples/bank_consistency.ml: Bag Consistency Database Fmt List Relation Relational Tuple Value Warehouse Whips Workload
