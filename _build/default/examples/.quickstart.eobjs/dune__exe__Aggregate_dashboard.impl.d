examples/aggregate_dashboard.ml: Bag Consistency Database Fmt List Query Relation Relational Tuple Value Warehouse Whips Workload
