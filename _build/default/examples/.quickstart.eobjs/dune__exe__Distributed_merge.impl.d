examples/distributed_merge.ml: Consistency Fmt List Mvc Printf Query Relational Sim Source String Whips Workload
