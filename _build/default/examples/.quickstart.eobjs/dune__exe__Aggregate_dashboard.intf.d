examples/aggregate_dashboard.mli:
