examples/custom_pipeline.ml: Bag Consistency Database Fmt Integrator List Mvc Query Relation Relational Schema Signed_bag Source String Tuple Update Value Warehouse
