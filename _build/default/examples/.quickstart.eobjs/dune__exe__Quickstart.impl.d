examples/quickstart.ml: Bag Consistency Database Fmt List Query Relation Relational Schema Sim Source Tuple Update Value Warehouse Whips Workload
