examples/auxiliary_views.ml: Consistency Database Fmt List Query Relation Relational Warehouse Whips Workload
