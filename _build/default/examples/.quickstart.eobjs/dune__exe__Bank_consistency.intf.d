examples/bank_consistency.mli:
