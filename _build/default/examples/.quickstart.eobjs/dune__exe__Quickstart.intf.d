examples/quickstart.mli:
