examples/time_travel.ml: Bag Database Fmt List Query Relation Relational String Tuple Value Warehouse Whips Workload
