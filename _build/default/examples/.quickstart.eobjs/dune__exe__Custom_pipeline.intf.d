examples/custom_pipeline.mli:
