examples/auxiliary_views.mli:
