examples/distributed_merge.mli:
