(* Point-in-time reads: the warehouse as a store of historical data (one
   of the intro's warehouse uses). The store keeps every committed state,
   so a reader can ask what any view — or any query over several views —
   looked like at an earlier instant, always observing a mutually
   consistent snapshot.

     dune exec examples/time_travel.exe
*)

open Relational

let () =
  let scen = Workload.Scenarios.bank in
  let result =
    Whips.System.run
      { (Whips.System.default scen) with
        arrival = Whips.System.Uniform 0.1;
        record_timeline = true;
        seed = 6 }
  in
  let store = result.store in
  let balance_of db cust =
    let copy = Relation.contents (Database.find db "checking_copy") in
    List.fold_left
      (fun acc t ->
        if Value.equal (Tuple.get t 0) (Value.Int cust) then
          match Tuple.get t 1 with Value.Int b -> Some b | _ -> acc
        else acc)
      None (Bag.to_list copy)
  in
  Fmt.pr "customer 2's checking balance through (simulated) time:@.";
  List.iter
    (fun t ->
      match balance_of (Warehouse.Store.as_of store t) 2 with
      | Some b -> Fmt.pr "  as of %4.2fs: %d@." t b
      | None -> Fmt.pr "  as of %4.2fs: (unknown customer)@." t)
    [ 0.0; 0.15; 0.25; 0.35; 0.5 ];
  (* A historical query joining two views still sees one snapshot. *)
  let linked_then =
    Warehouse.Reader.query_as_of store ~time:0.25
      Query.Algebra.(join (base "checking_copy") (base "linked"))
  in
  Fmt.pr "@.join of checking_copy and linked as of 0.25s: %d rows, all \
          consistent@."
    (Relation.cardinal linked_then);
  Fmt.pr "@.commit timeline:@.";
  List.iter
    (fun (t, e) ->
      if String.length e >= 9 && String.sub e 0 9 = "warehouse" then
        Fmt.pr "  %5.3fs %s@." t e)
    result.timeline
