(* Auxiliary materialized views (Section 1.1, references [12, 8] of the
   paper): to maintain V = R |><| S |><| T cheaply, the warehouse also
   materializes RS = R |><| S and ST = S |><| T, and recomputes V from
   them. That only works if RS and ST are mutually consistent at every
   warehouse state — an application that *requires* MVC.

     dune exec examples/auxiliary_views.exe
*)

open Relational

let () =
  let scen = Workload.Scenarios.auxiliary in
  let result =
    Whips.System.run
      { (Whips.System.default scen) with
        arrival = Whips.System.Poisson 60.0;
        seed = 5 }
  in
  let states = Warehouse.Store.states result.store in
  Fmt.pr "checking V == RS |><| ST at each of %d warehouse states:@."
    (List.length states);
  let ok = ref true in
  List.iteri
    (fun i ws ->
      let rs = Database.find ws "RS" and st = Database.find ws "ST" in
      let v = Database.find ws "V" in
      let recomputed =
        Query.Eval.eval
          (Database.of_list [ ("RS", rs); ("ST", st) ])
          Query.Algebra.(join (base "RS") (base "ST"))
      in
      let same = Relation.equal_contents recomputed v in
      if not same then ok := false;
      Fmt.pr "  ws%d: |RS|=%d |ST|=%d |V|=%d  recomputed-from-aux %s@." i
        (Relation.cardinal rs) (Relation.cardinal st) (Relation.cardinal v)
        (if same then "matches" else "DIFFERS"))
    states;
  Fmt.pr "verdict: %a@." Consistency.Checker.pp_verdict
    (Whips.System.verdict result);
  if !ok then
    Fmt.pr
      "=> the auxiliary views were usable as a substitute for V at every \
       instant.@."
