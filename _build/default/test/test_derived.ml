(* The auxiliary-view maintenance path (references [12]/[8]): a primary
   view maintained through materialized sub-views must produce exactly the
   action lists of direct maintenance, and the full system stays
   complete. *)

open Relational
open Query

let case = Helpers.case

let scen = Workload.Scenarios.auxiliary

let rs_view = List.nth scen.views 0 (* RS = R |><| S *)

let st_view = List.nth scen.views 1 (* ST = S |><| T *)

let v_view = List.nth scen.views 2 (* V = R |><| S |><| T *)

let over_aux = Algebra.(join (base "RS") (base "ST"))

let drive vm txns engine =
  List.iter (fun txn -> vm.Viewmgr.Vm.receive txn) txns;
  Sim.Engine.run engine

let tests =
  [ case "derived manager emits the same lists as direct maintenance"
      (fun () ->
        let srcs = Workload.Scenarios.sources scen in
        let initial = Source.Sources.initial srcs in
        let txns = Workload.Scenarios.run_script scen srcs in
        let engine = Sim.Engine.create () in
        let direct_out = ref [] and derived_out = ref [] in
        let latency ~batch:_ = 0.001 in
        let direct =
          Viewmgr.Complete_vm.create ~engine ~compute_latency:latency
            ~initial ~view:v_view
            ~emit:(fun al -> direct_out := !direct_out @ [ al ])
            ()
        in
        let derived =
          Viewmgr.Derived_vm.create ~engine ~compute_latency:latency
            ~initial
            ~aux:[ rs_view; st_view ]
            ~view:v_view ~over_aux
            ~emit:(fun al -> derived_out := !derived_out @ [ al ])
            ()
        in
        drive direct txns engine;
        drive derived txns engine;
        Alcotest.(check int) "same count" (List.length !direct_out)
          (List.length !derived_out);
        List.iter2
          (fun (a : Action_list.t) (b : Action_list.t) ->
            Alcotest.(check int) "same state" a.state b.state;
            match (a.payload, b.payload) with
            | Action_list.Delta da, Action_list.Delta db ->
              Alcotest.check Helpers.signed_bag "same delta" da db
            | _ -> Alcotest.fail "expected delta payloads")
          !direct_out !derived_out);
    case "system run with a derived primary view is complete" (fun () ->
        let cfg =
          { (Whips.System.default scen) with
            vm_overrides =
              [ ( "V",
                  Whips.System.Derived_vm
                    { aux = [ rs_view; st_view ]; over_aux } ) ];
            arrival = Whips.System.Poisson 60.0;
            seed = 11 }
        in
        let result = Whips.System.run cfg in
        Alcotest.(check string) "SPA still applies" "SPA" result.merge_algorithm;
        let v = Whips.System.verdict result in
        Alcotest.(check bool) "complete" true v.complete;
        let expected =
          Relation.contents
            (Query.View.materialize (Source.Sources.current result.sources) v_view)
        in
        Alcotest.check Helpers.bag "final contents" expected
          (Whips.System.view_contents result "V"));
    case "over_aux must mention only auxiliary names" (fun () ->
        let engine = Sim.Engine.create () in
        Alcotest.(check bool) "raises" true
          (match
             Viewmgr.Derived_vm.create ~engine
               ~compute_latency:(fun ~batch:_ -> 0.0)
               ~initial:Database.empty ~aux:[ rs_view ] ~view:v_view
               ~over_aux:Algebra.(join (base "RS") (base "T"))
               ~emit:(fun _ -> ())
               ()
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "derived path handles deletes and modifies on shared relations"
      (fun () ->
        (* S appears in both auxiliaries: its updates flow through both
           level-1 deltas and must still produce the exact primary delta. *)
        let srcs = Workload.Scenarios.sources scen in
        let initial = Source.Sources.initial srcs in
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let derived =
          Viewmgr.Derived_vm.create ~engine
            ~compute_latency:(fun ~batch:_ -> 0.0)
            ~initial
            ~aux:[ rs_view; st_view ]
            ~view:v_view ~over_aux
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        let txns =
          [ Source.Sources.execute srcs
              [ Update.modify "S" ~before:(Helpers.ints [ 2; 3 ])
                  ~after:(Helpers.ints [ 2; 4 ]) ];
            Source.Sources.execute srcs
              [ Update.delete "S" (Helpers.ints [ 3; 4 ]) ] ]
        in
        drive derived txns engine;
        let final =
          List.fold_left
            (fun bag al -> Action_list.apply al bag)
            (Relation.contents (Query.View.materialize initial v_view))
            !out
        in
        Alcotest.check Helpers.bag "replay equals recompute"
          (Relation.contents
             (Query.View.materialize (Source.Sources.current srcs) v_view))
          final) ]
