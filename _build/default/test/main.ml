let () =
  Alcotest.run "mvc-warehouse"
    [ ("value", Test_value.tests);
      ("schema", Test_schema.tests);
      ("tuple", Test_tuple.tests);
      ("bag", Test_bag.tests);
      ("signed-bag", Test_signed_bag.tests);
      ("update", Test_update.tests);
      ("database", Test_database.tests);
      ("pred", Test_pred.tests);
      ("algebra", Test_algebra.tests);
      ("eval", Test_eval.tests);
      ("delta", Test_delta.tests);
      ("irrelevance", Test_irrelevance.tests);
      ("aggregate", Test_aggregate.tests);
      ("optimize", Test_optimize.tests);
      ("view", Test_view.tests);
      ("action-list", Test_action_list.tests);
      ("sim", Test_sim.tests);
      ("sources", Test_sources.tests);
      ("warehouse", Test_warehouse.tests);
      ("reader", Test_reader.tests);
      ("integrator", Test_integrator.tests);
      ("vut", Test_vut.tests);
      ("spa", Test_spa.tests);
      ("pa", Test_pa.tests);
      ("partition", Test_partition.tests);
      ("holdall", Test_holdall.tests);
      ("viewmgr", Test_viewmgr.tests);
      ("derived", Test_derived.tests);
      ("checker", Test_checker.tests);
      ("workload", Test_workload.tests);
      ("scenario-file", Test_scenario_file.tests);
      ("system", Test_system.tests);
      ("faults", Test_faults.tests);
      ("whips", Test_whips.tests);
      ("examples", Test_examples.tests);
      ("misc", Test_misc.tests) ]
