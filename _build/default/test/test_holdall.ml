open Query

let case = Helpers.case

let al view state = Action_list.delta ~view ~state Relational.Signed_bag.zero

let make () =
  let emitted = ref [] in
  let h =
    Mvc.Holdall.create ~views:[ "V1"; "V2" ]
      ~emit:(fun wt -> emitted := !emitted @ [ wt.Warehouse.Wt.rows ])
      ()
  in
  (h, emitted)

let unit_tests =
  [ case "holds everything until flush" (fun () ->
        let h, emitted = make () in
        Mvc.Holdall.receive_rel h ~row:1 ~rel:[ "V1" ];
        Mvc.Holdall.receive_action_list h (al "V1" 1);
        Alcotest.(check int) "nothing emitted" 0 (List.length !emitted);
        Alcotest.(check int) "one held" 1 (Mvc.Holdall.held_action_lists h);
        Mvc.Holdall.flush h;
        Alcotest.(check (list (list int))) "released" [ [ 1 ] ] !emitted;
        Alcotest.(check bool) "quiescent" true (Mvc.Holdall.quiescent h));
    case "flush releases rows in ascending order" (fun () ->
        let h, emitted = make () in
        Mvc.Holdall.receive_rel h ~row:2 ~rel:[ "V2" ];
        Mvc.Holdall.receive_rel h ~row:1 ~rel:[ "V1" ];
        Mvc.Holdall.receive_action_list h (al "V2" 2);
        Mvc.Holdall.receive_action_list h (al "V1" 1);
        Mvc.Holdall.flush h;
        Alcotest.(check (list (list int))) "1 then 2" [ [ 1 ]; [ 2 ] ] !emitted);
    case "incomplete rows survive the flush" (fun () ->
        let h, emitted = make () in
        Mvc.Holdall.receive_rel h ~row:1 ~rel:[ "V1"; "V2" ];
        Mvc.Holdall.receive_action_list h (al "V1" 1);
        Mvc.Holdall.flush h;
        Alcotest.(check int) "kept" 0 (List.length !emitted);
        Mvc.Holdall.receive_action_list h (al "V2" 1);
        Mvc.Holdall.flush h;
        Alcotest.(check (list (list int))) "released with both lists" [ [ 1 ] ]
          !emitted);
    case "action list before its REL is fine" (fun () ->
        let h, emitted = make () in
        Mvc.Holdall.receive_action_list h (al "V1" 1);
        Mvc.Holdall.flush h;
        Alcotest.(check int) "not released without REL" 0 (List.length !emitted);
        Mvc.Holdall.receive_rel h ~row:1 ~rel:[ "V1" ];
        Mvc.Holdall.flush h;
        Alcotest.(check (list (list int))) "released" [ [ 1 ] ] !emitted) ]

let system_tests =
  [ case "hold-all system run is complete but much staler than SPA" (fun () ->
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with seed = 81; n_transactions = 30 }
        in
        let base =
          { (Whips.System.default scen) with
            arrival = Whips.System.Poisson 50.0;
            seed = 81 }
        in
        let spa = Whips.System.run base in
        let hold =
          Whips.System.run { base with merge_kind = Whips.System.Force_holdall }
        in
        let v = Whips.System.verdict hold in
        Alcotest.(check bool) "complete" true v.complete;
        Alcotest.(check string) "algorithm" "hold-all" hold.merge_algorithm;
        let mean r =
          Sim.Stats.Summary.mean r.Whips.System.metrics.Whips.Metrics.staleness
        in
        Alcotest.(check bool) "at least 3x staler" true
          (mean hold > 3.0 *. mean spa));
    case "REL routed via view managers still yields complete SPA" (fun () ->
        List.iter
          (fun scen ->
            let cfg =
              { (Whips.System.default scen) with
                rel_routing = Whips.System.Via_manager;
                arrival = Whips.System.Poisson 60.0;
                seed = 83 }
            in
            let v = Whips.System.verdict (Whips.System.run cfg) in
            Alcotest.(check bool)
              (scen.Workload.Scenarios.name ^ " complete")
              true v.complete)
          [ Workload.Scenarios.paper_views; Workload.Scenarios.retail_star ]);
    case "REL via managers with batching managers stays strong" (fun () ->
        let cfg =
          { (Whips.System.default Workload.Scenarios.retail_star) with
            rel_routing = Whips.System.Via_manager;
            vm_kind = Whips.System.Batching_vm;
            arrival = Whips.System.Poisson 120.0;
            seed = 87 }
        in
        let v = Whips.System.verdict (Whips.System.run cfg) in
        Alcotest.(check bool) "strong" true v.strongly_consistent);
    case "REL via managers on partitioned merges" (fun () ->
        let cfg =
          { (Whips.System.default Workload.Scenarios.paper_views) with
            rel_routing = Whips.System.Via_manager;
            merge_groups = Some 2;
            seed = 89 }
        in
        let v = Whips.System.verdict (Whips.System.run cfg) in
        Alcotest.(check bool) "complete" true v.complete) ]

let tests = unit_tests @ system_tests
