open Query

let case = Helpers.case

let al view state = Action_list.delta ~view ~state Relational.Signed_bag.zero

let make views =
  let emitted = ref [] in
  let spa =
    Mvc.Spa.create ~views ~emit:(fun wt -> emitted := !emitted @ [ wt ]) ()
  in
  (spa, emitted)

let rows wt = wt.Warehouse.Wt.rows

(* Example 2 (Section 4.1): AL21 arrives first and must be held until AL11
   completes row 1. *)
let example2 () =
  let spa, emitted = make [ "V1"; "V2"; "V3" ] in
  Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1"; "V2" ];
  Mvc.Spa.receive_rel spa ~row:2 ~rel:[ "V3" ];
  Mvc.Spa.receive_action_list spa (al "V2" 1);
  Alcotest.(check string) "row 1 after AL21" "U1: V1=w V2=r V3=b"
    (Mvc.Vut.render_row (Mvc.Spa.vut spa) 1);
  Alcotest.(check int) "nothing applied yet" 0 (List.length !emitted);
  Alcotest.(check int) "one list held" 1 (Mvc.Spa.held_action_lists spa);
  Mvc.Spa.receive_action_list spa (al "V1" 1);
  Alcotest.(check int) "row 1 applied" 1 (List.length !emitted);
  Alcotest.(check (list int)) "rows [1]" [ 1 ] (rows (List.hd !emitted));
  Mvc.Spa.receive_action_list spa (al "V3" 2);
  Alcotest.(check int) "row 2 applied" 2 (List.length !emitted);
  Alcotest.(check bool) "quiescent" true (Mvc.Spa.quiescent spa)

(* Example 3: full arrival order REL1, AL21, REL2, REL3, AL32, AL23, AL11.
   WT2 applies at t5 (before rows 1, 3); then WT1; then WT3. *)
let example3 () =
  let spa, emitted = make [ "V1"; "V2"; "V3" ] in
  Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1"; "V2" ];
  Mvc.Spa.receive_action_list spa (al "V2" 1);
  Mvc.Spa.receive_rel spa ~row:2 ~rel:[ "V3" ];
  Mvc.Spa.receive_rel spa ~row:3 ~rel:[ "V2" ];
  (* t4 state of the VUT, before AL32 arrives: *)
  Alcotest.(check string) "t4 table"
    "U1: V1=w V2=r V3=b\nU2: V1=b V2=b V3=w\nU3: V1=b V2=w V3=b"
    (Mvc.Vut.render (Mvc.Spa.vut spa));
  Mvc.Spa.receive_action_list spa (al "V3" 2);
  (* t5: WT2 applied out of row order; t6: row 2 purged *)
  Alcotest.(check int) "WT2 applied first" 1 (List.length !emitted);
  Alcotest.(check (list int)) "rows [2]" [ 2 ] (rows (List.hd !emitted));
  Alcotest.(check string) "row 2 gone"
    "U1: V1=w V2=r V3=b\nU3: V1=b V2=w V3=b"
    (Mvc.Vut.render (Mvc.Spa.vut spa));
  Mvc.Spa.receive_action_list spa (al "V2" 3);
  (* t7: AL23 held; row 1 blocks row 3 via column V2 *)
  Alcotest.(check int) "row 3 waits for row 1" 1 (List.length !emitted);
  Mvc.Spa.receive_action_list spa (al "V1" 1);
  (* t9: WT1; t10-11: WT3 *)
  Alcotest.(check (list (list int))) "order 2,1,3" [ [ 2 ]; [ 1 ]; [ 3 ] ]
    (List.map rows !emitted);
  Alcotest.(check bool) "table empty" true (Mvc.Vut.row_count (Mvc.Spa.vut spa) = 0)

(* Random legal interleavings: SPA must apply every row exactly once,
   respecting per-view order, and end quiescent. *)
let random_run seed =
  let rng = Sim.Rng.create seed in
  let n_views = Sim.Rng.int_range rng 1 4 in
  let views = List.init n_views (fun i -> Printf.sprintf "V%d" (i + 1)) in
  let n_rows = Sim.Rng.int_range rng 1 12 in
  let rels =
    List.init n_rows (fun i ->
        let row = i + 1 in
        let subset = List.filter (fun _ -> Sim.Rng.bool rng) views in
        let subset = if subset = [] then [ Sim.Rng.pick rng views ] else subset in
        (row, subset))
  in
  (* Streams: the REL stream and one AL stream per view, each internally
     ordered; merge them randomly. *)
  let streams =
    `Rel (ref rels)
    :: List.map
         (fun v ->
           `Al
             ( v,
               ref
                 (List.filter_map
                    (fun (row, rel) -> if List.mem v rel then Some row else None)
                    rels) ))
         views
  in
  let spa, emitted = make views in
  let nonempty () =
    List.filter
      (function `Rel r -> !r <> [] | `Al (_, r) -> !r <> [])
      streams
  in
  let rec drive () =
    match nonempty () with
    | [] -> ()
    | live ->
      (match List.nth live (Sim.Rng.int rng (List.length live)) with
      | `Rel r ->
        let (row, rel), rest = (List.hd !r, List.tl !r) in
        r := rest;
        Mvc.Spa.receive_rel spa ~row ~rel
      | `Al (v, r) ->
        let row, rest = (List.hd !r, List.tl !r) in
        r := rest;
        Mvc.Spa.receive_action_list spa (al v row));
      drive ()
  in
  drive ();
  (spa, rels, !emitted)

let prop_all_applied seed =
  let spa, rels, emitted = random_run seed in
  let applied = List.concat_map rows emitted in
  Mvc.Spa.quiescent spa
  && List.sort compare applied = List.map fst rels
  && List.for_all (fun wt -> List.length (rows wt) = 1) emitted

let prop_per_view_order seed =
  let _, rels, emitted = random_run seed in
  let order = List.concat_map rows emitted in
  let position row =
    let rec find i = function
      | [] -> assert false
      | r :: rest -> if r = row then i else find (i + 1) rest
    in
    find 0 order
  in
  (* Any two rows sharing a view must be applied in row order. *)
  List.for_all
    (fun (i, rel_i) ->
      List.for_all
        (fun (j, rel_j) ->
          i >= j
          || (not (List.exists (fun v -> List.mem v rel_j) rel_i))
          || position i < position j)
        rels)
    rels

(* Promptness: after every delivered message, no live row is enabled but
   unapplied (all its lists arrived and nothing earlier blocks it). *)
let prop_prompt seed =
  let rng = Sim.Rng.create seed in
  let n_views = Sim.Rng.int_range rng 1 3 in
  let views = List.init n_views (fun i -> Printf.sprintf "V%d" (i + 1)) in
  let n_rows = Sim.Rng.int_range rng 1 10 in
  let rels =
    List.init n_rows (fun i ->
        let row = i + 1 in
        let subset = List.filter (fun _ -> Sim.Rng.bool rng) views in
        let subset = if subset = [] then [ Sim.Rng.pick rng views ] else subset in
        (row, subset))
  in
  let spa, _ = make views in
  let enabled_unapplied () =
    let vut = Mvc.Spa.vut spa in
    List.exists
      (fun row ->
        let blocked =
          Mvc.Vut.exists_in_row vut ~row (fun view e ->
              e.color = Mvc.Vut.White
              || (e.color = Mvc.Vut.Red
                 && Mvc.Vut.earlier_with vut ~row ~view (fun e' ->
                        e'.color = Mvc.Vut.Red)
                    <> []))
        in
        let has_red =
          Mvc.Vut.exists_in_row vut ~row (fun _ e -> e.color = Mvc.Vut.Red)
        in
        has_red && not blocked)
      (Mvc.Vut.rows vut)
  in
  let streams =
    `Rel (ref rels)
    :: List.map
         (fun v ->
           `Al
             ( v,
               ref
                 (List.filter_map
                    (fun (row, rel) -> if List.mem v rel then Some row else None)
                    rels) ))
         views
  in
  let nonempty () =
    List.filter
      (function `Rel r -> !r <> [] | `Al (_, r) -> !r <> [])
      streams
  in
  let ok = ref true in
  let rec drive () =
    match nonempty () with
    | [] -> ()
    | live ->
      (match List.nth live (Sim.Rng.int rng (List.length live)) with
      | `Rel r ->
        let (row, rel), rest = (List.hd !r, List.tl !r) in
        r := rest;
        Mvc.Spa.receive_rel spa ~row ~rel
      | `Al (v, r) ->
        let row, rest = (List.hd !r, List.tl !r) in
        r := rest;
        Mvc.Spa.receive_action_list spa (al v row));
      if enabled_unapplied () then ok := false;
      drive ()
  in
  drive ();
  !ok

let tests =
  [ case "example 2 (hold until row complete)" example2;
    case "example 3 (paper trace, out-of-order independent rows)" example3;
    case "action list arriving before its REL is buffered" (fun () ->
        let spa, emitted = make [ "V1" ] in
        Mvc.Spa.receive_action_list spa (al "V1" 1);
        Alcotest.(check int) "held" 1 (Mvc.Spa.held_action_lists spa);
        Alcotest.(check int) "nothing yet" 0 (List.length !emitted);
        Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1" ];
        Alcotest.(check int) "released" 1 (List.length !emitted);
        Alcotest.(check bool) "quiescent" true (Mvc.Spa.quiescent spa));
    case "empty REL needs no warehouse transaction" (fun () ->
        let spa, emitted = make [ "V1" ] in
        Mvc.Spa.receive_rel spa ~row:1 ~rel:[];
        Alcotest.(check int) "no WT" 0 (List.length !emitted);
        Alcotest.(check bool) "quiescent" true (Mvc.Spa.quiescent spa);
        Alcotest.(check int) "counted" 1 (Mvc.Spa.stats spa).empty_rels);
    case "empty action lists still flow through" (fun () ->
        let spa, emitted = make [ "V1"; "V2" ] in
        Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1"; "V2" ];
        Mvc.Spa.receive_action_list spa (al "V1" 1);
        Mvc.Spa.receive_action_list spa (al "V2" 1);
        Alcotest.(check int) "one WT with both lists" 1 (List.length !emitted);
        Alcotest.(check int) "two lists" 2
          (List.length (List.hd !emitted).Warehouse.Wt.actions));
    case "duplicate action list raises protocol error" (fun () ->
        let spa, _ = make [ "V1"; "V2" ] in
        Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1"; "V2" ];
        Mvc.Spa.receive_action_list spa (al "V1" 1);
        Alcotest.(check bool) "raises" true
          (match Mvc.Spa.receive_action_list spa (al "V1" 1) with
          | exception Mvc.Vut.Protocol_error _ -> true
          | _ -> false));
    case "action list for an irrelevant view raises" (fun () ->
        let spa, _ = make [ "V1"; "V2" ] in
        Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1" ];
        Alcotest.(check bool) "raises" true
          (match Mvc.Spa.receive_action_list spa (al "V2" 1) with
          | exception Mvc.Vut.Protocol_error _ -> true
          | _ -> false));
    case "promptness: emission happens inside the enabling call" (fun () ->
        let spa, emitted = make [ "V1" ] in
        Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1" ];
        Alcotest.(check int) "not before" 0 (List.length !emitted);
        Mvc.Spa.receive_action_list spa (al "V1" 1);
        (* The emit callback has already fired, synchronously. *)
        Alcotest.(check int) "immediately after" 1 (List.length !emitted));
    case "stats track table high-water mark" (fun () ->
        let spa, _ = make [ "V1" ] in
        Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1" ];
        Mvc.Spa.receive_rel spa ~row:2 ~rel:[ "V1" ];
        Alcotest.(check int) "2 live" 2 (Mvc.Spa.stats spa).max_live_rows);
    Helpers.qcheck ~count:200 "random interleavings: applied exactly once"
      QCheck2.Gen.(int_range 0 1_000_000)
      prop_all_applied;
    Helpers.qcheck ~count:200 "random interleavings: per-view order preserved"
      QCheck2.Gen.(int_range 0 1_000_000)
      prop_per_view_order;
    Helpers.qcheck ~count:200
      "promptness: enabled rows are applied within the same event"
      QCheck2.Gen.(int_range 0 1_000_000)
      prop_prompt ]
