(* Resilience under message loss. The painting algorithms assume reliable
   FIFO channels; these tests pin down exactly what breaks when that
   assumption is violated:

   - losing a view's *last* pending list stops progress (the merge holds
     dependent rows forever) but never exposes an inconsistent state;
   - losing a list *followed by another from the same manager* is a FIFO
     gap. SPA detects it (an earlier white entry in the same column cannot
     happen under complete managers + FIFO) and refuses to proceed; PA
     cannot distinguish a gap from legitimate batching, silently converges
     to wrong contents — and the consistency oracle catches it. *)

open Whips

let case = Helpers.case

let lossy ?(vm_kind = System.Complete_vm) ?merge_kind
    ?(scen = Workload.Scenarios.paper_views) ~view ~nth seed =
  let cfg =
    { (System.default scen) with
      vm_kind;
      fault = Some (System.Drop_action_list { view; nth });
      arrival = System.Poisson 60.0;
      seed }
  in
  let cfg =
    match merge_kind with None -> cfg | Some mk -> { cfg with merge_kind = mk }
  in
  cfg

let tests =
  [ case "dropping a view's final list leaves the run stuck but safe"
      (fun () ->
        (* V2 is relevant to all three updates; dropping its third list
           blocks row 3 forever with no subsequent list to expose a gap. *)
        let result = System.run (lossy ~view:"V2" ~nth:3 1) in
        Alcotest.(check bool) "stuck" true result.stuck;
        Alcotest.(check bool) "rows 1,2 committed" true
          (Warehouse.Store.commit_count result.store >= 2);
        let v = System.verdict result in
        Alcotest.(check bool) "prefix consistent" true
          (String.equal v.detail "final warehouse state differs from V(ss_f)"));
    case "SPA detects a FIFO gap instead of corrupting the warehouse"
      (fun () ->
        (* Dropping V2's FIRST list while later V2 lists arrive is a gap:
           the hardened SPA raises a protocol error. *)
        Alcotest.(check bool) "protocol error" true
          (match System.run (lossy ~view:"V2" ~nth:1 1) with
          | _ -> false
          | exception Mvc.Vut.Protocol_error msg ->
            (* The message names the gap. *)
            String.length msg > 0));
    case "PA cannot detect the gap; the oracle catches the corruption"
      (fun () ->
        (* Same loss under PA: the later list covers the white entry as if
           it were a legitimate batch, and the run completes with wrong
           contents. *)
        (* In paper-views-q, V2's second list carries the +[2;3;4;6]
           insertion; losing it while the third list still arrives makes
           PA treat the white entry as covered by a batch. *)
        let result =
          System.run
            (lossy ~merge_kind:System.Force_pa
               ~scen:Workload.Scenarios.paper_views_q ~view:"V2" ~nth:2 1)
        in
        Alcotest.(check bool) "not stuck" false result.stuck;
        let v = System.verdict result in
        Alcotest.(check bool) "corruption detected" false v.convergent);
    case "updates on unaffected views still flow before the loss blocks"
      (fun () ->
        let result = System.run (lossy ~view:"V2" ~nth:3 3) in
        Alcotest.(check bool) "some commits happened" true
          (Warehouse.Store.commit_count result.store > 0));
    case "no fault, no stuck flag" (fun () ->
        let result =
          System.run (System.default Workload.Scenarios.paper_views)
        in
        Alcotest.(check bool) "clean" false result.stuck) ]
