(* Coverage sweep over small surfaces: printers, accessors and edge cases
   not exercised elsewhere. *)

open Relational

let case = Helpers.case

let printers =
  [ case "Value.pp_ty covers every type" (fun () ->
        Alcotest.(check (list string)) "names"
          [ "bool"; "int"; "float"; "string" ]
          (List.map Value.ty_to_string
             [ Value.Bool_ty; Value.Int_ty; Value.Float_ty; Value.String_ty ]));
    case "Schema.to_string" (fun () ->
        Alcotest.(check string) "rendered" "(A:int, B:int)"
          (Schema.to_string (Helpers.int_schema [ "A"; "B" ])));
    case "Tuple.to_string" (fun () ->
        Alcotest.(check string) "rendered" "[1; 2]"
          (Tuple.to_string (Helpers.ints [ 1; 2 ])));
    case "Bag.to_string shows multiplicities" (fun () ->
        let b = Bag.add ~count:2 (Helpers.ints [ 1 ]) Bag.empty in
        Alcotest.(check string) "starred" "{[1]*2}" (Bag.to_string b));
    case "Signed_bag.to_string shows signs" (fun () ->
        let d =
          Signed_bag.of_list [ (Helpers.ints [ 1 ], 1); (Helpers.ints [ 2 ], -2) ]
        in
        Alcotest.(check string) "signed" "{+1[1], -2[2]}"
          (Signed_bag.to_string d));
    case "Update.pp covers all operations" (fun () ->
        let render u = Fmt.str "%a" Update.pp u in
        Alcotest.(check string) "insert" "insert R [1]"
          (render (Update.insert "R" (Helpers.ints [ 1 ])));
        Alcotest.(check string) "delete" "delete R [1]"
          (render (Update.delete "R" (Helpers.ints [ 1 ])));
        Alcotest.(check string) "modify" "modify R [1] -> [2]"
          (render
             (Update.modify "R" ~before:(Helpers.ints [ 1 ])
                ~after:(Helpers.ints [ 2 ]))));
    case "Transaction.pp includes id and source" (fun () ->
        let txn =
          Update.Transaction.single ~id:7 ~source:"s1"
            (Update.insert "R" (Helpers.ints [ 1 ]))
        in
        let s = Fmt.str "%a" Update.Transaction.pp txn in
        Alcotest.(check bool) "mentions id" true
          (Astring_contains.contains s "T7");
        Alcotest.(check bool) "mentions source" true
          (Astring_contains.contains s "s1"));
    case "Wt.pp and Action_list.pp are total" (fun () ->
        let al =
          Query.Action_list.delta ~view:"V" ~state:1
            (Signed_bag.singleton (Helpers.ints [ 1 ]) 1)
        in
        let wt = Warehouse.Wt.make ~rows:[ 1 ] [ al ] in
        Alcotest.(check bool) "al" true
          (String.length (Fmt.str "%a" Query.Action_list.pp al) > 0);
        Alcotest.(check bool) "wt" true
          (String.length (Fmt.str "%a" Warehouse.Wt.pp wt) > 0));
    case "Pred.pp renders connectives" (fun () ->
        let p =
          Query.Pred.And
            ( Query.Pred.le "A" (Value.Int 1),
              Query.Pred.Or (Query.Pred.True, Query.Pred.Not Query.Pred.False) )
        in
        Alcotest.(check string) "rendered" "(A <= 1 and (true or (not false)))"
          (Fmt.str "%a" Query.Pred.pp p));
    case "Checker.pp_verdict formats flags" (fun () ->
        let v =
          { Consistency.Checker.convergent = true;
            strongly_consistent = false; complete = false; conclusive = false;
            detail = "boom" }
        in
        let s = Fmt.str "%a" Consistency.Checker.pp_verdict v in
        Alcotest.(check bool) "inconclusive shown" true
          (Astring_contains.contains s "inconclusive");
        Alcotest.(check bool) "detail shown" true
          (Astring_contains.contains s "boom")) ]

let accessors =
  [ case "Merge facade names and flush no-ops" (fun () ->
        Alcotest.(check string) "spa" "SPA" (Mvc.Merge.algorithm_name Mvc.Merge.Spa);
        Alcotest.(check string) "pa" "PA" (Mvc.Merge.algorithm_name Mvc.Merge.Pa);
        Alcotest.(check string) "hold" "hold-all"
          (Mvc.Merge.algorithm_name Mvc.Merge.Holdall);
        let m = Mvc.Merge.create Mvc.Merge.Spa ~views:[ "V" ] ~emit:(fun _ -> ()) in
        Mvc.Merge.flush m;
        Alcotest.(check bool) "quiescent" true (Mvc.Merge.quiescent m);
        Alcotest.(check bool) "algorithm" true (Mvc.Merge.algorithm m = Mvc.Merge.Spa));
    case "passthrough merge counts emissions" (fun () ->
        let n = ref 0 in
        let m =
          Mvc.Merge.create Mvc.Merge.Passthrough ~views:[ "V" ]
            ~emit:(fun _ -> incr n)
        in
        Mvc.Merge.receive_rel m ~row:1 ~rel:[ "V" ];
        Mvc.Merge.receive_action_list m
          (Query.Action_list.delta ~view:"V" ~state:1 Signed_bag.zero);
        Alcotest.(check int) "forwarded" 1 !n;
        Alcotest.(check int) "counted" 1 (Mvc.Merge.wts_emitted m));
    case "Vut.fold_row accumulates entries" (fun () ->
        let vut = Mvc.Vut.create ~views:[ "A"; "B" ] in
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "A" ];
        let whites =
          Mvc.Vut.fold_row vut ~row:1
            (fun _ e acc -> if e.Mvc.Vut.color = Mvc.Vut.White then acc + 1 else acc)
            0
        in
        Alcotest.(check int) "one white" 1 whites);
    case "Channel.name" (fun () ->
        let e = Sim.Engine.create () in
        let ch = Sim.Channel.create e ~name:"x" ~latency:(fun () -> 0.0) ignore in
        Alcotest.(check string) "x" "x" (Sim.Channel.name ch));
    case "Time_weighted.current" (fun () ->
        let tw = Sim.Stats.Time_weighted.create ~now:0.0 ~initial:3.0 in
        Alcotest.(check (float 1e-9)) "3" 3.0 (Sim.Stats.Time_weighted.current tw);
        Sim.Stats.Time_weighted.observe tw ~now:1.0 5.0;
        Alcotest.(check (float 1e-9)) "5" 5.0 (Sim.Stats.Time_weighted.current tw));
    case "Relation.insert type error" (fun () ->
        let r = Relation.create (Helpers.int_schema [ "A" ]) in
        Alcotest.(check bool) "raises" true
          (match Relation.insert (Tuple.of_list [ Value.String "x" ]) r with
          | exception Relation.Type_error _ -> true
          | _ -> false));
    case "Relation.apply_delta" (fun () ->
        let r = Helpers.rel (Helpers.int_schema [ "A" ]) [ [ 1 ] ] in
        let r' =
          Relation.apply_delta
            (Signed_bag.of_list [ (Helpers.ints [ 1 ], -1); (Helpers.ints [ 2 ], 1) ])
            r
        in
        Alcotest.check Helpers.bag "swapped" (Helpers.bag_of [ [ 2 ] ])
          (Relation.contents r'));
    case "Sources.schema and owner" (fun () ->
        let s =
          Source.Sources.create
            [ { source = "a"; relation = "R";
                init = Relation.create (Helpers.int_schema [ "A" ]) } ]
        in
        Alcotest.(check bool) "schema" true
          (Schema.equal (Source.Sources.schema s "R") (Helpers.int_schema [ "A" ]));
        Alcotest.(check (list string)) "relations" [ "R" ]
          (Source.Sources.relation_names s));
    case "View.schema resolves through the definition" (fun () ->
        let v =
          Query.View.make "V"
            Query.Algebra.(project [ "A" ] (base "R"))
        in
        let lookup = function
          | "R" -> Helpers.int_schema [ "A"; "B" ]
          | other -> raise (Database.Unknown_relation other)
        in
        Alcotest.(check (list string)) "projected" [ "A" ]
          (Schema.names (Query.View.schema lookup v))) ]

let edge_cases =
  [ case "Bag.compare is a total order consistent with equal" (fun () ->
        let a = Helpers.bag_of [ [ 1 ] ] and b = Helpers.bag_of [ [ 2 ] ] in
        Alcotest.(check int) "self" 0 (Bag.compare a a);
        Alcotest.(check bool) "antisym" true
          (Bag.compare a b = -Bag.compare b a));
    case "Schema.compare orders by name then type" (fun () ->
        let a = Helpers.int_schema [ "A" ] in
        let b = Schema.make [ ("A", Value.Float_ty) ] in
        Alcotest.(check bool) "distinct" true (Schema.compare a b <> 0);
        Alcotest.(check bool) "prefix shorter" true
          (Schema.compare a (Helpers.int_schema [ "A"; "B" ]) < 0));
    case "Spa stats fields populate" (fun () ->
        let spa = Mvc.Spa.create ~views:[ "V" ] ~emit:(fun _ -> ()) () in
        Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V" ];
        Mvc.Spa.receive_action_list spa
          (Query.Action_list.delta ~view:"V" ~state:1 Signed_bag.zero);
        let st = Mvc.Spa.stats spa in
        Alcotest.(check int) "rels" 1 st.rels_received;
        Alcotest.(check int) "als" 1 st.als_received;
        Alcotest.(check int) "wts" 1 st.wts_emitted;
        Alcotest.(check int) "max rows" 1 st.max_live_rows);
    case "Pa stats fields populate" (fun () ->
        let pa = Mvc.Pa.create ~views:[ "V" ] ~emit:(fun _ -> ()) () in
        Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V" ];
        Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "V" ];
        Mvc.Pa.receive_action_list pa
          (Query.Action_list.delta ~view:"V" ~state:2 Signed_bag.zero);
        let st = Mvc.Pa.stats pa in
        Alcotest.(check int) "wts" 1 st.wts_emitted;
        Alcotest.(check int) "batched rows" 2 st.max_rows_per_wt);
    case "Partition.coarsen balances by view count" (fun () ->
        let v name rel =
          Query.View.make name (Query.Algebra.base rel)
        in
        let fine =
          [ [ v "a" "R1"; v "b" "R1"; v "c" "R1" ];
            [ v "d" "R2" ]; [ v "e" "R3" ]; [ v "f" "R4" ] ]
        in
        let coarse = Mvc.Partition.coarsen ~max_groups:2 fine in
        let sizes =
          List.sort compare (List.map List.length coarse)
        in
        Alcotest.(check (list int)) "3+3" [ 3; 3 ] sizes);
    case "Engine.run ~until leaves later events runnable" (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        Sim.Engine.schedule_at e 1.0 (fun () -> log := 1 :: !log);
        Sim.Engine.schedule_at e 3.0 (fun () -> log := 3 :: !log);
        Sim.Engine.run ~until:2.0 e;
        Alcotest.(check (list int)) "only first" [ 1 ] !log;
        Alcotest.(check int) "one pending" 1 (Sim.Engine.pending e);
        Sim.Engine.run e;
        Alcotest.(check (list int)) "both" [ 3; 1 ] !log);
    case "Database.names is sorted and restrict preserves bindings" (fun () ->
        let db =
          Database.of_list
            [ ("Z", Relation.create (Helpers.int_schema [ "a" ]));
              ("A", Relation.create (Helpers.int_schema [ "b" ])) ]
        in
        Alcotest.(check (list string)) "sorted" [ "A"; "Z" ] (Database.names db);
        Alcotest.(check (list string)) "restricted" [ "Z" ]
          (Database.names (Database.restrict db [ "Z" ])));
    case "Holdall ignores empty-REL rows" (fun () ->
        let emitted = ref 0 in
        let h =
          Mvc.Holdall.create ~views:[ "V" ] ~emit:(fun _ -> incr emitted) ()
        in
        Mvc.Holdall.receive_rel h ~row:1 ~rel:[];
        Mvc.Holdall.flush h;
        Alcotest.(check int) "nothing" 0 !emitted;
        Alcotest.(check bool) "quiescent" true (Mvc.Holdall.quiescent h));
    case "Scenarios.all names are unique" (fun () ->
        let names =
          List.map (fun s -> s.Workload.Scenarios.name) Workload.Scenarios.all
        in
        Alcotest.(check int) "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
    case "Generator honours n_views and n_transactions" (fun () ->
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with n_views = 5; n_transactions = 9 }
        in
        Alcotest.(check int) "views" 5 (List.length scen.views);
        Alcotest.(check int) "txns" 9 (List.length scen.script)) ]

let tests = printers @ accessors @ edge_cases
