(* Substring search helper for tests (no external string library). *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec loop i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else loop (i + 1)
  in
  nl = 0 || loop 0
