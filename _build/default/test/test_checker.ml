open Relational
open Query

let case = Helpers.case

(* Hand-built ground truth: R at src1, S at src2; V1 = R |><| S, V2 = S.
   Three transactions: U1 inserts into S, U2 inserts into R, U3 deletes
   from S. *)

let rs = Helpers.int_schema [ "A"; "B" ]

let ss = Helpers.int_schema [ "B"; "C" ]

let v1 = View.make "V1" Algebra.(join (base "R") (base "S"))

let v2 = View.make "V2" Algebra.(base "S")

let views = [ v1; v2 ]

let setup () =
  let srcs =
    Source.Sources.create
      [ { source = "s1"; relation = "R"; init = Helpers.rel rs [ [ 1; 2 ] ] };
        { source = "s2"; relation = "S"; init = Helpers.rel ss [] } ]
  in
  let t1 = Source.Sources.execute srcs [ Update.insert "S" (Helpers.ints [ 2; 3 ]) ] in
  let t2 = Source.Sources.execute srcs [ Update.insert "R" (Helpers.ints [ 7; 2 ]) ] in
  let t3 = Source.Sources.execute srcs [ Update.delete "S" (Helpers.ints [ 2; 3 ]) ] in
  (srcs, [ t1; t2; t3 ])

let ws_of srcs i =
  let db = Source.Sources.state srcs i in
  Database.of_list
    (List.map (fun v -> (View.name v, View.materialize db v)) views)

(* A mixed warehouse state: V1 evaluated at state [i], V2 at state [j]. *)
let mixed srcs i j =
  Database.of_list
    [ ("V1", View.materialize (Source.Sources.state srcs i) v1);
      ("V2", View.materialize (Source.Sources.state srcs j) v2) ]

let check srcs txns states =
  Consistency.Checker.check ~views ~transactions:txns
    ~source_states:(Source.Sources.states srcs) ~warehouse_states:states

let tests =
  [ case "the complete sequence is complete" (fun () ->
        let srcs, txns = setup () in
        let v = check srcs txns [ ws_of srcs 0; ws_of srcs 1; ws_of srcs 2; ws_of srcs 3 ] in
        Alcotest.(check bool) "complete" true v.complete;
        Alcotest.(check bool) "strong" true v.strongly_consistent;
        Alcotest.(check bool) "convergent" true v.convergent;
        Alcotest.(check bool) "conclusive" true v.conclusive);
    case "skipping a state is strongly consistent but not complete" (fun () ->
        let srcs, txns = setup () in
        let v = check srcs txns [ ws_of srcs 0; ws_of srcs 1; ws_of srcs 3 ] in
        Alcotest.(check bool) "not complete" false v.complete;
        Alcotest.(check bool) "strong" true v.strongly_consistent)
    (* note: ws(1) -> ws(3) applies U2 and U3 in one step *);
    case "a single jump to the final state is strongly consistent" (fun () ->
        let srcs, txns = setup () in
        let v = check srcs txns [ ws_of srcs 0; ws_of srcs 3 ] in
        Alcotest.(check bool) "strong" true v.strongly_consistent;
        Alcotest.(check bool) "not complete" false v.complete);
    case "torn state (views at incompatible cuts) is rejected" (fun () ->
        let srcs, txns = setup () in
        (* V2 reflects U1 (S insert) but V1 does not: both use S and U1
           touches S, so no equivalent serial schedule explains it. *)
        let torn = mixed srcs 0 1 in
        let v = check srcs txns [ ws_of srcs 0; torn; ws_of srcs 3 ] in
        Alcotest.(check bool) "not strong" false v.strongly_consistent;
        Alcotest.(check bool) "still convergent" true v.convergent);
    case "commuting reorder is accepted (SPA's Example 3 pattern)" (fun () ->
        let srcs, txns = setup () in
        (* U2 touches only R, which V2 does not use: V1 at state 2 with V2
           still at state... V1 needs U1 first. Use V1 at 1, then a state
           where V1 jumped to 2 while V2 stays at 1 — legal since U2 is
           irrelevant to V2. *)
        let states =
          [ ws_of srcs 0; ws_of srcs 1; mixed srcs 2 1; ws_of srcs 3 ]
        in
        let v = check srcs txns states in
        Alcotest.(check bool) "strong" true v.strongly_consistent;
        Alcotest.(check bool) "complete" true v.complete);
    case "wrong final state: not even convergent" (fun () ->
        let srcs, txns = setup () in
        let v = check srcs txns [ ws_of srcs 0; ws_of srcs 2 ] in
        Alcotest.(check bool) "not convergent" false v.convergent;
        Alcotest.(check bool) "not strong" false v.strongly_consistent);
    case "backwards movement is rejected" (fun () ->
        let srcs, txns = setup () in
        let states = [ ws_of srcs 0; ws_of srcs 2; ws_of srcs 1; ws_of srcs 3 ] in
        let v = check srcs txns states in
        (* ws 1 -> ws 2 goes from state 2 back to state 1: S regains the
           tuple, which only deleting-then-reinserting could explain; no
           monotone chain exists. *)
        Alcotest.(check bool) "not strong" false v.strongly_consistent);
    case "garbage contents match no source state" (fun () ->
        let srcs, txns = setup () in
        let garbage =
          Database.of_list
            [ ("V1", Helpers.rel (Schema.join rs ss) [ [ 9; 9; 9 ] ]);
              ("V2", Helpers.rel ss [] ) ]
        in
        let v = check srcs txns [ ws_of srcs 0; garbage; ws_of srcs 3 ] in
        Alcotest.(check bool) "not strong" false v.strongly_consistent;
        Alcotest.(check bool) "detail mentions the state" true
          (String.length v.detail > 0));
    case "duplicate consecutive states (empty commits) stay complete" (fun () ->
        let srcs, txns = setup () in
        let states =
          [ ws_of srcs 0; ws_of srcs 1; ws_of srcs 1; ws_of srcs 2; ws_of srcs 3 ]
        in
        let v = check srcs txns states in
        Alcotest.(check bool) "complete" true v.complete);
    case "single-view check" (fun () ->
        let srcs, txns = setup () in
        let contents i =
          Relation.contents (View.materialize (Source.Sources.state srcs i) v2)
        in
        let v =
          Consistency.Checker.check_single_view ~view:v2 ~transactions:txns
            ~source_states:(Source.Sources.states srcs)
            ~contents:[ contents 0; contents 1; contents 3 ]
        in
        Alcotest.(check bool) "strong" true v.strongly_consistent;
        (* U2 does not touch S, so V2 observes only two changes; skipping
           state 2 loses nothing observable. *)
        Alcotest.(check bool) "complete" true v.complete);
    case "independent groups are checked independently" (fun () ->
        (* V1 over R, VQ over Q: disjoint groups. A state advancing only
           VQ while V1 lags is fine; a torn state inside one group still
           fails. *)
        let qs = Helpers.int_schema [ "Q1"; "Q2" ] in
        let vq = View.make "VQ" Algebra.(base "Q") in
        let views2 = [ v1; v2; vq ] in
        let srcs =
          Source.Sources.create
            [ { source = "s1"; relation = "R"; init = Helpers.rel rs [ [ 1; 2 ] ] };
              { source = "s2"; relation = "S"; init = Helpers.rel ss [] };
              { source = "s3"; relation = "Q"; init = Helpers.rel qs [] } ]
        in
        let t1 = Source.Sources.execute srcs [ Update.insert "Q" (Helpers.ints [ 7; 7 ]) ] in
        let t2 = Source.Sources.execute srcs [ Update.insert "S" (Helpers.ints [ 2; 3 ]) ] in
        let ws i =
          let db = Source.Sources.state srcs i in
          Database.of_list
            (List.map (fun v -> (View.name v, View.materialize db v)) views2)
        in
        let mixed_groups =
          (* VQ already at state 1, V1/V2 still at 0 — legal (groups are
             independent). *)
          Database.of_list
            [ ("V1", View.materialize (Source.Sources.state srcs 0) v1);
              ("V2", View.materialize (Source.Sources.state srcs 0) v2);
              ("VQ", View.materialize (Source.Sources.state srcs 1) vq) ]
        in
        let verdict =
          Consistency.Checker.check ~views:views2 ~transactions:[ t1; t2 ]
            ~source_states:(Source.Sources.states srcs)
            ~warehouse_states:[ ws 0; mixed_groups; ws 2 ]
        in
        Alcotest.(check bool) "complete" true verdict.complete);
    case "one warehouse step advancing two groups breaks completeness"
      (fun () ->
        let qs = Helpers.int_schema [ "Q1"; "Q2" ] in
        let vq = View.make "VQ" Algebra.(base "Q") in
        let views2 = [ v2; vq ] in
        let srcs =
          Source.Sources.create
            [ { source = "s2"; relation = "S"; init = Helpers.rel ss [] };
              { source = "s3"; relation = "Q"; init = Helpers.rel qs [] } ]
        in
        let t1 = Source.Sources.execute srcs [ Update.insert "S" (Helpers.ints [ 2; 3 ]) ] in
        let t2 = Source.Sources.execute srcs [ Update.insert "Q" (Helpers.ints [ 7; 7 ]) ] in
        let ws i =
          let db = Source.Sources.state srcs i in
          Database.of_list
            (List.map (fun v -> (View.name v, View.materialize db v)) views2)
        in
        (* Jump straight from ws0 to ws2: both groups advance in one
           commit — strongly consistent, not complete. *)
        let verdict =
          Consistency.Checker.check ~views:views2 ~transactions:[ t1; t2 ]
            ~source_states:(Source.Sources.states srcs)
            ~warehouse_states:[ ws 0; ws 2 ]
        in
        Alcotest.(check bool) "strong" true verdict.strongly_consistent;
        Alcotest.(check bool) "not complete" false verdict.complete);
    case "a multi-relation transaction may advance two groups at once"
      (fun () ->
        let qs = Helpers.int_schema [ "Q1"; "Q2" ] in
        let vq = View.make "VQ" Algebra.(base "Q") in
        let views2 = [ v2; vq ] in
        let srcs =
          Source.Sources.create
            [ { source = "s2"; relation = "S"; init = Helpers.rel ss [] };
              { source = "s3"; relation = "Q"; init = Helpers.rel qs [] } ]
        in
        (* One transaction touching both S and Q (Section 6.2). *)
        let t1 =
          Source.Sources.execute srcs
            [ Update.insert "S" (Helpers.ints [ 2; 3 ]);
              Update.insert "Q" (Helpers.ints [ 7; 7 ]) ]
        in
        let ws i =
          let db = Source.Sources.state srcs i in
          Database.of_list
            (List.map (fun v -> (View.name v, View.materialize db v)) views2)
        in
        let verdict =
          Consistency.Checker.check ~views:views2 ~transactions:[ t1 ]
            ~source_states:(Source.Sources.states srcs)
            ~warehouse_states:[ ws 0; ws 1 ]
        in
        Alcotest.(check bool) "complete" true verdict.complete);
    case "a torn multi-relation transaction is rejected across disjoint views"
      (fun () ->
        (* V2 over S and VQ over Q share no relation, but one transaction
           touches both: its effects must appear atomically (Section 6.2),
           so a state reflecting the S half without the Q half has no
           equivalent serial schedule. *)
        let qs = Helpers.int_schema [ "Q1"; "Q2" ] in
        let vq = View.make "VQ" Algebra.(base "Q") in
        let views2 = [ v2; vq ] in
        let srcs =
          Source.Sources.create
            [ { source = "s2"; relation = "S"; init = Helpers.rel ss [] };
              { source = "s3"; relation = "Q"; init = Helpers.rel qs [] } ]
        in
        let t1 =
          Source.Sources.execute srcs
            [ Update.insert "S" (Helpers.ints [ 2; 3 ]);
              Update.insert "Q" (Helpers.ints [ 7; 7 ]) ]
        in
        let ws i =
          let db = Source.Sources.state srcs i in
          Database.of_list
            (List.map (fun v -> (View.name v, View.materialize db v)) views2)
        in
        let torn =
          Database.of_list
            [ ("V2", View.materialize (Source.Sources.state srcs 1) v2);
              ("VQ", View.materialize (Source.Sources.state srcs 0) vq) ]
        in
        let verdict =
          Consistency.Checker.check ~views:views2 ~transactions:[ t1 ]
            ~source_states:(Source.Sources.states srcs)
            ~warehouse_states:[ ws 0; torn; ws 1 ]
        in
        Alcotest.(check bool) "not strong" false verdict.strongly_consistent;
        Alcotest.(check bool) "convergent" true verdict.convergent);
    case "unupdated shared relations do not couple views" (fun () ->
        (* V1 and V2 share S, but the run only updates R: the views are
           effectively independent and mixed per-view progress on R-only
           updates is fine. *)
        let srcs =
          Source.Sources.create
            [ { source = "s1"; relation = "R"; init = Helpers.rel rs [ [ 1; 2 ] ] };
              { source = "s2"; relation = "S"; init = Helpers.rel ss [ [ 2; 3 ] ] } ]
        in
        let t1 = Source.Sources.execute srcs [ Update.insert "R" (Helpers.ints [ 7; 2 ]) ] in
        let states =
          [ ws_of srcs 0;
            (* V1 reflects U1, V2 trivially unchanged *) ws_of srcs 1 ]
        in
        let v = check srcs [ t1 ] states in
        Alcotest.(check bool) "complete" true v.complete);
    case "long content-stable runs stay conclusive via pruning" (fun () ->
        (* 100 transactions on R, V2 = S never changes: its candidate set
           is the full range at every state, exercising the candidate cap
           without producing a false negative. *)
        let srcs =
          Source.Sources.create
            [ { source = "s1"; relation = "R"; init = Helpers.rel rs [ [ 1; 2 ] ] };
              { source = "s2"; relation = "S"; init = Helpers.rel ss [ [ 2; 3 ] ] } ]
        in
        let txns =
          List.init 100 (fun i ->
              Source.Sources.execute srcs
                [ Update.insert "R" (Helpers.ints [ 100 + i; 2 ]) ])
        in
        let ws i =
          let db = Source.Sources.state srcs i in
          Database.of_list
            (List.map (fun v -> (View.name v, View.materialize db v)) views)
        in
        let states = List.init 101 ws in
        let verdict =
          Consistency.Checker.check ~views ~transactions:txns
            ~source_states:(Source.Sources.states srcs)
            ~warehouse_states:states
        in
        Alcotest.(check bool) "complete" true verdict.complete;
        Alcotest.(check bool) "conclusive" true verdict.conclusive);
    (* Metamorphic oracle tests: build histories with a verdict known by
       construction and require the oracle to reproduce it. *)
    Helpers.qcheck ~count:60 "uniform monotone chains are accepted exactly"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Sim.Rng.create seed in
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with
              seed;
              n_transactions = 8;
              n_views = 3 }
        in
        let srcs = Workload.Scenarios.sources scen in
        let txns = Workload.Scenarios.run_script scen srcs in
        let f = List.length txns in
        (* Random monotone index sequence 0 = c0 <= ... <= ck = f. *)
        let rec chain c acc =
          if c >= f then List.rev (f :: acc)
          else begin
            let next = Sim.Rng.int_range rng c f in
            if next = c then chain (c + 1) (c :: acc) else chain next (c :: acc)
          end
        in
        let indices = 0 :: chain 0 [] in
        let ws i =
          let db = Source.Sources.state srcs i in
          Database.of_list
            (List.map
               (fun v -> (View.name v, View.materialize db v))
               scen.views)
        in
        let states = List.map ws indices in
        let verdict =
          Consistency.Checker.check ~views:scen.views ~transactions:txns
            ~source_states:(Source.Sources.states srcs)
            ~warehouse_states:states
        in
        (* Expected completeness: every consecutive index gap applies at
           most one observable transaction (one that changes some view's
           contents). *)
        let observable i =
          List.exists
            (fun v ->
              not
                (Relation.equal_contents
                   (View.materialize (Source.Sources.state srcs i) v)
                   (View.materialize (Source.Sources.state srcs (i - 1)) v)))
            scen.views
        in
        let rec gaps_ok = function
          | a :: (b :: _ as rest) ->
            let obs_in_gap =
              List.length
                (List.filter observable
                   (List.init (b - a) (fun k -> a + k + 1)))
            in
            obs_in_gap <= 1 && gaps_ok rest
          | _ -> true
        in
        verdict.strongly_consistent && verdict.conclusive
        && verdict.complete = gaps_ok indices);
    Helpers.qcheck ~count:60 "torn coupled states are rejected"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with
              seed;
              n_transactions = 8;
              n_views = 3 }
        in
        let srcs = Workload.Scenarios.sources scen in
        let txns = Workload.Scenarios.run_script scen srcs in
        let f = List.length txns in
        (* Find a transaction observably relevant to two views. *)
        let changed v i =
          not
            (Relation.equal_contents
               (View.materialize (Source.Sources.state srcs i) v)
               (View.materialize (Source.Sources.state srcs (i - 1)) v))
        in
        let candidate =
          List.find_opt
            (fun i ->
              List.length (List.filter (fun v -> changed v i) scen.views) >= 2)
            (List.init f (fun k -> k + 1))
        in
        match candidate with
        | None -> true (* nothing to tear in this workload; vacuous *)
        | Some i ->
          let ahead, behind =
            match List.filter (fun v -> changed v i) scen.views with
            | a :: b :: _ -> (a, b)
            | _ -> assert false
          in
          (* If the lagging view's old content recurs at a later source
             state, a compatible cut may legitimately explain the "torn"
             state; skip such ambiguous cases. Also skip when any OTHER
             view (held at i-1) has recurring content. *)
          let recurs v =
            let old = View.materialize (Source.Sources.state srcs (i - 1)) v in
            List.exists
              (fun c ->
                Relation.equal_contents old
                  (View.materialize (Source.Sources.state srcs c) v))
              (List.init (f - i + 1) (fun k -> i + k))
          in
          let ahead_new = View.materialize (Source.Sources.state srcs i) ahead in
          let ahead_recurs_earlier =
            List.exists
              (fun c ->
                Relation.equal_contents ahead_new
                  (View.materialize (Source.Sources.state srcs c) ahead))
              (List.init i (fun k -> k))
          in
          if
            ahead_recurs_earlier
            || List.exists recurs
                 (List.filter (fun v -> v != ahead) scen.views)
          then true
          else
          let torn =
            Database.of_list
              (List.map
                 (fun v ->
                   let at =
                     if View.name v = View.name ahead then i
                     else if View.name v = View.name behind then i - 1
                     else i - 1
                   in
                   (View.name v, View.materialize (Source.Sources.state srcs at) v))
                 scen.views)
          in
          let ws j =
            Database.of_list
              (List.map
                 (fun v -> (View.name v, View.materialize (Source.Sources.state srcs j) v))
                 scen.views)
          in
          let verdict =
            Consistency.Checker.check ~views:scen.views ~transactions:txns
              ~source_states:(Source.Sources.states srcs)
              ~warehouse_states:[ ws 0; torn; ws f ]
          in
          not verdict.strongly_consistent);
    case "input validation" (fun () ->
        let srcs, txns = setup () in
        Alcotest.(check bool) "length mismatch" true
          (match
             Consistency.Checker.check ~views ~transactions:txns
               ~source_states:[ Source.Sources.state srcs 0 ]
               ~warehouse_states:[ ws_of srcs 0 ]
           with
          | exception Invalid_argument _ -> true
          | _ -> false)) ]
