open Relational

let case = Helpers.case

let t1 = Helpers.ints [ 1 ]

let gen = Helpers.Gen.small_signed ~arity:2 ~range:3

let bag_gen = Helpers.Gen.small_bag ~arity:2 ~range:3

let tests =
  [ case "zero" (fun () ->
        Alcotest.(check bool) "is_zero" true (Signed_bag.is_zero Signed_bag.zero));
    case "add drops zero entries" (fun () ->
        let d = Signed_bag.add t1 (-2) (Signed_bag.singleton t1 2) in
        Alcotest.(check bool) "zero" true (Signed_bag.is_zero d));
    case "add of zero count is a no-op" (fun () ->
        Alcotest.check Helpers.signed_bag "same" Signed_bag.zero
          (Signed_bag.add t1 0 Signed_bag.zero));
    case "insertions and deletions split the sign" (fun () ->
        let d = Signed_bag.of_list [ (t1, 2); (Helpers.ints [ 2 ], -3) ] in
        Alcotest.(check int) "ins" 2 (Bag.count (Signed_bag.insertions d) t1);
        Alcotest.(check int) "del" 3
          (Bag.count (Signed_bag.deletions d) (Helpers.ints [ 2 ])));
    case "of_parts" (fun () ->
        let d =
          Signed_bag.of_parts
            ~insert:(Helpers.bag_of [ [ 1 ] ])
            ~delete:(Helpers.bag_of [ [ 2 ]; [ 2 ] ])
        in
        Alcotest.(check int) "+1" 1 (Signed_bag.count d t1);
        Alcotest.(check int) "-2" (-2) (Signed_bag.count d (Helpers.ints [ 2 ])));
    case "apply inserts and deletes" (fun () ->
        let d = Signed_bag.of_list [ (t1, 1); (Helpers.ints [ 2 ], -1) ] in
        let b = Signed_bag.apply d (Helpers.bag_of [ [ 2 ]; [ 3 ] ]) in
        Alcotest.check Helpers.bag "result" (Helpers.bag_of [ [ 1 ]; [ 3 ] ]) b);
    case "apply floors deletions of absent tuples" (fun () ->
        let d = Signed_bag.singleton t1 (-5) in
        Alcotest.check Helpers.bag "empty" Bag.empty
          (Signed_bag.apply d Bag.empty));
    case "applies_exactly detects flooring" (fun () ->
        let d = Signed_bag.singleton t1 (-1) in
        Alcotest.(check bool) "no" false (Signed_bag.applies_exactly d Bag.empty);
        Alcotest.(check bool) "yes" true
          (Signed_bag.applies_exactly d (Helpers.bag_of [ [ 1 ] ])));
    case "size sums absolute counts" (fun () ->
        let d = Signed_bag.of_list [ (t1, 2); (Helpers.ints [ 2 ], -3) ] in
        Alcotest.(check int) "5" 5 (Signed_bag.size d));
    Helpers.qcheck "sum is commutative" QCheck2.Gen.(pair gen gen)
      (fun (a, b) -> Signed_bag.equal (Signed_bag.sum a b) (Signed_bag.sum b a));
    Helpers.qcheck "sum with negation cancels" gen (fun d ->
        Signed_bag.is_zero (Signed_bag.sum d (Signed_bag.negate d)));
    Helpers.qcheck "diff_of_bags applied to before gives after"
      QCheck2.Gen.(pair bag_gen bag_gen)
      (fun (before, after) ->
        let d = Signed_bag.diff_of_bags ~before ~after in
        Bag.equal (Signed_bag.apply d before) after);
    Helpers.qcheck "diff_of_bags never floors on its before"
      QCheck2.Gen.(pair bag_gen bag_gen)
      (fun (before, after) ->
        Signed_bag.applies_exactly
          (Signed_bag.diff_of_bags ~before ~after)
          before);
    Helpers.qcheck "apply distributes over sum when exact"
      QCheck2.Gen.(pair bag_gen (pair bag_gen bag_gen))
      (fun (start, (mid, final)) ->
        (* start -> mid -> final as two deltas vs one combined *)
        let d1 = Signed_bag.diff_of_bags ~before:start ~after:mid in
        let d2 = Signed_bag.diff_of_bags ~before:mid ~after:final in
        Bag.equal
          (Signed_bag.apply (Signed_bag.sum d1 d2) start)
          final) ]
