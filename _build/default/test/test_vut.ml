let case = Helpers.case

let make () = Mvc.Vut.create ~views:[ "V1"; "V2"; "V3" ]

let tests =
  [ case "create rejects duplicate views" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Mvc.Vut.create ~views:[ "V"; "V" ] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "add_row colors REL white, rest black" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "V1"; "V3" ];
        Alcotest.(check bool) "V1 white" true
          ((Mvc.Vut.entry vut ~row:1 ~view:"V1").color = Mvc.Vut.White);
        Alcotest.(check bool) "V2 black" true
          ((Mvc.Vut.entry vut ~row:1 ~view:"V2").color = Mvc.Vut.Black);
        Alcotest.(check int) "state 0" 0 (Mvc.Vut.entry vut ~row:1 ~view:"V1").state);
    case "duplicate row raises" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:1 ~rel:[];
        Alcotest.(check bool) "raises" true
          (match Mvc.Vut.add_row vut ~row:1 ~rel:[] with
          | exception Mvc.Vut.Protocol_error _ -> true
          | _ -> false));
    case "unknown view raises" (fun () ->
        let vut = make () in
        Alcotest.(check bool) "raises" true
          (match Mvc.Vut.add_row vut ~row:1 ~rel:[ "Z" ] with
          | exception Mvc.Vut.Protocol_error _ -> true
          | _ -> false));
    case "rows ascend and purge removes" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:3 ~rel:[ "V1" ];
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "V1" ];
        Alcotest.(check (list int)) "sorted" [ 1; 3 ] (Mvc.Vut.rows vut);
        Mvc.Vut.purge_row vut 1;
        Alcotest.(check (list int)) "purged" [ 3 ] (Mvc.Vut.rows vut);
        Alcotest.(check int) "count" 1 (Mvc.Vut.row_count vut));
    case "set_color and set_state" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "V1" ];
        Mvc.Vut.set_color vut ~row:1 ~view:"V1" Mvc.Vut.Red;
        Mvc.Vut.set_state vut ~row:1 ~view:"V1" 4;
        let e = Mvc.Vut.entry vut ~row:1 ~view:"V1" in
        Alcotest.(check bool) "red" true (e.color = Mvc.Vut.Red);
        Alcotest.(check int) "state" 4 e.state);
    case "entry on missing row raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Mvc.Vut.entry (make ()) ~row:9 ~view:"V1" with
          | exception Mvc.Vut.Protocol_error _ -> true
          | _ -> false));
    case "next_red finds the closest later red" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "V1" ];
        Mvc.Vut.add_row vut ~row:3 ~rel:[ "V1" ];
        Mvc.Vut.add_row vut ~row:5 ~rel:[ "V1" ];
        Mvc.Vut.set_color vut ~row:3 ~view:"V1" Mvc.Vut.Red;
        Mvc.Vut.set_color vut ~row:5 ~view:"V1" Mvc.Vut.Red;
        Alcotest.(check int) "3" 3 (Mvc.Vut.next_red vut ~row:1 ~view:"V1");
        Alcotest.(check int) "5" 5 (Mvc.Vut.next_red vut ~row:3 ~view:"V1");
        Alcotest.(check int) "0 when none" 0 (Mvc.Vut.next_red vut ~row:5 ~view:"V1"));
    case "earlier_with filters by predicate" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "V1" ];
        Mvc.Vut.add_row vut ~row:2 ~rel:[ "V1" ];
        Mvc.Vut.add_row vut ~row:4 ~rel:[ "V1" ];
        Mvc.Vut.set_color vut ~row:1 ~view:"V1" Mvc.Vut.Red;
        Alcotest.(check (list int)) "only red earlier" [ 1 ]
          (Mvc.Vut.earlier_with vut ~row:4 ~view:"V1" (fun e ->
               e.color = Mvc.Vut.Red)));
    case "white_rows_up_to" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "V1" ];
        Mvc.Vut.add_row vut ~row:2 ~rel:[ "V2" ];
        Mvc.Vut.add_row vut ~row:3 ~rel:[ "V1" ];
        Mvc.Vut.add_row vut ~row:5 ~rel:[ "V1" ];
        Alcotest.(check (list int)) "1 and 3" [ 1; 3 ]
          (Mvc.Vut.white_rows_up_to vut ~view:"V1" 3));
    case "purgeable when all gray or black" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "V1" ];
        Alcotest.(check bool) "white blocks" false (Mvc.Vut.purgeable vut ~row:1);
        Mvc.Vut.set_color vut ~row:1 ~view:"V1" Mvc.Vut.Gray;
        Alcotest.(check bool) "gray ok" true (Mvc.Vut.purgeable vut ~row:1));
    case "render matches the paper's compact format" (fun () ->
        let vut = make () in
        Mvc.Vut.add_row vut ~row:1 ~rel:[ "V1"; "V2" ];
        Mvc.Vut.set_color vut ~row:1 ~view:"V2" Mvc.Vut.Red;
        Alcotest.(check string) "row" "U1: V1=w V2=r V3=b"
          (Mvc.Vut.render_row vut 1);
        Mvc.Vut.set_state vut ~row:1 ~view:"V2" 3;
        Alcotest.(check string) "with states" "U1: V1=(w,0) V2=(r,3) V3=(b,0)"
          (Mvc.Vut.render_row vut ~show_state:true 1)) ]
