open Relational
open Query

let case = Helpers.case

let schemas name =
  match name with
  | "R" -> Helpers.int_schema [ "A"; "B" ]
  | "S" -> Helpers.int_schema [ "B"; "C" ]
  | other -> raise (Database.Unknown_relation other)

let irrelevant changes expr =
  Irrelevance.provably_irrelevant ~schemas ~changes expr

let insert_r tuple = Delta.of_update (Update.insert "R" (Helpers.ints tuple))

let tests =
  [ case "update to unmentioned relation is irrelevant" (fun () ->
        Alcotest.(check bool) "yes" true
          (irrelevant (insert_r [ 1; 2 ]) (Algebra.base "S")));
    case "update to mentioned relation without selection is relevant" (fun () ->
        Alcotest.(check bool) "no" false
          (irrelevant (insert_r [ 1; 2 ]) (Algebra.base "R")));
    case "selection rules out failing tuple" (fun () ->
        let e = Algebra.(select (Pred.eq "A" (Value.Int 5)) (base "R")) in
        Alcotest.(check bool) "A=1 fails A=5" true
          (irrelevant (insert_r [ 1; 2 ]) e);
        Alcotest.(check bool) "A=5 passes" false
          (irrelevant (insert_r [ 5; 2 ]) e));
    case "selection above a join pushes to the right side" (fun () ->
        let e =
          Algebra.(
            select (Pred.eq "A" (Value.Int 5)) (join (base "R") (base "S")))
        in
        Alcotest.(check bool) "R tuple failing pushed pred" true
          (irrelevant (insert_r [ 1; 2 ]) e);
        (* An S update cannot be ruled out by a predicate on A. *)
        let s_change = Delta.of_update (Update.insert "S" (Helpers.ints [ 2; 3 ])) in
        Alcotest.(check bool) "S update not ruled out" false
          (irrelevant s_change e));
    case "projection does not block pushdown" (fun () ->
        let e =
          Algebra.(
            select (Pred.eq "A" (Value.Int 5)) (project [ "A" ] (base "R")))
        in
        Alcotest.(check bool) "ruled out" true (irrelevant (insert_r [ 1; 2 ]) e));
    case "rename rewrites the predicate" (fun () ->
        let e =
          Algebra.(
            select (Pred.eq "X" (Value.Int 5)) (rename [ ("A", "X") ] (base "R")))
        in
        Alcotest.(check bool) "ruled out via rename" true
          (irrelevant (insert_r [ 1; 2 ]) e);
        Alcotest.(check bool) "kept via rename" false
          (irrelevant (insert_r [ 5; 2 ]) e));
    case "union: both branches must rule out" (fun () ->
        let guarded = Algebra.(select (Pred.eq "A" (Value.Int 5)) (base "R")) in
        let open_branch = Algebra.base "R" in
        Alcotest.(check bool) "one open branch keeps it" false
          (irrelevant (insert_r [ 1; 2 ]) (Algebra.union guarded open_branch));
        Alcotest.(check bool) "both guarded" true
          (irrelevant (insert_r [ 1; 2 ]) (Algebra.union guarded guarded)));
    case "modify relevant if either side passes" (fun () ->
        let e = Algebra.(select (Pred.eq "A" (Value.Int 5)) (base "R")) in
        let mods =
          Delta.of_update
            (Update.modify "R" ~before:(Helpers.ints [ 1; 2 ])
               ~after:(Helpers.ints [ 5; 2 ]))
        in
        Alcotest.(check bool) "after passes" false (irrelevant mods e));
    case "conjoined selections all apply" (fun () ->
        let e =
          Algebra.(
            select (Pred.ge "A" (Value.Int 0))
              (select (Pred.le "A" (Value.Int 0)) (base "R")))
        in
        Alcotest.(check bool) "A=1 fails A<=0" true
          (irrelevant (insert_r [ 1; 2 ]) e);
        Alcotest.(check bool) "A=0 passes both" false
          (irrelevant (insert_r [ 0; 2 ]) e));
    (* Soundness: whenever the test claims irrelevance, the true delta is
       empty. *)
    Helpers.qcheck ~count:200 "provable irrelevance is sound"
      QCheck2.Gen.(
        Helpers.Delta_domain.db_gen >>= fun db ->
        Helpers.Delta_domain.changes_gen db >>= fun updates ->
        Helpers.Delta_domain.expr_gen >>= fun expr ->
        return (db, updates, expr))
      (fun (pre, updates, expr) ->
        let changes =
          Delta.of_transaction (Update.Transaction.make ~id:1 ~source:"s" updates)
        in
        let claim =
          Irrelevance.provably_irrelevant
            ~schemas:(fun n -> Database.schema pre n)
            ~changes expr
        in
        (not claim) || Signed_bag.is_zero (Delta.eval ~pre changes expr)) ]
