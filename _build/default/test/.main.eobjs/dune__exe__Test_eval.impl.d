test/test_eval.ml: Alcotest Algebra Bag Database Eval Helpers List Pred Query Relation Relational Source Value Workload
