test/test_pa.ml: Action_list Alcotest Helpers List Mvc Printf QCheck2 Query Relational Sim Warehouse
