test/test_database.ml: Alcotest Database Helpers Relation Relational Update
