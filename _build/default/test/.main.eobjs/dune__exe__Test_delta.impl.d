test/test_delta.ml: Alcotest Algebra Bag Database Delta Eval Helpers List Pred QCheck2 Query Relational Signed_bag Update Value
