test/test_system.ml: Alcotest Helpers List Metrics QCheck2 Query Relational Sim Source System Warehouse Whips Workload
