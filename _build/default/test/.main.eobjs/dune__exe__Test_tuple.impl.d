test/test_tuple.ml: Alcotest Array Helpers QCheck2 Relational Schema Tuple Value
