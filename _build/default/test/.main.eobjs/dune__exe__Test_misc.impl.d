test/test_misc.ml: Alcotest Astring_contains Bag Consistency Database Fmt Helpers List Mvc Query Relation Relational Schema Signed_bag Sim Source String Tuple Update Value Warehouse Workload
