test/test_faults.ml: Alcotest Helpers Mvc String System Warehouse Whips Workload
