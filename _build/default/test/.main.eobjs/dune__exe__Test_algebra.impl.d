test/test_algebra.ml: Alcotest Algebra Database Helpers Pred Query Relational Schema String Value
