test/test_integrator.ml: Alcotest Algebra Database Helpers Integrator Pred Query Relational Update Value View
