test/main.mli:
