test/test_update.ml: Alcotest Helpers List Relational Signed_bag Update
