test/test_optimize.ml: Alcotest Algebra Bag Database Delta Eval Helpers List Optimize Pred QCheck2 Query Relational Schema Signed_bag Update Value
