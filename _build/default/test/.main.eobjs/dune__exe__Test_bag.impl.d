test/test_bag.ml: Alcotest Bag Helpers List QCheck2 Relational Tuple
