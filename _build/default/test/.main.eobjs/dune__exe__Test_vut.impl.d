test/test_vut.ml: Alcotest Helpers Mvc
