test/test_holdall.ml: Action_list Alcotest Helpers List Mvc Query Relational Sim Warehouse Whips Workload
