test/test_view.ml: Alcotest Algebra Helpers Query Relational View
