test/test_sim.ml: Alcotest Float Hashtbl Helpers List Sim
