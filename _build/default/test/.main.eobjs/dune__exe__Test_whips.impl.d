test/test_whips.ml: Alcotest Fmt Helpers List Metrics Printf Query Relational Source String System Warehouse Whips Workload
