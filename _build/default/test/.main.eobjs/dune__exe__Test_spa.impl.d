test/test_spa.ml: Action_list Alcotest Helpers List Mvc Printf QCheck2 Query Relational Sim Warehouse
