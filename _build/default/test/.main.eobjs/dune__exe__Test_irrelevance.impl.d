test/test_irrelevance.ml: Alcotest Algebra Database Delta Helpers Irrelevance Pred QCheck2 Query Relational Signed_bag Update Value
