test/test_aggregate.ml: Alcotest Algebra Bag Database Delta Eval Helpers Irrelevance List Pred QCheck2 Query Relation Relational Schema Signed_bag Source Tuple Update Value Whips Workload
