test/test_workload.ml: Alcotest Bag Database Fmt Helpers List Query Relation Relational Source Update Workload
