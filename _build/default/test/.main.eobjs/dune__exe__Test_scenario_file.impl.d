test/test_scenario_file.ml: Alcotest Helpers List Query Relation Relational Source Tuple Value Whips Workload
