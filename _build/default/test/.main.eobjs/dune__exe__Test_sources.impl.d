test/test_sources.ml: Alcotest Database Helpers List Query Relation Relational Source Update
