test/test_action_list.ml: Action_list Alcotest Bag Helpers Query Relational Signed_bag
