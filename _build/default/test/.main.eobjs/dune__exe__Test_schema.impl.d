test/test_schema.ml: Alcotest Helpers Relational Schema Value
