test/test_reader.ml: Action_list Alcotest Algebra Database Helpers List Pred Query Relation Relational Signed_bag Value Warehouse Whips Workload
