test/test_derived.ml: Action_list Alcotest Algebra Database Helpers List Query Relation Relational Sim Source Update Viewmgr Whips Workload
