test/test_checker.ml: Alcotest Algebra Consistency Database Helpers List QCheck2 Query Relation Relational Schema Sim Source String Update View Workload
