test/test_value.ml: Alcotest Helpers List QCheck2 Relational Value
