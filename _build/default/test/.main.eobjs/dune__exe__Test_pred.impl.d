test/test_pred.ml: Alcotest Helpers Pred Query Relational Schema Tuple Value
