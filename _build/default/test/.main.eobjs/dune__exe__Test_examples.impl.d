test/test_examples.ml: Alcotest Bag Database Helpers List Relation Relational Tuple Value Warehouse Whips Workload
