test/helpers.ml: Alcotest Bag Database List Printf QCheck2 QCheck_alcotest Query Relation Relational Schema Signed_bag Tuple Update Value
