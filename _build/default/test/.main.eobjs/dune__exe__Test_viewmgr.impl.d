test/test_viewmgr.ml: Action_list Alcotest Algebra Bag Database Eval Helpers List Query Relation Relational Sim Update View Viewmgr
