test/test_warehouse.ml: Action_list Alcotest Database Helpers List Printf QCheck2 Query Relation Relational Signed_bag Sim Warehouse
