test/test_partition.ml: Alcotest Algebra Helpers List Mvc Printf Query View
