test/test_signed_bag.ml: Alcotest Bag Helpers QCheck2 Relational Signed_bag
