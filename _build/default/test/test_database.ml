open Relational

let case = Helpers.case

let rs = Helpers.int_schema [ "A"; "B" ]

let ss = Helpers.int_schema [ "B"; "C" ]

let db () =
  Database.of_list
    [ ("R", Helpers.rel rs [ [ 1; 2 ] ]); ("S", Helpers.rel ss [ [ 2; 3 ] ]) ]

let tests =
  [ case "find" (fun () ->
        Alcotest.(check int) "R card" 1 (Relation.cardinal (Database.find (db ()) "R")));
    case "find unknown raises" (fun () ->
        Alcotest.check_raises "unknown" (Database.Unknown_relation "Z")
          (fun () -> ignore (Database.find (db ()) "Z")));
    case "names sorted" (fun () ->
        Alcotest.(check (list string)) "RS" [ "R"; "S" ] (Database.names (db ())));
    case "restrict" (fun () ->
        let r = Database.restrict (db ()) [ "R"; "Z" ] in
        Alcotest.(check (list string)) "only R" [ "R" ] (Database.names r));
    case "apply_update insert" (fun () ->
        let db' = Database.apply_update (db ()) (Update.insert "R" (Helpers.ints [ 5; 6 ])) in
        Alcotest.(check int) "2 rows" 2 (Relation.cardinal (Database.find db' "R")));
    case "apply_update modify" (fun () ->
        let db' =
          Database.apply_update (db ())
            (Update.modify "R" ~before:(Helpers.ints [ 1; 2 ])
               ~after:(Helpers.ints [ 1; 9 ]))
        in
        Alcotest.(check bool) "new present" true
          (Relation.mem (Database.find db' "R") (Helpers.ints [ 1; 9 ]));
        Alcotest.(check bool) "old gone" false
          (Relation.mem (Database.find db' "R") (Helpers.ints [ 1; 2 ])));
    case "apply_update on unknown relation raises" (fun () ->
        Alcotest.check_raises "unknown" (Database.Unknown_relation "Z")
          (fun () ->
            ignore (Database.apply_update (db ()) (Update.insert "Z" (Helpers.ints [ 1 ])))));
    case "apply_transaction is sequential within the transaction" (fun () ->
        let txn =
          Update.Transaction.make ~id:1 ~source:"s"
            [ Update.insert "R" (Helpers.ints [ 7; 7 ]);
              Update.delete "R" (Helpers.ints [ 7; 7 ]) ]
        in
        let db' = Database.apply_transaction (db ()) txn in
        Alcotest.(check bool) "net zero" true
          (Database.equal db' (db ())));
    case "apply_relevant skips foreign relations" (fun () ->
        let only_r = Database.restrict (db ()) [ "R" ] in
        let txn =
          Update.Transaction.make ~id:1 ~source:"s"
            [ Update.insert "R" (Helpers.ints [ 4; 4 ]);
              Update.insert "S" (Helpers.ints [ 9; 9 ]) ]
        in
        let db' = Database.apply_relevant only_r txn in
        Alcotest.(check int) "R grew" 2 (Relation.cardinal (Database.find db' "R"));
        Alcotest.(check bool) "S still absent" false (Database.mem db' "S"));
    case "persistence: snapshots are independent" (fun () ->
        let before = db () in
        let _after = Database.apply_update before (Update.insert "R" (Helpers.ints [ 8; 8 ])) in
        Alcotest.(check int) "before unchanged" 1
          (Relation.cardinal (Database.find before "R"))) ]
