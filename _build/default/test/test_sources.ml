open Relational

let case = Helpers.case

let make () =
  Source.Sources.create
    [ { source = "s1"; relation = "R";
        init = Helpers.rel (Helpers.int_schema [ "A"; "B" ]) [ [ 1; 2 ] ] };
      { source = "s2"; relation = "S";
        init = Helpers.rel (Helpers.int_schema [ "B"; "C" ]) [] } ]

let tests =
  [ case "create exposes names and ownership" (fun () ->
        let s = make () in
        Alcotest.(check (list string)) "sources" [ "s1"; "s2" ]
          (Source.Sources.source_names s);
        Alcotest.(check string) "owner R" "s1" (Source.Sources.owner s "R");
        Alcotest.(check (list string)) "relations of s1" [ "R" ]
          (Source.Sources.relations_of s "s1"));
    case "duplicate relation declaration rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Source.Sources.create
               [ { source = "a"; relation = "R";
                   init = Relation.create (Helpers.int_schema [ "A" ]) };
                 { source = "b"; relation = "R";
                   init = Relation.create (Helpers.int_schema [ "A" ]) } ]
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "unknown source raises" (fun () ->
        Alcotest.check_raises "unknown" (Source.Sources.Unknown_source "zz")
          (fun () -> ignore (Source.Sources.relations_of (make ()) "zz")));
    case "execute assigns increasing ids from 1" (fun () ->
        let s = make () in
        let t1 = Source.Sources.execute s [ Update.insert "R" (Helpers.ints [ 3; 4 ]) ] in
        let t2 = Source.Sources.execute s [ Update.insert "S" (Helpers.ints [ 4; 5 ]) ] in
        Alcotest.(check int) "id1" 1 t1.Update.Transaction.id;
        Alcotest.(check int) "id2" 2 t2.Update.Transaction.id;
        Alcotest.(check int) "last" 2 (Source.Sources.last_id s));
    case "execute applies atomically and records states" (fun () ->
        let s = make () in
        let _ = Source.Sources.execute s [ Update.insert "R" (Helpers.ints [ 3; 4 ]) ] in
        Alcotest.(check int) "2 states" 2 (List.length (Source.Sources.states s));
        let ss0 = Source.Sources.state s 0 and ss1 = Source.Sources.state s 1 in
        Alcotest.(check int) "ss0 R has 1" 1
          (Relation.cardinal (Database.find ss0 "R"));
        Alcotest.(check int) "ss1 R has 2" 2
          (Relation.cardinal (Database.find ss1 "R")));
    case "state out of range raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Source.Sources.state (make ()) 1 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "empty transaction rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Source.Sources.execute (make ()) [] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "single-source ownership enforced" (fun () ->
        let s = make () in
        Alcotest.(check bool) "violation" true
          (match
             Source.Sources.execute s ~source:"s1"
               [ Update.insert "S" (Helpers.ints [ 1; 1 ]) ]
           with
          | exception Source.Sources.Ownership_violation _ -> true
          | _ -> false));
    case "multi-source transaction allowed without ~source" (fun () ->
        let s = make () in
        let txn =
          Source.Sources.execute s
            [ Update.insert "R" (Helpers.ints [ 9; 9 ]);
              Update.insert "S" (Helpers.ints [ 9; 9 ]) ]
        in
        Alcotest.(check string) "attributed to first owner" "s1"
          txn.Update.Transaction.source;
        Alcotest.(check int) "both applied" 1
          (Relation.cardinal (Database.find (Source.Sources.current s) "S")));
    case "transactions returned oldest first" (fun () ->
        let s = make () in
        let _ = Source.Sources.execute s [ Update.insert "R" (Helpers.ints [ 1; 1 ]) ] in
        let _ = Source.Sources.execute s [ Update.insert "R" (Helpers.ints [ 2; 2 ]) ] in
        Alcotest.(check (list int)) "ids" [ 1; 2 ]
          (List.map
             (fun (t : Update.Transaction.t) -> t.id)
             (Source.Sources.transactions s)));
    case "query evaluates against current state" (fun () ->
        let s = make () in
        let _ = Source.Sources.execute s [ Update.insert "S" (Helpers.ints [ 2; 3 ]) ] in
        let out =
          Source.Sources.query s Query.Algebra.(join (base "R") (base "S"))
        in
        Alcotest.check Helpers.bag "joined"
          (Helpers.bag_of [ [ 1; 2; 3 ] ])
          (Relation.contents out));
    case "initial is ss_0 regardless of later updates" (fun () ->
        let s = make () in
        let _ = Source.Sources.execute s [ Update.insert "R" (Helpers.ints [ 5; 5 ]) ] in
        Alcotest.(check int) "initial untouched" 1
          (Relation.cardinal (Database.find (Source.Sources.initial s) "R"))) ]
