open Relational

let case = Helpers.case

let demo =
  {|
; Example 1 of the paper, as a scenario file.
(scenario demo
  (relation R (source alpha) (schema (A int) (B int)) (rows (1 2)))
  (relation S (source beta)  (schema (B int) (C int)) (rows))
  (relation T (source beta)  (schema (C int) (D int)) (rows (3 4)))
  (view V1 (join R S))
  (view V2 (join S T))
  (view V3 (select (and (ge B 0) (not (eq B 9))) R))
  (view V4 (project (A) R))
  (view V5 (group-by (keys B) (aggs (n count) (total sum A)) R))
  (txn (insert S (2 3)))
  (txn (modify R (1 2) (1 3)) (insert T (9 9)))
  (txn (delete S (2 3))))
|}

let sexp_tests =
  [ case "sexp: atoms, lists, comments, strings" (fun () ->
        let forms =
          Workload.Sexp.parse_string
            "; comment\n(a (b \"c d\") 12) atom ; trailing\n()"
        in
        Alcotest.(check int) "three forms" 3 (List.length forms);
        match forms with
        | [ Workload.Sexp.List [ _; Workload.Sexp.List [ _; Workload.Sexp.Atom s ]; _ ];
            Workload.Sexp.Atom "atom"; Workload.Sexp.List [] ] ->
          Alcotest.(check string) "quoted" "c d" s
        | _ -> Alcotest.fail "unexpected shapes");
    case "sexp: escapes in strings" (fun () ->
        match Workload.Sexp.parse_string {|("a\nb\"c")|} with
        | [ Workload.Sexp.List [ Workload.Sexp.Atom s ] ] ->
          Alcotest.(check string) "escaped" "a\nb\"c" s
        | _ -> Alcotest.fail "parse");
    case "sexp: unclosed paren raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Workload.Sexp.parse_string "(a (b)" with
          | exception Workload.Sexp.Parse_error _ -> true
          | _ -> false));
    case "sexp: stray close raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Workload.Sexp.parse_string "a)" with
          | exception Workload.Sexp.Parse_error _ -> true
          | _ -> false));
    case "sexp: roundtrip printing" (fun () ->
        let s = "(a (b c) d)" in
        match Workload.Sexp.parse_string s with
        | [ form ] -> Alcotest.(check string) "same" s (Workload.Sexp.to_string form)
        | _ -> Alcotest.fail "parse") ]

let file_tests =
  [ case "demo scenario parses with all constructs" (fun () ->
        let scen = Workload.Scenario_file.of_string demo in
        Alcotest.(check string) "name" "demo" scen.name;
        Alcotest.(check int) "3 relations" 3 (List.length scen.specs);
        Alcotest.(check int) "5 views" 5 (List.length scen.views);
        Alcotest.(check int) "3 txns" 3 (List.length scen.script);
        Alcotest.(check int) "multi-update txn" 2
          (List.length (List.nth scen.script 1)));
    case "parsed scenario runs to a complete verdict" (fun () ->
        let scen = Workload.Scenario_file.of_string demo in
        let result =
          Whips.System.run { (Whips.System.default scen) with seed = 5 }
        in
        let v = Whips.System.verdict result in
        Alcotest.(check bool) "complete" true v.complete);
    case "table-1 semantics survive the file format" (fun () ->
        let scen = Workload.Scenario_file.of_string demo in
        let srcs = Workload.Scenarios.sources scen in
        let _ = Workload.Scenarios.run_script scen srcs in
        let v2 = List.nth scen.views 1 in
        Alcotest.check Helpers.bag "V2 after txn 1"
          (Helpers.bag_of [ [ 2; 3; 4 ] ])
          (Relation.contents
             (Query.View.materialize (Source.Sources.state srcs 1) v2)));
    case "unknown relation in a view is rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Workload.Scenario_file.of_string
               {|(scenario x (relation R (source a) (schema (A int)) (rows))
                 (view V (join R Z)) )|}
           with
          | exception Workload.Scenario_file.Invalid_scenario _ -> true
          | _ -> false));
    case "unknown attribute in a view is rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Workload.Scenario_file.of_string
               {|(scenario x (relation R (source a) (schema (A int)) (rows))
                 (view V (select (le ZZ 1) R)))|}
           with
          | exception Workload.Scenario_file.Invalid_scenario _ -> true
          | _ -> false));
    case "arity mismatch in a row is rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Workload.Scenario_file.of_string
               {|(scenario x (relation R (source a) (schema (A int) (B int))
                  (rows (1))) (view V R))|}
           with
          | exception Workload.Scenario_file.Invalid_scenario _ -> true
          | _ -> false));
    case "type mismatch in a value is rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Workload.Scenario_file.of_string
               {|(scenario x (relation R (source a) (schema (A int))
                  (rows (hello))) (view V R))|}
           with
          | exception Workload.Scenario_file.Invalid_scenario _ -> true
          | _ -> false));
    case "transaction on unknown relation is rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Workload.Scenario_file.of_string
               {|(scenario x (relation R (source a) (schema (A int)) (rows))
                 (view V R) (txn (insert Z (1))))|}
           with
          | exception Workload.Scenario_file.Invalid_scenario _ -> true
          | _ -> false));
    case "string and float and null values parse" (fun () ->
        let scen =
          Workload.Scenario_file.of_string
            {|(scenario x
               (relation R (source a)
                 (schema (name string) (price float) (flag bool))
                 (rows ("widget" 1.5 true) (gadget null false)))
               (view V R))|}
        in
        let rel = (List.hd scen.specs).init in
        Alcotest.(check int) "2 rows" 2 (Relation.cardinal rel);
        Alcotest.(check bool) "null present" true
          (Relation.mem rel
             (Tuple.of_list [ Value.String "gadget"; Value.Null; Value.Bool false ]))) ]

let tests = sexp_tests @ file_tests
