open Query

let case = Helpers.case

let al view state = Action_list.delta ~view ~state Relational.Signed_bag.zero

let make views =
  let emitted = ref [] in
  let pa =
    Mvc.Pa.create ~views ~emit:(fun wt -> emitted := !emitted @ [ wt ]) ()
  in
  (pa, emitted)

let rows wt = wt.Warehouse.Wt.rows

(* Example 4: AL13 covers U1 and U3 for V1. SPA would wrongly apply rows 1
   and 2 once the remaining U1/U2 lists arrive; PA must wait for AL23. *)
let example4 () =
  let pa, emitted = make [ "V1"; "V2"; "V3" ] in
  Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V1"; "V2" ];
  Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "V2"; "V3" ];
  Mvc.Pa.receive_rel pa ~row:3 ~rel:[ "V1"; "V2" ];
  (* AL13: batched list for V1 covering rows 1 and 3 *)
  Mvc.Pa.receive_action_list pa (al "V1" 3);
  Alcotest.(check string) "rows 1,3 marked red with state 3 in V1"
    "U1: V1=(r,3) V2=(w,0) V3=(b,0)\n\
     U2: V1=(b,0) V2=(w,0) V3=(w,0)\n\
     U3: V1=(r,3) V2=(w,0) V3=(b,0)"
    (Mvc.Vut.render ~show_state:true (Mvc.Pa.vut pa));
  (* All remaining lists for U1 and U2 arrive. *)
  Mvc.Pa.receive_action_list pa (al "V2" 1);
  Mvc.Pa.receive_action_list pa (al "V2" 2);
  Mvc.Pa.receive_action_list pa (al "V3" 2);
  Alcotest.(check int) "nothing applied: row 1 is entangled with row 3" 0
    (List.length !emitted);
  (* AL23 closes the gap; everything applies as one transaction. *)
  Mvc.Pa.receive_action_list pa (al "V2" 3);
  Alcotest.(check int) "one transaction" 1 (List.length !emitted);
  Alcotest.(check (list int)) "all three rows" [ 1; 2; 3 ]
    (rows (List.hd !emitted));
  Alcotest.(check bool) "quiescent" true (Mvc.Pa.quiescent pa)

(* Example 5, literal paper trace. *)
let example5 () =
  let pa, emitted = make [ "V1"; "V2"; "V3" ] in
  Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V1"; "V2" ];
  Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "V2"; "V3" ];
  Mvc.Pa.receive_rel pa ~row:3 ~rel:[ "V2"; "V3" ];
  (* t0 *)
  Alcotest.(check string) "t0"
    "U1: V1=(w,0) V2=(w,0) V3=(b,0)\n\
     U2: V1=(b,0) V2=(w,0) V3=(w,0)\n\
     U3: V1=(b,0) V2=(w,0) V3=(w,0)"
    (Mvc.Vut.render ~show_state:true (Mvc.Pa.vut pa));
  Mvc.Pa.receive_action_list pa (al "V2" 1) (* t1 *);
  Mvc.Pa.receive_action_list pa (al "V2" 3) (* t2: covers rows 2,3 *);
  Alcotest.(check string) "t2"
    "U1: V1=(w,0) V2=(r,1) V3=(b,0)\n\
     U2: V1=(b,0) V2=(r,3) V3=(w,0)\n\
     U3: V1=(b,0) V2=(r,3) V3=(w,0)"
    (Mvc.Vut.render ~show_state:true (Mvc.Pa.vut pa));
  Mvc.Pa.receive_action_list pa (al "V3" 2) (* t3 *);
  Alcotest.(check int) "t3: nothing applied" 0 (List.length !emitted);
  Mvc.Pa.receive_action_list pa (al "V1" 1) (* t4 -> t5: row 1 applies *);
  Alcotest.(check (list (list int))) "t5: WT1 alone" [ [ 1 ] ]
    (List.map rows !emitted);
  (* The paper's t5 table prints entry (2,V3) as (r,0); its own t3 table
     prints the same entry as (r,2) — a self-pointer, recorded here as the
     row's own number, which is equivalent to 0 ("no forward batch"). *)
  Alcotest.(check string) "t5 table: row 1 purged"
    "U2: V1=(b,0) V2=(r,3) V3=(r,2)\nU3: V1=(b,0) V2=(r,3) V3=(w,0)"
    (Mvc.Vut.render ~show_state:true (Mvc.Pa.vut pa));
  Mvc.Pa.receive_action_list pa (al "V3" 3) (* t6 -> t7: rows 2,3 together *);
  Alcotest.(check (list (list int))) "t7: rows 2,3 in one transaction"
    [ [ 1 ]; [ 2; 3 ] ]
    (List.map rows !emitted);
  Alcotest.(check bool) "quiescent" true (Mvc.Pa.quiescent pa)

(* Regression for the collect-then-apply fix: a forward pointer of an
   *outer* row in the closure must be chased before anything applies. With
   the paper's literal innermost-apply reading, the recursive call for row
   1 (triggered from row 2's Line 4) would apply rows {1,2} even though row
   2's own Line-5 pointer to row 4 has not been checked. *)
let closure_regression () =
  let pa, emitted = make [ "VA"; "VB" ] in
  Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "VA" ];
  Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "VA"; "VB" ];
  Mvc.Pa.receive_rel pa ~row:4 ~rel:[ "VB" ];
  (* VB's manager batches rows 2 and 4 into AL^VB_4: entry (2,VB) gets
     state 4. Nothing can apply: (2,VA) is still white. *)
  Mvc.Pa.receive_action_list pa (al "VB" 4);
  Alcotest.(check int) "held" 0 (List.length !emitted);
  (* VA's manager batches rows 1 and 2 into AL^VA_2. Under the literal
     innermost-apply reading, ProcessRow(2)'s Line 4 recursion into row 1
     would complete and apply {1,2} before row 2's forward pointer to row
     4 was chased, tearing AL^VB_4. The correct closure is {1,2,4} in one
     transaction. *)
  Mvc.Pa.receive_action_list pa (al "VA" 2);
  Alcotest.(check int) "single transaction" 1 (List.length !emitted);
  Alcotest.(check (list int)) "closure {1,2,4}" [ 1; 2; 4 ]
    (rows (List.hd !emitted))

(* A batched AL whose forward target is still incomplete must hold
   everything. *)
let forward_hold () =
  let pa, emitted = make [ "VA"; "VB" ] in
  Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "VA"; "VB" ];
  Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "VA"; "VB" ];
  Mvc.Pa.receive_action_list pa (al "VA" 2);
  (* Rows 1,2 red in VA with state 2; VB white everywhere. *)
  Mvc.Pa.receive_action_list pa (al "VB" 1);
  (* Row 1 has all lists, but its VA entry points to row 2 which is
     missing VB's list. *)
  Alcotest.(check int) "held" 0 (List.length !emitted);
  Mvc.Pa.receive_action_list pa (al "VB" 2);
  Alcotest.(check int) "released together" 1 (List.length !emitted);
  Alcotest.(check (list int)) "both rows" [ 1; 2 ] (rows (List.hd !emitted))

(* Randomized batching property: generate per-view batched AL streams and a
   random legal interleaving; PA must apply every row exactly once, keep
   batches atomic, and preserve per-view batch order. *)
let random_run seed =
  let rng = Sim.Rng.create seed in
  let n_views = Sim.Rng.int_range rng 1 4 in
  let views = List.init n_views (fun i -> Printf.sprintf "V%d" (i + 1)) in
  let n_rows = Sim.Rng.int_range rng 1 12 in
  let rels =
    List.init n_rows (fun i ->
        let row = i + 1 in
        let subset = List.filter (fun _ -> Sim.Rng.bool rng) views in
        let subset = if subset = [] then [ Sim.Rng.pick rng views ] else subset in
        (row, subset))
  in
  (* Partition each view's relevant rows into consecutive batches. *)
  let batches_of v =
    let relevant =
      List.filter_map
        (fun (row, rel) -> if List.mem v rel then Some row else None)
        rels
    in
    let rec cut acc current = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | row :: rest ->
        let current = row :: current in
        if Sim.Rng.bool rng then cut (List.rev current :: acc) [] rest
        else cut acc current rest
    in
    cut [] [] relevant
  in
  let al_streams = List.map (fun v -> (v, ref (batches_of v))) views in
  let pa, emitted = make views in
  let rel_stream = ref rels in
  let live () =
    (if !rel_stream <> [] then [ `Rel ] else [])
    @ List.filter_map
        (fun (v, r) -> if !r <> [] then Some (`Al (v, r)) else None)
        al_streams
  in
  let rec drive () =
    match live () with
    | [] -> ()
    | choices ->
      (match List.nth choices (Sim.Rng.int rng (List.length choices)) with
      | `Rel ->
        let (row, rel), rest = (List.hd !rel_stream, List.tl !rel_stream) in
        rel_stream := rest;
        Mvc.Pa.receive_rel pa ~row ~rel
      | `Al (v, r) ->
        let batch, rest = (List.hd !r, List.tl !r) in
        r := rest;
        let last = List.nth batch (List.length batch - 1) in
        Mvc.Pa.receive_action_list pa (al v last));
      drive ()
  in
  drive ();
  (pa, rels, views, List.map (fun v -> batches_of v) views, !emitted)

let prop_applied_once seed =
  let pa, rels, _, _, emitted = random_run seed in
  let applied = List.concat_map rows emitted in
  Mvc.Pa.quiescent pa && List.sort compare applied = List.map fst rels

let prop_batches_atomic seed =
  let _, rels, views, _, emitted = random_run seed in
  (* For every pair of rows sharing a view, application order must follow
     row order; and rows in the same WT are trivially consistent. *)
  let wt_index row =
    let rec find i = function
      | [] -> -1
      | wt :: rest -> if List.mem row (rows wt) then i else find (i + 1) rest
    in
    find 0 emitted
  in
  ignore views;
  List.for_all
    (fun (i, rel_i) ->
      List.for_all
        (fun (j, rel_j) ->
          i >= j
          || (not (List.exists (fun v -> List.mem v rel_j) rel_i))
          || wt_index i <= wt_index j)
        rels)
    rels

let tests =
  [ case "example 4 (intertwined lists: SPA's breakdown case)" example4;
    case "example 5 (paper trace with states)" example5;
    case "closure regression: forward pointers of outer rows" closure_regression;
    case "batched list holds until its whole range is ready" forward_hold;
    case "pre-REL buffering" (fun () ->
        let pa, emitted = make [ "V1" ] in
        Mvc.Pa.receive_action_list pa (al "V1" 2);
        Alcotest.(check int) "held" 1 (Mvc.Pa.held_action_lists pa);
        Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V1" ];
        Alcotest.(check int) "still held: state 2's REL missing" 0
          (List.length !emitted);
        Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "V1" ];
        Alcotest.(check int) "released, one WT covering both rows" 1
          (List.length !emitted);
        Alcotest.(check (list int)) "rows 1,2" [ 1; 2 ] (rows (List.hd !emitted)));
    case "duplicate batched list raises" (fun () ->
        let pa, _ = make [ "V1" ] in
        Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V1" ];
        Mvc.Pa.receive_action_list pa (al "V1" 1);
        Alcotest.(check bool) "raises" true
          (match Mvc.Pa.receive_action_list pa (al "V1" 1) with
          | exception Mvc.Vut.Protocol_error _ -> true
          | _ -> false));
    case "max_rows_per_wt statistic" (fun () ->
        let pa, _ = make [ "V1" ] in
        Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V1" ];
        Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "V1" ];
        Mvc.Pa.receive_action_list pa (al "V1" 2);
        Alcotest.(check int) "batch of 2" 2 (Mvc.Pa.stats pa).max_rows_per_wt);
    case "complete managers degrade PA to SPA behaviour" (fun () ->
        (* One AL per row: PA applies row by row like SPA. *)
        let pa, emitted = make [ "V1"; "V2" ] in
        Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V1"; "V2" ];
        Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "V1" ];
        Mvc.Pa.receive_action_list pa (al "V1" 1);
        Mvc.Pa.receive_action_list pa (al "V2" 1);
        Mvc.Pa.receive_action_list pa (al "V1" 2);
        Alcotest.(check (list (list int))) "row at a time" [ [ 1 ]; [ 2 ] ]
          (List.map rows !emitted));
    Helpers.qcheck ~count:200 "random batching: applied exactly once"
      QCheck2.Gen.(int_range 0 1_000_000)
      prop_applied_once;
    Helpers.qcheck ~count:200 "random batching: shared-view order kept"
      QCheck2.Gen.(int_range 0 1_000_000)
      prop_batches_atomic ]
