open Relational
open Query

let case = Helpers.case

let schemas name =
  match name with
  | "R0" -> Helpers.int_schema [ "a0"; "a1" ]
  | "R1" -> Helpers.int_schema [ "a1"; "a2" ]
  | "R2" -> Helpers.int_schema [ "a2"; "a3" ]
  | other -> raise (Database.Unknown_relation other)

let opt = Optimize.optimize ~schemas

let p_a0 = Pred.le "a0" (Value.Int 2)

let p_a2 = Pred.ge "a2" (Value.Int 1)

(* Random expression with selections sprinkled at the top, for the
   equivalence property. *)
let decorated_gen =
  let open QCheck2.Gen in
  Helpers.Delta_domain.expr_gen >>= fun base_expr ->
  let schema = Algebra.schema_of schemas base_expr in
  let names = Schema.names schema in
  let pred_gen =
    map2
      (fun n v ->
        if v mod 2 = 0 then Pred.le n (Value.Int (v / 2))
        else Pred.ge n (Value.Int (v / 2)))
      (oneofl names) (int_range 0 7)
  in
  list_size (int_range 0 3) pred_gen >>= fun preds ->
  let wrapped =
    List.fold_left (fun e p -> Algebra.select p e) base_expr preds
  in
  bool >>= fun project_too ->
  let final =
    if project_too && List.length names > 1 then
      Algebra.project [ List.hd names ] wrapped
    else wrapped
  in
  return final

let tests =
  [ case "selection sinks to the matching join side" (fun () ->
        let e = Algebra.(select p_a0 (join (base "R0") (base "R1"))) in
        Alcotest.(check string) "pushed"
          "(sigma[a0 <= 2](R0) |><| R1)"
          (Algebra.to_string (opt e)));
    case "selection on the shared attribute goes to both sides" (fun () ->
        let p = Pred.eq "a1" (Value.Int 3) in
        let e = Algebra.(select p (join (base "R0") (base "R1"))) in
        Alcotest.(check string) "both sides"
          "(sigma[a1 = 3](R0) |><| sigma[a1 = 3](R1))"
          (Algebra.to_string (opt e)));
    case "stacked selections fuse and split" (fun () ->
        let e =
          Algebra.(
            select p_a0 (select p_a2 (join (base "R0") (base "R1"))))
        in
        Alcotest.(check string) "split"
          "(sigma[a0 <= 2](R0) |><| sigma[a2 >= 1](R1))"
          (Algebra.to_string (opt e)));
    case "selection passes through projection" (fun () ->
        let e =
          Algebra.(select p_a0 (project [ "a0" ] (base "R0")))
        in
        Alcotest.(check string) "below project"
          "pi[a0](sigma[a0 <= 2](R0))"
          (Algebra.to_string (opt e)));
    case "selection distributes over union" (fun () ->
        let e =
          Algebra.(
            select p_a0
              (union
                 (rename [ ("a1", "a0"); ("a2", "a1") ] (base "R1"))
                 (base "R0")))
        in
        match opt e with
        | Algebra.Union (Algebra.Rename (_, Algebra.Select _), Algebra.Select _)
          ->
          ()
        | other ->
          Alcotest.failf "unexpected shape: %s" (Algebra.to_string other));
    case "selection pushes through group-by keys" (fun () ->
        let e =
          Algebra.(
            select
              (Pred.eq "a1" (Value.Int 1))
              (group_by ~keys:[ "a1" ] ~aggregates:[ ("n", Count) ] (base "R0")))
        in
        match opt e with
        | Algebra.Group_by { input = Algebra.Select _; _ } -> ()
        | other ->
          Alcotest.failf "unexpected shape: %s" (Algebra.to_string other));
    case "non-key selection stays above group-by" (fun () ->
        let e =
          Algebra.(
            select
              (Pred.ge "n" (Value.Int 2))
              (group_by ~keys:[ "a1" ] ~aggregates:[ ("n", Count) ] (base "R0")))
        in
        match opt e with
        | Algebra.Select (_, Algebra.Group_by _) -> ()
        | other ->
          Alcotest.failf "unexpected shape: %s" (Algebra.to_string other));
    case "identity projection removed" (fun () ->
        let e = Algebra.(project [ "a0"; "a1" ] (base "R0")) in
        Alcotest.(check string) "gone" "R0" (Algebra.to_string (opt e)));
    case "stacked projections collapse" (fun () ->
        let e = Algebra.(project [ "a0" ] (project [ "a0"; "a1" ] (base "R0"))) in
        Alcotest.(check string) "one" "pi[a0](R0)" (Algebra.to_string (opt e)));
    case "select true removed" (fun () ->
        let e = Algebra.(select Pred.True (base "R0")) in
        Alcotest.(check string) "gone" "R0" (Algebra.to_string (opt e)));
    case "optimization preserves the schema" (fun () ->
        let e =
          Algebra.(
            select p_a2 (project [ "a1"; "a2" ] (join (base "R0") (base "R1"))))
        in
        Alcotest.check Helpers.schema "same schema"
          (Algebra.schema_of schemas e)
          (Algebra.schema_of schemas (opt e)));
    Helpers.qcheck ~count:300 "optimized expression evaluates identically"
      QCheck2.Gen.(pair Helpers.Delta_domain.db_gen decorated_gen)
      (fun (db, expr) ->
        Bag.equal (Eval.eval_bag db expr) (Eval.eval_bag db (opt expr)));
    Helpers.qcheck ~count:200 "optimized expression has identical deltas"
      QCheck2.Gen.(
        Helpers.Delta_domain.db_gen >>= fun db ->
        Helpers.Delta_domain.changes_gen db >>= fun updates ->
        decorated_gen >>= fun expr -> return (db, updates, expr))
      (fun (pre, updates, expr) ->
        let txn = Update.Transaction.make ~id:1 ~source:"s" updates in
        let changes = Delta.of_transaction txn in
        let before = Eval.eval_bag pre expr in
        Bag.equal
          (Signed_bag.apply (Delta.eval ~pre changes expr) before)
          (Signed_bag.apply (Delta.eval ~pre changes (opt expr)) before));
    Helpers.qcheck ~count:200 "optimization growth bounded by replication"
      decorated_gen
      (fun expr ->
        (* Selection replication across join sides may duplicate predicate
           nodes, but never more than once per original node. *)
        Algebra.size (opt expr) <= (2 * Algebra.size expr) + 1) ]
