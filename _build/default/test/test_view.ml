open Query

let case = Helpers.case

let v1 = View.make "V1" Algebra.(join (base "R") (base "S"))

let v2 = View.make "V2" Algebra.(join (base "S") (base "T"))

let v3 = View.make "V3" Algebra.(base "Q")

let tests =
  [ case "name" (fun () -> Alcotest.(check string) "V1" "V1" (View.name v1));
    case "base_relations" (fun () ->
        Alcotest.(check (list string)) "RS" [ "R"; "S" ] (View.base_relations v1));
    case "uses" (fun () ->
        Alcotest.(check bool) "R" true (View.uses v1 "R");
        Alcotest.(check bool) "Q" false (View.uses v1 "Q"));
    case "overlaps when sharing a relation" (fun () ->
        Alcotest.(check bool) "V1/V2 share S" true (View.overlaps v1 v2);
        Alcotest.(check bool) "V1/V3 disjoint" false (View.overlaps v1 v3));
    case "overlaps is symmetric" (fun () ->
        Alcotest.(check bool) "sym" (View.overlaps v1 v2) (View.overlaps v2 v1));
    case "materialize evaluates the definition" (fun () ->
        let db =
          Relational.Database.of_list
            [ ("R", Helpers.rel (Helpers.int_schema [ "A"; "B" ]) [ [ 1; 2 ] ]);
              ("S", Helpers.rel (Helpers.int_schema [ "B"; "C" ]) [ [ 2; 3 ] ]) ]
        in
        Alcotest.check Helpers.bag "joined"
          (Helpers.bag_of [ [ 1; 2; 3 ] ])
          (Relational.Relation.contents (View.materialize db v1))) ]
