open Query

let case = Helpers.case

let v name rels = View.make name (Algebra.join_all (List.map Algebra.base rels))

let names groups = List.map (List.map View.name) groups

let tests =
  [ case "disjoint views split into singleton groups" (fun () ->
        let groups = Mvc.Partition.groups [ v "A" [ "R" ]; v "B" [ "S" ] ] in
        Alcotest.(check (list (list string))) "two groups" [ [ "A" ]; [ "B" ] ]
          (names groups));
    case "shared relation merges groups" (fun () ->
        let groups =
          Mvc.Partition.groups [ v "A" [ "R"; "S" ]; v "B" [ "S"; "T" ] ]
        in
        Alcotest.(check (list (list string))) "one group" [ [ "A"; "B" ] ]
          (names groups));
    case "transitive sharing" (fun () ->
        let groups =
          Mvc.Partition.groups
            [ v "A" [ "R" ]; v "B" [ "R"; "S" ]; v "C" [ "S" ]; v "D" [ "Z" ] ]
        in
        Alcotest.(check (list (list string))) "ABC together, D alone"
          [ [ "A"; "B"; "C" ]; [ "D" ] ]
          (names groups));
    case "figure 3 partitioning" (fun () ->
        (* VM1: V1 = R |><| S, VM2: V2 = S |><| T, VM3: V3 = Q *)
        let groups =
          Mvc.Partition.groups
            [ v "V1" [ "R"; "S" ]; v "V2" [ "S"; "T" ]; v "V3" [ "Q" ] ]
        in
        Alcotest.(check (list (list string))) "MP1 {V1,V2}, MP2 {V3}"
          [ [ "V1"; "V2" ]; [ "V3" ] ]
          (names groups));
    case "groups never share a base relation" (fun () ->
        let views =
          [ v "A" [ "R"; "S" ]; v "B" [ "T" ]; v "C" [ "S" ]; v "D" [ "U"; "T" ] ]
        in
        let groups = Mvc.Partition.groups views in
        let rels_of_group g =
          List.concat_map View.base_relations g |> List.sort_uniq compare
        in
        List.iteri
          (fun i gi ->
            List.iteri
              (fun j gj ->
                if i < j then
                  List.iter
                    (fun r ->
                      Alcotest.(check bool)
                        (Printf.sprintf "relation %s not shared" r)
                        false
                        (List.mem r (rels_of_group gj)))
                    (rels_of_group gi))
              groups)
          groups);
    case "coarsen respects max_groups" (fun () ->
        let fine = [ [ v "A" [ "R" ] ]; [ v "B" [ "S" ] ]; [ v "C" [ "T" ] ] ] in
        let coarse = Mvc.Partition.coarsen ~max_groups:2 fine in
        Alcotest.(check int) "2 groups" 2 (List.length coarse);
        let total = List.length (List.concat coarse) in
        Alcotest.(check int) "all views kept" 3 total);
    case "coarsen below 1 rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Mvc.Partition.coarsen ~max_groups:0 [] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "coarsen is identity when within the budget" (fun () ->
        let fine = [ [ v "A" [ "R" ] ]; [ v "B" [ "S" ] ] ] in
        Alcotest.(check int) "unchanged" 2
          (List.length (Mvc.Partition.coarsen ~max_groups:5 fine)));
    case "route finds owning groups" (fun () ->
        let groups = [ [ v "A" [ "R" ] ]; [ v "B" [ "S" ]; v "C" [ "S" ] ] ] in
        Alcotest.(check (list int)) "B in group 1" [ 1 ]
          (Mvc.Partition.route groups [ "B" ]);
        Alcotest.(check (list int)) "A and C span both" [ 0; 1 ]
          (Mvc.Partition.route groups [ "A"; "C" ]);
        Alcotest.(check (list int)) "unknown nowhere" []
          (Mvc.Partition.route groups [ "Z" ])) ]
