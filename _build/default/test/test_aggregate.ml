open Relational
open Query

let case = Helpers.case

let sales = Helpers.int_schema [ "sku"; "store"; "qty" ]

let db rows = Database.of_list [ ("sales", Helpers.rel sales rows) ]

let base_rows = [ [ 1; 1; 5 ]; [ 1; 2; 3 ]; [ 2; 1; 7 ]; [ 2; 1; 7 ] ]

let by_store aggregates =
  Algebra.group_by ~keys:[ "store" ] ~aggregates (Algebra.base "sales")

let eval rows e = Relation.contents (Eval.eval (db rows) e)

let tests =
  [ case "schema of group_by" (fun () ->
        let e =
          by_store [ ("total", Algebra.Sum "qty"); ("n", Algebra.Count) ]
        in
        let schema =
          Algebra.schema_of (fun _ -> sales) e
        in
        Alcotest.(check (list string)) "attrs" [ "store"; "total"; "n" ]
          (Schema.names schema);
        Alcotest.(check bool) "count is int" true
          (Schema.type_of schema "n" = Value.Int_ty));
    case "schema of avg is float" (fun () ->
        let e = by_store [ ("a", Algebra.Avg "qty") ] in
        Alcotest.(check bool) "float" true
          (Schema.type_of (Algebra.schema_of (fun _ -> sales) e) "a"
          = Value.Float_ty));
    case "count respects multiplicity" (fun () ->
        let out = eval base_rows (by_store [ ("n", Algebra.Count) ]) in
        Alcotest.(check int) "store 1 count 3" 1
          (Bag.count out (Helpers.ints [ 1; 3 ]));
        Alcotest.(check int) "store 2 count 1" 1
          (Bag.count out (Helpers.ints [ 2; 1 ])));
    case "sum / min / max" (fun () ->
        let out =
          eval base_rows
            (by_store
               [ ("s", Algebra.Sum "qty"); ("lo", Algebra.Min "qty");
                 ("hi", Algebra.Max "qty") ])
        in
        Alcotest.(check int) "store 1: sum=19 min=5 max=7" 1
          (Bag.count out (Helpers.ints [ 1; 19; 5; 7 ]));
        Alcotest.(check int) "store 2: sum=3" 1
          (Bag.count out (Helpers.ints [ 2; 3; 3; 3 ])));
    case "avg" (fun () ->
        let out = eval base_rows (by_store [ ("a", Algebra.Avg "qty") ]) in
        let expected =
          Tuple.of_list [ Value.Int 1; Value.Float (19.0 /. 3.0) ]
        in
        Alcotest.(check int) "store 1 avg" 1 (Bag.count out expected));
    case "empty input yields no groups" (fun () ->
        Alcotest.check Helpers.bag "empty" Bag.empty
          (eval [] (by_store [ ("n", Algebra.Count) ])));
    case "nulls: skipped by sum, counted by count" (fun () ->
        let rows =
          Bag.of_list
            [ Tuple.of_list [ Value.Int 1; Value.Int 1; Value.Null ];
              Tuple.of_list [ Value.Int 2; Value.Int 1; Value.Int 4 ] ]
        in
        let db =
          Database.of_list
            [ ("sales", Relation.with_contents (Relation.create sales) rows) ]
        in
        let out =
          Relation.contents
            (Eval.eval db
               (by_store [ ("s", Algebra.Sum "qty"); ("n", Algebra.Count) ]))
        in
        Alcotest.(check int) "sum skips null" 1
          (Bag.count out (Helpers.ints [ 1; 4; 2 ])));
    case "delta: insert into existing group" (fun () ->
        let e = by_store [ ("s", Algebra.Sum "qty") ] in
        let pre = db base_rows in
        let changes =
          Delta.of_update (Update.insert "sales" (Helpers.ints [ 9; 1; 1 ]))
        in
        let d = Delta.eval ~pre changes e in
        Alcotest.(check int) "old row retracted" (-1)
          (Signed_bag.count d (Helpers.ints [ 1; 19 ]));
        Alcotest.(check int) "new row inserted" 1
          (Signed_bag.count d (Helpers.ints [ 1; 20 ]));
        Alcotest.(check int) "only two entries" 2
          (List.length (Signed_bag.to_list d)));
    case "delta: delete emptying a group retracts it" (fun () ->
        let e = by_store [ ("n", Algebra.Count) ] in
        let pre = db base_rows in
        let changes =
          Delta.of_update (Update.delete "sales" (Helpers.ints [ 1; 2; 3 ]))
        in
        let d = Delta.eval ~pre changes e in
        Alcotest.(check int) "group 2 gone" (-1)
          (Signed_bag.count d (Helpers.ints [ 2; 1 ]));
        Alcotest.(check int) "no replacement" 0
          (Signed_bag.count d (Helpers.ints [ 2; 0 ])));
    case "delta: min under deletion recomputes the group" (fun () ->
        let e = by_store [ ("lo", Algebra.Min "qty") ] in
        let pre = db base_rows in
        (* Deleting the minimum of store 1 (qty 5) must surface 7. *)
        let changes =
          Delta.of_update (Update.delete "sales" (Helpers.ints [ 1; 1; 5 ]))
        in
        let d = Delta.eval ~pre changes e in
        Alcotest.(check int) "-[1;5]" (-1)
          (Signed_bag.count d (Helpers.ints [ 1; 5 ]));
        Alcotest.(check int) "+[1;7]" 1 (Signed_bag.count d (Helpers.ints [ 1; 7 ])));
    case "delta: update not changing the aggregate is empty" (fun () ->
        let e = by_store [ ("n", Algebra.Count) ] in
        let pre = db base_rows in
        let changes =
          Delta.of_update
            (Update.modify "sales" ~before:(Helpers.ints [ 1; 1; 5 ])
               ~after:(Helpers.ints [ 3; 1; 8 ]))
        in
        Alcotest.(check bool) "zero" true
          (Signed_bag.is_zero (Delta.eval ~pre changes e)));
    case "irrelevance: key selection pushes through group_by" (fun () ->
        let e =
          Algebra.select
            (Pred.eq "store" (Value.Int 5))
            (by_store [ ("n", Algebra.Count) ])
        in
        let schemas = function
          | "sales" -> sales
          | other -> raise (Database.Unknown_relation other)
        in
        let changes =
          Delta.of_update (Update.insert "sales" (Helpers.ints [ 1; 1; 1 ]))
        in
        Alcotest.(check bool) "store 1 ruled out for store=5 view" true
          (Irrelevance.provably_irrelevant ~schemas ~changes e);
        let changes5 =
          Delta.of_update (Update.insert "sales" (Helpers.ints [ 1; 5; 1 ]))
        in
        Alcotest.(check bool) "store 5 kept" false
          (Irrelevance.provably_irrelevant ~schemas ~changes:changes5 e));
    case "group_by over join" (fun () ->
        let product = Helpers.int_schema [ "sku"; "cat" ] in
        let db =
          Database.of_list
            [ ("sales", Helpers.rel sales base_rows);
              ("product", Helpers.rel product [ [ 1; 10 ]; [ 2; 20 ] ]) ]
        in
        let e =
          Algebra.group_by ~keys:[ "cat" ]
            ~aggregates:[ ("s", Algebra.Sum "qty") ]
            Algebra.(join (base "sales") (base "product"))
        in
        let out = Relation.contents (Eval.eval db e) in
        Alcotest.(check int) "cat 10: 5+3" 1
          (Bag.count out (Helpers.ints [ 10; 8 ]));
        Alcotest.(check int) "cat 20: 7+7" 1
          (Bag.count out (Helpers.ints [ 20; 14 ])));
    Helpers.qcheck ~count:200 "group_by delta == recompute"
      QCheck2.Gen.(
        Helpers.Delta_domain.db_gen >>= fun db ->
        Helpers.Delta_domain.changes_gen db >>= fun updates ->
        oneofl
          [ Algebra.group_by ~keys:[ "a1" ]
              ~aggregates:
                [ ("s", Algebra.Sum "a2"); ("n", Algebra.Count) ]
              (Algebra.base "R1");
            Algebra.group_by ~keys:[ "a0" ]
              ~aggregates:[ ("m", Algebra.Min "a1") ]
              (Algebra.base "R0");
            Algebra.group_by ~keys:[ "a1" ]
              ~aggregates:
                [ ("mx", Algebra.Max "a2"); ("av", Algebra.Avg "a2") ]
              Algebra.(join (base "R0") (base "R1")) ]
        >>= fun expr -> return (db, updates, expr))
      (fun (pre, updates, expr) ->
        let txn = Update.Transaction.make ~id:1 ~source:"s" updates in
        let changes = Delta.of_transaction txn in
        let post = Database.apply_transaction pre txn in
        let delta = Delta.eval ~pre changes expr in
        let before = Eval.eval_bag pre expr in
        let after = Eval.eval_bag post expr in
        Bag.equal (Signed_bag.apply delta before) after
        && Signed_bag.applies_exactly delta before);
    case "sales-rollup scenario is complete end to end" (fun () ->
        let scen = Workload.Scenarios.sales_rollup in
        let result =
          Whips.System.run
            { (Whips.System.default scen) with
              arrival = Whips.System.Poisson 50.0;
              seed = 3 }
        in
        let v = Whips.System.verdict result in
        Alcotest.(check bool) "complete" true v.complete;
        (* Spot-check a rollup value at the end. *)
        let expected =
          Relation.contents
            (Query.View.materialize
               (Source.Sources.current result.sources)
               (List.hd scen.views))
        in
        Alcotest.check Helpers.bag "qty_by_store" expected
          (Whips.System.view_contents result "qty_by_store"));
    case "aggregate views with batching managers stay strong" (fun () ->
        let scen = Workload.Scenarios.sales_rollup in
        let result =
          Whips.System.run
            { (Whips.System.default scen) with
              vm_kind = Whips.System.Batching_vm;
              arrival = Whips.System.Poisson 150.0;
              seed = 9 }
        in
        let v = Whips.System.verdict result in
        Alcotest.(check bool) "strong" true v.strongly_consistent) ]
