open Relational
open Query

let case = Helpers.case

let rs = Helpers.int_schema [ "A"; "B" ]

let ss = Helpers.int_schema [ "B"; "C" ]

let db =
  Database.of_list
    [ ("R", Helpers.rel rs [ [ 1; 2 ]; [ 7; 2 ]; [ 9; 9 ] ]);
      ("S", Helpers.rel ss [ [ 2; 3 ]; [ 2; 4 ]; [ 5; 5 ] ]) ]

let eval e = Relation.contents (Eval.eval db e)

let tests =
  [ case "base returns the relation" (fun () ->
        Alcotest.check Helpers.bag "R"
          (Helpers.bag_of [ [ 1; 2 ]; [ 7; 2 ]; [ 9; 9 ] ])
          (eval (Algebra.base "R")));
    case "select filters" (fun () ->
        Alcotest.check Helpers.bag "B=2"
          (Helpers.bag_of [ [ 1; 2 ]; [ 7; 2 ] ])
          (eval Algebra.(select (Pred.eq "B" (Value.Int 2)) (base "R"))));
    case "project with duplicate merging (bag semantics)" (fun () ->
        Alcotest.check Helpers.bag "pi B"
          (Bag.add ~count:2 (Helpers.ints [ 2 ])
             (Bag.of_list [ Helpers.ints [ 9 ] ]))
          (eval Algebra.(project [ "B" ] (base "R"))));
    case "natural join on shared attribute" (fun () ->
        Alcotest.check Helpers.bag "R|><|S"
          (Helpers.bag_of [ [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ 7; 2; 3 ]; [ 7; 2; 4 ] ])
          (eval Algebra.(join (base "R") (base "S"))));
    case "join multiplicities multiply" (fun () ->
        let db =
          Database.of_list
            [ ("R", Relation.with_contents (Relation.create rs)
                 (Bag.add ~count:2 (Helpers.ints [ 1; 2 ]) Bag.empty));
              ("S", Relation.with_contents (Relation.create ss)
                 (Bag.add ~count:3 (Helpers.ints [ 2; 3 ]) Bag.empty)) ]
        in
        let out = Relation.contents (Eval.eval db Algebra.(join (base "R") (base "S"))) in
        Alcotest.(check int) "6 copies" 6 (Bag.count out (Helpers.ints [ 1; 2; 3 ])));
    case "join with empty side is empty" (fun () ->
        let db' = Database.add "S" (Relation.create ss) db in
        Alcotest.check Helpers.bag "empty" Bag.empty
          (Relation.contents (Eval.eval db' Algebra.(join (base "R") (base "S")))));
    case "union adds" (fun () ->
        let e = Algebra.(union (project [ "B" ] (base "R")) (project [ "B" ] (base "S"))) in
        let out = eval e in
        Alcotest.(check int) "B=2 thrice" 4 (Bag.count out (Helpers.ints [ 2 ])));
    case "rename leaves contents" (fun () ->
        Alcotest.check Helpers.bag "same tuples"
          (eval (Algebra.base "R"))
          (eval Algebra.(rename [ ("A", "X") ] (base "R"))));
    case "rename enables self-join on different attrs" (fun () ->
        (* R joined with rename(S.C->D) still joins on B *)
        let e = Algebra.(join (base "R") (rename [ ("C", "Z") ] (base "S"))) in
        let out = eval e in
        Alcotest.(check int) "4 matches" 4 (Bag.cardinal out));
    case "eval example 1 (Table 1)" (fun () ->
        let scen = Workload.Scenarios.example1 in
        let srcs = Workload.Scenarios.sources scen in
        let v1 = List.nth scen.views 0 and v2 = List.nth scen.views 1 in
        (* t0: both views empty *)
        Alcotest.(check bool) "V1 empty" true
          (Relation.is_empty (Query.View.materialize (Source.Sources.current srcs) v1));
        let _ = Workload.Scenarios.run_script scen srcs in
        (* After inserting [2,3] into S *)
        Alcotest.check Helpers.bag "V1 = {[1,2,3]}"
          (Helpers.bag_of [ [ 1; 2; 3 ] ])
          (Relation.contents (Query.View.materialize (Source.Sources.current srcs) v1));
        Alcotest.check Helpers.bag "V2 = {[2,3,4]}"
          (Helpers.bag_of [ [ 2; 3; 4 ] ])
          (Relation.contents (Query.View.materialize (Source.Sources.current srcs) v2)));
    case "eval missing relation raises" (fun () ->
        Alcotest.check_raises "unknown" (Database.Unknown_relation "Z") (fun () ->
            ignore (eval (Algebra.base "Z"))));
    case "join_counted with negative counts" (fun () ->
        let out =
          Eval.join_counted rs ss
            [ (Helpers.ints [ 1; 2 ], -1) ]
            [ (Helpers.ints [ 2; 3 ], 2) ]
        in
        Alcotest.(check (list (pair Helpers.tuple int))) "-2"
          [ (Helpers.ints [ 1; 2; 3 ], -2) ]
          out) ]
