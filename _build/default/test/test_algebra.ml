open Relational
open Query

let case = Helpers.case

let lookup name =
  match name with
  | "R" -> Helpers.int_schema [ "A"; "B" ]
  | "S" -> Helpers.int_schema [ "B"; "C" ]
  | "T" -> Helpers.int_schema [ "C"; "D" ]
  | other -> raise (Database.Unknown_relation other)

let tests =
  [ case "base_relations dedupes in order" (fun () ->
        let e = Algebra.(join (join (base "R") (base "S")) (base "R")) in
        Alcotest.(check (list string)) "RS" [ "R"; "S" ] (Algebra.base_relations e));
    case "schema_of base" (fun () ->
        Alcotest.check Helpers.schema "R" (lookup "R")
          (Algebra.schema_of lookup (Algebra.base "R")));
    case "schema_of join merges shared attrs" (fun () ->
        Alcotest.(check (list string)) "ABC" [ "A"; "B"; "C" ]
          (Schema.names (Algebra.schema_of lookup Algebra.(join (base "R") (base "S")))));
    case "schema_of three-way join" (fun () ->
        Alcotest.(check (list string)) "ABCD" [ "A"; "B"; "C"; "D" ]
          (Schema.names
             (Algebra.schema_of lookup
                Algebra.(join_all [ base "R"; base "S"; base "T" ]))));
    case "schema_of project" (fun () ->
        Alcotest.(check (list string)) "B" [ "B" ]
          (Schema.names
             (Algebra.schema_of lookup Algebra.(project [ "B" ] (base "R")))));
    case "schema_of select validates predicate attrs" (fun () ->
        Alcotest.check_raises "unknown" (Schema.Unknown_attribute "Z") (fun () ->
            ignore
              (Algebra.schema_of lookup
                 Algebra.(select (Pred.eq "Z" (Value.Int 1)) (base "R")))));
    case "schema_of union requires equal schemas" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Algebra.schema_of lookup Algebra.(union (base "R") (base "S"))
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "schema_of union of compatible renames" (fun () ->
        let e =
          Algebra.(
            union (base "R") (rename [ ("B", "A"); ("C", "B") ] (base "S")))
        in
        Alcotest.(check (list string)) "AB" [ "A"; "B" ]
          (Schema.names (Algebra.schema_of lookup e)));
    case "join_all rejects empty" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Algebra.join_all [] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "depth and size" (fun () ->
        let e = Algebra.(select Pred.True (join (base "R") (base "S"))) in
        Alcotest.(check int) "depth" 3 (Algebra.depth e);
        Alcotest.(check int) "size" 4 (Algebra.size e));
    case "to_string mentions operators" (fun () ->
        let s = Algebra.to_string Algebra.(select Pred.True (base "R")) in
        Alcotest.(check bool) "sigma" true
          (String.length s > 0 && String.sub s 0 5 = "sigma")) ]
