open Relational
open Query

let case = Helpers.case

let rs = Helpers.int_schema [ "A"; "B" ]

let ss = Helpers.int_schema [ "B"; "C" ]

let initial =
  Database.of_list
    [ ("R", Helpers.rel rs [ [ 1; 2 ] ]); ("S", Helpers.rel ss [ [ 2; 3 ] ]) ]

let view = View.make "V" Algebra.(join (base "R") (base "S"))

let txn id u = Update.Transaction.single ~id ~source:"s" u

let insert_s id tuple = txn id (Update.insert "S" (Helpers.ints tuple))

(* Apply a stream of emitted action lists to the initially materialized
   view and compare against recomputation. *)
let replay als =
  List.fold_left
    (fun bag al -> Action_list.apply al bag)
    (Relation.contents (View.materialize initial view))
    als

let expected db = Relation.contents (View.materialize db view)

let tests =
  [ case "complete VM: one list per update, correct deltas" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let vm =
          Viewmgr.Complete_vm.create ~engine
            ~compute_latency:(fun ~batch:_ -> 0.01)
            ~initial ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        vm.Viewmgr.Vm.receive (insert_s 1 [ 2; 9 ]);
        vm.Viewmgr.Vm.receive (insert_s 2 [ 2; 7 ]);
        Sim.Engine.run engine;
        Alcotest.(check int) "two lists" 2 (List.length !out);
        Alcotest.(check (list int)) "states 1,2" [ 1; 2 ]
          (List.map (fun (al : Action_list.t) -> al.state) !out);
        let final =
          Database.apply_transaction
            (Database.apply_transaction initial (insert_s 1 [ 2; 9 ]))
            (insert_s 2 [ 2; 7 ])
        in
        Alcotest.check Helpers.bag "replay matches recompute" (expected final)
          (replay !out);
        Alcotest.(check int) "no pending" 0 (vm.Viewmgr.Vm.pending ()));
    case "complete VM level" (fun () ->
        let engine = Sim.Engine.create () in
        let vm =
          Viewmgr.Complete_vm.create ~engine
            ~compute_latency:(fun ~batch:_ -> 0.0)
            ~initial ~view ~emit:(fun _ -> ()) ()
        in
        Alcotest.(check bool) "complete" true
          (vm.Viewmgr.Vm.level = Viewmgr.Vm.Complete));
    case "batching VM: back-to-back updates become one list" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let vm =
          Viewmgr.Batching_vm.create ~engine
            ~compute_latency:(fun ~batch:_ -> 1.0)
            ~initial ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        (* First update starts service; the next two queue and batch. *)
        vm.Viewmgr.Vm.receive (insert_s 1 [ 2; 9 ]);
        vm.Viewmgr.Vm.receive (insert_s 2 [ 2; 7 ]);
        vm.Viewmgr.Vm.receive (insert_s 3 [ 2; 5 ]);
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "states 1 then 3" [ 1; 3 ]
          (List.map (fun (al : Action_list.t) -> al.state) !out);
        let final =
          List.fold_left Database.apply_transaction initial
            [ insert_s 1 [ 2; 9 ]; insert_s 2 [ 2; 7 ]; insert_s 3 [ 2; 5 ] ]
        in
        Alcotest.check Helpers.bag "replay matches" (expected final) (replay !out));
    case "batching VM honours max_batch" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let vm =
          Viewmgr.Batching_vm.create ~engine
            ~compute_latency:(fun ~batch:_ -> 1.0)
            ~max_batch:1 ~initial ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        vm.Viewmgr.Vm.receive (insert_s 1 [ 2; 9 ]);
        vm.Viewmgr.Vm.receive (insert_s 2 [ 2; 7 ]);
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "one per update" [ 1; 2 ]
          (List.map (fun (al : Action_list.t) -> al.state) !out));
    case "complete-N VM waits for N then emits one list" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let vm =
          Viewmgr.Complete_n_vm.create ~engine
            ~compute_latency:(fun ~batch:_ -> 0.01)
            ~n:2 ~initial ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        vm.Viewmgr.Vm.receive (insert_s 1 [ 2; 9 ]);
        Sim.Engine.run engine;
        Alcotest.(check int) "waiting" 0 (List.length !out);
        vm.Viewmgr.Vm.receive (insert_s 2 [ 2; 7 ]);
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "one list at state 2" [ 2 ]
          (List.map (fun (al : Action_list.t) -> al.state) !out));
    case "complete-N VM flush releases the partial tail" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let vm =
          Viewmgr.Complete_n_vm.create ~engine
            ~compute_latency:(fun ~batch:_ -> 0.01)
            ~n:3 ~initial ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        vm.Viewmgr.Vm.receive (insert_s 1 [ 2; 9 ]);
        Sim.Engine.run engine;
        vm.Viewmgr.Vm.flush ();
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "flushed" [ 1 ]
          (List.map (fun (al : Action_list.t) -> al.state) !out));
    case "periodic VM refreshes with full contents" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let vm =
          Viewmgr.Periodic_vm.create ~engine ~period:1.0
            ~compute_latency:(fun ~batch:_ -> 0.0)
            ~initial ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        vm.Viewmgr.Vm.receive (insert_s 1 [ 2; 9 ]);
        vm.Viewmgr.Vm.receive (insert_s 2 [ 2; 7 ]);
        Sim.Engine.run engine;
        (match !out with
        | [ al ] ->
          Alcotest.(check int) "state 2" 2 al.state;
          let final =
            List.fold_left Database.apply_transaction initial
              [ insert_s 1 [ 2; 9 ]; insert_s 2 [ 2; 7 ] ]
          in
          Alcotest.check Helpers.bag "refresh carries V(ss_2)" (expected final)
            (Action_list.apply al Bag.empty)
        | _ -> Alcotest.fail "expected exactly one refresh");
        Alcotest.(check bool) "refresh payload" true
          (match (List.hd !out).payload with
          | Action_list.Refresh _ -> true
          | Action_list.Delta _ -> false));
    case "periodic VM emits nothing when idle" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let _vm =
          Viewmgr.Periodic_vm.create ~engine ~period:0.5
            ~compute_latency:(fun ~batch:_ -> 0.0)
            ~initial ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        Sim.Engine.run engine;
        Alcotest.(check int) "silent" 0 (List.length !out));
    case "convergent VM may reorder but deltas sum correctly" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let delays = ref [ 0.9; 0.1 ] in
        let vm =
          Viewmgr.Convergent_vm.create ~engine
            ~emit_delay:(fun () ->
              match !delays with
              | d :: rest ->
                delays := rest;
                d
              | [] -> 0.0)
            ~initial ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        vm.Viewmgr.Vm.receive (insert_s 1 [ 2; 9 ]);
        vm.Viewmgr.Vm.receive (insert_s 2 [ 2; 7 ]);
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "out of order" [ 2; 1 ]
          (List.map (fun (al : Action_list.t) -> al.state) !out);
        let final =
          List.fold_left Database.apply_transaction initial
            [ insert_s 1 [ 2; 9 ]; insert_s 2 [ 2; 7 ] ]
        in
        Alcotest.check Helpers.bag "still converges" (expected final)
          (replay !out));
    case "strobe VM: versioned answer covers intertwined updates" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let db = ref initial in
        let version = ref 0 in
        let query expr k =
          (* Answer after 1s, reflecting the then-current source state. *)
          Sim.Engine.schedule_after engine 1.0 (fun () ->
              k (Relation.contents (Eval.eval !db expr), !version))
        in
        let vm =
          Viewmgr.Strobe_vm.create ~engine ~query ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        Alcotest.(check bool) "wants ticks" true vm.Viewmgr.Vm.needs_ticks;
        let apply id u =
          db := Database.apply_transaction !db (txn id u);
          version := id;
          vm.Viewmgr.Vm.receive (txn id u)
        in
        (* U1 arrives; the query it triggers will be answered only after U2
           also committed and reached the manager. *)
        apply 1 (Update.insert "S" (Helpers.ints [ 2; 9 ]));
        apply 2 (Update.insert "S" (Helpers.ints [ 2; 7 ]));
        Sim.Engine.run engine;
        (match !out with
        | [ al ] ->
          Alcotest.(check int) "one batched refresh at state 2" 2 al.state;
          Alcotest.check Helpers.bag "contents = V(ss_2)" (expected !db)
            (Action_list.apply al Bag.empty)
        | als ->
          Alcotest.failf "expected one refresh, got %d" (List.length als));
        Alcotest.(check int) "drained" 0 (vm.Viewmgr.Vm.pending ()));
    case "strobe VM ignores irrelevant ticks" (fun () ->
        let engine = Sim.Engine.create () in
        let out = ref [] in
        let query _ k =
          Sim.Engine.schedule_after engine 0.1 (fun () -> k (Bag.empty, 1))
        in
        let vm =
          Viewmgr.Strobe_vm.create ~engine ~query ~view
            ~emit:(fun al -> out := !out @ [ al ])
            ()
        in
        (* A tick about an unrelated relation must not trigger a query. *)
        vm.Viewmgr.Vm.receive
          (Update.Transaction.single ~id:1 ~source:"s"
             (Update.insert "Z" (Helpers.ints [ 0 ])));
        Sim.Engine.run engine;
        Alcotest.(check int) "no output" 0 (List.length !out)) ]
