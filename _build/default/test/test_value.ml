open Relational

let case = Helpers.case

let tests =
  [ case "compare: equal ints" (fun () ->
        Alcotest.(check int) "eq" 0 (Value.compare (Int 3) (Int 3)));
    case "compare: int ordering" (fun () ->
        Alcotest.(check bool) "lt" true (Value.compare (Int 1) (Int 2) < 0));
    case "compare: strings" (fun () ->
        Alcotest.(check bool) "lt" true
          (Value.compare (String "a") (String "b") < 0));
    case "compare: floats" (fun () ->
        Alcotest.(check bool) "gt" true
          (Value.compare (Float 2.5) (Float 1.5) > 0));
    case "compare: cross-type uses constructor rank" (fun () ->
        Alcotest.(check bool) "null < bool" true
          (Value.compare Null (Bool false) < 0);
        Alcotest.(check bool) "bool < int" true
          (Value.compare (Bool true) (Int 0) < 0);
        Alcotest.(check bool) "int < float" true
          (Value.compare (Int 100) (Float 0.0) < 0);
        Alcotest.(check bool) "float < string" true
          (Value.compare (Float 9.9) (String "") < 0));
    case "equal agrees with compare" (fun () ->
        Alcotest.(check bool) "eq" true (Value.equal (String "x") (String "x"));
        Alcotest.(check bool) "ne" false (Value.equal (Int 1) (Float 1.0)));
    case "type_of" (fun () ->
        Alcotest.(check bool) "null" true (Value.type_of Null = None);
        Alcotest.(check bool) "int" true (Value.type_of (Int 1) = Some Int_ty));
    case "conforms: null conforms to everything" (fun () ->
        List.iter
          (fun ty -> Alcotest.(check bool) "null" true (Value.conforms Null ty))
          [ Value.Bool_ty; Value.Int_ty; Value.Float_ty; Value.String_ty ]);
    case "conforms: mismatch rejected" (fun () ->
        Alcotest.(check bool) "int/string" false
          (Value.conforms (Int 1) Value.String_ty));
    case "to_string formats" (fun () ->
        Alcotest.(check string) "int" "7" (Value.to_string (Int 7));
        Alcotest.(check string) "null" "null" (Value.to_string Null);
        Alcotest.(check string) "string quoted" "\"hi\""
          (Value.to_string (String "hi")));
    Helpers.qcheck "compare is reflexive"
      Helpers.Gen.small_value
      (fun v -> Value.compare v v = 0);
    Helpers.qcheck "compare is antisymmetric"
      QCheck2.Gen.(pair Helpers.Gen.small_value Helpers.Gen.small_value)
      (fun (a, b) ->
        let c = Value.compare a b and c' = Value.compare b a in
        (c = 0 && c' = 0) || (c > 0 && c' < 0) || (c < 0 && c' > 0));
    Helpers.qcheck "compare is transitive"
      QCheck2.Gen.(
        triple Helpers.Gen.small_value Helpers.Gen.small_value
          Helpers.Gen.small_value)
      (fun (a, b, c) ->
        if Value.compare a b <= 0 && Value.compare b c <= 0 then
          Value.compare a c <= 0
        else true);
    Helpers.qcheck "equal values hash equally"
      QCheck2.Gen.(pair Helpers.Gen.small_value Helpers.Gen.small_value)
      (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b) ]
