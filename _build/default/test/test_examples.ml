(* Golden reproduction of Table 1 (Example 1) through the full system: the
   merge process must hold V1's change until V2's arrives, so no recorded
   warehouse state ever shows V1 updated without V2 (the inconsistency the
   paper's example exhibits at time t2). *)

open Relational

let case = Helpers.case

let table1_contents () =
  let scen = Workload.Scenarios.example1 in
  let result = Whips.System.run { (Whips.System.default scen) with seed = 2 } in
  let states = Warehouse.Store.states result.store in
  (result, states)

let tests =
  [ case "table 1: warehouse never shows V1 new / V2 old" (fun () ->
        let _, states = table1_contents () in
        let v1_new = Helpers.bag_of [ [ 1; 2; 3 ] ] in
        let v2_new = Helpers.bag_of [ [ 2; 3; 4 ] ] in
        List.iter
          (fun ws ->
            let v1 = Relation.contents (Database.find ws "V1") in
            let v2 = Relation.contents (Database.find ws "V2") in
            let v1_updated = Bag.equal v1 v1_new in
            let v2_updated = Bag.equal v2 v2_new in
            Alcotest.(check bool) "updated together" true
              (v1_updated = v2_updated))
          states);
    case "table 1: exactly two warehouse states (t0 and after U1)" (fun () ->
        let _, states = table1_contents () in
        Alcotest.(check int) "ws0 and ws1" 2 (List.length states));
    case "table 1: final contents match the paper's last row" (fun () ->
        let result, _ = table1_contents () in
        Alcotest.check Helpers.bag "V1" (Helpers.bag_of [ [ 1; 2; 3 ] ])
          (Whips.System.view_contents result "V1");
        Alcotest.check Helpers.bag "V2" (Helpers.bag_of [ [ 2; 3; 4 ] ])
          (Whips.System.view_contents result "V2"));
    case "table 1 with a broken merge shows the paper's inconsistency"
      (fun () ->
        (* With the pass-through merge, some run order exposes a state
           where exactly one of the two views reflects the insert —
           the situation of Table 1 at time t2. *)
        let exposed = ref false in
        List.iter
          (fun seed ->
            let cfg =
              { (Whips.System.default Workload.Scenarios.example1) with
                merge_kind = Whips.System.Force_passthrough;
                seed }
            in
            let result = Whips.System.run cfg in
            List.iter
              (fun ws ->
                let v1 = Relation.contents (Database.find ws "V1") in
                let v2 = Relation.contents (Database.find ws "V2") in
                let v1_updated = Bag.equal v1 (Helpers.bag_of [ [ 1; 2; 3 ] ]) in
                let v2_updated = Bag.equal v2 (Helpers.bag_of [ [ 2; 3; 4 ] ]) in
                if v1_updated <> v2_updated then exposed := true)
              (Warehouse.Store.states result.store))
          [ 1; 2; 3; 4; 5 ];
        Alcotest.(check bool) "t2-style state observed" true !exposed);
    case "bank: transfer appears atomically in all views" (fun () ->
        let scen = Workload.Scenarios.bank in
        let result = Whips.System.run { (Whips.System.default scen) with seed = 3 } in
        (* In every recorded warehouse state, customer 2's checking
           balance in `linked` and in `checking_copy` agree — the paper's
           customer-inquiry motivation. *)
        List.iter
          (fun ws ->
            let linked = Relation.contents (Database.find ws "linked") in
            let copy = Relation.contents (Database.find ws "checking_copy") in
            let balance_in bag pos =
              List.filter_map
                (fun t ->
                  if Value.equal (Tuple.get t 0) (Value.Int 2) then
                    Some (Tuple.get t pos)
                  else None)
                (Bag.to_list bag)
            in
            match (balance_in linked 1, balance_in copy 1) with
            | [ a ], [ b ] ->
              Alcotest.check Helpers.value "balances agree" a b
            | _ -> Alcotest.fail "customer 2 missing")
          (Warehouse.Store.states result.store)) ]
