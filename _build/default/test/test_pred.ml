open Relational
open Query

let case = Helpers.case

let s = Helpers.int_schema [ "A"; "B" ]

let t = Helpers.ints [ 3; 7 ]

let ev p = Pred.eval s p t

let tests =
  [ case "true / false" (fun () ->
        Alcotest.(check bool) "true" true (ev Pred.True);
        Alcotest.(check bool) "false" false (ev Pred.False));
    case "eq on attribute" (fun () ->
        Alcotest.(check bool) "eq" true (ev (Pred.eq "A" (Value.Int 3)));
        Alcotest.(check bool) "ne" false (ev (Pred.eq "A" (Value.Int 4))));
    case "orderings" (fun () ->
        Alcotest.(check bool) "lt" true (ev (Pred.lt "A" (Value.Int 4)));
        Alcotest.(check bool) "le" true (ev (Pred.le "A" (Value.Int 3)));
        Alcotest.(check bool) "gt" true (ev (Pred.gt "B" (Value.Int 3)));
        Alcotest.(check bool) "ge" false (ev (Pred.ge "A" (Value.Int 4))));
    case "attr_eq compares two attributes" (fun () ->
        Alcotest.(check bool) "ne" false (ev (Pred.attr_eq "A" "B"));
        Alcotest.(check bool) "eq self" true (ev (Pred.attr_eq "A" "A")));
    case "connectives" (fun () ->
        let p = Pred.eq "A" (Value.Int 3) and q = Pred.eq "B" (Value.Int 0) in
        Alcotest.(check bool) "and" false (ev (Pred.And (p, q)));
        Alcotest.(check bool) "or" true (ev (Pred.Or (p, q)));
        Alcotest.(check bool) "not" true (ev (Pred.Not q)));
    case "conj/disj of empty lists" (fun () ->
        Alcotest.(check bool) "conj [] = true" true (ev (Pred.conj []));
        Alcotest.(check bool) "disj [] = false" false (ev (Pred.disj [])));
    case "conj/disj combine" (fun () ->
        Alcotest.(check bool) "conj" true
          (ev (Pred.conj [ Pred.gt "A" (Value.Int 0); Pred.gt "B" (Value.Int 0) ]));
        Alcotest.(check bool) "disj" true
          (ev (Pred.disj [ Pred.False; Pred.eq "A" (Value.Int 3) ])));
    case "null comparisons are false except <>" (fun () ->
        let tn = Tuple.of_list [ Value.Null; Value.Int 7 ] in
        Alcotest.(check bool) "eq null" false
          (Pred.eval s (Pred.eq "A" (Value.Int 3)) tn);
        Alcotest.(check bool) "lt null" false
          (Pred.eval s (Pred.lt "A" (Value.Int 3)) tn);
        Alcotest.(check bool) "ne null" true
          (Pred.eval s (Pred.Cmp (Pred.Ne, Pred.Attr "A", Pred.Const (Value.Int 3))) tn));
    case "unknown attribute raises" (fun () ->
        Alcotest.check_raises "unknown" (Schema.Unknown_attribute "Z") (fun () ->
            ignore (ev (Pred.eq "Z" (Value.Int 0)))));
    case "attrs lists in first-mention order without dups" (fun () ->
        let p =
          Pred.And
            ( Pred.Or (Pred.eq "B" (Value.Int 1), Pred.eq "A" (Value.Int 2)),
              Pred.eq "B" (Value.Int 3) )
        in
        Alcotest.(check (list string)) "BA" [ "B"; "A" ] (Pred.attrs p));
    case "const-const comparison" (fun () ->
        Alcotest.(check bool) "1<2" true
          (ev (Pred.Cmp (Pred.Lt, Pred.Const (Value.Int 1), Pred.Const (Value.Int 2))))) ]
