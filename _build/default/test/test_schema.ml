open Relational

let case = Helpers.case

let rs = Helpers.int_schema [ "A"; "B" ]

let ss = Helpers.int_schema [ "B"; "C" ]

let tests =
  [ case "make and names" (fun () ->
        Alcotest.(check (list string)) "names" [ "A"; "B" ] (Schema.names rs));
    case "make rejects duplicates" (fun () ->
        Alcotest.check_raises "dup" (Schema.Duplicate_attribute "A") (fun () ->
            ignore (Helpers.int_schema [ "A"; "A" ])));
    case "arity" (fun () -> Alcotest.(check int) "2" 2 (Schema.arity rs));
    case "mem" (fun () ->
        Alcotest.(check bool) "has A" true (Schema.mem rs "A");
        Alcotest.(check bool) "no C" false (Schema.mem rs "C"));
    case "index_of" (fun () ->
        Alcotest.(check int) "B at 1" 1 (Schema.index_of rs "B"));
    case "index_of unknown raises" (fun () ->
        Alcotest.check_raises "unknown" (Schema.Unknown_attribute "Z")
          (fun () -> ignore (Schema.index_of rs "Z")));
    case "type_of" (fun () ->
        Alcotest.(check bool) "int" true (Schema.type_of rs "A" = Value.Int_ty));
    case "equal" (fun () ->
        Alcotest.(check bool) "same" true
          (Schema.equal rs (Helpers.int_schema [ "A"; "B" ]));
        Alcotest.(check bool) "order matters" false
          (Schema.equal rs (Helpers.int_schema [ "B"; "A" ])));
    case "project keeps given order" (fun () ->
        Alcotest.(check (list string)) "proj" [ "B"; "A" ]
          (Schema.names (Schema.project rs [ "B"; "A" ])));
    case "project unknown raises" (fun () ->
        Alcotest.check_raises "unknown" (Schema.Unknown_attribute "Z")
          (fun () -> ignore (Schema.project rs [ "Z" ])));
    case "common" (fun () ->
        Alcotest.(check (list string)) "B" [ "B" ] (Schema.common rs ss);
        Alcotest.(check (list string)) "none" []
          (Schema.common rs (Helpers.int_schema [ "X" ])));
    case "join: shared attrs appear once" (fun () ->
        Alcotest.(check (list string)) "ABС" [ "A"; "B"; "C" ]
          (Schema.names (Schema.join rs ss)));
    case "join: conflicting types rejected" (fun () ->
        let other = Schema.make [ ("B", Value.String_ty) ] in
        Alcotest.(check bool) "raises" true
          (match Schema.join rs other with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "rename" (fun () ->
        let renamed = Schema.rename rs [ ("A", "X") ] in
        Alcotest.(check (list string)) "renamed" [ "X"; "B" ]
          (Schema.names renamed));
    case "rename unknown source raises" (fun () ->
        Alcotest.check_raises "unknown" (Schema.Unknown_attribute "Z")
          (fun () -> ignore (Schema.rename rs [ ("Z", "Y") ])));
    case "rename clash raises" (fun () ->
        Alcotest.check_raises "clash" (Schema.Duplicate_attribute "B")
          (fun () -> ignore (Schema.rename rs [ ("A", "B") ])));
    case "compare is a total order consistent with equal" (fun () ->
        Alcotest.(check int) "eq" 0
          (Schema.compare rs (Helpers.int_schema [ "A"; "B" ]));
        Alcotest.(check bool) "ne" true (Schema.compare rs ss <> 0)) ]
