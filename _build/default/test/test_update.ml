open Relational

let case = Helpers.case

let t1 = Helpers.ints [ 1; 2 ]

let t2 = Helpers.ints [ 3; 4 ]

let tests =
  [ case "insert delta" (fun () ->
        Alcotest.check Helpers.signed_bag "+1"
          (Signed_bag.singleton t1 1)
          (Update.to_delta (Update.insert "R" t1)));
    case "delete delta" (fun () ->
        Alcotest.check Helpers.signed_bag "-1"
          (Signed_bag.singleton t1 (-1))
          (Update.to_delta (Update.delete "R" t1)));
    case "modify delta" (fun () ->
        let d = Update.to_delta (Update.modify "R" ~before:t1 ~after:t2) in
        Alcotest.(check int) "-1 before" (-1) (Signed_bag.count d t1);
        Alcotest.(check int) "+1 after" 1 (Signed_bag.count d t2));
    case "modify to same tuple is a zero delta" (fun () ->
        Alcotest.(check bool) "zero" true
          (Signed_bag.is_zero
             (Update.to_delta (Update.modify "R" ~before:t1 ~after:t1))));
    case "transaction relations dedupe in order" (fun () ->
        let txn =
          Update.Transaction.make ~id:1 ~source:"s"
            [ Update.insert "R" t1; Update.insert "S" t2; Update.delete "R" t1 ]
        in
        Alcotest.(check (list string)) "RS" [ "R"; "S" ]
          (Update.Transaction.relations txn));
    case "delta_for combines per relation" (fun () ->
        let txn =
          Update.Transaction.make ~id:1 ~source:"s"
            [ Update.insert "R" t1; Update.insert "R" t1; Update.delete "S" t2 ]
        in
        Alcotest.(check int) "+2 on R" 2
          (Signed_bag.count (Update.Transaction.delta_for txn "R") t1);
        Alcotest.(check int) "-1 on S" (-1)
          (Signed_bag.count (Update.Transaction.delta_for txn "S") t2);
        Alcotest.(check bool) "zero on T" true
          (Signed_bag.is_zero (Update.Transaction.delta_for txn "T")));
    case "single builds a one-update transaction" (fun () ->
        let txn = Update.Transaction.single ~id:5 ~source:"s" (Update.insert "R" t1) in
        Alcotest.(check int) "id" 5 txn.Update.Transaction.id;
        Alcotest.(check int) "one update" 1
          (List.length txn.Update.Transaction.updates));
    case "insert then delete in one transaction cancels" (fun () ->
        let txn =
          Update.Transaction.make ~id:1 ~source:"s"
            [ Update.insert "R" t1; Update.delete "R" t1 ]
        in
        Alcotest.(check bool) "zero" true
          (Signed_bag.is_zero (Update.Transaction.delta_for txn "R"))) ]
