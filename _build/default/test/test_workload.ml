open Relational

let case = Helpers.case

let tests =
  [ case "named scenarios all load and execute" (fun () ->
        List.iter
          (fun scen ->
            let srcs = Workload.Scenarios.sources scen in
            let txns = Workload.Scenarios.run_script scen srcs in
            Alcotest.(check int)
              (scen.Workload.Scenarios.name ^ " script length")
              (List.length scen.script) (List.length txns);
            (* Every view must be evaluable at every source state. *)
            List.iter
              (fun db ->
                List.iter
                  (fun v -> ignore (Query.View.materialize db v))
                  scen.views)
              (Source.Sources.states srcs))
          Workload.Scenarios.all);
    case "example1 reproduces Table 1 exactly" (fun () ->
        let scen = Workload.Scenarios.example1 in
        let srcs = Workload.Scenarios.sources scen in
        let v1 = List.nth scen.views 0 and v2 = List.nth scen.views 1 in
        let at i v =
          Relation.contents (Query.View.materialize (Source.Sources.state srcs i) v)
        in
        let _ = Workload.Scenarios.run_script scen srcs in
        (* t0 row of Table 1 *)
        Alcotest.check Helpers.bag "V1(ss0) empty" Bag.empty (at 0 v1);
        Alcotest.check Helpers.bag "V2(ss0) empty" Bag.empty (at 0 v2);
        (* t1..t3: after inserting [2,3] into S *)
        Alcotest.check Helpers.bag "V1(ss1) = {[1,2,3]}"
          (Helpers.bag_of [ [ 1; 2; 3 ] ])
          (at 1 v1);
        Alcotest.check Helpers.bag "V2(ss1) = {[2,3,4]}"
          (Helpers.bag_of [ [ 2; 3; 4 ] ])
          (at 1 v2));
    case "bank scenario has a multi-source transfer" (fun () ->
        let scen = Workload.Scenarios.bank in
        let srcs = Workload.Scenarios.sources scen in
        let txns = Workload.Scenarios.run_script scen srcs in
        let multi =
          List.filter
            (fun (t : Update.Transaction.t) ->
              List.length (Update.Transaction.relations t) > 1)
            txns
        in
        Alcotest.(check int) "two transfers" 2 (List.length multi));
    case "auxiliary scenario: RS |><| ST == V at every state" (fun () ->
        (* The MVC motivation of [12]: the primary view recomputed from
           mutually consistent auxiliary views equals the direct
           definition. *)
        let scen = Workload.Scenarios.auxiliary in
        let srcs = Workload.Scenarios.sources scen in
        let _ = Workload.Scenarios.run_script scen srcs in
        List.iter
          (fun db ->
            let rs = Query.View.materialize db (List.nth scen.views 0) in
            let st = Query.View.materialize db (List.nth scen.views 1) in
            let v = Query.View.materialize db (List.nth scen.views 2) in
            let joined =
              Query.Eval.eval
                (Database.of_list [ ("RS", rs); ("ST", st) ])
                Query.Algebra.(join (base "RS") (base "ST"))
            in
            Alcotest.(check bool) "equal contents" true
              (Relation.equal_contents joined v))
          (Source.Sources.states srcs));
    case "generator is deterministic per seed" (fun () ->
        let cfg = Workload.Generator.default in
        let a = Workload.Generator.generate cfg in
        let b = Workload.Generator.generate cfg in
        Alcotest.(check int) "same script length" (List.length a.script)
          (List.length b.script);
        let flat s =
          List.map
            (fun us -> List.map (fun u -> Fmt.str "%a" Update.pp u) us)
            s.Workload.Scenarios.script
        in
        Alcotest.(check (list (list string))) "same script" (flat a) (flat b));
    case "different seeds differ" (fun () ->
        let a = Workload.Generator.generate Workload.Generator.default in
        let b =
          Workload.Generator.generate { Workload.Generator.default with seed = 43 }
        in
        let flat s =
          List.concat_map
            (fun us -> List.map (fun u -> Fmt.str "%a" Update.pp u) us)
            s.Workload.Scenarios.script
        in
        Alcotest.(check bool) "differ" true (flat a <> flat b));
    case "generated scripts execute cleanly" (fun () ->
        List.iter
          (fun seed ->
            let scen =
              Workload.Generator.generate
                { Workload.Generator.default with seed; multi_update_prob = 0.3 }
            in
            let srcs = Workload.Scenarios.sources scen in
            let _ = Workload.Scenarios.run_script scen srcs in
            List.iter
              (fun v ->
                ignore
                  (Query.View.materialize (Source.Sources.current srcs) v))
              scen.views)
          [ 1; 2; 3; 4; 5 ]);
    case "generated deletes target live tuples" (fun () ->
        (* Execute the script and check no delete was a silent no-op: the
           cardinality change matches the delta size. *)
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with seed = 11; n_transactions = 50 }
        in
        let srcs = Workload.Scenarios.sources scen in
        List.iter
          (fun updates ->
            let db_before = Source.Sources.current srcs in
            let txn = Source.Sources.execute srcs updates in
            List.iter
              (fun (u : Update.t) ->
                match u.op with
                | Update.Delete tup ->
                  Alcotest.(check bool) "tuple was present" true
                    (Relation.mem (Database.find db_before u.relation) tup)
                | Update.Insert _ | Update.Modify _ -> ())
              txn.updates)
          scen.script);
    case "generator validates config" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Workload.Generator.generate
               { Workload.Generator.default with n_views = 0 }
           with
          | exception Invalid_argument _ -> true
          | _ -> false)) ]
