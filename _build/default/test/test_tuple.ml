open Relational

let case = Helpers.case

let rs = Helpers.int_schema [ "A"; "B" ]

let ss = Helpers.int_schema [ "B"; "C" ]

let tests =
  [ case "of_list / to_list roundtrip" (fun () ->
        let t = Tuple.of_list [ Value.Int 1; Value.String "x" ] in
        Alcotest.(check int) "arity" 2 (Tuple.arity t);
        Alcotest.check Helpers.value "first" (Value.Int 1) (Tuple.get t 0));
    case "of_array copies" (fun () ->
        let arr = [| Value.Int 1 |] in
        let t = Tuple.of_array arr in
        arr.(0) <- Value.Int 9;
        Alcotest.check Helpers.value "unchanged" (Value.Int 1) (Tuple.get t 0));
    case "field by name" (fun () ->
        let t = Helpers.ints [ 1; 2 ] in
        Alcotest.check Helpers.value "B" (Value.Int 2) (Tuple.field rs t "B"));
    case "field arity mismatch raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Tuple.field rs (Helpers.ints [ 1 ]) "A" with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "conforms" (fun () ->
        Alcotest.(check bool) "yes" true (Tuple.conforms rs (Helpers.ints [ 1; 2 ]));
        Alcotest.(check bool) "wrong arity" false
          (Tuple.conforms rs (Helpers.ints [ 1 ]));
        Alcotest.(check bool) "wrong type" false
          (Tuple.conforms rs (Tuple.of_list [ Value.Int 1; Value.String "x" ]));
        Alcotest.(check bool) "null ok" true
          (Tuple.conforms rs (Tuple.of_list [ Value.Int 1; Value.Null ])));
    case "project reorders" (fun () ->
        Alcotest.check Helpers.tuple "BA" (Helpers.ints [ 2; 1 ])
          (Tuple.project rs [ "B"; "A" ] (Helpers.ints [ 1; 2 ])));
    case "concat" (fun () ->
        Alcotest.check Helpers.tuple "cat" (Helpers.ints [ 1; 2; 3 ])
          (Tuple.concat (Helpers.ints [ 1 ]) (Helpers.ints [ 2; 3 ])));
    case "join on matching shared attr" (fun () ->
        match Tuple.join rs ss (Helpers.ints [ 1; 2 ]) (Helpers.ints [ 2; 3 ]) with
        | Some j -> Alcotest.check Helpers.tuple "joined" (Helpers.ints [ 1; 2; 3 ]) j
        | None -> Alcotest.fail "expected join");
    case "join mismatch yields None" (fun () ->
        Alcotest.(check bool) "none" true
          (Tuple.join rs ss (Helpers.ints [ 1; 2 ]) (Helpers.ints [ 9; 3 ]) = None));
    case "join with no shared attrs is cross product" (fun () ->
        let ts = Helpers.int_schema [ "C"; "D" ] in
        match Tuple.join rs ts (Helpers.ints [ 1; 2 ]) (Helpers.ints [ 3; 4 ]) with
        | Some j ->
          Alcotest.check Helpers.tuple "cross" (Helpers.ints [ 1; 2; 3; 4 ]) j
        | None -> Alcotest.fail "expected cross product");
    case "compare: lexicographic then length" (fun () ->
        Alcotest.(check bool) "lt" true
          (Tuple.compare (Helpers.ints [ 1; 2 ]) (Helpers.ints [ 1; 3 ]) < 0);
        Alcotest.(check bool) "prefix shorter" true
          (Tuple.compare (Helpers.ints [ 1 ]) (Helpers.ints [ 1; 0 ]) < 0));
    Helpers.qcheck "join agrees with schema join arity"
      QCheck2.Gen.(
        pair (Helpers.Gen.int_tuple ~arity:2 ~range:3)
          (Helpers.Gen.int_tuple ~arity:2 ~range:3))
      (fun (a, b) ->
        match Tuple.join rs ss a b with
        | Some j -> Tuple.arity j = Schema.arity (Schema.join rs ss)
        | None -> not (Value.equal (Tuple.get a 1) (Tuple.get b 0)));
    Helpers.qcheck "equal tuples hash equally"
      QCheck2.Gen.(
        pair (Helpers.Gen.int_tuple ~arity:3 ~range:2)
          (Helpers.Gen.int_tuple ~arity:3 ~range:2))
      (fun (a, b) -> (not (Tuple.equal a b)) || Tuple.hash a = Tuple.hash b) ]
