open Relational
open Query

let case = Helpers.case

let tests =
  [ case "delta action applies a signed bag" (fun () ->
        let al =
          Action_list.delta ~view:"V" ~state:3
            (Signed_bag.of_list
               [ (Helpers.ints [ 1 ], 1); (Helpers.ints [ 2 ], -1) ])
        in
        Alcotest.check Helpers.bag "applied"
          (Helpers.bag_of [ [ 1 ] ])
          (Action_list.apply al (Helpers.bag_of [ [ 2 ] ])));
    case "refresh action replaces contents" (fun () ->
        let al = Action_list.refresh ~view:"V" ~state:2 (Helpers.bag_of [ [ 9 ] ]) in
        Alcotest.check Helpers.bag "replaced"
          (Helpers.bag_of [ [ 9 ] ])
          (Action_list.apply al (Helpers.bag_of [ [ 1 ]; [ 2 ] ])));
    case "is_empty: zero delta is empty" (fun () ->
        Alcotest.(check bool) "empty" true
          (Action_list.is_empty (Action_list.delta ~view:"V" ~state:1 Signed_bag.zero));
        Alcotest.(check bool) "refresh never empty" false
          (Action_list.is_empty (Action_list.refresh ~view:"V" ~state:1 Bag.empty)));
    case "action_count" (fun () ->
        let al =
          Action_list.delta ~view:"V" ~state:1
            (Signed_bag.of_list [ (Helpers.ints [ 1 ], 2); (Helpers.ints [ 2 ], -1) ])
        in
        Alcotest.(check int) "3 ops" 3 (Action_list.action_count al));
    case "fields are preserved" (fun () ->
        let al = Action_list.delta ~view:"V7" ~state:42 Signed_bag.zero in
        Alcotest.(check string) "view" "V7" al.view;
        Alcotest.(check int) "state" 42 al.state) ]
