open Relational
open Query

let case = Helpers.case

let schemas name =
  match name with
  | "R" -> Helpers.int_schema [ "A"; "B" ]
  | "S" -> Helpers.int_schema [ "B"; "C" ]
  | "Q" -> Helpers.int_schema [ "D"; "E" ]
  | other -> raise (Database.Unknown_relation other)

let views =
  [ View.make "V1" Algebra.(join (base "R") (base "S"));
    View.make "V2" Algebra.(base "S");
    View.make "V3" Algebra.(select (Pred.eq "D" (Value.Int 5)) (base "Q")) ]

let txn ?(id = 0) rel tuple =
  Update.Transaction.single ~id ~source:"s" (Update.insert rel (Helpers.ints tuple))

let tests =
  [ case "rel_set: views mentioning the relation" (fun () ->
        let integ = Integrator.create ~schemas views in
        Alcotest.(check (list string)) "S hits V1 V2" [ "V1"; "V2" ]
          (Integrator.rel_set integ (txn "S" [ 1; 2 ]));
        Alcotest.(check (list string)) "R hits V1" [ "V1" ]
          (Integrator.rel_set integ (txn "R" [ 1; 2 ])));
    case "rel_set empty when nothing matches" (fun () ->
        let integ = Integrator.create ~schemas views in
        let t =
          Update.Transaction.single ~id:0 ~source:"s"
            (Update.insert "Z" (Helpers.ints [ 1 ]))
        in
        Alcotest.(check (list string)) "none" [] (Integrator.rel_set integ t));
    case "multi-update transactions union their views" (fun () ->
        let integ = Integrator.create ~schemas views in
        let t =
          Update.Transaction.make ~id:0 ~source:"s"
            [ Update.insert "R" (Helpers.ints [ 1; 2 ]);
              Update.insert "Q" (Helpers.ints [ 5; 5 ]) ]
        in
        Alcotest.(check (list string)) "V1 and V3" [ "V1"; "V3" ]
          (Integrator.rel_set integ t));
    case "ingest numbers by arrival from 1" (fun () ->
        let integ = Integrator.create ~schemas views in
        let t1, _ = Integrator.ingest integ (txn ~id:99 "R" [ 1; 2 ]) in
        let t2, _ = Integrator.ingest integ (txn ~id:98 "S" [ 1; 2 ]) in
        Alcotest.(check int) "1" 1 t1.Update.Transaction.id;
        Alcotest.(check int) "2" 2 t2.Update.Transaction.id;
        Alcotest.(check int) "count" 2 (Integrator.ingested integ));
    case "semantic filter drops provably irrelevant updates" (fun () ->
        let integ = Integrator.create ~semantic_filter:true ~schemas views in
        (* D=9 fails V3's selection D=5; no other view uses Q. *)
        Alcotest.(check (list string)) "filtered" []
          (Integrator.rel_set integ (txn "Q" [ 9; 9 ]));
        Alcotest.(check (list string)) "kept when passing" [ "V3" ]
          (Integrator.rel_set integ (txn "Q" [ 5; 9 ])));
    case "without semantic filter the syntactic set is used" (fun () ->
        let integ = Integrator.create ~schemas views in
        Alcotest.(check (list string)) "kept" [ "V3" ]
          (Integrator.rel_set integ (txn "Q" [ 9; 9 ])));
    case "view_names order preserved" (fun () ->
        let integ = Integrator.create ~schemas views in
        Alcotest.(check (list string)) "names" [ "V1"; "V2"; "V3" ]
          (Integrator.view_names integ)) ]
