(* Aligned-column table printing for the experiment reports. *)

let print ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        max acc (String.length (try List.nth row c with Failure _ -> "")))
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    String.concat "  " (List.map2 pad row widths)
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (line header);
  Printf.printf "%s\n" (String.make (String.length (line header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (line row)) rows

let section name = Printf.printf "\n###### %s ######\n" name

let f1 x = Printf.sprintf "%.1f" x

let f3 x = Printf.sprintf "%.3f" x

let f4 x = Printf.sprintf "%.4f" x

let ms x = Printf.sprintf "%.2fms" (1000.0 *. x)
