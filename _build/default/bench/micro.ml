(* Bechamel micro-benchmarks: one [Test.make] per kernel underlying the
   experiment tables (VUT bookkeeping, painting-algorithm event handling,
   incremental delta computation, bag operations, the consistency oracle).
   Estimated via OLS on monotonic-clock samples. *)

open Bechamel
open Relational

let int_schema names = Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)

let random_bag seed n =
  let rng = Sim.Rng.create seed in
  let rec loop i acc =
    if i = 0 then acc
    else
      loop (i - 1)
        (Bag.add (Tuple.ints [ Sim.Rng.int rng 50; Sim.Rng.int rng 50 ]) acc)
  in
  loop n Bag.empty

let join_db n =
  let rs = int_schema [ "A"; "B" ] and ss = int_schema [ "B"; "C" ] in
  Database.of_list
    [ ("R", Relation.with_contents (Relation.create rs) (random_bag 1 n));
      ("S", Relation.with_contents (Relation.create ss) (random_bag 2 n)) ]

let test_vut_lifecycle =
  Test.make ~name:"vut: 64-row add/color/purge lifecycle"
    (Staged.stage (fun () ->
         let views = [ "V1"; "V2"; "V3"; "V4" ] in
         let vut = Mvc.Vut.create ~views in
         for row = 1 to 64 do
           Mvc.Vut.add_row vut ~row ~rel:views
         done;
         for row = 1 to 64 do
           List.iter
             (fun view ->
               Mvc.Vut.set_color vut ~row ~view Mvc.Vut.Gray)
             views;
           Mvc.Vut.purge_row vut row
         done))

let test_vut_next_red =
  Test.make ~name:"vut: next_red scan over 256 live rows"
    (Staged.stage
       (let vut = Mvc.Vut.create ~views:[ "V" ] in
        for row = 1 to 256 do
          Mvc.Vut.add_row vut ~row ~rel:[ "V" ]
        done;
        Mvc.Vut.set_color vut ~row:256 ~view:"V" Mvc.Vut.Red;
        fun () -> ignore (Mvc.Vut.next_red vut ~row:1 ~view:"V")))

let drive_spa n_rows =
  let views = [ "V1"; "V2"; "V3" ] in
  let spa = Mvc.Spa.create ~views ~emit:(fun _ -> ()) () in
  for row = 1 to n_rows do
    Mvc.Spa.receive_rel spa ~row ~rel:views;
    List.iter
      (fun view ->
        Mvc.Spa.receive_action_list spa
          (Query.Action_list.delta ~view ~state:row Signed_bag.zero))
      views
  done

let test_spa =
  Test.make ~name:"spa: 64 updates x 3 views end to end"
    (Staged.stage (fun () -> drive_spa 64))

let drive_pa n_rows =
  let views = [ "V1"; "V2"; "V3" ] in
  let pa = Mvc.Pa.create ~views ~emit:(fun _ -> ()) () in
  for row = 1 to n_rows do
    Mvc.Pa.receive_rel pa ~row ~rel:views
  done;
  (* Each manager sends batched lists covering four rows at a time. *)
  List.iter
    (fun view ->
      let row = ref 4 in
      while !row <= n_rows do
        Mvc.Pa.receive_action_list pa
          (Query.Action_list.delta ~view ~state:!row Signed_bag.zero);
        row := !row + 4
      done)
    views

let test_pa =
  Test.make ~name:"pa: 64 updates x 3 views, batches of 4"
    (Staged.stage (fun () -> drive_pa 64))

let test_delta_join =
  Test.make ~name:"delta: single insert into 512-tuple join"
    (Staged.stage
       (let db = join_db 512 in
        let expr = Query.Algebra.(join (base "R") (base "S")) in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 7; 7 ]))
        in
        fun () -> ignore (Query.Delta.eval ~pre:db changes expr)))

let test_eval_join =
  Test.make ~name:"eval: full 512x512 natural join"
    (Staged.stage
       (let db = join_db 512 in
        let expr = Query.Algebra.(join (base "R") (base "S")) in
        fun () -> ignore (Query.Eval.eval_bag db expr)))

let test_bag_union =
  Test.make ~name:"bag: union of two 1024-tuple bags"
    (Staged.stage
       (let a = random_bag 3 1024 and b = random_bag 4 1024 in
        fun () -> ignore (Bag.union a b)))

let test_oracle =
  Test.make ~name:"oracle: verdict for a 20-txn SPA run"
    (Staged.stage
       (let scen =
          Workload.Generator.generate
            { Workload.Generator.default with seed = 5; n_transactions = 20 }
        in
        let result = Whips.System.run (Whips.System.default scen) in
        fun () -> ignore (Whips.System.verdict result)))

let test_system =
  Test.make ~name:"system: full 20-txn simulated run (SPA)"
    (Staged.stage
       (let scen =
          Workload.Generator.generate
            { Workload.Generator.default with seed = 5; n_transactions = 20 }
        in
        fun () -> ignore (Whips.System.run (Whips.System.default scen))))

let test_delta_pushdown =
  Test.make ~name:"delta: selective view, optimized vs raw definition"
    (Staged.stage
       (let db = join_db 512 in
        let raw =
          Query.Algebra.(
            select
              (Query.Pred.eq "A" (Value.Int 3))
              (join (base "R") (base "S")))
        in
        let optimized =
          Query.Optimize.optimize
            ~schemas:(fun n -> Database.schema db n)
            raw
        in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 3; 3 ]))
        in
        fun () ->
          ignore (Query.Delta.eval ~pre:db changes raw);
          ignore (Query.Delta.eval ~pre:db changes optimized)))

let test_delta_pushdown_only =
  Test.make ~name:"delta: optimized definition alone"
    (Staged.stage
       (let db = join_db 512 in
        let optimized =
          Query.Optimize.optimize
            ~schemas:(fun n -> Database.schema db n)
            Query.Algebra.(
              select
                (Query.Pred.eq "A" (Value.Int 3))
                (join (base "R") (base "S")))
        in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 3; 3 ]))
        in
        fun () -> ignore (Query.Delta.eval ~pre:db changes optimized)))

(* Ablation for the auxiliary-view trade (references [12]/[8]): the delta
   of V = R |><| S |><| T computed directly over base data vs through
   materialized RS and ST. *)
let three_way_db n =
  let rs = int_schema [ "A"; "B" ]
  and ss = int_schema [ "B"; "C" ]
  and ts = int_schema [ "C"; "D" ] in
  Database.of_list
    [ ("R", Relation.with_contents (Relation.create rs) (random_bag 11 n));
      ("S", Relation.with_contents (Relation.create ss) (random_bag 12 n));
      ("T", Relation.with_contents (Relation.create ts) (random_bag 13 n)) ]

let test_delta_direct_3way =
  Test.make ~name:"delta: V=R|><|S|><|T directly over base data (256 tuples)"
    (Staged.stage
       (let db = three_way_db 256 in
        let expr = Query.Algebra.(join_all [ base "R"; base "S"; base "T" ]) in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 7; 7 ]))
        in
        fun () -> ignore (Query.Delta.eval ~pre:db changes expr)))

let test_delta_via_aux =
  Test.make ~name:"delta: same V through materialized RS and ST"
    (Staged.stage
       (let db = three_way_db 256 in
        let rs_def = Query.Algebra.(join (base "R") (base "S")) in
        let st_def = Query.Algebra.(join (base "S") (base "T")) in
        let aux_db =
          Database.of_list
            [ ("RS", Query.Eval.eval db rs_def);
              ("ST", Query.Eval.eval db st_def) ]
        in
        let over_aux = Query.Algebra.(join (base "RS") (base "ST")) in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 7; 7 ]))
        in
        fun () ->
          let aux_changes =
            Query.Delta.changes_of_list
              [ ("RS", Query.Delta.eval ~pre:db changes rs_def);
                ("ST", Query.Delta.eval ~pre:db changes st_def) ]
          in
          ignore (Query.Delta.eval ~pre:aux_db aux_changes over_aux)))

let tests =
  [ test_vut_lifecycle; test_vut_next_red; test_spa; test_pa; test_delta_join;
    test_eval_join; test_bag_union; test_delta_pushdown;
    test_delta_pushdown_only; test_delta_direct_3way; test_delta_via_aux;
    test_oracle; test_system ]

let run () =
  Tables.section "micro-benchmarks (Bechamel, ns per run, OLS estimate)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let estimate =
              match Analyze.OLS.estimates ols_result with
              | Some [ e ] -> Printf.sprintf "%.0f ns" e
              | Some es ->
                String.concat ","
                  (List.map (fun e -> Printf.sprintf "%.0f" e) es)
              | None -> "n/a"
            in
            [ name; estimate ] :: acc)
          analyzed []
        |> List.concat)
      tests
  in
  Tables.print ~title:"kernel costs" ~header:[ "benchmark"; "time/run" ] rows
