bench/tables.ml: List Printf String
