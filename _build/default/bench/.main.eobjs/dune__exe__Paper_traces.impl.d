bench/paper_traces.ml: Action_list Consistency Fmt List Mvc Printf Query Relational Source String Tables Warehouse Whips Workload
