bench/experiments.ml: Consistency Fmt List Metrics Mvc Printf Query Relational Sim Source String System Tables Unix Warehouse Whips Workload
