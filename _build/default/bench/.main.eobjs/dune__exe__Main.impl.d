bench/main.ml: Array Experiments List Micro Paper_traces Printf Sys
