bench/main.mli:
