(* Reproduction of the paper's worked examples: Table 1 and the VUT
   evolution tables of Examples 2-5 (the only "tables and figures" the
   paper contains; its quantitative study was deferred to future work —
   see EXPERIMENTS.md). Each printer drives the real algorithm and renders
   the table exactly as the corresponding test asserts it. *)

open Query

let al view state = Action_list.delta ~view ~state Relational.Signed_bag.zero

(* Table 1 / Example 1: run the real system over the scenario and print
   the view contents at each source state and each warehouse state. *)
let table1 () =
  Tables.section "Table 1 (Example 1): multiple view consistency problem";
  let scen = Workload.Scenarios.example1 in
  let srcs = Workload.Scenarios.sources scen in
  let _ = Workload.Scenarios.run_script scen srcs in
  let show db v =
    Relational.Bag.to_string
      (Relational.Relation.contents (Query.View.materialize db v))
  in
  let rows =
    List.mapi
      (fun i db ->
        [ Printf.sprintf "ss%d" i;
          Relational.Relation.to_string (Relational.Database.find db "S")
          |> String.map (fun c -> if c = '\n' then ' ' else c);
          show db (List.nth scen.views 0);
          show db (List.nth scen.views 1) ])
      (Source.Sources.states srcs)
  in
  Tables.print ~title:"source states and view values"
    ~header:[ "state"; "S"; "V1 = R |><| S"; "V2 = S |><| T" ]
    rows;
  let result = Whips.System.run { (Whips.System.default scen) with seed = 2 } in
  let ws_rows =
    List.mapi
      (fun j ws ->
        [ Printf.sprintf "ws%d" j;
          Relational.Bag.to_string
            (Relational.Relation.contents (Relational.Database.find ws "V1"));
          Relational.Bag.to_string
            (Relational.Relation.contents (Relational.Database.find ws "V2")) ])
      (Warehouse.Store.states result.store)
  in
  Tables.print
    ~title:
      "warehouse states under the merge process (V1 and V2 move together; \
       the paper's inconsistent state at t2 never appears)"
    ~header:[ "state"; "V1"; "V2" ] ws_rows;
  Printf.printf "consistency: %s\n"
    (Fmt.str "%a" Consistency.Checker.pp_verdict (Whips.System.verdict result))

(* Example 2: the first VUT illustration. *)
let example2 () =
  Tables.section "Example 2: ViewUpdateTable under SPA";
  let log = ref [] in
  let spa =
    Mvc.Spa.create ~views:[ "V1"; "V2"; "V3" ]
      ~emit:(fun wt ->
        log :=
          Printf.sprintf "apply WT covering rows [%s]"
            (String.concat ";"
               (List.map string_of_int wt.Warehouse.Wt.rows))
          :: !log)
      ()
  in
  let snap label =
    Printf.printf "%-24s | %s\n" label
      (String.concat " || "
         (String.split_on_char '\n' (Mvc.Vut.render (Mvc.Spa.vut spa))))
  in
  Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1"; "V2" ];
  Mvc.Spa.receive_rel spa ~row:2 ~rel:[ "V3" ];
  snap "REL1, REL2 received";
  Mvc.Spa.receive_action_list spa (al "V2" 1);
  snap "AL(V2,1) received";
  Mvc.Spa.receive_action_list spa (al "V1" 1);
  snap "AL(V1,1) received";
  Mvc.Spa.receive_action_list spa (al "V3" 2);
  Printf.printf "%-24s | (table empty)\n" "AL(V3,2) received";
  List.iter (Printf.printf "  %s\n") (List.rev !log)

(* Example 3: SPA applying rows out of update order. *)
let example3 () =
  Tables.section "Example 3: SPA trace (times t4-t11 of the paper)";
  let order = ref [] in
  let spa =
    Mvc.Spa.create ~views:[ "V1"; "V2"; "V3" ]
      ~emit:(fun wt -> order := !order @ [ wt.Warehouse.Wt.rows ])
      ()
  in
  let snap label =
    Printf.printf "%-10s %s\n" label
      (String.concat " | "
         (String.split_on_char '\n' (Mvc.Vut.render (Mvc.Spa.vut spa))))
  in
  Mvc.Spa.receive_rel spa ~row:1 ~rel:[ "V1"; "V2" ];
  Mvc.Spa.receive_action_list spa (al "V2" 1);
  Mvc.Spa.receive_rel spa ~row:2 ~rel:[ "V3" ];
  Mvc.Spa.receive_rel spa ~row:3 ~rel:[ "V2" ];
  snap "t4:";
  Mvc.Spa.receive_action_list spa (al "V3" 2);
  snap "t5-t6:";
  Mvc.Spa.receive_action_list spa (al "V2" 3);
  snap "t7:";
  Mvc.Spa.receive_action_list spa (al "V1" 1);
  Printf.printf "t8-t11:    (table empty)\n";
  Printf.printf "warehouse transaction order: %s (matches the paper: WT2, WT1, WT3)\n"
    (String.concat ", "
       (List.map
          (fun rows ->
            "WT" ^ String.concat "+" (List.map string_of_int rows))
          !order))

(* Example 4: why SPA breaks down on intertwined action lists. *)
let example4 () =
  Tables.section "Example 4: intertwined action lists (PA's raison d'etre)";
  let order = ref [] in
  let pa =
    Mvc.Pa.create ~views:[ "V1"; "V2"; "V3" ]
      ~emit:(fun wt -> order := !order @ [ wt.Warehouse.Wt.rows ])
      ()
  in
  Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V1"; "V2" ];
  Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "V2"; "V3" ];
  Mvc.Pa.receive_rel pa ~row:3 ~rel:[ "V1"; "V2" ];
  Mvc.Pa.receive_action_list pa (al "V1" 3);
  Printf.printf "after batched AL(V1,3):\n%s\n"
    (Mvc.Vut.render ~show_state:true (Mvc.Pa.vut pa));
  Mvc.Pa.receive_action_list pa (al "V2" 1);
  Mvc.Pa.receive_action_list pa (al "V2" 2);
  Mvc.Pa.receive_action_list pa (al "V3" 2);
  Printf.printf
    "rows 1 and 2 have every list, yet PA holds them (SPA would wrongly \
     apply them):\n%s\n"
    (Mvc.Vut.render ~show_state:true (Mvc.Pa.vut pa));
  Mvc.Pa.receive_action_list pa (al "V2" 3);
  Printf.printf "after AL(V2,3): applied %s in one transaction\n"
    (String.concat ", "
       (List.map
          (fun rows -> "rows " ^ String.concat "+" (List.map string_of_int rows))
          !order))

(* Example 5: the Painting Algorithm trace. *)
let example5 () =
  Tables.section "Example 5: PA trace (times t0-t7 of the paper)";
  let order = ref [] in
  let pa =
    Mvc.Pa.create ~views:[ "V1"; "V2"; "V3" ]
      ~emit:(fun wt -> order := !order @ [ wt.Warehouse.Wt.rows ])
      ()
  in
  let snap label =
    Printf.printf "%s\n%s\n" label
      (Mvc.Vut.render ~show_state:true (Mvc.Pa.vut pa))
  in
  Mvc.Pa.receive_rel pa ~row:1 ~rel:[ "V1"; "V2" ];
  Mvc.Pa.receive_rel pa ~row:2 ~rel:[ "V2"; "V3" ];
  Mvc.Pa.receive_rel pa ~row:3 ~rel:[ "V2"; "V3" ];
  snap "t0: RELs received";
  Mvc.Pa.receive_action_list pa (al "V2" 1);
  Mvc.Pa.receive_action_list pa (al "V2" 3);
  snap "t1,t2: AL(V2,1), AL(V2,3) arrived";
  Mvc.Pa.receive_action_list pa (al "V3" 2);
  Mvc.Pa.receive_action_list pa (al "V1" 1);
  snap "t3,t4,t5: AL(V3,2), AL(V1,1) arrived; row 1 applied";
  Mvc.Pa.receive_action_list pa (al "V3" 3);
  Printf.printf "t6,t7: AL(V3,3) arrived; table empty\n";
  Printf.printf "warehouse transactions: %s (matches the paper: WT1 alone, then WT2+WT3)\n"
    (String.concat ", "
       (List.map
          (fun rows -> "{" ^ String.concat "," (List.map string_of_int rows) ^ "}")
          !order))

let run () =
  table1 ();
  example2 ();
  example3 ();
  example4 ();
  example5 ()
